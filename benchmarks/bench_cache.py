"""Staging-cache prefetch benchmark: BD-CATS read stall, off vs on.

Runs the BD-CATS-IO analysis kernel twice through
:func:`~repro.harness.experiment.run_experiment` on the same machine,
ranks and seed — once with an inert cache subsystem (``cache_mode=
"off"``) and once with deadline prefetch enabled (``"on"``) — and
gates that prefetch actually buys something:

- both sides read exactly the same bytes (``total_bytes`` equal);
- the prefetch-on side's read stall (slowest rank's summed read
  blocking time) is below the off side's by at least
  ``MIN_STALL_REDUCTION``;
- every declared read landed by its deadline (``on_time_ratio == 1``)
  on the uncontended testbed shape.

The async VOL's own heuristic prefetcher is disabled on *both* sides,
so the deadline planner is the only read-ahead in play and the
comparison isolates the subsystem under test.

Results land in ``BENCH_cache.json`` at the repository root.

Run standalone (full shape)::

    PYTHONPATH=src python benchmarks/bench_cache.py

or in CI smoke mode (smaller shape, same JSON schema)::

    PYTHONPATH=src python benchmarks/bench_cache.py --smoke

Also collectable via pytest (runs the smoke shape and asserts the
stall-reduction gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cache.py
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.harness import run_experiment
from repro.platform import testbed as make_testbed
from repro.workloads import BDCATSConfig, bdcats_program, prepopulate_vpic_file

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_cache.json"

#: Prefetch-on must cut the read stall by at least this factor.  The
#: compute windows on both shapes are long enough to hide the whole
#: epoch read, so the observed reduction is far larger; the floor only
#: guards against the planner silently degrading to a no-op.
MIN_STALL_REDUCTION = 0.3


def _shape(smoke: bool):
    cfg = BDCATSConfig(
        particles_per_rank=(1 << 18) if smoke else (1 << 20),
        n_properties=4 if smoke else 8,
        steps=3,
        compute_seconds=10.0 if smoke else 30.0,
    )
    nranks = 8 if smoke else 16
    machine = make_testbed(nodes=nranks // 4, ranks_per_node=4)
    return machine, cfg, nranks


def run_side(machine, cfg, nranks, cache_mode):
    result = run_experiment(
        machine, "bdcats", bdcats_program, cfg, mode="async",
        nranks=nranks, op="read",
        prepopulate=lambda lib, n: prepopulate_vpic_file(lib, cfg, n),
        vol_kwargs={"prefetcher": None},
        cache_mode=cache_mode,
    )
    return {
        "cache_mode": cache_mode,
        "app_time_s": result.app_time,
        "read_stall_s": result.read_stall_seconds,
        "total_bytes": result.total_bytes,
        "cache_stats": result.cache_stats,
    }


def run_bench(smoke=False, out=DEFAULT_OUT):
    machine, cfg, nranks = _shape(smoke)
    off = run_side(machine, cfg, nranks, "off")
    on = run_side(machine, cfg, nranks, "on")
    reduction = 1.0 - on["read_stall_s"] / off["read_stall_s"]
    payload = {
        "mode": "smoke" if smoke else "full",
        "params": {
            "nranks": nranks,
            "particles_per_rank": cfg.particles_per_rank,
            "n_properties": cfg.n_properties,
            "steps": cfg.steps,
        },
        "off": off,
        "on": on,
        "stall_reduction": round(reduction, 4),
        "min_stall_reduction": MIN_STALL_REDUCTION,
    }
    for side in (off, on):
        print(
            f"cache {side['cache_mode']:>3}: app {side['app_time_s']:.3f}s  "
            f"read stall {side['read_stall_s']:.4f}s"
        )
    print(f"stall reduction: {reduction:.1%} "
          f"(floor {MIN_STALL_REDUCTION:.0%})")
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


def check_gate(payload):
    """Human-readable gate failures; empty means pass."""
    failures = []
    off, on = payload["off"], payload["on"]
    if on["total_bytes"] != off["total_bytes"]:
        failures.append(
            f"byte mismatch: on read {on['total_bytes']:.6g}B, "
            f"off read {off['total_bytes']:.6g}B"
        )
    if payload["stall_reduction"] < payload["min_stall_reduction"]:
        failures.append(
            f"read-stall reduction {payload['stall_reduction']:.1%} is "
            f"below the {payload['min_stall_reduction']:.0%} floor "
            f"(off {off['read_stall_s']:.4f}s, on {on['read_stall_s']:.4f}s)"
        )
    stats = on["cache_stats"]
    if stats["on_time_ratio"] < 1.0:
        failures.append(
            f"prefetches missed deadlines on the uncontended shape "
            f"(on_time_ratio {stats['on_time_ratio']:.3f})"
        )
    if stats["hits"] == 0:
        failures.append("prefetch-on run served zero cache hits")
    return failures


# ----------------------------------------------------------------------
# pytest entry point (smoke shape: cheap enough for CI)
# ----------------------------------------------------------------------
def test_prefetch_beats_no_cache_on_read_stall(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_cache.json")
    failures = check_gate(payload)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller shape (CI mode), same JSON schema",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out directory does not exist: {out.parent}")
    payload = run_bench(smoke=args.smoke, out=out)
    status = 0
    for line in check_gate(payload):
        print(f"FAIL: {line}")
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
