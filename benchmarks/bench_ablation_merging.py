"""Ablation — background write merging in the async VOL.

The Fig. 4b regime (small per-rank requests on Cori) leaves the async
drain request-cost-bound: each staged operation pays full per-request
overhead at the file system.  Coalescing adjacent queued writes into one
larger request (``AsyncVOL(merge_writes=True)``) cuts that overhead off
the critical path entirely — the kind of connector-side optimization the
follow-up literature on the async VOL pursues.

The workload is drain-limited by design (many small datasets, short
computation), so faster draining shows up directly in the application
duration via ``H5Fclose``.
"""

import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, cori_haswell
from repro.hdf5 import FLOAT64, AsyncVOL, EventSet, H5Library, slab_1d
from repro.harness.report import FigureData

KiB = 1 << 10
NRANKS = 128
N_DATASETS = 24
ELEMS = 64 * KiB  # 512 KiB per rank per dataset: request-cost-bound


def _run(merge: bool) -> tuple[float, float]:
    engine = Engine()
    cluster = Cluster(engine, cori_haswell(), NRANKS // 32)
    lib = H5Library(cluster)
    vol = AsyncVOL(init_time=0.0, merge_writes=merge)

    def program(ctx):
        f = yield from lib.create(ctx, "/m.h5", vol)
        es = EventSet(ctx.engine)
        for i in range(N_DATASETS):
            # back-to-back submissions: the staging copies outpace the
            # per-request drain costs, so the background queue backs up
            d = f.create_dataset(f"/d{i}", shape=(ELEMS * ctx.size,),
                                 dtype=FLOAT64)
            yield from d.write(slab_1d(ctx.rank, ELEMS), phase=i, es=es)
        yield from es.wait()
        yield from f.close()
        return ctx.now

    app_time = max(MPIJob(cluster, NRANKS).run(program))
    return app_time, vol.log.peak_bandwidth(op="write")


def test_ablation_write_merging(benchmark, save_figure):
    def run_both():
        return {"off": _run(False), "on": _run(True)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-merging",
        f"Async write merging on Cori ({NRANKS} ranks, {N_DATASETS} x "
        f"512 KiB/rank datasets, back-to-back, drain-limited)",
        columns=["merging", "app time s", "peak blocking GB/s"],
    )
    for label, (app_time, peak) in results.items():
        fig.add_row(label, app_time, peak / 1e9)
    save_figure(fig)

    # coalesced drains finish the application sooner
    assert results["on"][0] < 0.75 * results["off"][0]
    # the blocking-side bandwidth is unchanged (staging copies identical)
    assert results["on"][1] == pytest.approx(results["off"][1], rel=0.05)

