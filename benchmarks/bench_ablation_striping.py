"""Ablation — Lustre stripe count (DESIGN.md §5, Behzad et al. context).

The paper fixes 72 OSTs (``stripe_large``) per NERSC best practice;
this ablation shows why: a file's synchronous bandwidth ceiling is
``stripe_count × ost_bandwidth``, so narrow striping throttles the
whole job while wide striping approaches the 72-OST plateau.
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, cori_haswell
from repro.hdf5 import FLOAT32, EventSet, H5Library, NativeVOL, slab_1d
from repro.harness.report import FigureData
from repro.workloads import VPICConfig

Mi = 1 << 20
NRANKS = 1024
STRIPES = [1, 8, 72, 248]


def _run(stripe_count: int) -> float:
    machine = cori_haswell()
    engine = Engine()
    cluster = Cluster(engine, machine, NRANKS // 32)
    lib = H5Library(cluster)
    vol = NativeVOL()
    cfg = VPICConfig(steps=2, compute_seconds=5.0)

    def program(ctx):
        f = yield from lib.create(ctx, f"/s{stripe_count}.h5", vol,
                                  stripe_count=stripe_count)
        es = EventSet(ctx.engine)
        n_global = cfg.particles_per_rank * ctx.size
        for step in range(cfg.steps):
            yield ctx.compute(cfg.compute_seconds)
            for prop in range(cfg.n_properties):
                d = f.create_dataset(f"/Step#{step}/p{prop}",
                                     shape=(n_global,), dtype=FLOAT32)
                yield from d.write(slab_1d(ctx.rank, cfg.particles_per_rank),
                                   phase=step, es=es)
        yield from es.wait()
        yield from f.close()

    job = MPIJob(cluster, NRANKS)
    job.run(program)
    return vol.log.peak_bandwidth(op="write")


def test_ablation_lustre_striping(benchmark, save_figure):
    def run_all():
        return {s: _run(s) for s in STRIPES}

    peaks = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-striping",
        f"VPIC-IO sync write on Cori ({NRANKS} ranks) vs Lustre stripe count",
        columns=["stripe count", "peak GB/s", "stripe ceiling GB/s"],
    )
    ost_bw = cori_haswell().filesystem.ost_bandwidth
    for s in STRIPES:
        fig.add_row(s, peaks[s] / 1e9, s * ost_bw / 1e9)
    save_figure(fig)

    # bandwidth grows with stripe count...
    assert peaks[8] > 4 * peaks[1]
    assert peaks[72] > 4 * peaks[8]
    # ...capped by each stripe ceiling
    for s in STRIPES:
        assert peaks[s] <= s * ost_bw * 1.02
    # and going past stripe_large hits injection limits, not 248*ost_bw
    assert peaks[248] < 248 * ost_bw * 0.5
