"""Ablation — async staging target: node DRAM vs node-local SSD.

The async VOL "uses background threads for caching data either to a
memory buffer on the same node where a process is running or to a
node-local SSD" (§II-C).  DRAM staging has a faster transactional copy
(higher observed async bandwidth); SSD staging trades blocking time for
DRAM footprint.  Summit's NVMe writes at ~2.1 GB/s vs the ~8 GB/s
per-rank memcpy share.
"""

from repro.harness import run_experiment
from repro.harness.report import FigureData
from repro.platform import summit
from repro.workloads import VPICConfig, vpic_program

NRANKS = 384


def test_ablation_staging_target(benchmark, save_figure):
    cfg = VPICConfig(steps=3)

    def run_both():
        dram = run_experiment(
            summit(), "vpic-io", vpic_program, cfg, mode="async",
            nranks=NRANKS, op="write", vol_kwargs={"staging": "dram"},
        )
        ssd = run_experiment(
            summit(), "vpic-io", vpic_program, cfg, mode="async",
            nranks=NRANKS, op="write", vol_kwargs={"staging": "ssd"},
        )
        return dram, ssd

    dram, ssd = benchmark.pedantic(run_both, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-staging",
        f"VPIC-IO async on Summit ({NRANKS} ranks): staging to DRAM vs "
        f"node-local SSD",
        columns=["staging", "peak GB/s", "app time s"],
    )
    fig.add_row("dram", dram.peak_gbs, dram.app_time)
    fig.add_row("ssd", ssd.peak_gbs, ssd.app_time)
    save_figure(fig)

    # the faster transactional copy yields higher observed bandwidth
    assert dram.peak_bandwidth > 2 * ssd.peak_bandwidth
    # both still finish in about compute-bound time (I/O fully hidden);
    # SSD staging pays its slower copies in the epochs
    assert ssd.app_time > dram.app_time
