"""Fault-injection recovery benchmark: goodput and the data-loss window.

Drives :func:`repro.harness.recovery.recovery_sweep` — a checkpointing
job is killed mid-epoch under injected storage faults and restarted
from its last *durable* checkpoint — comparing the sync VOL against
the async VOL's retry + sync-fallback ladder across flaky-write fault
rates.  Two invariants are checked on every run:

- **determinism**: the whole sweep is replayed with the same seed and
  every run's fault-trace signature (and headline numbers) must match
  bit-for-bit — a chaos layer that cannot replay a failure is useless
  for debugging one;
- **no data loss with faults absorbed**: at every injected fault rate
  the async connector must keep at least as many checkpoints durable
  as the sync connector, whose un-retried ranks die at the first fault.

Results land in ``BENCH_faults.json`` at the repository root: per
(mode, fault rate) goodput, data-loss window, durable/lost checkpoint
counts, and retry/fallback totals.

Run standalone (full mode)::

    PYTHONPATH=src python benchmarks/bench_faults.py

or in CI smoke mode (fewer ranks/rates, same JSON schema)::

    PYTHONPATH=src python benchmarks/bench_faults.py --smoke

Also collectable via pytest (runs the smoke sweep and asserts the
determinism + robustness invariants)::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.harness.recovery import recovery_sweep
from repro.platform.machines import summit
from repro.workloads.restart import RestartConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_faults.json"

Mi = 1 << 20
SEED = 90


def _shape(smoke: bool):
    """(nranks, fault_rates, config) for the selected mode."""
    if smoke:
        return 12, (0.0, 0.05, 0.2), RestartConfig(
            elems_per_rank=Mi, checkpoints=4, compute_seconds=5.0)
    return 48, (0.0, 0.02, 0.05, 0.2), RestartConfig(
        elems_per_rank=4 * Mi, checkpoints=6, compute_seconds=10.0)


def _row(res):
    return {
        "mode": res.mode,
        "fault_rate": res.fault_rate,
        "nranks": res.nranks,
        "t_kill": round(res.t_kill, 6),
        "durable_checkpoints": res.durable_checkpoints,
        "lost_checkpoints": res.lost_checkpoints,
        "data_loss_window_s": round(res.data_loss_window, 6),
        "restart_wall_s": round(res.restart_wall, 6),
        "goodput": round(res.goodput, 6),
        "retries": res.retries,
        "fallbacks": res.fallbacks,
        "fault_signature": [list(ev) for ev in res.fault_signature],
    }


def run_bench(smoke=False, out=DEFAULT_OUT):
    nranks, rates, cfg = _shape(smoke)
    machine = summit()
    sweep = recovery_sweep(machine, nranks, fault_rates=rates,
                           config=cfg, seed=SEED)
    # Determinism gate: an identically-seeded replay must reproduce
    # every fault trace and every headline number exactly.
    replay = recovery_sweep(machine, nranks, fault_rates=rates,
                            config=cfg, seed=SEED)
    deterministic = all(
        a.fault_signature == b.fault_signature
        and a.goodput == b.goodput
        and a.data_loss_window == b.data_loss_window
        and a.durable_checkpoints == b.durable_checkpoints
        for a, b in zip(sweep, replay)
    )
    rows = [_row(r) for r in sweep]
    for row in rows:
        print(
            f"{row['mode']:>5} rate={row['fault_rate']:<5g} "
            f"durable={row['durable_checkpoints']} "
            f"lost={row['lost_checkpoints']} "
            f"loss_window={row['data_loss_window_s']:.2f}s "
            f"goodput={row['goodput']:.3f} "
            f"retries={row['retries']} fallbacks={row['fallbacks']}"
        )
    print(f"deterministic replay: {deterministic}")
    payload = {
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "seed": SEED,
        "deterministic": deterministic,
        "results": rows,
    }
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


# ----------------------------------------------------------------------
# pytest entry points (smoke sweep: cheap enough for CI)
# ----------------------------------------------------------------------
def test_recovery_deterministic_and_async_absorbs_faults(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_faults.json")
    assert payload["deterministic"], "same-seed replay diverged"
    by_mode = {}
    for row in payload["results"]:
        by_mode.setdefault(row["mode"], {})[row["fault_rate"]] = row
    for rate, async_row in by_mode["async"].items():
        sync_row = by_mode["sync"][rate]
        # The async retry/fallback ladder must never do worse than the
        # un-retried sync path, and must absorb every injected fault.
        assert (async_row["durable_checkpoints"]
                >= sync_row["durable_checkpoints"])
        if rate > 0:
            assert async_row["retries"] + async_row["fallbacks"] > 0
            assert async_row["lost_checkpoints"] == 0


def test_fig_faults_table(save_figure):
    from repro.harness import figures

    fig = figures.fig_faults("quick")
    save_figure(fig)
    by_mode = {}
    for mode, rate, durable, lost, *_ in fig.rows:
        by_mode.setdefault(mode, {})[rate] = (durable, lost)
    for rate, (durable, lost) in by_mode["async"].items():
        if rate > 0:
            # Injected faults must not cost the async path a checkpoint.
            assert lost == 0
            assert durable >= by_mode["sync"][rate][0]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer ranks and fault rates (CI mode)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out directory does not exist: {out.parent}")
    payload = run_bench(smoke=args.smoke, out=out)
    return 0 if payload["deterministic"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
