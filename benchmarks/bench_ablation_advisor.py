"""Ablation — adaptive mode switching vs fixed sync / fixed async.

The paper motivates "a transparent and adaptive asynchronous I/O
interface to automatically enable asynchronous I/O when needed"
(§II-B).  On a workload whose compute phases shrink over time (crossing
the Fig. 1c boundary), a fixed choice is wrong in one regime; the
Fig. 2 feedback loop should land within a few percent of the better
fixed mode in *both* regimes combined.
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT64, AsyncVOL, H5Library, NativeVOL, slab_1d
from repro.harness.report import FigureData
from repro.model import (
    Advisor,
    AdaptiveVOL,
    ComputeTimeModel,
    IORateModel,
    MeasurementHistory,
    TransactOverheadModel,
)

MiB = 1 << 20
NPROCS = 8
ELEMS = 4 * MiB  # 32 MiB float64 per rank per epoch
SCHEDULE = [6.0] * 8 + [1e-4] * 24  # long-compute regime, then I/O-bound


def _program(lib, vol):
    def program(ctx):
        f = yield from lib.create(ctx, "/abl.h5", vol)
        for epoch, compute in enumerate(SCHEDULE):
            yield ctx.compute(compute)
            d = f.create_dataset(f"/e{epoch}/x", shape=(ELEMS * ctx.size,),
                                 dtype=FLOAT64)
            yield from d.write(slab_1d(ctx.rank, ELEMS), phase=epoch)
        yield from f.close()
        return ctx.now

    return program


def _run(policy: str) -> float:
    engine = Engine()
    cluster = Cluster(engine, make_testbed(nodes=2, ranks_per_node=4), 2)
    lib = H5Library(cluster)
    if policy == "sync":
        vol = NativeVOL()
    elif policy == "async":
        vol = AsyncVOL(init_time=0.0)
    else:
        advisor = Advisor(
            ComputeTimeModel(decay=0.7),
            IORateModel(MeasurementHistory(), mode="sync", min_samples=3),
            TransactOverheadModel.from_memcpy_spec(cluster.machine.node.memcpy),
        )
        vol = AdaptiveVOL(NativeVOL(), AsyncVOL(init_time=0.0), advisor,
                          nranks=NPROCS)
    job = MPIJob(cluster, NPROCS)
    return max(job.run(_program(lib, vol)))


def test_ablation_adaptive_mode_selection(benchmark, save_figure):
    def run_all():
        return {p: _run(p) for p in ("sync", "async", "adaptive")}

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-advisor",
        "Mixed-regime workload: fixed sync, fixed async, adaptive (Fig. 2)",
        columns=["policy", "app time s"],
    )
    for policy, t in times.items():
        fig.add_row(policy, t)
    save_figure(fig)

    best_fixed = min(times["sync"], times["async"])
    # the adaptive policy is competitive with the best fixed choice
    assert times["adaptive"] <= best_fixed * 1.05
