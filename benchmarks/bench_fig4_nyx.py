"""Fig. 4a/4b — Nyx plotfile bandwidth, strong scaling.

Paper shapes:

- Fig. 4a (large config, Summit): "the aggregate bandwidth of
  synchronous I/O decreases slightly as we increase the number of MPI
  ranks ... the opposite for the asynchronous I/O mode ... scales up
  linearly".
- Fig. 4b (small config, Cori): "the small data size of each request
  leads to poor synchronous aggregate write performance at all scales,
  and the asynchronous aggregate write bandwidth does not scale up
  linearly" — limited by the transactional overhead's per-copy setup.
"""

from repro.harness import figures


def test_fig4a_nyx_large_summit(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig4a, rounds=1, iterations=1)
    save_figure(fig)
    ranks = fig.column("ranks")
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    rank_ratio = ranks[-1] / ranks[0]
    # sweep sits in the saturated regime: sync gains are marginal while
    # ranks grow 4x (the paper sees flat-to-slightly-decreasing; our
    # GPU-copy amortization gives a mild residual rise — see
    # EXPERIMENTS.md fig4a notes)
    assert sync[-1] <= sync[0] * 1.45
    assert sync[-1] / sync[0] < 0.5 * rank_ratio
    # async grows with ranks and wins at scale
    assert async_[-1] > 1.5 * async_[0]
    assert async_[-1] > 2 * sync[-1]


def test_fig4b_nyx_small_cori(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig4b, rounds=1, iterations=1)
    save_figure(fig)
    ranks = fig.column("ranks")
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    rank_ratio = ranks[-1] / ranks[0]
    # sync poor at all scales: well below the 209 GB/s stripe ceiling
    # that large-request workloads (VPIC, Fig. 3b) do reach
    assert max(sync) < 0.8 * 209.0
    # async grows sub-linearly (transactional overhead dominated by the
    # per-copy setup at these small per-rank sizes)
    assert async_[-1] / async_[0] < 0.85 * rank_ratio
