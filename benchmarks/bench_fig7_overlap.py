"""Fig. 7 — Nyx on Cori: duration vs time steps per computation phase.

Paper shape: "increasing the check-pointing frequency ... will increase
the duration of the application because more I/O is performed.  With
asynchronous I/O, we see the impact of performing more I/O is less
pronounced than with synchronous I/O until the computation phase
becomes too short to overlap with the I/O phase."
"""

from repro.harness import figures


def test_fig7_overlap_nyx_cori(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig7, rounds=1, iterations=1)
    save_figure(fig)
    intervals = fig.column("steps/phase")
    sync = fig.column("sync s")
    async_ = fig.column("async s")
    est_sync = fig.column("est sync s")
    est_async = fig.column("est async s")
    assert intervals[0] == 1  # most frequent checkpointing first
    # frequent checkpointing stretches the sync duration...
    assert sync[0] > 1.2 * sync[-1]
    # ...while async stays much flatter
    async_stretch = async_[0] / async_[-1]
    sync_stretch = sync[0] / sync[-1]
    assert async_stretch < sync_stretch
    # async is never slower than sync by more than noise
    for s, a in zip(sync, async_):
        assert a <= s * 1.05
    # the Eq. 1/2 estimates track the measurements within 15%
    for m, e in zip(sync, est_sync):
        assert abs(m - e) / m < 0.15
    for m, e in zip(async_, est_async):
        assert abs(m - e) / m < 0.15
