"""Simulator fast-path performance regression harness.

Times the optimized flow-class allocator (:mod:`repro.sim.network`)
against the frozen per-flow reference (:mod:`repro.sim.network_ref`) on
the traffic shapes from :mod:`repro.sim.traffic`:

- ``identical_flows`` — N identical flows, the single-class best case;
- ``mixed_classes`` — K heterogeneous classes sharing a backend;
- ``fig3a`` — the VPIC-IO-shaped weak-scaling write phase at 1536 and
  4096 ranks, the shape every fig3–fig8 sweep is built from;
- ``class_churn`` — waves of short-lived flows with rotating
  (links, cap) keys: the allocator's slot install/free/recycle worst
  case.  Pure Python wins this regime (tiny arrays, many filling
  rounds), so its budget pins the cost of the tradeoff rather than a
  speedup — the fast path must not get *worse* at it;
- ``many_links`` — long paths striped across a wide link pool,
  stressing the class×link incidence and saturation propagation.

Every scenario also cross-checks that both allocators produce
**bit-identical** completion times and final rates — a perf number from
a diverged simulation would be meaningless.

Each scenario's speedup is gated against the stored floor in
``benchmarks/perf_budget.json``; a run below budget exits non-zero, so
CI fails on perf regressions, not just correctness ones.  Budgets are
set well under locally measured ratios to absorb shared-runner noise.

A sweep-engine scaling section runs the same declarative grid through
:func:`repro.harness.sweepengine.run_sweep` at one and at N workers,
asserts the merged artifacts are byte-identical, and records
points/sec per worker count.

A ``fleet_faults_off`` scenario proves the fault-tolerance hooks are
zero-cost when disabled: one fleet run with **no** injector against
the same fleet with a zero-fault injector *attached* (callbacks
registered, no events scheduled).  The two must produce byte-identical
metrics and per-job records, and the attached side must not be
measurably slower (same perf-budget gate as the allocator scenarios).
A ``cache_off`` scenario applies the same treatment to the staging
cache: one BD-CATS async run with an inert
:class:`~repro.cache.CacheSubsystem` attached against the bare run.

Results land in ``BENCH_sim.json`` at the repository root: wall seconds
per side, speedup, the :class:`repro.sim.engine.EngineStats` counters,
and the sweep scaling table.

Run standalone (full mode, best-of-3 timings)::

    PYTHONPATH=src python benchmarks/bench_perf_sim.py

or in CI smoke mode (small shapes, single timing, same JSON schema)::

    PYTHONPATH=src python benchmarks/bench_perf_sim.py --smoke

Also collectable via pytest (runs the smoke shapes and asserts the
bit-identity + perf-budget invariants)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_sim.py
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import time

from repro.sim import network, network_ref
from repro.sim.traffic import (
    class_churn,
    fig3a_phase,
    identical_flows,
    many_links,
    mixed_classes,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sim.json"
BUDGET_PATH = pathlib.Path(__file__).resolve().parent / "perf_budget.json"


def _scenarios(smoke: bool):
    """(name, builder-kwargs-per-module) pairs for the selected mode."""
    if smoke:
        return [
            ("identical_flows", identical_flows, dict(n=2000)),
            ("mixed_classes", mixed_classes,
             dict(n_classes=16, flows_per_class=8)),
            ("fig3a_384", fig3a_phase,
             dict(ranks=384, timesteps=1, datasets=2)),
            ("class_churn", class_churn,
             dict(waves=30, flows_per_wave=6)),
            ("many_links", many_links,
             dict(nflows=150, nlinks=32, path_len=5)),
        ]
    return [
        ("identical_flows", identical_flows, dict(n=20000)),
        ("mixed_classes", mixed_classes,
         dict(n_classes=64, flows_per_class=32)),
        ("fig3a_1536", fig3a_phase,
         dict(ranks=1536, timesteps=2, datasets=8)),
        ("fig3a_4096", fig3a_phase,
         dict(ranks=4096, timesteps=2, datasets=8)),
        ("class_churn", class_churn,
         dict(waves=150, flows_per_wave=8)),
        ("many_links", many_links,
         dict(nflows=600, nlinks=96, path_len=6)),
    ]


def _run_once(net_mod, builder, kwargs):
    """One timed simulation; returns (wall_s, trace, stats-dict)."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        engine, net, flows = builder(net_mod, **kwargs)
        engine.run()
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    trace = [(f.started_at, f.finished_at, f.rate) for f in flows]
    return wall, trace, engine.stats.snapshot()


def run_scenario(name, builder, kwargs, repeats=3):
    """Time fast vs reference; best-of-``repeats`` wall seconds each."""
    fast_wall = ref_wall = None
    fast_trace = ref_trace = None
    fast_stats = None
    for _ in range(repeats):
        wall, trace, stats = _run_once(network, builder, kwargs)
        if fast_wall is None or wall < fast_wall:
            fast_wall, fast_stats = wall, stats
        fast_trace = trace
        wall, trace, _ = _run_once(network_ref, builder, kwargs)
        if ref_wall is None or wall < ref_wall:
            ref_wall = wall
        ref_trace = trace
    return {
        "name": name,
        "params": kwargs,
        "fast_s": round(fast_wall, 4),
        "ref_s": round(ref_wall, 4),
        "speedup": round(ref_wall / fast_wall, 2),
        "identical": fast_trace == ref_trace,
        "events": fast_stats["events"],
        "fastpath_events": fast_stats["fastpath_events"],
        "rebalances": fast_stats["rebalances"],
        "rebalances_skipped": fast_stats["rebalances_skipped"],
        "allocator_rounds": fast_stats["allocator_rounds"],
    }


def load_budget(mode):
    """Per-scenario speedup floors for ``mode`` (``smoke``/``full``)."""
    budgets = json.loads(BUDGET_PATH.read_text())
    return budgets[mode]


def check_budget(payload):
    """Scenarios below their stored speedup floor; empty means pass."""
    budget = load_budget(payload["mode"])
    failures = []
    for row in payload["scenarios"]:
        floor = budget.get(row["name"])
        if floor is not None and row["speedup"] < floor:
            failures.append(
                f"{row['name']}: speedup {row['speedup']:.2f}x is below "
                f"the stored budget floor {floor:.2f}x"
            )
    return failures


def run_sweep_scaling(smoke=False):
    """Sweep-engine throughput at 1 vs N workers on one grid.

    The grid is the paper's (mode × scale × seed) variability sweep; in
    full mode it is 64 points, demonstrating the 4-worker merged
    artifact byte-identical to the 1-worker one at the acceptance
    scale.  Only the byte-identity is asserted — scaling efficiency
    depends on the host's core count and is recorded, not gated.
    """
    from repro.harness.sweepengine import SweepSpec, run_sweep

    if smoke:
        spec = SweepSpec(
            kind="workload", workload="vpic", machines=("testbed",),
            modes=("sync", "async"), scales=(4.0,), seeds=(0, 1, 2, 3),
        )
        worker_counts = (1, 2)
    else:
        spec = SweepSpec(
            kind="workload", workload="vpic", machines=("testbed",),
            modes=("sync", "async"), scales=(8.0, 16.0),
            seeds=tuple(range(16)),
        )
        worker_counts = (1, 4)
    outcomes = [run_sweep(spec, workers=w) for w in worker_counts]
    baseline = outcomes[0].to_json()
    identical = all(o.to_json() == baseline for o in outcomes[1:])
    return {
        "grid": spec.describe(),
        "grid_points": len(outcomes[0].merged["points"]),
        "identical_across_workers": identical,
        "workers": [
            {
                "workers": o.workers,
                "elapsed_s": round(o.elapsed, 3),
                "points_per_sec": round(o.points_per_sec, 2),
            }
            for o in outcomes
        ],
    }


def run_faults_off_overhead(smoke=False, repeats=1):
    """Fault hooks must cost nothing when no faults are configured.

    Times :func:`~repro.harness.sched.run_fleet` bare (``ref``) vs with
    an all-zero :class:`~repro.faults.FaultConfig` attached (``fast`` —
    the ledger callbacks are registered, the degraded-admission check
    runs, but no fault events exist).  The metrics must be
    byte-identical after dropping the injector's own bookkeeping
    fields, and the attached side is gated against the stored budget
    floor like any other scenario.
    """
    import json as _json

    from repro.faults import FaultConfig
    from repro.harness.sched import run_fleet, sched_testbed
    from repro.sched import StreamConfig

    machine = sched_testbed()
    cfg = StreamConfig(n_jobs=6 if smoke else 12, seed=7,
                       mean_interarrival=4.0)

    def run_side(fault_config):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            metrics = run_fleet(machine, cfg, "fifo",
                                fault_config=fault_config)
            wall = time.perf_counter() - t0
        finally:
            gc.enable()
        payload = metrics.to_dict()
        # The only permitted difference: the injector's own bookkeeping.
        payload.pop("fault_signature")
        return wall, _json.dumps(payload, sort_keys=True)

    run_side(None)  # warmup: imports and allocator caches off the clock
    off_wall = bare_wall = None
    off_json = bare_json = None
    for _ in range(repeats):
        wall, off_json = run_side(FaultConfig())
        if off_wall is None or wall < off_wall:
            off_wall = wall
        wall, bare_json = run_side(None)
        if bare_wall is None or wall < bare_wall:
            bare_wall = wall
    return {
        "name": "fleet_faults_off",
        "params": {"n_jobs": cfg.n_jobs, "seed": cfg.seed},
        "fast_s": round(off_wall, 4),
        "ref_s": round(bare_wall, 4),
        "speedup": round(bare_wall / off_wall, 2),
        "identical": off_json == bare_json,
    }


def run_cache_off_overhead(smoke=False, repeats=1):
    """The staging-cache hooks must cost nothing when the cache is off.

    Times one BD-CATS async run bare (``ref`` — no subsystem built)
    against the same run with ``cache_mode="off"`` (``fast`` — an inert
    :class:`~repro.cache.CacheSubsystem` is constructed and every VOL /
    drain hook consults it, but all behavior flags are down).  The
    experiment metrics must be byte-identical after dropping the
    subsystem's own ``cache_stats`` snapshot, and the inert side is
    gated against the stored budget floor.
    """
    import json as _json
    from dataclasses import asdict

    from repro.harness import run_experiment
    from repro.platform import testbed as make_testbed
    from repro.workloads import (
        BDCATSConfig, bdcats_program, prepopulate_vpic_file,
    )

    cfg = BDCATSConfig(
        particles_per_rank=(1 << 18) if smoke else (1 << 20),
        n_properties=4, steps=3 if smoke else 5, compute_seconds=10.0,
    )
    nranks = 16 if smoke else 32
    machine = make_testbed(nodes=nranks // 4, ranks_per_node=4)
    # One run is a few milliseconds; a single timing would gate on
    # scheduler noise, so take best-of-3 even in smoke mode.
    repeats = max(repeats, 3)

    def run_side(cache_mode):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = run_experiment(
                machine, "bdcats", bdcats_program, cfg, mode="async",
                nranks=nranks, op="read",
                prepopulate=lambda lib, n: prepopulate_vpic_file(lib, cfg, n),
                cache_mode=cache_mode,
            )
            wall = time.perf_counter() - t0
        finally:
            gc.enable()
        payload = asdict(result)
        # The only permitted difference: the subsystem's own snapshot.
        payload.pop("cache_stats")
        return wall, _json.dumps(payload, sort_keys=True)

    run_side(None)  # warmup: imports and allocator caches off the clock
    off_wall = bare_wall = None
    off_json = bare_json = None
    for _ in range(repeats):
        wall, off_json = run_side("off")
        if off_wall is None or wall < off_wall:
            off_wall = wall
        wall, bare_json = run_side(None)
        if bare_wall is None or wall < bare_wall:
            bare_wall = wall
    return {
        "name": "cache_off",
        "params": {"nranks": nranks,
                   "particles_per_rank": cfg.particles_per_rank},
        "fast_s": round(off_wall, 4),
        "ref_s": round(bare_wall, 4),
        "speedup": round(bare_wall / off_wall, 2),
        "identical": off_json == bare_json,
    }


def run_bench(smoke=False, repeats=None, out=DEFAULT_OUT):
    if repeats is None:
        repeats = 1 if smoke else 3
    results = []
    for name, builder, kwargs in _scenarios(smoke):
        row = run_scenario(name, builder, kwargs, repeats=repeats)
        results.append(row)
        print(
            f"{row['name']:>16}: fast {row['fast_s']:.3f}s "
            f"ref {row['ref_s']:.3f}s  {row['speedup']:.2f}x  "
            f"identical={row['identical']}  events={row['events']} "
            f"rebalances={row['rebalances']}"
        )
    for zero_cost in (run_faults_off_overhead, run_cache_off_overhead):
        row = zero_cost(smoke=smoke, repeats=repeats)
        results.append(row)
        print(
            f"{row['name']:>16}: with-hooks {row['fast_s']:.3f}s "
            f"bare {row['ref_s']:.3f}s  {row['speedup']:.2f}x  "
            f"identical={row['identical']}"
        )
    sweep = run_sweep_scaling(smoke=smoke)
    rates = ", ".join(
        f"{w['workers']}w {w['points_per_sec']:.1f} pt/s"
        for w in sweep["workers"]
    )
    print(
        f"{'sweep_scaling':>16}: {sweep['grid_points']} points  {rates}  "
        f"identical={sweep['identical_across_workers']}"
    )
    payload = {
        "mode": "smoke" if smoke else "full",
        "scenarios": results,
        "sweep_scaling": sweep,
    }
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


# ----------------------------------------------------------------------
# pytest entry points (smoke shapes: cheap enough for CI)
# ----------------------------------------------------------------------
def test_fastpath_bit_identical_and_within_budget(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_sim.json")
    for row in payload["scenarios"]:
        assert row["identical"], f"{row['name']}: traces diverged"
    assert payload["sweep_scaling"]["identical_across_workers"], (
        "sweep merged artifact differs across worker counts"
    )
    failures = check_budget(payload)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small shapes, single timing (CI mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per side (default: 3, or 1 with --smoke)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--no-budget", action="store_true",
        help="skip the perf-budget gate (timing-only exploration runs)",
    )
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    out = pathlib.Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out directory does not exist: {out.parent}")
    payload = run_bench(smoke=args.smoke, repeats=args.repeats, out=out)
    status = 0
    if not all(row["identical"] for row in payload["scenarios"]):
        print("FAIL: fast/reference traces diverged")
        status = 1
    if not payload["sweep_scaling"]["identical_across_workers"]:
        print("FAIL: sweep merged artifact differs across worker counts")
        status = 1
    if not args.no_budget:
        for line in check_budget(payload):
            print(f"FAIL: {line}")
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
