"""Simulator fast-path performance regression harness.

Times the optimized flow-class allocator (:mod:`repro.sim.network`)
against the frozen per-flow reference (:mod:`repro.sim.network_ref`) on
the traffic shapes from :mod:`repro.sim.traffic`:

- ``identical_flows`` — N identical flows, the single-class best case;
- ``mixed_classes`` — K heterogeneous classes sharing a backend;
- ``fig3a`` — the VPIC-IO-shaped weak-scaling write phase at 1536 and
  4096 ranks, the shape every fig3–fig8 sweep is built from.

Every scenario also cross-checks that both allocators produce
**bit-identical** completion times and final rates — a perf number from
a diverged simulation would be meaningless.

Results land in ``BENCH_sim.json`` at the repository root: wall seconds
per side, speedup, and the :class:`repro.sim.engine.EngineStats`
counters (events, rebalances, skipped rebalances, allocator rounds).

Run standalone (full mode, best-of-3 timings)::

    PYTHONPATH=src python benchmarks/bench_perf_sim.py

or in CI smoke mode (small shapes, single timing, same JSON schema)::

    PYTHONPATH=src python benchmarks/bench_perf_sim.py --smoke

Also collectable via pytest (runs the smoke shapes and asserts the
bit-identity + speedup invariants)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_sim.py
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import time

from repro.sim import network, network_ref
from repro.sim.traffic import fig3a_phase, identical_flows, mixed_classes

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sim.json"


def _scenarios(smoke: bool):
    """(name, builder-kwargs-per-module) pairs for the selected mode."""
    if smoke:
        return [
            ("identical_flows", identical_flows, dict(n=2000)),
            ("mixed_classes", mixed_classes,
             dict(n_classes=16, flows_per_class=8)),
            ("fig3a_384", fig3a_phase,
             dict(ranks=384, timesteps=1, datasets=2)),
        ]
    return [
        ("identical_flows", identical_flows, dict(n=20000)),
        ("mixed_classes", mixed_classes,
         dict(n_classes=64, flows_per_class=32)),
        ("fig3a_1536", fig3a_phase,
         dict(ranks=1536, timesteps=2, datasets=8)),
        ("fig3a_4096", fig3a_phase,
         dict(ranks=4096, timesteps=2, datasets=8)),
    ]


def _run_once(net_mod, builder, kwargs):
    """One timed simulation; returns (wall_s, trace, stats-dict)."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        engine, net, flows = builder(net_mod, **kwargs)
        engine.run()
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    trace = [(f.started_at, f.finished_at, f.rate) for f in flows]
    return wall, trace, engine.stats.snapshot()


def run_scenario(name, builder, kwargs, repeats=3):
    """Time fast vs reference; best-of-``repeats`` wall seconds each."""
    fast_wall = ref_wall = None
    fast_trace = ref_trace = None
    fast_stats = None
    for _ in range(repeats):
        wall, trace, stats = _run_once(network, builder, kwargs)
        if fast_wall is None or wall < fast_wall:
            fast_wall, fast_stats = wall, stats
        fast_trace = trace
        wall, trace, _ = _run_once(network_ref, builder, kwargs)
        if ref_wall is None or wall < ref_wall:
            ref_wall = wall
        ref_trace = trace
    return {
        "name": name,
        "params": kwargs,
        "fast_s": round(fast_wall, 4),
        "ref_s": round(ref_wall, 4),
        "speedup": round(ref_wall / fast_wall, 2),
        "identical": fast_trace == ref_trace,
        "events": fast_stats["events"],
        "fastpath_events": fast_stats["fastpath_events"],
        "rebalances": fast_stats["rebalances"],
        "rebalances_skipped": fast_stats["rebalances_skipped"],
        "allocator_rounds": fast_stats["allocator_rounds"],
    }


def run_bench(smoke=False, repeats=None, out=DEFAULT_OUT):
    if repeats is None:
        repeats = 1 if smoke else 3
    results = []
    for name, builder, kwargs in _scenarios(smoke):
        row = run_scenario(name, builder, kwargs, repeats=repeats)
        results.append(row)
        print(
            f"{row['name']:>16}: fast {row['fast_s']:.3f}s "
            f"ref {row['ref_s']:.3f}s  {row['speedup']:.2f}x  "
            f"identical={row['identical']}  events={row['events']} "
            f"rebalances={row['rebalances']}"
        )
    payload = {"mode": "smoke" if smoke else "full", "scenarios": results}
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


# ----------------------------------------------------------------------
# pytest entry points (smoke shapes: cheap enough for CI)
# ----------------------------------------------------------------------
def test_fastpath_bit_identical_and_fast(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_sim.json")
    for row in payload["scenarios"]:
        assert row["identical"], f"{row['name']}: traces diverged"
        # Smoke shapes are small, so only sanity-check the direction;
        # the full run is where the >=5x fig3a_4096 target is measured.
        assert row["speedup"] > 1.0, f"{row['name']}: fast path slower"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small shapes, single timing (CI mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per side (default: 3, or 1 with --smoke)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    out = pathlib.Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out directory does not exist: {out.parent}")
    payload = run_bench(smoke=args.smoke, repeats=args.repeats, out=out)
    if not all(row["identical"] for row in payload["scenarios"]):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
