"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's figures and persists the
table under ``benchmarks/results/`` so the regenerated data survives the
pytest run (stdout is captured).  Figures also print, so ``pytest -s``
shows them live.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_figure():
    """Persist a FigureData table to benchmarks/results/<name>.txt."""

    def _save(fig):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{fig.name}.txt"
        text = fig.to_text()
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


def pytest_terminal_summary(terminalreporter):
    if RESULTS_DIR.exists():
        files = sorted(RESULTS_DIR.glob("*.txt"))
        if files:
            terminalreporter.write_line("")
            terminalreporter.write_line(
                f"regenerated figure tables in {RESULTS_DIR}:"
            )
            for f in files:
                terminalreporter.write_line(f"  {f.name}")
