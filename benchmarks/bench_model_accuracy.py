"""§V-C model accuracy: r² of the Eq. 4 fits and advisor quality.

Paper claims asserted:

- "we have observed a strong linear correlation (r² values above 80%
  for synchronous I/O and 90% for asynchronous I/O)";
- linear-log regression captures the saturating sync write scaling;
- the Advisor's predicted epoch times match the simulated epochs.
"""

import pytest

from repro.platform import summit
from repro.analysis import fit_sweep_points
from repro.harness import best_by_config, scale_sweep
from repro.harness.report import FigureData
from repro.model import (
    EpochCosts,
    async_epoch_time,
    sync_epoch_time,
)
from repro.workloads import VPICConfig, vpic_program

SCALES = [96, 192, 384, 768, 1536]


def _sweep():
    cfg = VPICConfig(steps=3)
    results = scale_sweep(
        summit(), "vpic-io", vpic_program, lambda n: cfg,
        scales=SCALES, reps=2,
    )
    return cfg, best_by_config(results)


def test_model_accuracy(benchmark, save_figure):
    cfg, points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    fits = {m: fit_sweep_points(points, m) for m in ("sync", "async")}

    fig = FigureData(
        "model-acc", "Eq. 4 fit accuracy on the VPIC-IO sweep (Summit)",
        columns=["mode", "transform", "r2", "max rel err %"],
    )
    for mode, fit in fits.items():
        observed = {p.nranks: p.peak_bandwidth for p in points
                    if p.mode == mode}
        rel_errs = [
            abs(fit.estimates[n] - observed[n]) / observed[n]
            for n in observed
        ]
        fig.add_row(mode, fit.transform, fit.r2, 100 * max(rel_errs))
    save_figure(fig)

    # Paper's r² bands
    assert fits["sync"].r2 > 0.8
    assert fits["async"].r2 > 0.9
    assert fits["sync"].transform == "linear-log"
    assert fits["async"].transform == "linear"

    # Epoch-model prediction vs simulated epoch structure: for the
    # largest scale, Eq. 2a/2b with the fitted rates must predict the
    # sync-vs-async epoch ordering correctly.
    nranks = SCALES[-1]
    phase_bytes = cfg.bytes_per_rank_per_step() * nranks
    t_io = phase_bytes / fits["sync"].estimates[nranks]
    t_transact = phase_bytes / fits["async"].estimates[nranks]
    costs = EpochCosts(t_comp=cfg.compute_seconds, t_io=t_io,
                       t_transact=t_transact)
    assert async_epoch_time(costs) < sync_epoch_time(costs)
