"""Fig. 8 — VPIC-IO run-to-run variability on Summit.

Paper shape: "a benefit of asynchronous I/O is to hide the system-level
variability, leading to consistent aggregate I/O bandwidth independent
of the full system-level contention."
"""

from repro.harness import figures


def test_fig8_variability_summit(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig8, rounds=1, iterations=1)
    save_figure(fig)
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    availability = fig.column("availability")
    # days genuinely differ in contention
    assert max(availability) > min(availability)
    # sync bandwidth varies run to run; async is essentially flat
    assert fig.meta["sync CV"] > 5 * fig.meta["async CV"]
    assert fig.meta["sync max/min"] > 1.2
    assert fig.meta["async max/min"] < 1.02
    # async beats sync on every day at this scale
    for s, a in zip(sync, async_):
        assert a > s
