"""Ablation — MPI-IO collective buffering vs independent sync writes.

The paper's related work (Behzad et al. and the I/O-tuning literature,
§II-C) optimizes knobs like "number of MPI-IO aggregators".  This
ablation shows why those knobs matter in our model too: Castro's
strong-scaled writes shrink until per-request costs dominate (Fig. 4c's
collapse); two-phase collective buffering with one aggregator per node
rebuilds large requests and recovers most of the lost bandwidth —
context for why the *async* approach (which sidesteps the problem
entirely) is attractive.
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, summit
from repro.hdf5 import H5Library, NativeVOL
from repro.harness.report import FigureData
from repro.workloads import CastroConfig, castro_program

NRANKS = 768  # 128 nodes: deep in the Fig. 4c collapse


def _run(collective: bool, naggregators: int = 1) -> float:
    engine = Engine()
    cluster = Cluster(engine, summit(), NRANKS // 6)
    lib = H5Library(cluster)
    vol = NativeVOL(collective=collective, naggregators=naggregators)
    cfg = CastroConfig(n_plotfiles=2)
    MPIJob(cluster, NRANKS).run(castro_program(lib, vol, cfg))
    return vol.log.peak_bandwidth(op="write")


def test_ablation_collective_buffering(benchmark, save_figure):
    nnodes = NRANKS // 6

    def run_all():
        return {
            "independent": _run(False),
            "collective x16": _run(True, naggregators=16),
            "collective x128": _run(True, naggregators=nnodes),
        }

    peaks = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-collective",
        f"Castro sync write on Summit ({NRANKS} ranks): independent vs "
        f"two-phase collective buffering",
        columns=["strategy", "peak GB/s"],
    )
    for strategy, peak in peaks.items():
        fig.add_row(strategy, peak / 1e9)
    save_figure(fig)

    # aggregation recovers bandwidth lost to tiny per-rank requests
    assert peaks["collective x128"] > 1.5 * peaks["independent"]
    # enough aggregators beat too few (parallelism still needed)
    assert peaks["collective x128"] > peaks["collective x16"]
