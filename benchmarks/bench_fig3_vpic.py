"""Fig. 3a/3b — VPIC-IO write bandwidth, weak scaling (Summit & Cori).

Paper shapes asserted:

- synchronous aggregate bandwidth saturates as ranks grow (sub-linear
  past the file-system ceiling; Summit saturates around 768 ranks);
- asynchronous aggregate bandwidth scales linearly with ranks (constant
  per-rank staging-copy bandwidth);
- the Eq. 4 fits reach the paper's r² bands (sync > 0.8, async > 0.9)
  with the sync series preferring the linear-log transform.
"""

from repro.harness import figures


def _assert_fig3_shapes(fig):
    ranks = fig.column("ranks")
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    # async linear: last/first ratio tracks the rank ratio
    rank_ratio = ranks[-1] / ranks[0]
    assert async_[-1] / async_[0] > 0.9 * rank_ratio
    # sync saturates: clearly sub-linear over the sweep
    assert sync[-1] / sync[0] < 0.75 * rank_ratio
    # async >> sync at the largest scale
    assert async_[-1] > 2 * sync[-1]
    # model quality bands from §V-C
    assert fig.meta["r2 sync"] > 0.8
    assert fig.meta["r2 async"] > 0.9
    assert fig.meta["fit async"] == "linear"


def test_fig3a_vpic_summit(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig3a, rounds=1, iterations=1)
    save_figure(fig)
    _assert_fig3_shapes(fig)
    assert fig.meta["fit sync"] == "linear-log"
    # Summit sync stays below the 2.5 TB/s GPFS ceiling
    assert max(fig.column("sync GB/s")) <= 2500.0


def test_fig3b_vpic_cori(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig3b, rounds=1, iterations=1)
    save_figure(fig)
    _assert_fig3_shapes(fig)
    # Cori sync is bounded by the 72-OST stripe ceiling (~209 GB/s)
    assert max(fig.column("sync GB/s")) <= 72 * 2.9 * 1.02
