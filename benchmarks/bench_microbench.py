"""§III-B1 micro-benchmarks: memcpy and GPU-copy bandwidth curves.

Paper observations asserted:

- "We found the memcpy bandwidth to be constant after 32MB";
- "the memory copy cost is amortized for data sizes greater than 10MB,
  and ... with pinned host memory the peak bandwidth is close to the
  theoretical maximum" (NVLink 2.0: 50 GB/s).
"""

from repro.harness import figures

Mi = 1 << 20


def test_microbench_memcpy(benchmark, save_figure):
    fig = benchmark.pedantic(figures.microbench_memcpy, rounds=1, iterations=1)
    save_figure(fig)
    sizes = fig.column("size MiB")
    for machine_col in ("summit GB/s", "cori GB/s"):
        bw = dict(zip(sizes, fig.column(machine_col)))
        # constant after 32 MiB
        assert bw[512.0] / bw[32.0] < 1.06
        # small copies clearly penalized
        assert bw[1.0] < 0.6 * bw[512.0]


def test_microbench_gpu(benchmark, save_figure):
    fig = benchmark.pedantic(figures.microbench_gpu, rounds=1, iterations=1)
    save_figure(fig)
    sizes = fig.column("size MiB")
    pinned = dict(zip(sizes, fig.column("pinned GB/s")))
    pageable = dict(zip(sizes, fig.column("pageable GB/s")))
    # amortized above ~10 MiB
    assert pinned[512.0] / pinned[16.0] < 1.1
    # pinned close to the 50 GB/s NVLink theoretical max
    assert pinned[512.0] > 45.0
    # pageable clearly slower at every size
    for s in sizes:
        assert pageable[s] < pinned[s]
