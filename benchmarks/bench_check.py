"""Static-analyzer driver benchmark: cold vs warm vs ``--diff``.

Copies the analyzer's slice of the repository into a scratch tree and
runs :func:`repro.check.driver.check_paths` (the engine behind
``repro check --flow --inter``) four ways:

- **cold, 1 worker** and **cold, 4 workers** — empty caches, full
  summary computation, fanned-out lint;
- **warm** — unchanged tree, which must short-circuit on the tree key
  without parsing a single file;
- **diff** — one helper file touched, which must re-analyze only that
  file plus whatever the reverse call graph invalidates.

Gates:

- zero findings (the repo-wide clean gate, same as CI);
- every run's findings byte-identical (worker count and cache state
  must not change output);
- warm speedup (cold / warm wall time) at or above the ``check_full``
  floor in ``benchmarks/perf_budget.json``.

Results land in ``BENCH_check.json`` at the repository root.

Run standalone (full tree)::

    PYTHONPATH=src python benchmarks/bench_check.py

or in CI smoke mode (the analyzer's own packages only, same schema)::

    PYTHONPATH=src python benchmarks/bench_check.py --smoke

Also collectable via pytest (runs the smoke shape and asserts the
gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_check.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_check.json"
BUDGET_PATH = pathlib.Path(__file__).resolve().parent / "perf_budget.json"

#: Copied into the scratch tree.  Smoke keeps the bench inside the
#: analyzer's own packages; full is the whole repo-wide gate.
SMOKE_GLOBS = (
    "src/repro/check/**/*.py",
    "tests/test_check*.py",
)
FULL_GLOBS = (
    "src/**/*.py",
    "tests/**/*.py",
)
#: Touched for the ``--diff`` leg (must exist in both shapes).
TOUCH_FILE = "src/repro/check/callgraph.py"


def _materialize(globs, scratch: pathlib.Path) -> int:
    copied = 0
    for pattern in globs:
        for src in sorted(REPO_ROOT.glob(pattern)):
            rel = src.relative_to(REPO_ROOT)
            dst = scratch / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(src, dst)
            copied += 1
    return copied


def _wire(findings) -> str:
    return json.dumps([(f.rule_id, f.path, f.line, f.col, f.message)
                       for f in findings], sort_keys=True)


def _timed(paths, **kwargs):
    from repro.check.driver import check_paths

    start = time.perf_counter()
    result = check_paths(paths, **kwargs)
    return time.perf_counter() - start, result


def load_floor(mode: str) -> float:
    budgets = json.loads(BUDGET_PATH.read_text())
    return budgets[mode]["check_full"]


def run_bench(smoke=False, out=DEFAULT_OUT):
    mode = "smoke" if smoke else "full"
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-check-"))
    prev_cwd = os.getcwd()
    try:
        n_files = _materialize(SMOKE_GLOBS if smoke else FULL_GLOBS,
                               scratch)
        os.chdir(scratch)  # relative paths -> CLI-identical module names
        paths = ["src", "tests"]

        cold_1w_s, cold_1w = _timed(paths, workers=1, cache_dir=".c1")
        cold_4w_s, cold_4w = _timed(paths, workers=4, cache_dir=".c4")
        warm_s, warm = _timed(paths, workers=4, cache_dir=".c4")

        touched = scratch / TOUCH_FILE
        touched.write_text(touched.read_text(encoding="utf-8")
                           + "\n# bench-check diff probe\n",
                           encoding="utf-8")
        diff_s, diff = _timed(paths, workers=4, cache_dir=".c4")
    finally:
        os.chdir(prev_cwd)
        shutil.rmtree(scratch, ignore_errors=True)

    warm_speedup = cold_4w_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "mode": mode,
        "files": n_files,
        "cold_1w_s": round(cold_1w_s, 4),
        "cold_4w_s": round(cold_4w_s, 4),
        "warm_s": round(warm_s, 4),
        "diff_s": round(diff_s, 4),
        "warm_speedup": round(warm_speedup, 2),
        "warm_speedup_floor": load_floor(mode),
        "warm_tree_hit": warm.tree_hit,
        "diff_reanalyzed": len(diff.analyzed),
        "findings": len(cold_4w.findings),
        "identical": {
            "cold_1w_vs_cold_4w":
                _wire(cold_1w.findings) == _wire(cold_4w.findings),
            "cold_vs_warm":
                _wire(cold_4w.findings) == _wire(warm.findings),
            "cold_vs_diff":
                _wire(cold_4w.findings) == _wire(diff.findings),
        },
    }
    print(f"check bench ({mode}, {n_files} files): "
          f"cold 1w {cold_1w_s:.2f}s  cold 4w {cold_4w_s:.2f}s  "
          f"warm {warm_s:.3f}s  diff {diff_s:.2f}s")
    print(f"warm speedup {warm_speedup:.1f}x "
          f"(floor {payload['warm_speedup_floor']:.1f}x), "
          f"diff re-analyzed {len(diff.analyzed)} file(s)")
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


def check_gate(payload):
    """Human-readable gate failures; empty means pass."""
    failures = []
    if payload["findings"] != 0:
        failures.append(
            f"repo-wide inter tier reported {payload['findings']} "
            f"finding(s); the gate requires zero")
    for leg, same in payload["identical"].items():
        if not same:
            failures.append(f"output differs across {leg}")
    if not payload["warm_tree_hit"]:
        failures.append("warm rerun missed the whole-tree cache key")
    if payload["warm_speedup"] < payload["warm_speedup_floor"]:
        failures.append(
            f"warm speedup {payload['warm_speedup']:.1f}x is below the "
            f"{payload['warm_speedup_floor']:.1f}x floor "
            f"(cold {payload['cold_4w_s']:.2f}s, "
            f"warm {payload['warm_s']:.3f}s)")
    if payload["diff_reanalyzed"] >= payload["files"]:
        failures.append(
            f"diff leg re-analyzed every file "
            f"({payload['diff_reanalyzed']}/{payload['files']}): "
            f"invalidation is not incremental")
    return failures


# ----------------------------------------------------------------------
# pytest entry point (smoke shape: cheap enough for CI)
# ----------------------------------------------------------------------
def test_incremental_driver_budget(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_check.json")
    failures = check_gate(payload)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="analyzer packages only (CI mode), same JSON schema",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke, out=args.out)
    failures = check_gate(payload)
    for line in failures:
        print(f"GATE FAIL: {line}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
