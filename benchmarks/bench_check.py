"""Static-analyzer driver benchmark: cold vs warm vs ``--diff``.

Copies the analyzer's slice of the repository into a scratch tree and
runs :func:`repro.check.driver.check_paths` (the engine behind
``repro check --flow --inter [--concurrency]``) as two rows:

- **check_full** — the flow + inter tiers (``--flow --inter``);
- **check_concurrency** — the same plus the whole-project concurrency
  tier (``--concurrency``), which adds the lock-set dataflow and the
  acquisition-order/wait-trigger index on top of the summary pass.

Each row measures four legs:

- **cold, 1 worker** and **cold, 4 workers** — empty caches, full
  summary computation, fanned-out lint;
- **warm** — unchanged tree, which must short-circuit on the tree key
  without parsing a single file;
- **diff** — one helper file touched, which must re-analyze only that
  file plus whatever the reverse call graph invalidates.

Gates (per row):

- zero findings (the repo-wide clean gate, same as CI);
- every leg's findings byte-identical (worker count and cache state
  must not change output);
- warm speedup (cold / warm wall time) at or above that row's floor in
  ``benchmarks/perf_budget.json`` — for ``check_concurrency`` this is
  the budget gate on the tier's warm-cache overhead: a slow warm rerun
  (i.e. the conc index failing to ride the tree key) sinks the ratio.

Results land in ``BENCH_check.json`` at the repository root.

Run standalone (full tree)::

    PYTHONPATH=src python benchmarks/bench_check.py

or in CI smoke mode (the analyzer's own packages only, same schema)::

    PYTHONPATH=src python benchmarks/bench_check.py --smoke

Also collectable via pytest (runs the smoke shape and asserts the
gates)::

    PYTHONPATH=src python -m pytest benchmarks/bench_check.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_check.json"
BUDGET_PATH = pathlib.Path(__file__).resolve().parent / "perf_budget.json"

#: Copied into the scratch tree.  Smoke keeps the bench inside the
#: analyzer's own packages; full is the whole repo-wide gate.
SMOKE_GLOBS = (
    "src/repro/check/**/*.py",
    "tests/test_check*.py",
)
FULL_GLOBS = (
    "src/**/*.py",
    "tests/**/*.py",
)
#: Touched for the ``--diff`` leg (must exist in both shapes).
TOUCH_FILE = "src/repro/check/callgraph.py"

#: Benchmark rows: budget key -> extra check_paths() kwargs.
ROWS = (
    ("check_full", {}),
    ("check_concurrency", {"concurrency": True}),
)


def _materialize(globs, scratch: pathlib.Path) -> int:
    copied = 0
    for pattern in globs:
        for src in sorted(REPO_ROOT.glob(pattern)):
            rel = src.relative_to(REPO_ROOT)
            dst = scratch / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(src, dst)
            copied += 1
    return copied


def _wire(findings) -> str:
    return json.dumps([(f.rule_id, f.path, f.line, f.col, f.message)
                       for f in findings], sort_keys=True)


def _timed(paths, **kwargs):
    from repro.check.driver import check_paths

    start = time.perf_counter()
    result = check_paths(paths, **kwargs)
    return time.perf_counter() - start, result


def load_floor(mode: str, row: str) -> float:
    budgets = json.loads(BUDGET_PATH.read_text())
    return budgets[mode][row]


def _run_row(paths, row: str, mode: str, extra) -> dict:
    """Cold/warm legs for one row (the diff leg is added later)."""
    cold_1w_s, cold_1w = _timed(paths, workers=1,
                                cache_dir=f".{row}.c1", **extra)
    cold_4w_s, cold_4w = _timed(paths, workers=4,
                                cache_dir=f".{row}.c4", **extra)
    warm_s, warm = _timed(paths, workers=4,
                          cache_dir=f".{row}.c4", **extra)
    warm_speedup = cold_4w_s / warm_s if warm_s > 0 else float("inf")
    return {
        "cold_1w_s": round(cold_1w_s, 4),
        "cold_4w_s": round(cold_4w_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(warm_speedup, 2),
        "warm_speedup_floor": load_floor(mode, row),
        "warm_tree_hit": warm.tree_hit,
        "findings": len(cold_4w.findings),
        "identical": {
            "cold_1w_vs_cold_4w":
                _wire(cold_1w.findings) == _wire(cold_4w.findings),
            "cold_vs_warm":
                _wire(cold_4w.findings) == _wire(warm.findings),
        },
        "_cold_wire": _wire(cold_4w.findings),
    }


def run_bench(smoke=False, out=DEFAULT_OUT):
    mode = "smoke" if smoke else "full"
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-check-"))
    prev_cwd = os.getcwd()
    try:
        n_files = _materialize(SMOKE_GLOBS if smoke else FULL_GLOBS,
                               scratch)
        os.chdir(scratch)  # relative paths -> CLI-identical module names
        paths = ["src", "tests"]

        rows = {row: _run_row(paths, row, mode, extra)
                for row, extra in ROWS}

        # One shared touch serves every row's diff leg: the warm caches
        # above were built against the pristine tree.
        touched = scratch / TOUCH_FILE
        touched.write_text(touched.read_text(encoding="utf-8")
                           + "\n# bench-check diff probe\n",
                           encoding="utf-8")
        for row, extra in ROWS:
            diff_s, diff = _timed(paths, workers=4,
                                  cache_dir=f".{row}.c4", **extra)
            rows[row]["diff_s"] = round(diff_s, 4)
            rows[row]["diff_reanalyzed"] = len(diff.analyzed)
            rows[row]["identical"]["cold_vs_diff"] = (
                rows[row].pop("_cold_wire") == _wire(diff.findings))
    finally:
        os.chdir(prev_cwd)
        shutil.rmtree(scratch, ignore_errors=True)

    payload = {"mode": mode, "files": n_files, "rows": rows}
    for row, stats in rows.items():
        print(f"check bench [{row}] ({mode}, {n_files} files): "
              f"cold 1w {stats['cold_1w_s']:.2f}s  "
              f"cold 4w {stats['cold_4w_s']:.2f}s  "
              f"warm {stats['warm_s']:.3f}s  diff {stats['diff_s']:.2f}s")
        print(f"  warm speedup {stats['warm_speedup']:.1f}x "
              f"(floor {stats['warm_speedup_floor']:.1f}x), "
              f"diff re-analyzed {stats['diff_reanalyzed']} file(s)")
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


def check_gate(payload):
    """Human-readable gate failures; empty means pass."""
    failures = []
    for row, stats in payload["rows"].items():
        if stats["findings"] != 0:
            failures.append(
                f"[{row}] reported {stats['findings']} finding(s); "
                f"the repo-wide gate requires zero")
        for leg, same in stats["identical"].items():
            if not same:
                failures.append(f"[{row}] output differs across {leg}")
        if not stats["warm_tree_hit"]:
            failures.append(
                f"[{row}] warm rerun missed the whole-tree cache key")
        if stats["warm_speedup"] < stats["warm_speedup_floor"]:
            failures.append(
                f"[{row}] warm speedup {stats['warm_speedup']:.1f}x is "
                f"below the {stats['warm_speedup_floor']:.1f}x floor "
                f"(cold {stats['cold_4w_s']:.2f}s, "
                f"warm {stats['warm_s']:.3f}s)")
        if stats["diff_reanalyzed"] >= payload["files"]:
            failures.append(
                f"[{row}] diff leg re-analyzed every file "
                f"({stats['diff_reanalyzed']}/{payload['files']}): "
                f"invalidation is not incremental")
    return failures


# ----------------------------------------------------------------------
# pytest entry point (smoke shape: cheap enough for CI)
# ----------------------------------------------------------------------
def test_incremental_driver_budget(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_check.json")
    failures = check_gate(payload)
    assert not failures, "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="analyzer packages only (CI mode), same JSON schema",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    payload = run_bench(smoke=args.smoke, out=args.out)
    failures = check_gate(payload)
    for line in failures:
        print(f"GATE FAIL: {line}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
