"""Fig. 6 — EQSIM/SW4 checkpoint bandwidth on Summit, strong scaling.

Paper shape: "the size of the data on each rank decreases
proportionally.  This causes the synchronous I/O performance to
decrease while the asynchronous I/O performance remains consistent.
We are able to model the performance of both I/O modes accurately."
"""

from repro.harness import figures


def test_fig6_eqsim_summit(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig6, rounds=1, iterations=1)
    save_figure(fig)
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    est_sync = fig.column("est sync GB/s")
    # sweep starts saturated: sync decreases under strong scaling
    assert sync[-1] < sync[0]
    # async consistently above sync and not degrading
    assert async_[-1] >= async_[0] * 0.9
    assert async_[-1] > sync[-1]
    # the model tracks the measured sync series (paper: "accurately")
    for measured, estimated in zip(sync, est_sync):
        assert abs(estimated - measured) / measured < 0.5
    assert fig.meta["r2 async"] > 0.9
