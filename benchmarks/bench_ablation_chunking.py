"""Ablation — HDF5 chunk size (per-request cost amortization).

A chunked dataset turns every H5Dwrite into per-chunk storage requests;
each request pays the file system's metadata latency and suffers the
size-dependent client efficiency.  Sweeping the chunk size on a fixed
256 MiB-per-rank VPIC-style write shows the classic U-shape flank:
tiny chunks collapse bandwidth, large chunks approach contiguous
performance — the quantitative argument behind HDF5 chunk-size tuning
guides.
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, summit
from repro.hdf5 import FLOAT32, EventSet, H5Library, NativeVOL, slab_1d
from repro.harness.report import FigureData

Mi = 1 << 20
NRANKS = 96
ELEMS_PER_RANK = 8 * Mi  # 32 MiB per rank per dataset


def _run(chunk_elems) -> float:
    engine = Engine()
    cluster = Cluster(engine, summit(), NRANKS // 6)
    lib = H5Library(cluster)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/chunked.h5", vol)
        es = EventSet(ctx.engine)
        for step in range(2):
            yield ctx.compute(5.0)
            yield from ctx.barrier()
            for prop in range(8):
                d = f.create_dataset(
                    f"/Step#{step}/p{prop}",
                    shape=(ELEMS_PER_RANK * ctx.size,), dtype=FLOAT32,
                    chunks=None if chunk_elems is None else (chunk_elems,),
                )
                yield from d.write(slab_1d(ctx.rank, ELEMS_PER_RANK),
                                   phase=step, es=es)
        yield from es.wait()
        yield from f.close()

    MPIJob(cluster, NRANKS).run(program)
    return vol.log.peak_bandwidth(op="write")


def test_ablation_chunk_size(benchmark, save_figure):
    chunk_sizes = [Mi // 4, Mi, 4 * Mi, 8 * Mi, None]  # elements (x4 bytes)

    def run_all():
        return {c: _run(c) for c in chunk_sizes}

    peaks = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-chunking",
        f"VPIC-IO sync write on Summit ({NRANKS} ranks, 32 MiB/rank/dataset) "
        f"vs HDF5 chunk size",
        columns=["chunk MiB", "peak GB/s"],
    )
    for c in chunk_sizes:
        label = "contiguous" if c is None else c * 4 / Mi
        fig.add_row(label, peaks[c] / 1e9)
    save_figure(fig)

    # monotone improvement toward contiguous
    ordered = [peaks[c] for c in chunk_sizes]
    assert all(a <= b * 1.01 for a, b in zip(ordered, ordered[1:]))
    # tiny chunks are catastrophically slower
    assert peaks[None] > 4 * peaks[Mi // 4]
    # 32 MiB chunks == one chunk per request: same as contiguous
    assert peaks[8 * Mi] == peaks[None]
