"""Ablation — initialization cost on short-running jobs.

The paper's related work cites Maurya et al. [24] on "reducing the
initialization cost for short-running jobs where it cannot be amortized
over the total runtime" (§II-C), and its own model carries ``t_init``
for exactly this reason (Eq. 1, §III-A).  Sweeping the epoch count with
a deliberately expensive async-VOL initialization shows the crossover:
below it, synchronous I/O wins despite slower epochs.
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT64, AsyncVOL, EventSet, H5Library, NativeVOL, slab_1d
from repro.harness.report import FigureData
from repro.model import EpochCosts, app_time

MiB = 1 << 20
NPROCS = 8
ELEMS = 32 * MiB  # 256 MiB float64 per rank per epoch
COMPUTE = 0.2
INIT_TIME = 1.0  # heavy connector setup (buffers, threads, descriptors)
EPOCH_COUNTS = [1, 2, 4, 8, 16, 32]


def _run(mode: str, epochs: int) -> float:
    engine = Engine()
    cluster = Cluster(engine, make_testbed(nodes=2, ranks_per_node=4), 2)
    lib = H5Library(cluster)
    vol = (NativeVOL() if mode == "sync"
           else AsyncVOL(init_time=INIT_TIME))

    def program(ctx):
        f = yield from lib.create(ctx, "/short.h5", vol)
        es = EventSet(ctx.engine)
        for epoch in range(epochs):
            yield ctx.compute(COMPUTE)
            d = f.create_dataset(f"/e{epoch}", shape=(ELEMS * ctx.size,),
                                 dtype=FLOAT64)
            yield from d.write(slab_1d(ctx.rank, ELEMS), phase=epoch, es=es)
        yield from es.wait()
        yield from f.close()
        return ctx.now

    return max(MPIJob(cluster, NPROCS).run(program))


def test_ablation_short_job_init_cost(benchmark, save_figure):
    def run_all():
        return {
            (mode, n): _run(mode, n)
            for mode in ("sync", "async")
            for n in EPOCH_COUNTS
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-short-jobs",
        f"Async t_init={INIT_TIME}s amortization vs job length "
        f"({NPROCS} ranks, {COMPUTE}s compute/epoch)",
        columns=["epochs", "sync s", "async s", "async wins"],
    )
    crossover = None
    for n in EPOCH_COUNTS:
        sync_t, async_t = times[("sync", n)], times[("async", n)]
        wins = async_t < sync_t
        if wins and crossover is None:
            crossover = n
        fig.add_row(n, sync_t, async_t, str(wins))
    fig.meta["crossover epochs"] = crossover
    save_figure(fig)

    # a one-epoch job cannot amortize the setup
    assert times[("async", 1)] > times[("sync", 1)]
    # a long job does
    assert times[("async", EPOCH_COUNTS[-1])] < times[("sync", EPOCH_COUNTS[-1])]
    assert crossover is not None and 1 < crossover <= EPOCH_COUNTS[-1]
