"""Fig. 5 — Cosmoflow batch-read bandwidth on Summit.

Paper shape: "For synchronous I/O, the performance does not scale after
128 nodes; whereas, the asynchronous I/O is able to maintain a higher
bandwidth."
"""

from repro.harness import figures


def test_fig5_cosmoflow_summit(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig5, rounds=1, iterations=1)
    save_figure(fig)
    ranks = fig.column("ranks")
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    rank_ratio = ranks[-1] / ranks[0]
    # sync read bandwidth scales sub-linearly (GPFS ceiling)
    assert sync[-1] / sync[0] < rank_ratio
    # async maintains higher bandwidth at every scale
    for s, a in zip(sync, async_):
        assert a > s
    # and clearly higher at the top end
    assert async_[-1] > 1.5 * sync[-1]
