"""Fig. 4c/4d — Castro plotfile bandwidth, strong scaling.

Paper shapes:

- Fig. 4c (Summit/GPFS): "for synchronous I/O the aggregate bandwidth
  decreases as we scale up the number of MPI Ranks" (reactive GPFS
  allocation penalizes the shrinking per-rank requests).
- Fig. 4d (Cori/Lustre): "the synchronous I/O performance increases
  until it saturates at 2048 MPI Ranks".
- Both: with async "the computational phase is sufficiently large to
  completely hide the I/O cost ... a linear speedup on both systems".
"""

from repro.harness import figures


def test_fig4c_castro_summit(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig4c, rounds=1, iterations=1)
    save_figure(fig)
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    # GPFS: sync aggregate bandwidth decreases with scale
    assert sync[-1] < sync[0]
    # async grows and wins at scale
    assert async_[-1] > async_[0]
    assert async_[-1] > sync[-1]


def test_fig4d_castro_cori(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig4d, rounds=1, iterations=1)
    save_figure(fig)
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    # Lustre: sync grows from the smallest scale before flattening
    assert max(sync) > sync[0]
    # the tail is flat (saturated), not still climbing steeply
    assert sync[-1] < 1.5 * sync[len(sync) // 2]
    # async grows with ranks
    assert async_[-1] > async_[0]
