"""Multi-tenant scheduler benchmark: policy vs fleet tail latency.

Drives :func:`repro.harness.sched.run_fleet` — one seeded job stream
(VPIC / BD-CATS / Nyx / Castro / SW4 / Cosmoflow mix) co-run on a
storage-starved testbed — under FIFO, conservative backfill, and the
I/O-aware policy that applies the paper's sync-vs-async model at
admission time, at two cluster loads.  Two invariants are checked on
every run:

- **determinism**: every (load, policy) fleet is replayed with the
  same seed, and every job's (start, finish, mode, nodes) plus every
  headline metric must match bit-for-bit — a scheduler whose replays
  diverge cannot be debugged or compared;
- **the model pays at the facility level**: the I/O-aware policy must
  beat FIFO on p95 job completion time at *every* benchmarked load —
  the fleet-scale analogue of the paper's per-application async win
  (and its Fig. 8 variability shield).

A third section runs the same fleets **under chaos** (rate-based node
crashes via :func:`repro.faults.chaos_config`) and checks the
fault-tolerance story end to end:

- **checkpointing pays**: restarting crash victims from durable
  checkpoints yields strictly more goodput and strictly less lost
  work than restarting from scratch, summed over the chaos seeds;
- **async checkpointing shrinks lost work**: an all-async fleet loses
  no more work per seed — and strictly less in aggregate — than the
  same all-sync fleet under the same crash schedule, because async
  phases land on the PFS while the next compute phase runs;
- **chaos replay is deterministic**: a same-seed faulted fleet replays
  to byte-identical metrics JSON and an identical fault-trace
  signature.

Results land in ``BENCH_sched.json`` at the repository root: per
(load, policy) fleet metrics plus per-job records, and the ``faulted``
section with the chaos rows.

Run standalone (full mode)::

    PYTHONPATH=src python benchmarks/bench_sched.py

or in CI smoke mode (fewer jobs, same JSON schema)::

    PYTHONPATH=src python benchmarks/bench_sched.py --smoke

Also collectable via pytest (runs the smoke fleet and asserts the
determinism + policy-ordering invariants)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sched.py
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.faults import chaos_config
from repro.harness.sched import run_fleet, sched_testbed
from repro.sched import StreamConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sched.json"

SEED = 7
POLICIES = ("fifo", "backfill", "io-aware")
LOADS = (2.0, 4.0)  # mean interarrival seconds: high and moderate load

# Chaos section: expected crashes per node per 1000 sim-seconds, the
# base fault seed, and the stream seeds each crash schedule meets.
CHAOS_RATE = 10.0
CHAOS_FAULT_SEED = 3
CHAOS_SEEDS = (0, 1, 2)


def _shape(smoke: bool):
    """(n_jobs, loads) for the selected mode."""
    return (15, LOADS) if smoke else (25, LOADS)


def _stream(n_jobs: int, load: float) -> StreamConfig:
    return StreamConfig(
        n_jobs=n_jobs, seed=SEED, mean_interarrival=load,
        rank_choices=(8, 16, 32), size_scale=4.0,
    )


def _replay_signature(metrics) -> list:
    """Everything a same-seed replay must reproduce exactly."""
    per_job = [
        (j["job_id"], j["start_time"], j["finish_time"], j["mode"],
         tuple(j["nodes"]), j["state"])
        for j in metrics.jobs
    ]
    return [metrics.makespan, metrics.completion_p95, metrics.wait_p95,
            metrics.goodput_jobs_per_hour, per_job]


# ----------------------------------------------------------------------
# Chaos section: the same fleets under rate-based node crashes
# ----------------------------------------------------------------------
def _chaos_fc(seed: int):
    """One seed's crash schedule (decorrelated across stream seeds)."""
    return chaos_config(CHAOS_RATE, seed=CHAOS_FAULT_SEED + 7919 * seed)


def _fleet_row(metrics, **extra) -> dict:
    row = metrics.to_dict(with_jobs=False)
    row.update(extra)
    return row


def run_chaos_bench(machine) -> dict:
    """The faulted section: checkpointing value, async value, replay.

    Two fleet shapes, chosen so crashes reliably hit running jobs:
    compute-heavy streams (long phases → big crash cross-section) for
    the checkpoint-vs-scratch comparison, I/O-heavy streams (phase
    writes cost seconds → sync durability lags measurably) for the
    sync-vs-async comparison.
    """
    rows = []

    # (a) checkpoint restart vs scratch restart, same crash schedules.
    ck_goodput = scratch_goodput = 0.0
    ck_lost = scratch_lost = 0.0
    for seed in CHAOS_SEEDS:
        cfg = StreamConfig(n_jobs=12, seed=seed, mean_interarrival=5.0,
                           compute_scale=6.0)
        for checkpoint in (True, False):
            m = run_fleet(machine, cfg, "fifo", fault_config=_chaos_fc(seed),
                          checkpoint_restart=checkpoint)
            rows.append(_fleet_row(m, section="checkpoint", chaos_seed=seed))
            if checkpoint:
                ck_goodput += m.goodput_jobs_per_hour
                ck_lost += m.lost_work_seconds
            else:
                scratch_goodput += m.goodput_jobs_per_hour
                scratch_lost += m.lost_work_seconds
            print(f"chaos ckpt={str(checkpoint):5s} seed={seed} "
                  f"done={m.completed:2d} kills={m.node_kills} "
                  f"requeues={m.requeues} lost={m.lost_work_seconds:7.2f} "
                  f"goodput={m.goodput_jobs_per_hour:6.1f}")
    checkpoint_wins = (ck_goodput > scratch_goodput
                      and ck_lost < scratch_lost)

    # (b) all-sync vs all-async checkpointing, same crash schedules.
    # I/O-heavy phases: each checkpoint write costs seconds, so sync
    # durability (blocks until landed) trails async (lands during the
    # next compute phase) by a measurable margin at kill time.
    sync_lost = async_lost = 0.0
    async_never_worse = True
    for seed in CHAOS_SEEDS:
        per_mode = {}
        for mode in ("sync", "async"):
            cfg = StreamConfig(n_jobs=10, seed=seed, mean_interarrival=6.0,
                               compute_scale=4.0, size_scale=12.0,
                               mode_mix=((mode, 1.0),))
            m = run_fleet(machine, cfg, "fifo", fault_config=_chaos_fc(seed),
                          checkpoint_restart=True)
            rows.append(_fleet_row(m, section="ckpt-mode", chaos_seed=seed))
            per_mode[mode] = m
            print(f"chaos mode={mode:5s} seed={seed} done={m.completed:2d} "
                  f"kills={m.node_kills} lost={m.lost_work_seconds:7.2f}")
        sync_lost += per_mode["sync"].lost_work_seconds
        async_lost += per_mode["async"].lost_work_seconds
        if (per_mode["async"].lost_work_seconds
                > per_mode["sync"].lost_work_seconds + 1e-9):
            async_never_worse = False
    async_wins = async_never_worse and async_lost < sync_lost

    # (c) same-seed chaos replay: byte-identical metrics + signature.
    cfg = StreamConfig(n_jobs=12, seed=CHAOS_SEEDS[0],
                       mean_interarrival=5.0, compute_scale=6.0)
    first = run_fleet(machine, cfg, "fifo",
                      fault_config=_chaos_fc(CHAOS_SEEDS[0]))
    again = run_fleet(machine, cfg, "fifo",
                      fault_config=_chaos_fc(CHAOS_SEEDS[0]))
    replay_identical = (
        json.dumps(first.to_dict(), sort_keys=True)
        == json.dumps(again.to_dict(), sort_keys=True)
        and first.fault_signature == again.fault_signature
        and first.fault_signature != ""
    )

    print(f"chaos: checkpointing beats scratch restart: {checkpoint_wins}")
    print(f"chaos: async checkpointing loses less work: {async_wins}")
    print(f"chaos: same-seed replay byte-identical: {replay_identical}")
    return {
        "rate": CHAOS_RATE,
        "fault_seed": CHAOS_FAULT_SEED,
        "seeds": list(CHAOS_SEEDS),
        "checkpoint_goodput": ck_goodput,
        "scratch_goodput": scratch_goodput,
        "checkpoint_lost_work": ck_lost,
        "scratch_lost_work": scratch_lost,
        "sync_lost_work": sync_lost,
        "async_lost_work": async_lost,
        "checkpoint_beats_scratch": checkpoint_wins,
        "async_loses_less_than_sync": async_wins,
        "replay_identical": replay_identical,
        "fault_signature": first.fault_signature,
        "results": rows,
    }


def run_bench(smoke=False, out=DEFAULT_OUT):
    n_jobs, loads = _shape(smoke)
    machine = sched_testbed()
    rows = []
    deterministic = True
    for load in loads:
        cfg = _stream(n_jobs, load)
        for policy in POLICIES:
            metrics = run_fleet(machine, cfg, policy)
            replay = run_fleet(machine, cfg, policy)
            same = _replay_signature(metrics) == _replay_signature(replay)
            deterministic = deterministic and same
            row = metrics.to_dict()
            row["load"] = load
            row["replay_identical"] = same
            rows.append(row)
            print(
                f"load={load:<4g} {policy:9s} done={metrics.completed:2d} "
                f"async={metrics.n_async:2d} "
                f"wait_p95={metrics.wait_p95:7.2f} "
                f"compl_p95={metrics.completion_p95:7.2f} "
                f"makespan={metrics.makespan:7.1f} replay_ok={same}"
            )
    # The headline comparison: io-aware vs FIFO p95 completion per load.
    io_aware_wins = all(
        _find(rows, load, "io-aware")["completion_p95"]
        < _find(rows, load, "fifo")["completion_p95"]
        for load in loads
    )
    print(f"deterministic replay: {deterministic}")
    print(f"io-aware beats fifo on p95 completion at every load: "
          f"{io_aware_wins}")
    faulted = run_chaos_bench(machine)
    payload = {
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "seed": SEED,
        "n_jobs": n_jobs,
        "loads": list(loads),
        "deterministic": deterministic,
        "io_aware_beats_fifo_p95": io_aware_wins,
        "results": rows,
        "faulted": faulted,
    }
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


def _find(rows, load, policy):
    for row in rows:
        if row["load"] == load and row["policy"] == policy:
            return row
    raise KeyError((load, policy))


# ----------------------------------------------------------------------
# pytest entry points (smoke fleet: cheap enough for CI)
# ----------------------------------------------------------------------
def test_sched_deterministic_and_io_aware_wins(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_sched.json")
    assert payload["deterministic"], "same-seed fleet replay diverged"
    assert payload["io_aware_beats_fifo_p95"], (
        "io-aware policy did not beat FIFO on p95 completion at every load"
    )
    for load in payload["loads"]:
        fifo = _find(payload["results"], load, "fifo")
        io_aware = _find(payload["results"], load, "io-aware")
        # The advisor must actually be switching modes, not winning by
        # accident: most 'auto' submissions should resolve to async.
        assert io_aware["n_async"] > fifo["n_async"]
        # Every submission must reach a terminal state, none rejected.
        assert io_aware["completed"] + io_aware["timeouts"] \
            + io_aware["failed"] == payload["n_jobs"]
        assert io_aware["rejected"] == 0


def test_chaos_fault_tolerance(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_sched.json")
    faulted = payload["faulted"]
    assert faulted["replay_identical"], "same-seed chaos replay diverged"
    assert faulted["checkpoint_beats_scratch"], (
        "checkpoint restart did not beat scratch restart under chaos: "
        f"goodput {faulted['checkpoint_goodput']:.1f} vs "
        f"{faulted['scratch_goodput']:.1f}, lost work "
        f"{faulted['checkpoint_lost_work']:.1f} vs "
        f"{faulted['scratch_lost_work']:.1f}"
    )
    assert faulted["async_loses_less_than_sync"], (
        "async checkpointing did not lose less work than sync: "
        f"{faulted['async_lost_work']:.1f} vs "
        f"{faulted['sync_lost_work']:.1f}"
    )
    # Chaos fleets genuinely exercised the fault path.
    chaos_rows = faulted["results"]
    assert sum(r["node_kills"] for r in chaos_rows) > 0
    assert sum(r["requeues"] for r in chaos_rows) > 0
    assert all(r["fault_signature"] for r in chaos_rows)


def test_fig_sched_table(save_figure):
    from repro.harness import figures

    fig = figures.fig_sched("quick")
    save_figure(fig)
    by_policy = {}
    for load, policy, *_rest in fig.rows:
        by_policy.setdefault(policy, {})[load] = fig.rows[
            [r[:2] for r in fig.rows].index([load, policy])
        ]
    p95_col = fig.columns.index("compl p95")
    for load in {row[0] for row in fig.rows}:
        assert (by_policy["io-aware"][load][p95_col]
                < by_policy["fifo"][load][p95_col])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer jobs per stream (CI mode)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out directory does not exist: {out.parent}")
    payload = run_bench(smoke=args.smoke, out=out)
    faulted = payload["faulted"]
    ok = (payload["deterministic"] and payload["io_aware_beats_fifo_p95"]
          and faulted["checkpoint_beats_scratch"]
          and faulted["async_loses_less_than_sync"]
          and faulted["replay_identical"])
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
