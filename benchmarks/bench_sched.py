"""Multi-tenant scheduler benchmark: policy vs fleet tail latency.

Drives :func:`repro.harness.sched.run_fleet` — one seeded job stream
(VPIC / BD-CATS / Nyx / Castro / SW4 / Cosmoflow mix) co-run on a
storage-starved testbed — under FIFO, conservative backfill, and the
I/O-aware policy that applies the paper's sync-vs-async model at
admission time, at two cluster loads.  Two invariants are checked on
every run:

- **determinism**: every (load, policy) fleet is replayed with the
  same seed, and every job's (start, finish, mode, nodes) plus every
  headline metric must match bit-for-bit — a scheduler whose replays
  diverge cannot be debugged or compared;
- **the model pays at the facility level**: the I/O-aware policy must
  beat FIFO on p95 job completion time at *every* benchmarked load —
  the fleet-scale analogue of the paper's per-application async win
  (and its Fig. 8 variability shield).

Results land in ``BENCH_sched.json`` at the repository root: per
(load, policy) fleet metrics plus per-job records.

Run standalone (full mode)::

    PYTHONPATH=src python benchmarks/bench_sched.py

or in CI smoke mode (fewer jobs, same JSON schema)::

    PYTHONPATH=src python benchmarks/bench_sched.py --smoke

Also collectable via pytest (runs the smoke fleet and asserts the
determinism + policy-ordering invariants)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sched.py
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.harness.sched import run_fleet, sched_testbed
from repro.sched import StreamConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sched.json"

SEED = 7
POLICIES = ("fifo", "backfill", "io-aware")
LOADS = (2.0, 4.0)  # mean interarrival seconds: high and moderate load


def _shape(smoke: bool):
    """(n_jobs, loads) for the selected mode."""
    return (15, LOADS) if smoke else (25, LOADS)


def _stream(n_jobs: int, load: float) -> StreamConfig:
    return StreamConfig(
        n_jobs=n_jobs, seed=SEED, mean_interarrival=load,
        rank_choices=(8, 16, 32), size_scale=4.0,
    )


def _replay_signature(metrics) -> list:
    """Everything a same-seed replay must reproduce exactly."""
    per_job = [
        (j["job_id"], j["start_time"], j["finish_time"], j["mode"],
         tuple(j["nodes"]), j["state"])
        for j in metrics.jobs
    ]
    return [metrics.makespan, metrics.completion_p95, metrics.wait_p95,
            metrics.goodput_jobs_per_hour, per_job]


def run_bench(smoke=False, out=DEFAULT_OUT):
    n_jobs, loads = _shape(smoke)
    machine = sched_testbed()
    rows = []
    deterministic = True
    for load in loads:
        cfg = _stream(n_jobs, load)
        for policy in POLICIES:
            metrics = run_fleet(machine, cfg, policy)
            replay = run_fleet(machine, cfg, policy)
            same = _replay_signature(metrics) == _replay_signature(replay)
            deterministic = deterministic and same
            row = metrics.to_dict()
            row["load"] = load
            row["replay_identical"] = same
            rows.append(row)
            print(
                f"load={load:<4g} {policy:9s} done={metrics.completed:2d} "
                f"async={metrics.n_async:2d} "
                f"wait_p95={metrics.wait_p95:7.2f} "
                f"compl_p95={metrics.completion_p95:7.2f} "
                f"makespan={metrics.makespan:7.1f} replay_ok={same}"
            )
    # The headline comparison: io-aware vs FIFO p95 completion per load.
    io_aware_wins = all(
        _find(rows, load, "io-aware")["completion_p95"]
        < _find(rows, load, "fifo")["completion_p95"]
        for load in loads
    )
    print(f"deterministic replay: {deterministic}")
    print(f"io-aware beats fifo on p95 completion at every load: "
          f"{io_aware_wins}")
    payload = {
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "seed": SEED,
        "n_jobs": n_jobs,
        "loads": list(loads),
        "deterministic": deterministic,
        "io_aware_beats_fifo_p95": io_aware_wins,
        "results": rows,
    }
    out = pathlib.Path(out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[saved to {out}]")
    return payload


def _find(rows, load, policy):
    for row in rows:
        if row["load"] == load and row["policy"] == policy:
            return row
    raise KeyError((load, policy))


# ----------------------------------------------------------------------
# pytest entry points (smoke fleet: cheap enough for CI)
# ----------------------------------------------------------------------
def test_sched_deterministic_and_io_aware_wins(tmp_path):
    payload = run_bench(smoke=True, out=tmp_path / "BENCH_sched.json")
    assert payload["deterministic"], "same-seed fleet replay diverged"
    assert payload["io_aware_beats_fifo_p95"], (
        "io-aware policy did not beat FIFO on p95 completion at every load"
    )
    for load in payload["loads"]:
        fifo = _find(payload["results"], load, "fifo")
        io_aware = _find(payload["results"], load, "io-aware")
        # The advisor must actually be switching modes, not winning by
        # accident: most 'auto' submissions should resolve to async.
        assert io_aware["n_async"] > fifo["n_async"]
        # Every submission must reach a terminal state, none rejected.
        assert io_aware["completed"] + io_aware["timeouts"] \
            + io_aware["failed"] == payload["n_jobs"]
        assert io_aware["rejected"] == 0


def test_fig_sched_table(save_figure):
    from repro.harness import figures

    fig = figures.fig_sched("quick")
    save_figure(fig)
    by_policy = {}
    for load, policy, *_rest in fig.rows:
        by_policy.setdefault(policy, {})[load] = fig.rows[
            [r[:2] for r in fig.rows].index([load, policy])
        ]
    p95_col = fig.columns.index("compl p95")
    for load in {row[0] for row in fig.rows}:
        assert (by_policy["io-aware"][load][p95_col]
                < by_policy["fifo"][load][p95_col])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer jobs per stream (CI mode)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"output JSON path (default: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"--out directory does not exist: {out.parent}")
    payload = run_bench(smoke=args.smoke, out=out)
    return 0 if (payload["deterministic"]
                 and payload["io_aware_beats_fifo_p95"]) else 1


if __name__ == "__main__":
    raise SystemExit(main())
