"""Fig. 3c/3d — BD-CATS-IO read bandwidth, weak scaling (Summit & Cori).

Paper shape: "asynchronous I/O achieves superior performance ... for
reading data from subsequent time steps after the first time step.
Since the I/O time is overlapped with a simulated computation phase ...
the calculated bandwidth values for asynchronous I/O are orders of
magnitude higher" (§V-A.2).
"""

from repro.harness import figures


def _assert_read_shapes(fig):
    sync = fig.column("sync GB/s")
    async_ = fig.column("async GB/s")
    # prefetch-served reads dwarf blocking reads at every scale
    for s, a in zip(sync, async_):
        assert a > 2 * s
    # ...and by a lot at the largest scale
    assert async_[-1] > 5 * sync[-1]
    assert fig.meta["r2 async"] > 0.9


def test_fig3c_bdcats_summit(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig3c, rounds=1, iterations=1)
    save_figure(fig)
    _assert_read_shapes(fig)


def test_fig3d_bdcats_cori(benchmark, save_figure):
    fig = benchmark.pedantic(figures.fig3d, rounds=1, iterations=1)
    save_figure(fig)
    _assert_read_shapes(fig)
