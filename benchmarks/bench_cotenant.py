"""Extension — mechanistic co-tenant contention (paper §V-C, Fig. 8).

The paper treats full-system-level contention statistically ("other
applications running on the system"); here we create it mechanistically:
two VPIC-IO jobs run side by side on disjoint node sets of one Summit
allocation, sharing the GPFS backend.  The victim job's synchronous
bandwidth drops when the aggressor runs; its asynchronous bandwidth
(node-local staging) is untouched — the Fig. 8 conclusion, derived from
actual bandwidth sharing rather than a sampled availability factor.
"""

import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, summit
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.harness.report import FigureData
from repro.workloads import VPICConfig, vpic_program

NRANKS = 768  # victim job size (128 nodes): backend-bound on GPFS


def _run_victim(mode: str, with_aggressor: bool) -> float:
    engine = Engine()
    machine = summit()
    nodes = (NRANKS // 6) * 2
    cluster = Cluster(engine, machine, nodes)
    lib = H5Library(cluster)

    victim_cfg = VPICConfig(steps=3, path="/victim.h5")
    victim_vol = NativeVOL() if mode == "sync" else AsyncVOL(init_time=0.0)
    victim = MPIJob(cluster, NRANKS, name="victim")
    victim_procs = victim.launch(vpic_program(lib, victim_vol, victim_cfg))

    if with_aggressor:
        # Aggressor: one gigantic checkpoint (56 GiB per rank per
        # property, ~344 TB total) that keeps the shared GPFS backend
        # busy past the victim's last I/O phase, issued from the other
        # half of the allocation.
        aggressor_cfg = VPICConfig(steps=1, compute_seconds=0.0,
                                   particles_per_rank=14 * (1 << 30),
                                   path="/aggressor.h5")
        aggressor = MPIJob(cluster, NRANKS, name="aggressor",
                           node_offset=NRANKS // 6)
        aggressor.launch(vpic_program(lib, NativeVOL(), aggressor_cfg))

    engine.run()
    for proc in victim_procs:
        assert not proc.alive
    return victim_vol.log.mean_bandwidth(op="write")


def test_cotenant_contention(benchmark, save_figure):
    def run_all():
        return {
            ("sync", False): _run_victim("sync", False),
            ("sync", True): _run_victim("sync", True),
            ("async", False): _run_victim("async", False),
            ("async", True): _run_victim("async", True),
        }

    peaks = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fig = FigureData(
        "cotenant",
        f"VPIC-IO victim job on Summit ({NRANKS} ranks) with a co-tenant "
        f"writer sharing the GPFS backend",
        columns=["mode", "alone mean GB/s", "contended mean GB/s",
                 "retained %"],
    )
    for mode in ("sync", "async"):
        alone = peaks[(mode, False)]
        contended = peaks[(mode, True)]
        fig.add_row(mode, alone / 1e9, contended / 1e9,
                    100.0 * contended / alone)
    save_figure(fig)

    # sync loses a visible share of its bandwidth to the aggressor
    assert peaks[("sync", True)] < 0.8 * peaks[("sync", False)]
    # async (staging to private node DRAM) is unaffected
    assert peaks[("async", True)] == pytest.approx(
        peaks[("async", False)], rel=0.01
    )
