"""Ablation — size-dependent client efficiency (DESIGN.md §5.2).

The GPFS model's ``eff(s) = s/(s+s0)`` and the metadata serialization
penalty are what produce the paper's strong-scaling synchronous
bandwidth decrease (Fig. 4c).  Disabling both (s0 → 0, penalty → 0)
must erase the effect — evidence the mechanism, not an artifact,
drives the shape.
"""

import dataclasses

from repro.harness import best_by_config, scale_sweep
from repro.harness.report import FigureData
from repro.platform import summit
from repro.workloads import CastroConfig, castro_program

SCALES = [96, 192, 384, 768]


def _machine_without_efficiency():
    base = summit()
    fs = dataclasses.replace(
        base.filesystem, efficiency_s0=1.0, client_latency_penalty=0.0
    )
    return dataclasses.replace(base, filesystem=fs)


def _sweep(machine):
    cfg = CastroConfig(n_plotfiles=2)
    results = scale_sweep(
        machine, "castro", castro_program, lambda n: cfg,
        scales=SCALES, modes=("sync",), reps=1,
    )
    return best_by_config(results)


def test_ablation_size_dependent_efficiency(benchmark, save_figure):
    def run_both():
        return _sweep(summit()), _sweep(_machine_without_efficiency())

    with_eff, without_eff = benchmark.pedantic(run_both, rounds=1, iterations=1)

    fig = FigureData(
        "ablation-efficiency",
        "Castro sync write on Summit: with vs without size-dependent "
        "client efficiency (strong scaling)",
        columns=["ranks", "with eff GB/s", "without eff GB/s"],
    )
    w = {p.nranks: p.peak_gbs for p in with_eff}
    wo = {p.nranks: p.peak_gbs for p in without_eff}
    for n in SCALES:
        fig.add_row(n, w[n], wo[n])
    save_figure(fig)

    # with the mechanism: bandwidth decreases under strong scaling
    assert w[SCALES[-1]] < w[SCALES[0]]
    # without it: bandwidth no longer collapses (flat or growing)
    assert wo[SCALES[-1]] >= wo[SCALES[0]] * 0.95
    # and small requests are much faster without the efficiency loss
    assert wo[SCALES[-1]] > 2 * w[SCALES[-1]]
