"""Tests for the ASCII figure renderer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import render_figure, render_series
from repro.harness.report import FigureData


def demo_figure():
    fig = FigureData("demo", "demo title",
                     columns=["ranks", "sync GB/s", "async GB/s",
                              "est sync GB/s"])
    for r, s, a in [(96, 273.0, 768.0), (192, 513.0, 1536.0),
                    (384, 969.0, 3072.0)]:
        fig.add_row(r, s, a, s)
    return fig


def test_render_series_basic_structure():
    out = render_series([1, 2, 3], {"alpha": [1.0, 10.0, 100.0]}, height=6)
    lines = out.splitlines()
    assert any("a" in line for line in lines)  # marker drawn
    assert any("+---" in line for line in lines)  # x axis
    assert "a=alpha" in lines[-1]  # legend


def test_render_series_log_scale_extremes_on_edges():
    out = render_series([1, 2], {"x": [1.0, 1000.0]}, height=8, logy=True)
    lines = [l for l in out.splitlines() if "|" in l]
    assert "x" in lines[0]  # max on top row
    assert "x" in lines[-1]  # min on bottom row


def test_render_series_linear_mode():
    out = render_series([1, 2, 3], {"y": [0.0, 5.0, 10.0]}, height=5,
                        logy=False)
    assert "y=y" in out


def test_render_series_skips_nonpositive_in_log_mode():
    out = render_series([1, 2], {"y": [0.0, 100.0]}, height=5, logy=True)
    # only one marker plotted
    assert sum(line.count("y") for line in out.splitlines()[:-1]) == 1


def test_render_series_validation():
    with pytest.raises(ValueError):
        render_series([1], {}, height=5)
    with pytest.raises(ValueError):
        render_series([1, 2], {"y": [1.0]}, height=5)
    with pytest.raises(ValueError):
        render_series([1], {"y": [1.0]}, height=1)
    with pytest.raises(ValueError):
        render_series([1], {"y": [-1.0]}, height=5, logy=True)


def test_render_figure_excludes_estimate_columns():
    out = render_figure(demo_figure())
    assert "demo title" in out
    assert "s=sync GB/s" in out
    assert "a=async GB/s" in out
    assert "est" not in out.splitlines()[-1]


def test_render_figure_explicit_columns():
    out = render_figure(demo_figure(), y_columns=["async GB/s"])
    assert "a=async GB/s" in out
    assert "s=sync GB/s" not in out.splitlines()[-1]


def test_render_figure_no_numeric_series():
    fig = FigureData("x", "t", columns=["mode", "est only GB/s"])
    fig.add_row("sync", 1.0)
    with pytest.raises(ValueError):
        render_figure(fig, y_columns=[])


@given(
    values=st.lists(st.floats(min_value=0.1, max_value=1e12),
                    min_size=2, max_size=12),
    height=st.integers(min_value=2, max_value=30),
)
@settings(max_examples=60, deadline=None)
def test_property_render_never_crashes_and_marks_all_points(values, height):
    out = render_series(list(range(len(values))), {"v": values}, height=height)
    body = out.splitlines()[:-1]
    marks = sum(line.count("v") for line in body if "|" in line)
    # every point lands somewhere on the grid (collisions can merge
    # points in the same cell, so count <= n but >= 1)
    assert 1 <= marks <= len(values)
