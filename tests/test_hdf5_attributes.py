"""Tests for HDF5 attributes (self-describing metadata)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT32, AttributeSet, H5Library, NativeVOL
from repro.hdf5.attributes import MAX_ATTR_BYTES


def test_scalar_attributes_roundtrip():
    attrs = AttributeSet()
    attrs["nsteps"] = 100
    attrs["dt"] = 0.5
    attrs["code"] = "vpic"
    attrs["restart"] = False
    assert attrs["nsteps"] == 100
    assert attrs["dt"] == 0.5
    assert attrs["code"] == "vpic"
    assert attrs["restart"] is False
    assert len(attrs) == 4
    assert "dt" in attrs
    assert attrs.keys() == ["code", "dt", "nsteps", "restart"]


def test_array_attributes_copied_both_ways():
    attrs = AttributeSet()
    original = np.arange(4.0)
    attrs["origin"] = original
    original[:] = -1.0  # writer's array mutated after set
    got = attrs["origin"]
    assert np.allclose(got, np.arange(4.0))
    got[:] = 99.0  # reader's copy mutated
    assert np.allclose(attrs["origin"], np.arange(4.0))


def test_list_and_tuple_normalized_to_array():
    attrs = AttributeSet()
    attrs["dims"] = [256, 256, 256]
    attrs["spacing"] = (0.5, 0.5, 1.0)
    assert isinstance(attrs["dims"], np.ndarray)
    assert np.allclose(attrs["spacing"], [0.5, 0.5, 1.0])


def test_attribute_validation():
    attrs = AttributeSet()
    with pytest.raises(ValueError):
        attrs["a/b"] = 1
    with pytest.raises(ValueError):
        attrs[""] = 1
    with pytest.raises(TypeError):
        attrs["obj"] = object()
    with pytest.raises(ValueError):
        attrs["huge"] = np.zeros(MAX_ATTR_BYTES)  # 8x over the limit
    with pytest.raises(KeyError):
        attrs["missing"]
    with pytest.raises(KeyError):
        del attrs["missing"]


def test_get_update_delete_as_dict():
    attrs = AttributeSet()
    attrs.update({"a": 1, "b": 2.0})
    assert attrs.get("a") == 1
    assert attrs.get("zz", "fallback") == "fallback"
    del attrs["a"]
    assert attrs.as_dict() == {"b": 2.0}


def test_attributes_on_file_group_dataset():
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    lib = H5Library(cluster)
    vol = NativeVOL()
    job = MPIJob(cluster, 2, ranks_per_node=4)

    def program(ctx):
        f = yield from lib.create(ctx, "/meta.h5", vol)
        if ctx.rank == 0:
            f.attrs["created_by"] = "repro"
        g = f.create_group("Step#0")
        if ctx.rank == 0:
            g.attrs["time"] = 12.5
        d = g.create_dataset("x", shape=(8,), dtype=FLOAT32)
        if ctx.rank == 0:
            d.attrs["units"] = "m/s"
        yield from ctx.barrier()
        # rank 1 sees rank 0's metadata (shared stored objects)
        out = (f.attrs["created_by"], g.attrs["time"], d.attrs["units"])
        yield from f.close()
        return out

    for created_by, time, units in job.run(program):
        assert created_by == "repro"
        assert time == 12.5
        assert units == "m/s"


def test_group_attrs_requires_existing_group():
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1), 1)
    lib = H5Library(cluster)
    stored = lib.stored_file("/g.h5")
    with pytest.raises(KeyError):
        stored.group_attrs("/nope")


@given(
    names=st.lists(
        st.text(alphabet="abcdefgh_123", min_size=1, max_size=8),
        min_size=1, max_size=10, unique=True,
    ),
    values=st.lists(st.one_of(st.integers(-1000, 1000),
                              st.floats(allow_nan=False, allow_infinity=False,
                                        width=32)),
                    min_size=10, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_property_attrs_behave_like_dict(names, values):
    attrs = AttributeSet()
    reference = {}
    for name, value in zip(names, values):
        attrs[name] = value
        reference[name] = value
    assert attrs.as_dict() == pytest.approx(reference)
    assert attrs.keys() == sorted(reference)
