"""Tests for the asynchronous VOL connector: staging, workers, prefetch."""

import math

import numpy as np
import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import (
    FLOAT64,
    AsyncVOL,
    EventSet,
    H5Library,
    NativeVOL,
    SequentialPrefetcher,
    slab_1d,
)
from repro.hdf5.async_vol import StagingBuffer

MiB = 1 << 20


def make_env(nodes=1, ranks_per_node=4, nprocs=1, **machine_kw):
    eng = Engine()
    cluster = Cluster(
        eng, make_testbed(nodes=nodes, ranks_per_node=ranks_per_node, **machine_kw),
        nodes,
    )
    job = MPIJob(cluster, nprocs, ranks_per_node=ranks_per_node)
    lib = H5Library(cluster)
    return eng, cluster, job, lib


# ---------------------------------------------------------------------------
# StagingBuffer
# ---------------------------------------------------------------------------


def test_staging_reserve_release():
    eng = Engine()
    buf = StagingBuffer(eng, capacity=100.0)

    def proc():
        yield from buf.reserve(60.0)
        assert buf.used == 60.0
        buf.release(60.0)
        return buf.used

    assert eng.run_process(proc()) == 0.0


def test_staging_backpressure_fifo():
    eng = Engine()
    buf = StagingBuffer(eng, capacity=100.0)
    order = []

    def holder():
        yield from buf.reserve(80.0)
        yield eng.timeout(5.0)
        buf.release(80.0)

    def waiter(tag, need):
        yield eng.timeout(1.0)
        yield from buf.reserve(need)
        order.append((eng.now, tag))
        buf.release(need)

    eng.process(holder())
    eng.process(waiter("a", 50.0))
    eng.process(waiter("b", 30.0))
    eng.run()
    # both blocked until t=5; FIFO: a admitted first, then b
    assert order == [(5.0, "a"), (5.0, "b")]


def test_staging_oversize_reservation_rejected():
    eng = Engine()
    buf = StagingBuffer(eng, capacity=10.0)

    def proc():
        yield from buf.reserve(11.0)

    with pytest.raises(ValueError):
        eng.run_process(proc())


def test_staging_invalid_capacity():
    with pytest.raises(ValueError):
        StagingBuffer(Engine(), capacity=0.0)


# ---------------------------------------------------------------------------
# Async writes
# ---------------------------------------------------------------------------


def test_async_write_blocks_only_for_staging_copy():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)
    n_elems = 32 * MiB  # 256 MiB of float64
    nbytes = n_elems * 8

    def program(ctx):
        f = yield from lib.create(ctx, "/aw.h5", vol)
        d = f.create_dataset("/d", shape=(n_elems,), dtype=FLOAT64)
        # repro-check: disable=RC401 (deliberate: close-side drain is under test)
        es = EventSet(ctx.engine)
        t0 = ctx.now
        yield from d.write(es=es, phase=0)
        blocked = ctx.now - t0
        # repro-check: disable=RC401 (deliberate: close() must drain the un-waited op)
        yield from f.close()
        return blocked, ctx.now

    blocked, total = job.run(program)[0]
    memcpy_time = cluster.machine.node.memcpy.per_copy.transfer_time(nbytes)
    assert blocked == pytest.approx(memcpy_time, rel=1e-6)
    # the PFS write still happened before close returned
    sync_time = nbytes / (cluster.machine.node.nic_bandwidth
                          * nbytes / (nbytes + cluster.machine.filesystem.efficiency_s0))
    assert total >= blocked + sync_time


def test_async_write_records_blocking_and_completion():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/rec.h5", vol)
        d = f.create_dataset("/d", shape=(32 * MiB,), dtype=FLOAT64)
        yield from d.write(phase=0)
        yield from f.close()

    job.run(program)
    (rec,) = vol.log.select(op="write")
    assert rec.mode == "async"
    assert rec.blocking_time > 0
    assert math.isfinite(rec.t_complete)
    assert rec.t_complete > rec.t_unblocked  # background work took time
    assert rec.observed_rate > 0


def test_async_observed_rate_beats_sync():
    """The headline effect: with ranks contending for the shared NIC/PFS,
    the async per-op 'bandwidth' (staging memcpy) beats the sync one."""
    n_elems = 32 * MiB

    def run(vol_factory):
        eng, cluster, job, lib = make_env(nprocs=4)
        vol = vol_factory()

        def program(ctx):
            f = yield from lib.create(ctx, "/cmp.h5", vol)
            d = f.create_dataset("/d", shape=(4 * n_elems,), dtype=FLOAT64)
            yield from d.write(slab_1d(ctx.rank, n_elems), phase=0)
            yield from f.close()

        job.run(program)
        recs = vol.log.select(op="write")
        return min(r.observed_rate for r in recs)

    sync_rate = run(NativeVOL)
    async_rate = run(lambda: AsyncVOL(init_time=0.0))
    # 4 ranks share the 10 GB/s NIC (2.5 GB/s each) but get 7.5 GB/s each
    # from the 30 GB/s node memory for the staging copy.
    assert async_rate > 2 * sync_rate


def test_async_ops_execute_in_order():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/order.h5", vol)
        ds = [f.create_dataset(f"/d{i}", shape=(MiB,), dtype=FLOAT64)
              for i in range(4)]
        for i, d in enumerate(ds):
            yield from d.write(phase=i)
        yield from f.close()

    job.run(program)
    recs = vol.log.select(op="write")
    completions = [r.t_complete for r in recs]
    assert completions == sorted(completions)
    assert len(recs) == 4


def test_event_set_wait_drains_all_ops():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/es.h5", vol)
        es = EventSet(ctx.engine)
        for i in range(3):
            d = f.create_dataset(f"/d{i}", shape=(4 * MiB,), dtype=FLOAT64)
            yield from d.write(es=es, phase=0)
        assert es.op_counter == 3
        yield from es.wait()
        pending_after = es.n_pending
        yield from f.close()
        return pending_after

    assert job.run(program)[0] == 0
    for rec in vol.log.select(op="write"):
        assert math.isfinite(rec.t_complete)


def test_file_close_waits_for_background_writes():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/drain.h5", vol)
        d = f.create_dataset("/d", shape=(32 * MiB,), dtype=FLOAT64)
        yield from d.write(phase=0)
        yield from f.close()
        return ctx.now

    close_time = job.run(program)[0]
    rec = vol.log.select(op="write")[0]
    assert close_time >= rec.t_complete


def test_async_write_payload_applied_after_background_write():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/data.h5", vol)
        d = f.create_dataset("/d", shape=(8,), dtype=FLOAT64)
        payload = np.arange(8.0)
        yield from d.write(data=payload, phase=0)
        payload[:] = -1.0  # mutate app buffer: staging copy must protect us
        yield from f.flush()
        got = d.stored.data.copy()
        yield from f.close()
        return got

    got = job.run(program)[0]
    assert np.allclose(got, np.arange(8.0))


def test_async_overlap_with_compute():
    """Compute longer than I/O fully hides the PFS transfer (Fig. 1a)."""
    n_elems = 32 * MiB
    nbytes = n_elems * 8
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/ov.h5", vol)
        d = f.create_dataset("/d", shape=(n_elems,), dtype=FLOAT64)
        t0 = ctx.now
        yield from d.write(phase=0)
        yield ctx.compute(10.0)  # far longer than the PFS write
        t_before_close = ctx.now - t0
        yield from f.close()
        return t_before_close, ctx.now - t0

    before_close, total = job.run(program)[0]
    memcpy_time = cluster.machine.node.memcpy.per_copy.transfer_time(nbytes)
    # epoch = staging copy + compute; close adds only metadata latency
    assert before_close == pytest.approx(memcpy_time + 10.0, rel=1e-6)
    assert total == pytest.approx(
        before_close + cluster.machine.filesystem.metadata_latency, rel=1e-3
    )


def test_staging_backpressure_limits_inflight_bytes():
    """A tiny staging buffer forces the app to wait for the drain."""
    eng = Engine()
    machine = make_testbed(nodes=1, ranks_per_node=1)
    cluster = Cluster(eng, machine, 1)
    job = MPIJob(cluster, 1, ranks_per_node=1)
    lib = H5Library(cluster)
    # staging buffer: 64 MiB only
    frac = 64 * MiB / machine.node.dram_bytes
    vol = AsyncVOL(init_time=0.0, staging_fraction=frac)
    n_elems = 4 * MiB  # 32 MiB of float64 per write

    def program(ctx):
        f = yield from lib.create(ctx, "/bp.h5", vol)
        es = EventSet(ctx.engine)
        t0 = ctx.now
        for i in range(4):  # 128 MiB total staged > 64 MiB buffer
            d = f.create_dataset(f"/d{i}", shape=(n_elems,), dtype=FLOAT64)
            yield from d.write(es=es, phase=0)
        blocked = ctx.now - t0
        yield from es.wait()
        yield from f.close()
        return blocked

    blocked = job.run(program)[0]
    nbytes = n_elems * 8
    pure_memcpy = 4 * cluster.machine.node.memcpy.per_copy.transfer_time(nbytes)
    assert blocked > pure_memcpy  # had to wait for drain at least once


def test_ssd_staging_slower_than_dram():
    def run(staging):
        eng, cluster, job, lib = make_env()
        vol = AsyncVOL(init_time=0.0, staging=staging)

        def program(ctx):
            f = yield from lib.create(ctx, f"/{staging}.h5", vol)
            d = f.create_dataset("/d", shape=(32 * MiB,), dtype=FLOAT64)
            t0 = ctx.now
            yield from d.write(phase=0)
            blocked = ctx.now - t0
            yield from f.close()
            return blocked

        return job.run(program)[0]

    assert run("ssd") > run("dram")


def test_ssd_staging_requires_local_drive():
    eng = Engine()
    from repro.platform import cori_haswell
    cluster = Cluster(eng, cori_haswell(), 1)
    job = MPIJob(cluster, 1, ranks_per_node=32)
    lib = H5Library(cluster)
    vol = AsyncVOL(init_time=0.0, staging="ssd")

    def program(ctx):
        f = yield from lib.create(ctx, "/nossd.h5", vol)
        d = f.create_dataset("/d", shape=(MiB,), dtype=FLOAT64)
        yield from d.write(phase=0)

    with pytest.raises(ValueError, match="no local SSD"):
        job.run(program)


def test_gpu_sourced_async_write_blocks_for_d2h():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)
    n_elems = 16 * MiB
    nbytes = n_elems * 8

    def program(ctx):
        f = yield from lib.create(ctx, "/gpu.h5", vol)
        d = f.create_dataset("/d", shape=(n_elems,), dtype=FLOAT64)
        t0 = ctx.now
        yield from d.write(phase=0, from_gpu=True, pinned=True)
        blocked = ctx.now - t0
        yield from f.close()
        return blocked

    blocked = job.run(program)[0]
    expected = cluster.machine.node.gpu_link.transfer_time(nbytes, pinned=True)
    assert blocked == pytest.approx(expected, rel=1e-6)


def test_init_cost_charged_once_per_rank():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=1.0)

    def program(ctx):
        t0 = ctx.now
        f = yield from lib.create(ctx, "/init.h5", vol)
        first_open = ctx.now - t0
        f2 = yield from lib.create(ctx, "/init2.h5", vol)
        second_open = ctx.now - t0 - first_open
        yield from f.close()
        yield from f2.close()
        return first_open, second_open

    first, second = job.run(program)[0]
    assert first >= 1.0
    assert second < 1.0


def test_finalize_charges_term_time_and_stops_worker():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0, term_time=0.5)

    def program(ctx):
        f = yield from lib.create(ctx, "/fin.h5", vol)
        d = f.create_dataset("/d", shape=(MiB,), dtype=FLOAT64)
        yield from d.write(phase=0)
        yield from f.close()
        t0 = ctx.now
        yield from vol.finalize(ctx)
        return ctx.now - t0

    dt = job.run(program)[0]
    assert dt >= 0.5


def test_async_vol_validation():
    with pytest.raises(ValueError):
        AsyncVOL(staging="tape")
    with pytest.raises(ValueError):
        AsyncVOL(staging_fraction=0.0)
    with pytest.raises(ValueError):
        AsyncVOL(init_time=-1.0)
    with pytest.raises(ValueError):
        SequentialPrefetcher(depth=0)


# ---------------------------------------------------------------------------
# Reads & prefetch
# ---------------------------------------------------------------------------


def prepopulate_steps(lib, steps=4, n_elems=1024):
    datasets = {
        f"/Step#{s}/x": ((n_elems,), FLOAT64) for s in range(steps)
    }
    lib.prepopulate("/steps.h5", datasets)
    return n_elems


def test_first_read_blocking_then_prefetch_hits():
    # Slow NIC: PFS reads clearly dominate the local cache-hit copy.
    eng, cluster, job, lib = make_env(nic=1e9)
    vol = AsyncVOL(init_time=0.0)
    n = 4 * MiB
    lib.prepopulate("/steps.h5",
                    {f"/Step#{s}/x": ((n,), FLOAT64) for s in range(4)})

    def program(ctx):
        f = yield from lib.open(ctx, "/steps.h5", vol)
        times = []
        for s in range(4):
            d = f.dataset(f"/Step#{s}/x")
            t0 = ctx.now
            yield from d.read(phase=s)
            times.append(ctx.now - t0)
            yield ctx.compute(5.0)  # plenty of time to prefetch the rest
        yield from f.close()
        return times

    times = job.run(program)[0]
    # first read blocking (PFS), later reads only pay a local copy
    assert times[0] > 5 * max(times[1:])
    recs = vol.log.select(op="read")
    assert recs[0].cache_hit is False
    assert all(r.cache_hit for r in recs[2:])


def test_prefetch_depth_limits_plans():
    pf = SequentialPrefetcher(depth=2)
    eng, cluster, job, lib = make_env()
    stored = lib.prepopulate(
        "/d.h5", {f"/Step#{s}/x": ((16,), FLOAT64) for s in range(6)}
    )
    from repro.hdf5 import Hyperslab
    plans = pf.plan(stored, "/Step#0/x", Hyperslab.whole((16,)))
    assert [p for p, _ in plans] == ["/Step#1/x", "/Step#2/x"]


def test_prefetch_disabled():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0, prefetcher=None)
    n = 4 * MiB
    lib.prepopulate("/nopf.h5",
                    {f"/Step#{s}/x": ((n,), FLOAT64) for s in range(3)})

    def program(ctx):
        f = yield from lib.open(ctx, "/nopf.h5", vol)
        for s in range(3):
            d = f.dataset(f"/Step#{s}/x")
            yield from d.read(phase=s)
            yield ctx.compute(5.0)
        yield from f.close()

    job.run(program)
    assert all(not r.cache_hit for r in vol.log.select(op="read"))


def test_inflight_prefetch_waited_not_duplicated():
    """Reading before the prefetch lands waits for it (partial overlap)."""
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)
    n = 32 * MiB  # 256 MiB reads: slow enough to still be in flight
    lib.prepopulate("/fast.h5",
                    {f"/Step#{s}/x": ((n,), FLOAT64) for s in range(3)})

    def program(ctx):
        f = yield from lib.open(ctx, "/fast.h5", vol)
        for s in range(3):
            d = f.dataset(f"/Step#{s}/x")
            yield from d.read(phase=s)
            # no compute: back-to-back reads race the prefetcher
        yield from f.close()

    job.run(program)
    recs = vol.log.select(op="read")
    assert len(recs) == 3
    # step1 read waited on the in-flight prefetch: not a clean cache hit
    assert recs[1].cache_hit is False


def test_sequential_prefetcher_unknown_dataset():
    pf = SequentialPrefetcher()
    eng, cluster, job, lib = make_env()
    stored = lib.prepopulate("/u.h5", {"/a": ((4,), FLOAT64)})
    from repro.hdf5 import Hyperslab
    assert pf.plan(stored, "/not-there", Hyperslab.whole((4,))) == []


def test_bb_staging_on_cori():
    """Burst-buffer staging (DataElevator pattern): the transactional
    copy goes over the NIC to the shared 1.7 TB/s tier, and the drain to
    the PFS happens server-side."""
    from repro.platform import cori_haswell
    eng = Engine()
    cluster = Cluster(eng, cori_haswell(), 1)
    job = MPIJob(cluster, 4, ranks_per_node=32)
    lib = H5Library(cluster)
    vol = AsyncVOL(init_time=0.0, staging="bb")

    def program(ctx):
        f = yield from lib.create(ctx, "/bb.h5", vol)
        d = f.create_dataset("/d", shape=(4 * 32 * MiB,), dtype=FLOAT64)
        t0 = ctx.now
        yield from d.write(slab_1d(ctx.rank, 32 * MiB), phase=0)
        blocked = ctx.now - t0
        yield from f.close()
        return blocked

    blocked = job.run(program)[0]
    # blocking portion = NIC-shared write to the burst buffer
    nbytes = 32 * MiB * 8
    nic_share = cluster.machine.node.nic_bandwidth / 4
    assert blocked == pytest.approx(nbytes / nic_share, rel=0.02)
    # data became durable on the PFS target
    stored = lib.files["/bb.h5"]
    assert stored.target.bytes_written >= 4 * nbytes


def test_bb_staging_requires_burst_buffer():
    eng, cluster, job, lib = make_env()  # testbed has no burst buffer
    vol = AsyncVOL(init_time=0.0, staging="bb")

    def program(ctx):
        f = yield from lib.create(ctx, "/nobb.h5", vol)
        d = f.create_dataset("/d", shape=(MiB,), dtype=FLOAT64)
        yield from d.write(phase=0)

    with pytest.raises(ValueError, match="no burst buffer"):
        job.run(program)


def test_multiple_background_streams_overlap_independent_ops():
    """With nworkers>1 (Argobots pool), queued operations drain in
    parallel; with one worker they serialize."""

    def drain_time(nworkers):
        eng, cluster, job, lib = make_env()
        vol = AsyncVOL(init_time=0.0, nworkers=nworkers)

        def program(ctx):
            f = yield from lib.create(ctx, "/mw.h5", vol)
            # many small ops: each is cap/latency-bound, far below the
            # NIC, so only parallel streams can overlap them
            for i in range(8):
                d = f.create_dataset(f"/d{i}", shape=(MiB // 8,),
                                     dtype=FLOAT64)
                yield from d.write(phase=i)
            t0 = ctx.now
            yield from f.flush()
            return ctx.now - t0

        return job.run(program)[0]

    serial = drain_time(1)
    parallel = drain_time(4)
    # small requests cannot saturate the NIC individually: four streams
    # overlap their latencies and capped transfers
    assert parallel < 0.6 * serial


def test_nworkers_validation():
    with pytest.raises(ValueError):
        AsyncVOL(nworkers=0)


def test_background_write_failure_surfaces_at_wait():
    """A failing background operation fails its event; the application
    sees the error at H5ESwait/H5Fclose (event-set error semantics),
    and the worker survives to execute later operations."""
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    original = cluster.pfs_write
    calls = {"n": 0}

    def flaky_pfs_write(node, target, nbytes, tag=None):
        calls["n"] += 1
        if calls["n"] == 1:
            raise IOError("OST failure")
        return original(node, target, nbytes, tag=tag)

    cluster.pfs_write = flaky_pfs_write

    def program(ctx):
        f = yield from lib.create(ctx, "/flaky.h5", vol)
        es = EventSet(ctx.engine)
        d1 = f.create_dataset("/d1", shape=(MiB,), dtype=FLOAT64)
        d2 = f.create_dataset("/d2", shape=(MiB,), dtype=FLOAT64)
        yield from d1.write(es=es, phase=0)  # this one will fail
        yield from d2.write(es=es, phase=0)  # this one still succeeds
        failed = None
        try:
            yield from es.wait()
        except IOError as err:
            failed = str(err)
        return failed

    failed = job.run(program)[0]
    assert failed == "OST failure"
    # the second op still completed despite the first one failing
    import math
    recs = vol.log.select(op="write")
    assert math.isfinite(recs[1].t_complete)


def test_write_merging_coalesces_small_drains():
    """merge_writes=True: queued small writes drain as one big storage
    request — fewer per-request costs, same per-op completion records."""

    def drain_time(merge):
        eng, cluster, job, lib = make_env()
        vol = AsyncVOL(init_time=0.0, merge_writes=merge)

        def program(ctx):
            f = yield from lib.create(ctx, "/merge.h5", vol)
            for i in range(16):
                d = f.create_dataset(f"/d{i}", shape=(MiB // 16,),
                                     dtype=FLOAT64)  # 512 KiB each
                yield from d.write(phase=i)
            t0 = ctx.now
            yield from f.flush()
            return ctx.now - t0, vol

        drain, _ = job.run(program)[0]
        return drain, vol

    slow, vol_off = drain_time(False)
    fast, vol_on = drain_time(True)
    assert fast < 0.5 * slow  # 16 request latencies collapse to ~1
    # every op still individually durable with correct byte counts
    import math
    recs = vol_on.log.select(op="write")
    assert len(recs) == 16
    assert all(math.isfinite(r.t_complete) for r in recs)
    assert all(r.nbytes == (MiB // 16) * 8 for r in recs)


def test_write_merging_respects_threshold():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0, merge_writes=True,
                   merge_threshold=MiB)  # at most ~2 x 512 KiB per batch

    def program(ctx):
        f = yield from lib.create(ctx, "/thr.h5", vol)
        for i in range(8):
            d = f.create_dataset(f"/d{i}", shape=(MiB // 16,), dtype=FLOAT64)
            yield from d.write(phase=i)
        yield from f.close()

    job.run(program)
    import math
    assert all(math.isfinite(r.t_complete)
               for r in vol.log.select(op="write"))


def test_write_merging_skips_chunked_datasets():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0, merge_writes=True)

    def program(ctx):
        f = yield from lib.create(ctx, "/ck.h5", vol)
        for i in range(4):
            d = f.create_dataset(f"/d{i}", shape=(MiB,), dtype=FLOAT64,
                                 chunks=(MiB // 4,))
            yield from d.write(phase=i)
        yield from f.close()

    job.run(program)
    import math
    assert all(math.isfinite(r.t_complete)
               for r in vol.log.select(op="write"))


def test_merge_threshold_validation():
    with pytest.raises(ValueError):
        AsyncVOL(merge_threshold=0.0)


def test_failed_background_write_releases_staging():
    """A failed drain must free its staging reservation, or writers
    blocked on backpressure would hang forever."""
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def broken_pfs_write(node, target, nbytes, tag=None):
        raise IOError("backend down")

    cluster.pfs_write = broken_pfs_write

    def program(ctx):
        f = yield from lib.create(ctx, "/leak.h5", vol)
        es = EventSet(ctx.engine)
        d = f.create_dataset("/d", shape=(MiB,), dtype=FLOAT64)
        yield from d.write(es=es, phase=0)
        try:
            yield from es.wait()
        except IOError:
            pass
        return None

    job.run(program)
    for buf in vol._staging.values():
        assert buf.used == pytest.approx(0.0)
