"""Tests for I/O trace records and the paper-metric reductions."""

import json
import math

import pytest

from repro.trace import IOLog, IOOpRecord, records_to_csv, records_to_json


def rec(rank=0, nbytes=100.0, phase=0, t0=0.0, t1=1.0, tc=None, op="write",
        mode="sync", dataset="/d", cache_hit=False):
    return IOOpRecord(
        op=op, mode=mode, rank=rank, nbytes=nbytes, dataset=dataset,
        phase=phase, t_submit=t0, t_unblocked=t1,
        t_complete=tc if tc is not None else t1, cache_hit=cache_hit,
    )


def test_record_blocking_and_completion():
    r = rec(t0=1.0, t1=3.0, tc=10.0)
    assert r.blocking_time == pytest.approx(2.0)
    assert r.completion_time == pytest.approx(9.0)
    assert r.observed_rate == pytest.approx(50.0)


def test_record_validation():
    with pytest.raises(ValueError):
        rec(op="append")
    with pytest.raises(ValueError):
        rec(mode="turbo")
    with pytest.raises(ValueError):
        rec(nbytes=-1.0)
    with pytest.raises(ValueError):
        IOOpRecord(op="write", mode="sync", rank=0, nbytes=1.0, dataset="/d",
                   phase=0, t_submit=5.0, t_unblocked=4.0)


def test_zero_blocking_rate_is_inf():
    r = rec(t0=1.0, t1=1.0)
    assert math.isinf(r.observed_rate)


def test_log_select_filters():
    log = IOLog()
    log.append(rec(rank=0, op="write", phase=0))
    log.append(rec(rank=1, op="read", phase=0))
    log.append(rec(rank=0, op="write", phase=1, mode="async", tc=5.0))
    assert len(log) == 3
    assert len(log.select(op="write")) == 2
    assert len(log.select(mode="async")) == 1
    assert len(log.select(rank=0, phase=1)) == 1
    assert log.phases() == [0, 1]
    assert log.phases(op="read") == [0]


def test_phase_io_time_is_slowest_rank():
    log = IOLog()
    # rank 0: two ops totalling 3s; rank 1: one op of 5s
    log.append(rec(rank=0, t0=0.0, t1=1.0, phase=0))
    log.append(rec(rank=0, t0=1.0, t1=3.0, phase=0))
    log.append(rec(rank=1, t0=0.0, t1=5.0, phase=0))
    assert log.phase_io_time(0) == pytest.approx(5.0)


def test_phase_bandwidth_aggregates_bytes():
    log = IOLog()
    log.append(rec(rank=0, nbytes=100.0, t0=0.0, t1=2.0, phase=0))
    log.append(rec(rank=1, nbytes=300.0, t0=0.0, t1=2.0, phase=0))
    assert log.phase_bytes(0) == pytest.approx(400.0)
    assert log.phase_bandwidth(0) == pytest.approx(200.0)


def test_peak_and_mean_bandwidth():
    log = IOLog()
    log.append(rec(phase=0, nbytes=100.0, t0=0.0, t1=1.0))
    log.append(rec(phase=1, nbytes=100.0, t0=0.0, t1=4.0))
    assert log.peak_bandwidth() == pytest.approx(100.0)
    assert log.mean_bandwidth() == pytest.approx((100.0 + 25.0) / 2)


def test_phase_metrics_validation():
    log = IOLog()
    with pytest.raises(ValueError):
        log.phase_io_time(0)
    with pytest.raises(ValueError):
        log.peak_bandwidth()


def test_total_blocking_time_per_rank():
    log = IOLog()
    log.append(rec(rank=2, t0=0.0, t1=1.5, phase=0))
    log.append(rec(rank=2, t0=2.0, t1=2.5, phase=1))
    assert log.total_blocking_time(2) == pytest.approx(2.0)
    assert log.total_blocking_time(0) == 0.0


def test_csv_export_roundtrip_fields():
    log = IOLog()
    log.append(rec())
    text = records_to_csv(log.records)
    lines = text.strip().splitlines()
    assert lines[0].startswith("op,mode,rank,nbytes")
    assert len(lines) == 2
    assert "write" in lines[1]


def test_json_export_nan_as_null():
    r = IOOpRecord(op="write", mode="async", rank=0, nbytes=1.0, dataset="/d",
                   phase=None, t_submit=0.0, t_unblocked=1.0)
    rows = json.loads(records_to_json([r]))
    assert rows[0]["t_complete"] is None
    assert rows[0]["phase"] is None
    assert rows[0]["mode"] == "async"


def test_merge_keeps_submit_order():
    a, b = IOLog(), IOLog()
    a.append(rec(rank=0, t0=0.0, t1=1.0, phase=0))
    a.append(rec(rank=0, t0=4.0, t1=5.0, phase=1))
    b.append(rec(rank=1, t0=2.0, t1=3.0, phase=0))
    merged = a.merge(b)
    assert [r.t_submit for r in merged.records] == [0.0, 2.0, 4.0]
    assert len(a) == 2 and len(b) == 1  # inputs untouched


def test_per_dataset_summary():
    log = IOLog()
    log.append(rec(dataset="/a", nbytes=10.0, t0=0.0, t1=1.0))
    log.append(rec(dataset="/a", nbytes=30.0, t0=1.0, t1=4.0))
    log.append(rec(dataset="/b", nbytes=5.0, t0=0.0, t1=0.5))
    summary = log.per_dataset_summary()
    assert summary["/a"]["ops"] == 2
    assert summary["/a"]["bytes"] == 40.0
    assert summary["/a"]["mean_blocking"] == pytest.approx(2.0)
    assert summary["/b"]["ops"] == 1


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


def test_profile_log_fields():
    from repro.trace import profile_log
    log = IOLog()
    log.append(rec(rank=0, nbytes=2 << 20, t0=0.0, t1=2.0, phase=0))
    log.append(rec(rank=1, nbytes=64 << 20, t0=0.0, t1=4.0, phase=0,
                   op="read", mode="async", cache_hit=True))
    prof = profile_log(log, app_time=10.0)
    assert prof.n_ops == 2
    assert prof.n_ranks == 2
    assert prof.bytes_written == 2 << 20
    assert prof.bytes_read == 64 << 20
    assert prof.max_io_fraction == pytest.approx(0.4)
    assert prof.median_io_fraction == pytest.approx(0.4)
    assert prof.size_histogram["1-32MiB"] == 1
    assert prof.size_histogram["32MiB-1GiB"] == 1
    assert prof.mode_counts == {"sync": 1, "async": 1}
    assert prof.cache_hits == 1
    assert prof.phase_table == [(0, pytest.approx(4.0),
                                 pytest.approx(float((2 << 20) + (64 << 20))))]


def test_profile_text_report():
    from repro.trace import profile_log
    log = IOLog()
    log.append(rec(rank=0, nbytes=100.0, t0=0.0, t1=1.0, phase=0))
    text = profile_log(log, app_time=5.0).to_text()
    assert "I/O profile" in text
    assert "0-4KiB" in text
    assert "phases" in text


def test_profile_validation():
    from repro.trace import profile_log
    with pytest.raises(ValueError):
        profile_log(IOLog(), app_time=1.0)
    log = IOLog()
    log.append(rec())
    with pytest.raises(ValueError):
        profile_log(log, app_time=0.0)


def test_profile_end_to_end_run():
    from repro.trace import profile_log
    from repro.sim import Engine
    from repro.mpi import MPIJob
    from repro.platform import Cluster
    from repro.platform import testbed as make_testbed
    from repro.hdf5 import AsyncVOL, H5Library
    from repro.workloads import VPICConfig, vpic_program

    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    lib = H5Library(cluster)
    vol = AsyncVOL(init_time=0.0)
    cfg = VPICConfig(particles_per_rank=1 << 20, steps=2, compute_seconds=3.0)
    results = MPIJob(cluster, 4, ranks_per_node=4).run(
        vpic_program(lib, vol, cfg))
    prof = profile_log(vol.log, app_time=max(results))
    assert prof.n_ops == 4 * 2 * 8
    assert prof.max_io_fraction < 0.5  # async: mostly computing
    assert prof.mode_counts["async"] == prof.n_ops
