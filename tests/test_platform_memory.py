"""Tests for the memory bandwidth models (paper §III-B1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.memory import (
    NVLINK2_PEAK,
    PCIE3_PEAK,
    BandwidthCurve,
    GpuLinkSpec,
    MemcpySpec,
)

MiB = float(1 << 20)
GB = 1e9


def test_curve_reaches_fraction_at_saturation_size():
    curve = BandwidthCurve.from_saturation(
        peak=10 * GB, saturation_size=32 * MiB, fraction=0.95
    )
    assert curve.bandwidth(32 * MiB) == pytest.approx(0.95 * 10 * GB)


def test_curve_monotone_increasing():
    curve = BandwidthCurve.from_saturation(peak=10 * GB, saturation_size=32 * MiB)
    sizes = [2**k * MiB for k in range(-4, 10)]
    bws = [curve.bandwidth(s) for s in sizes]
    assert all(b1 < b2 for b1, b2 in zip(bws, bws[1:]))


def test_curve_never_exceeds_peak():
    curve = BandwidthCurve.from_saturation(peak=10 * GB, saturation_size=32 * MiB)
    assert curve.bandwidth(1e15) < 10 * GB
    assert curve.bandwidth(1e15) == pytest.approx(10 * GB, rel=1e-3)


def test_paper_memcpy_constant_above_32mb():
    """§III-B1: memcpy bandwidth ~constant for requests > 32 MB."""
    curve = MemcpySpec().per_copy
    b32 = curve.bandwidth(32 * MiB)
    b256 = curve.bandwidth(256 * MiB)
    assert b256 / b32 < 1.06  # within a few percent = "constant"
    # while small requests are clearly penalized
    assert curve.bandwidth(1 * MiB) < 0.5 * b32


def test_transfer_time_affine_in_size():
    """t(s) = (s + s0)/peak: fixed setup cost plus linear term."""
    curve = BandwidthCurve(peak=10 * GB, s0=2 * MiB)
    t1 = curve.transfer_time(10 * MiB)
    t2 = curve.transfer_time(20 * MiB)
    # doubling size less than doubles the time (setup amortization)
    assert t2 < 2 * t1
    assert t2 - t1 == pytest.approx(10 * MiB / (10 * GB))


def test_zero_size_transfer_is_free():
    curve = BandwidthCurve(peak=1 * GB, s0=MiB)
    assert curve.transfer_time(0.0) == 0.0
    assert curve.bandwidth(0.0) == 0.0


def test_curve_validation():
    with pytest.raises(ValueError):
        BandwidthCurve(peak=0.0, s0=1.0)
    with pytest.raises(ValueError):
        BandwidthCurve(peak=1.0, s0=-1.0)
    with pytest.raises(ValueError):
        BandwidthCurve.from_saturation(peak=1.0, saturation_size=1.0, fraction=1.5)
    with pytest.raises(ValueError):
        BandwidthCurve(peak=1.0, s0=0.0).bandwidth(-1.0)


def test_gpu_pinned_near_link_peak():
    """§III-B1: pinned host memory achieves close to theoretical max."""
    spec = GpuLinkSpec(link_peak=NVLINK2_PEAK)
    bw = spec.curve(pinned=True).bandwidth(100 * MiB)
    assert bw > 0.9 * NVLINK2_PEAK


def test_gpu_pageable_slower_than_pinned():
    spec = GpuLinkSpec(link_peak=PCIE3_PEAK)
    pinned = spec.transfer_time(100 * MiB, pinned=True)
    pageable = spec.transfer_time(100 * MiB, pinned=False)
    assert pageable > pinned


def test_gpu_amortized_above_10mb():
    """§III-B1: GPU copy cost amortized for > 10 MB transfers."""
    spec = GpuLinkSpec()
    b10 = spec.curve(True).bandwidth(10 * MiB)
    b100 = spec.curve(True).bandwidth(100 * MiB)
    assert b100 / b10 < 1.06


def test_memcpy_spec_validation():
    with pytest.raises(ValueError):
        MemcpySpec(node_aggregate=0.0)


@given(
    peak=st.floats(min_value=1e6, max_value=1e12),
    s0=st.floats(min_value=0.0, max_value=1e9),
    size=st.floats(min_value=1.0, max_value=1e12),
)
@settings(max_examples=80, deadline=None)
def test_property_time_bandwidth_consistency(peak, s0, size):
    """bandwidth(s) * transfer_time(s) == s for every curve and size."""
    curve = BandwidthCurve(peak=peak, s0=s0)
    assert curve.bandwidth(size) * curve.transfer_time(size) == pytest.approx(
        size, rel=1e-9
    )
