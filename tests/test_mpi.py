"""Tests for the simulated MPI runtime."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, SimulationError
from repro.mpi import CollectiveCostModel, MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.platform.spec import InterconnectSpec


def make_job(nprocs=8, nodes=2, ranks_per_node=4):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=nodes, ranks_per_node=ranks_per_node),
                      nodes)
    return MPIJob(cluster, nprocs, ranks_per_node=ranks_per_node)


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


def test_costmodel_barrier_log_depth():
    cm = CollectiveCostModel(InterconnectSpec(alpha=1e-6, beta=1e9))
    assert cm.barrier(1) == 0.0
    assert cm.barrier(2) == pytest.approx(1e-6)
    assert cm.barrier(1024) == pytest.approx(10e-6)
    assert cm.barrier(1025) == pytest.approx(11e-6)


def test_costmodel_bcast_bandwidth_term():
    cm = CollectiveCostModel(InterconnectSpec(alpha=0.0, beta=1e9))
    assert cm.bcast(2, 1e9) == pytest.approx(1.0)
    assert cm.bcast(4, 1e9) == pytest.approx(2.0)


def test_costmodel_allreduce_is_reduce_plus_bcast():
    cm = CollectiveCostModel(InterconnectSpec(alpha=1e-6, beta=1e9))
    assert cm.allreduce(16, 100.0) == pytest.approx(
        cm.reduce(16, 100.0) + cm.bcast(16, 100.0)
    )


def test_costmodel_invalid_nprocs():
    cm = CollectiveCostModel(InterconnectSpec())
    with pytest.raises(ValueError):
        cm.barrier(0)


def test_costmodel_monotone_in_procs():
    cm = CollectiveCostModel(InterconnectSpec(alpha=1e-6, beta=1e9))
    costs = [cm.allreduce(p, 1024.0) for p in [2, 8, 64, 512]]
    assert costs == sorted(costs)


# ---------------------------------------------------------------------------
# Job & placement
# ---------------------------------------------------------------------------


def test_job_places_ranks_blockwise():
    job = make_job(nprocs=8, nodes=2, ranks_per_node=4)
    assert [ctx.node.index for ctx in job.contexts] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert job.nnodes == 2


def test_job_rejects_oversubscription():
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=2, ranks_per_node=4), 2)
    with pytest.raises(ValueError):
        MPIJob(cluster, nprocs=9, ranks_per_node=4)


def test_job_uses_machine_default_density():
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=4, ranks_per_node=4), 4)
    job = MPIJob(cluster, nprocs=16)
    assert job.ranks_per_node == 4


def test_job_run_returns_per_rank_results():
    job = make_job()

    def program(ctx):
        yield ctx.compute(float(ctx.rank))
        return ctx.rank * 10

    assert job.run(program) == [r * 10 for r in range(8)]


def test_job_propagates_rank_exception():
    job = make_job()

    def program(ctx):
        yield ctx.compute(1.0)
        if ctx.rank == 3:
            raise RuntimeError("rank 3 exploded")
        yield from ctx.barrier()

    with pytest.raises((RuntimeError, SimulationError)):
        job.run(program)


def test_mismatched_collective_deadlocks():
    job = make_job(nprocs=4, nodes=1, ranks_per_node=4)

    def program(ctx):
        if ctx.rank != 0:
            yield from ctx.barrier()
        else:
            yield ctx.compute(1.0)

    with pytest.raises(SimulationError, match="deadlock"):
        job.run(program)


# ---------------------------------------------------------------------------
# Collectives semantics
# ---------------------------------------------------------------------------


def test_barrier_synchronizes_ranks():
    job = make_job(nprocs=4, nodes=1, ranks_per_node=4)

    def program(ctx):
        yield ctx.compute(float(ctx.rank))  # staggered arrivals 0..3
        yield from ctx.barrier()
        return ctx.now

    times = job.run(program)
    assert all(t == pytest.approx(times[0]) for t in times)
    assert times[0] >= 3.0


def test_bcast_delivers_root_value():
    job = make_job(nprocs=4, nodes=1, ranks_per_node=4)

    def program(ctx):
        value = "payload" if ctx.rank == 2 else None
        got = yield from ctx.comm.bcast(value, root=2, rank=ctx.rank)
        return got

    assert job.run(program) == ["payload"] * 4


def test_gather_collects_in_rank_order():
    job = make_job(nprocs=4, nodes=1, ranks_per_node=4)

    def program(ctx):
        values = yield from ctx.comm.gather(ctx.rank ** 2, rank=ctx.rank)
        return values

    for values in job.run(program):
        assert values == [0, 1, 4, 9]


def test_allreduce_sum_and_max():
    job = make_job(nprocs=4, nodes=1, ranks_per_node=4)

    def program(ctx):
        total = yield from ctx.comm.allreduce(float(ctx.rank), rank=ctx.rank)
        peak = yield from ctx.comm.allmax(float(ctx.rank), rank=ctx.rank)
        return (total, peak)

    for total, peak in job.run(program):
        assert total == pytest.approx(6.0)
        assert peak == pytest.approx(3.0)


def test_repeated_collectives_reuse_cleanly():
    job = make_job(nprocs=3, nodes=1, ranks_per_node=4)

    def program(ctx):
        results = []
        for step in range(5):
            s = yield from ctx.comm.allreduce(float(step + ctx.rank), rank=ctx.rank)
            results.append(s)
        return results

    for results in job.run(program):
        assert results == [pytest.approx(3.0 + 3 * s) for s in range(5)]


def test_collective_cost_advances_clock():
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    job = MPIJob(cluster, 4, ranks_per_node=4)
    alpha = cluster.machine.interconnect.alpha

    def program(ctx):
        yield from ctx.barrier()
        return ctx.now

    times = job.run(program)
    assert times[0] == pytest.approx(alpha * 2)  # log2(4) = 2 hops


def test_rank_context_validation():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)
    ctx = job.contexts[0]
    with pytest.raises(ValueError):
        ctx.compute(-1.0)


@given(nprocs=st.integers(min_value=1, max_value=32))
@settings(max_examples=25, deadline=None)
def test_property_allreduce_correct_for_any_size(nprocs):
    eng = Engine()
    nodes = (nprocs + 3) // 4
    cluster = Cluster(eng, make_testbed(nodes=max(nodes, 1), ranks_per_node=4),
                      max(nodes, 1))
    job = MPIJob(cluster, nprocs, ranks_per_node=4)

    def program(ctx):
        total = yield from ctx.comm.allreduce(1.0, rank=ctx.rank)
        return total

    assert job.run(program) == [pytest.approx(float(nprocs))] * nprocs


# ---------------------------------------------------------------------------
# Point-to-point
# ---------------------------------------------------------------------------


def test_send_recv_delivers_value():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send({"k": 7}, dest=1, rank=0, nbytes=1e6)
            return None
        value = yield from ctx.comm.recv(source=0, rank=1)
        return value

    assert job.run(program)[1] == {"k": 7}


def test_send_recv_charges_transfer_time():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)
    beta = job.cluster.machine.interconnect.beta

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send("x", dest=1, rank=0, nbytes=1e9)
        else:
            yield from ctx.comm.recv(source=0, rank=1)
        return ctx.now

    times = job.run(program)
    expected = job.cluster.machine.interconnect.alpha + 1e9 / beta
    assert times[1] == pytest.approx(expected, rel=1e-6)


def test_irecv_overlaps_compute():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.compute(3.0)
            yield from ctx.comm.send("late", dest=1, rank=0)
            return None
        req = ctx.comm.irecv(source=0, rank=1)
        yield ctx.compute(5.0)  # overlap the wait with work
        assert req.complete  # message arrived at t=3 during compute
        value = yield req
        return (value, ctx.now)

    value, t = job.run(program)[1]
    assert value == "late"
    assert t == pytest.approx(5.0, rel=1e-3)


def test_messages_matched_in_order_per_tag():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)

    def program(ctx):
        if ctx.rank == 0:
            for i in range(3):
                yield from ctx.comm.send(i, dest=1, rank=0)
            return None
        got = []
        for _ in range(3):
            got.append((yield from ctx.comm.recv(source=0, rank=1)))
        return got

    assert job.run(program)[1] == [0, 1, 2]


def test_tags_separate_message_streams():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)

    def program(ctx):
        if ctx.rank == 0:
            # non-blocking: tag-1 send must not rendezvous-block while
            # the receiver waits on tag 2 first
            r1 = ctx.comm.isend("a", dest=1, rank=0, tag=1)
            r2 = ctx.comm.isend("b", dest=1, rank=0, tag=2)
            yield r1
            yield r2
            return None
        b = yield from ctx.comm.recv(source=0, rank=1, tag=2)
        a = yield from ctx.comm.recv(source=0, rank=1, tag=1)
        return (a, b)

    assert job.run(program)[1] == ("a", "b")


def test_ring_exchange():
    job = make_job(nprocs=4, nodes=1, ranks_per_node=4)

    def program(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        req = ctx.comm.irecv(source=left, rank=ctx.rank)
        yield from ctx.comm.send(ctx.rank, dest=right, rank=ctx.rank)
        value = yield req
        return value

    assert job.run(program) == [3, 0, 1, 2]


def test_unmatched_recv_deadlocks():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)

    def program(ctx):
        if ctx.rank == 1:
            yield from ctx.comm.recv(source=0, rank=1)
        else:
            yield ctx.compute(1.0)

    with pytest.raises(SimulationError, match="deadlock"):
        job.run(program)


def test_p2p_rank_validation():
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)
    with pytest.raises(ValueError):
        job.comm.isend("x", dest=5, rank=0)
    with pytest.raises(ValueError):
        job.comm.irecv(source=-1, rank=0)


@given(
    n_messages=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_property_p2p_fifo_per_channel(n_messages, seed):
    """Messages between one (src, dst, tag) pair always arrive in send
    order, regardless of how sends/recvs interleave in time."""
    import numpy as np
    rng = np.random.default_rng(seed)
    send_gaps = rng.uniform(0.0, 2.0, n_messages).tolist()
    recv_gaps = rng.uniform(0.0, 2.0, n_messages).tolist()
    job = make_job(nprocs=2, nodes=1, ranks_per_node=4)

    def program(ctx):
        if ctx.rank == 0:
            reqs = []
            for i, gap in enumerate(send_gaps):
                yield ctx.compute(gap)
                reqs.append(ctx.comm.isend(i, dest=1, rank=0))
            for r in reqs:
                yield r
            return None
        got = []
        for gap in recv_gaps:
            yield ctx.compute(gap)
            got.append((yield from ctx.comm.recv(source=0, rank=1)))
        return got

    assert job.run(program)[1] == list(range(n_messages))
