"""Cross-layer integration tests: end-to-end flows, determinism,
failure injection."""

import math

import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, ContentionModel
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT64, AsyncVOL, EventSet, H5Library, NativeVOL, slab_1d
from repro.harness import run_experiment
from repro.model import (
    Advisor,
    AdaptiveVOL,
    ComputeTimeModel,
    EpochCosts,
    IORateModel,
    MeasurementHistory,
    TransactOverheadModel,
    async_epoch_time,
    memcpy_microbench,
    sync_epoch_time,
)
from repro.workloads import VPICConfig, vpic_program

MiB = 1 << 20


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_identical_runs_are_bit_identical():
    cfg = VPICConfig(particles_per_rank=MiB, steps=3, compute_seconds=2.0)

    def run():
        r = run_experiment(
            make_testbed(nodes=4, ranks_per_node=4), "vpic", vpic_program,
            cfg, mode="async", nranks=16, day=2,
            contention=ContentionModel(seed=9, median_load=0.3), op="write",
        )
        return (r.peak_bandwidth, r.mean_bandwidth, r.app_time, r.availability)

    assert run() == run()


def test_different_days_differ():
    cfg = VPICConfig(particles_per_rank=MiB, steps=2, compute_seconds=2.0)
    cm = ContentionModel(seed=9, median_load=1.0)

    def run(day):
        return run_experiment(
            make_testbed(nodes=8, ranks_per_node=4), "vpic", vpic_program,
            cfg, mode="sync", nranks=32, day=day, contention=cm, op="write",
        ).peak_bandwidth

    assert run(0) != run(1)


# ---------------------------------------------------------------------------
# End-to-end: measure -> fit -> predict -> decide
# ---------------------------------------------------------------------------


def test_full_model_workflow_predicts_simulation():
    """The paper's workflow: microbench + history regression predict the
    simulated epoch times well enough to rank the two modes."""
    machine = make_testbed(nodes=8, ranks_per_node=4)
    nranks = 32
    cfg = VPICConfig(particles_per_rank=2 * MiB, steps=3, compute_seconds=4.0)

    # 1. Calibrate the transactional-overhead model from microbenchmarks.
    samples = memcpy_microbench(machine)
    transact = TransactOverheadModel.from_samples(
        [s.nbytes for s in samples], [s.seconds for s in samples]
    )

    # 2. Measure both modes in simulation.
    results = {
        mode: run_experiment(machine, "vpic", vpic_program, cfg, mode=mode,
                             nranks=nranks, op="write")
        for mode in ("sync", "async")
    }

    # 3. Build the Eq. 2 costs from measured sync rate + model overhead.
    phase_bytes = results["sync"].total_bytes / results["sync"].n_phases
    t_io = phase_bytes / results["sync"].peak_bandwidth
    per_rank = phase_bytes / nranks
    # one staging copy per property dataset per epoch
    t_transact = 8 * transact.estimate(per_rank / 8)
    costs = EpochCosts(t_comp=cfg.compute_seconds, t_io=t_io,
                       t_transact=t_transact)

    # 4. The model must rank the modes the same way the simulation does.
    sim_sync_epoch = (results["sync"].app_time) / cfg.steps
    sim_async_epoch = (results["async"].app_time) / cfg.steps
    assert (sync_epoch_time(costs) > async_epoch_time(costs)) == (
        sim_sync_epoch > sim_async_epoch
    )
    # and predict the sync epoch within 20%
    assert sync_epoch_time(costs) == pytest.approx(sim_sync_epoch, rel=0.2)


def test_adaptive_vol_whole_campaign():
    """AdaptiveVOL over a full multi-file campaign stays consistent."""
    engine = Engine()
    cluster = Cluster(engine, make_testbed(nodes=2, ranks_per_node=4), 2)
    lib = H5Library(cluster)
    advisor = Advisor(
        ComputeTimeModel(),
        IORateModel(MeasurementHistory(), mode="sync", min_samples=3),
        TransactOverheadModel.from_memcpy_spec(cluster.machine.node.memcpy),
    )
    vol = AdaptiveVOL(NativeVOL(), AsyncVOL(init_time=0.0), advisor, nranks=8)

    def program(ctx):
        for file_idx in range(2):
            f = yield from lib.create(ctx, f"/campaign{file_idx}.h5", vol)
            for epoch in range(4):
                yield ctx.compute(3.0)
                d = f.create_dataset(f"/e{epoch}", shape=(8 * 2 * MiB,),
                                     dtype=FLOAT64)
                yield from d.write(slab_1d(ctx.rank, 2 * MiB),
                                   phase=file_idx * 4 + epoch)
            yield from f.close()
        return ctx.now

    job = MPIJob(cluster, 8)
    job.run(program)
    assert len(vol.log.records) == 8 * 8  # ranks x phases
    # every op became durable
    assert all(math.isfinite(r.t_complete) for r in vol.log.records)
    # both files fully written
    for file_idx in range(2):
        stored = lib.files[f"/campaign{file_idx}.h5"]
        for dset in stored.datasets.values():
            assert dset.coverage_1d() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Failure injection
# ---------------------------------------------------------------------------


def test_async_drain_survives_pfs_blackout():
    """A temporary full PFS outage stalls background writes; they resume
    when capacity returns and H5Fclose still completes correctly."""
    engine = Engine()
    cluster = Cluster(engine, make_testbed(nodes=1, ranks_per_node=4), 1)
    lib = H5Library(cluster)
    vol = AsyncVOL(init_time=0.0)

    def blackout():
        yield engine.timeout(0.01)
        cluster.pfs.backend.set_capacity(0.0)
        yield engine.timeout(5.0)
        cluster.pfs.backend.set_capacity(
            cluster.machine.filesystem.peak_bandwidth
        )

    engine.process(blackout())

    def program(ctx):
        f = yield from lib.create(ctx, "/blk.h5", vol)
        d = f.create_dataset("/d", shape=(32 * MiB,), dtype=FLOAT64)
        yield from d.write(phase=0)
        yield from f.close()
        return ctx.now

    job = MPIJob(cluster, 1, ranks_per_node=4)
    finished_at = job.run(program)[0]
    assert finished_at > 5.0  # had to wait out the blackout
    rec = vol.log.select(op="write")[0]
    assert math.isfinite(rec.t_complete)
    assert lib.files["/blk.h5"].datasets["/d"].coverage_1d() == 1.0


def test_sync_write_stalls_and_resumes_on_blackout():
    engine = Engine()
    cluster = Cluster(engine, make_testbed(nodes=1, ranks_per_node=4), 1)
    lib = H5Library(cluster)
    vol = NativeVOL()

    def blackout():
        yield engine.timeout(0.05)
        cluster.pfs.backend.set_capacity(0.0)
        yield engine.timeout(2.0)
        cluster.pfs.backend.set_capacity(
            cluster.machine.filesystem.peak_bandwidth
        )

    engine.process(blackout())

    def program(ctx):
        f = yield from lib.create(ctx, "/sb.h5", vol)
        d = f.create_dataset("/d", shape=(64 * MiB,), dtype=FLOAT64)
        t0 = ctx.now
        yield from d.write(phase=0)
        blocked = ctx.now - t0
        yield from f.close()
        return blocked

    job = MPIJob(cluster, 1, ranks_per_node=4)
    blocked = job.run(program)[0]
    assert blocked > 2.0  # the blackout is visible in the blocking time


def test_contention_process_varies_within_run():
    from repro.platform import ContentionProcess
    engine = Engine()
    cluster = Cluster(engine, make_testbed(nodes=1), 1)
    model = ContentionModel(seed=4, median_load=0.5)
    proc = ContentionProcess(model, cluster.pfs, day=0, interval=1.0,
                             duration=10.0)
    proc.start(engine)
    observed = []

    def probe():
        for _ in range(8):
            yield engine.timeout(1.01)
            observed.append(cluster.pfs.availability)

    engine.process(probe())
    engine.run(until=12.0)
    assert len(set(round(a, 6) for a in observed)) > 1


def test_rank_failure_mid_campaign_propagates():
    engine = Engine()
    cluster = Cluster(engine, make_testbed(nodes=1, ranks_per_node=4), 1)
    lib = H5Library(cluster)
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/fail.h5", vol)
        d = f.create_dataset("/d", shape=(4 * MiB,), dtype=FLOAT64)
        yield from d.write(slab_1d(0, MiB), phase=0)
        if ctx.rank == 1:
            raise RuntimeError("node fault on rank 1")
        yield from f.close()

    job = MPIJob(cluster, 2, ranks_per_node=4)
    with pytest.raises(RuntimeError, match="node fault"):
        job.run(program)
