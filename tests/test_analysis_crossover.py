"""Tests for the crossover analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compute_crossover_scale, min_compute_to_benefit
from repro.model import EpochCosts, async_epoch_time, sync_epoch_time


def test_crossover_found_at_saturation():
    """Sync rate saturates; async rate grows linearly: async wins once
    the scales diverge enough to beat the overhead."""
    scales = [32, 64, 128, 256, 512]
    result = compute_crossover_scale(
        scales,
        phase_bytes_of=lambda n: n * 256e6,       # weak scaling
        sync_rate_of=lambda n: min(n * 2e9, 100e9),  # saturates at 50 ranks
        async_rate_of=lambda n: n * 8e9,          # linear staging
        t_comp=30.0,
    )
    assert result.nranks is not None
    # speedups monotone across the saturated region
    sats = [result.speedups[n] for n in scales[2:]]
    assert sats == sorted(sats)
    assert result.speedups[512] > result.speedups[32]


def test_crossover_never_when_async_never_wins():
    result = compute_crossover_scale(
        [8, 16],
        phase_bytes_of=lambda n: 1e6,
        sync_rate_of=lambda n: 100e9,   # I/O basically free
        async_rate_of=lambda n: 1e6,    # huge overhead
        t_comp=0.0001,
    )
    assert result.nranks is None
    assert all(v <= 1.0 for v in result.speedups.values())


def test_crossover_threshold():
    kwargs = dict(
        phase_bytes_of=lambda n: n * 1e9,
        sync_rate_of=lambda n: 50e9,
        async_rate_of=lambda n: n * 8e9,
        t_comp=10.0,
    )
    lax = compute_crossover_scale([16, 64, 256], threshold=1.0, **kwargs)
    strict = compute_crossover_scale([16, 64, 256], threshold=1.5, **kwargs)
    assert (strict.nranks or 10**9) >= (lax.nranks or 10**9)
    with pytest.raises(ValueError):
        compute_crossover_scale([1], threshold=0.0, **kwargs)


def test_min_compute_to_benefit_regimes():
    # overhead smaller than I/O: benefit needs c > t_tr/2
    assert min_compute_to_benefit(t_io=10.0, t_transact=2.0) == pytest.approx(1.0)
    # overhead dominates I/O: never beneficial
    assert min_compute_to_benefit(t_io=1.0, t_transact=2.0) == math.inf
    with pytest.raises(ValueError):
        min_compute_to_benefit(-1.0, 0.0)


@given(
    t_io=st.floats(min_value=0.01, max_value=100.0),
    t_tr=st.floats(min_value=0.001, max_value=100.0),
)
@settings(max_examples=80, deadline=None)
def test_property_min_compute_boundary_is_tight(t_io, t_tr):
    """Just above the boundary async wins; just below it doesn't."""
    c_min = min_compute_to_benefit(t_io, t_tr)
    if math.isinf(c_min):
        # no c < t_io makes async faster
        for c in [0.0, t_io / 2, t_io]:
            costs = EpochCosts(t_comp=c, t_io=t_io, t_transact=t_tr)
            assert async_epoch_time(costs) >= sync_epoch_time(costs) - 1e-9
        return
    eps = max(1e-9, c_min * 1e-6)
    above = EpochCosts(t_comp=c_min + eps, t_io=t_io, t_transact=t_tr)
    assert async_epoch_time(above) < sync_epoch_time(above)
    if c_min > 0:
        below = EpochCosts(t_comp=max(0.0, c_min - eps), t_io=t_io,
                           t_transact=t_tr)
        assert async_epoch_time(below) >= sync_epoch_time(below) - 1e-9
