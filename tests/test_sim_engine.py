"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, SimulationError, Timeout


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_time():
    eng = Engine()

    def proc():
        yield Timeout(2.5)
        return eng.now

    assert eng.run_process(proc()) == 2.5
    assert eng.now == 2.5


def test_timeout_value_passed_through():
    eng = Engine()

    def proc():
        got = yield Timeout(1.0, value="payload")
        return got

    assert eng.run_process(proc()) == "payload"


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_sequential_timeouts_accumulate():
    eng = Engine()

    def proc():
        yield Timeout(1.0)
        yield Timeout(2.0)
        yield Timeout(3.0)
        return eng.now

    assert eng.run_process(proc()) == pytest.approx(6.0)


def test_event_succeed_wakes_waiter():
    eng = Engine()
    ev = eng.event("ping")
    results = []

    def waiter():
        value = yield ev
        results.append((eng.now, value))

    def trigger():
        yield Timeout(5.0)
        ev.succeed("hello")

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert results == [(5.0, "hello")]


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_wait_on_already_triggered_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed(42)

    def proc():
        value = yield ev
        return value

    assert eng.run_process(proc()) == 42


def test_event_failure_raises_in_waiter():
    eng = Engine()
    ev = eng.event()

    def waiter():
        try:
            yield ev
        except ValueError as err:
            return f"caught {err}"

    def trigger():
        yield Timeout(1.0)
        ev.fail(ValueError("boom"))

    proc = eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert proc.value == "caught boom"


def test_process_join_returns_child_value():
    eng = Engine()

    def child():
        yield Timeout(3.0)
        return "child-result"

    def parent():
        result = yield eng.process(child())
        return (eng.now, result)

    assert eng.run_process(parent()) == (3.0, "child-result")


def test_unhandled_child_exception_propagates_to_joiner():
    eng = Engine()

    def child():
        yield Timeout(1.0)
        raise RuntimeError("child failed")

    def parent():
        try:
            yield eng.process(child())
        except RuntimeError as err:
            return str(err)

    assert eng.run_process(parent()) == "child failed"


def test_unjoined_exception_escapes_run():
    eng = Engine()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("unjoined")

    eng.process(bad())
    with pytest.raises(RuntimeError, match="unjoined"):
        eng.run()


def test_all_of_waits_for_all():
    eng = Engine()

    def worker(duration, value):
        yield Timeout(duration)
        return value

    def parent():
        procs = [eng.process(worker(d, i)) for i, d in enumerate([3.0, 1.0, 2.0])]
        values = yield AllOf(procs)
        return (eng.now, values)

    t, values = eng.run_process(parent())
    assert t == 3.0
    assert values == [0, 1, 2]  # input order, not completion order


def test_all_of_empty_fires_immediately():
    eng = Engine()

    def parent():
        values = yield AllOf([])
        return (eng.now, values)

    assert eng.run_process(parent()) == (0.0, [])


def test_any_of_returns_first():
    eng = Engine()

    def worker(duration, value):
        yield Timeout(duration)
        return value

    def parent():
        procs = [eng.process(worker(d, i)) for i, d in enumerate([3.0, 1.0, 2.0])]
        index, value = yield AnyOf(procs)
        return (eng.now, index, value)

    assert eng.run_process(parent()) == (1.0, 1, 1)


def test_any_of_requires_children():
    with pytest.raises(ValueError):
        AnyOf([])


def test_fifo_ordering_at_same_time():
    eng = Engine()
    order = []

    def proc(tag):
        yield Timeout(1.0)
        order.append(tag)

    for tag in ["a", "b", "c"]:
        eng.process(proc(tag))
    eng.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_early():
    eng = Engine()

    def proc():
        yield Timeout(100.0)

    eng.process(proc())
    stopped = eng.run(until=10.0)
    assert stopped == 10.0
    assert eng.now == 10.0


def test_deadlock_detected():
    eng = Engine()

    def proc():
        yield eng.event("never")

    with pytest.raises(SimulationError, match="deadlocked"):
        eng.run_process(proc())


def test_schedule_into_past_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda: None)


def test_determinism_two_identical_runs():
    def build():
        eng = Engine()
        log = []

        def proc(tag, delays):
            for d in delays:
                yield Timeout(d)
                log.append((eng.now, tag))

        eng.process(proc("x", [1.0, 1.0, 1.0]))
        eng.process(proc("y", [1.5, 1.5]))
        eng.process(proc("z", [3.0]))
        eng.run()
        return log

    assert build() == build()


def test_many_processes_scale():
    eng = Engine()
    done = []

    def proc(i):
        yield Timeout(float(i % 7))
        done.append(i)

    for i in range(5000):
        eng.process(proc(i))
    eng.run()
    assert len(done) == 5000


def test_any_of_failure_propagates():
    eng = Engine()

    def failing():
        yield Timeout(1.0)
        raise ValueError("first failure")

    def slow():
        yield Timeout(10.0)
        return "ok"

    def parent():
        try:
            yield AnyOf([eng.process(failing()), eng.process(slow())])
        except ValueError as err:
            return f"caught {err} at {eng.now}"

    assert eng.run_process(parent()) == "caught first failure at 1.0"


def test_all_of_failure_short_circuits():
    eng = Engine()

    def failing():
        yield Timeout(1.0)
        raise RuntimeError("member died")

    def slow():
        yield Timeout(10.0)

    def parent():
        try:
            yield AllOf([eng.process(failing()), eng.process(slow())])
        except RuntimeError:
            return eng.now

    # failure surfaces at t=1, without waiting for the slow member
    assert eng.run_process(parent()) == 1.0


def test_priority_late_runs_after_normal_at_same_time():
    from repro.sim.engine import PRIORITY_LATE
    eng = Engine()
    order = []
    eng.schedule(1.0, lambda: order.append("late"), priority=PRIORITY_LATE)
    eng.schedule(1.0, lambda: order.append("normal1"))
    eng.schedule(1.0, lambda: order.append("normal2"))
    eng.run()
    assert order == ["normal1", "normal2", "late"]


def test_delayed_fail_raises_at_fire_time():
    eng = Engine()
    ev = eng.event()
    ev.fail(ValueError("later"), delay=3.0)

    def waiter():
        try:
            yield ev
        except ValueError:
            return eng.now

    assert eng.run_process(waiter()) == 3.0


def test_event_value_and_flags():
    eng = Engine()
    ev = eng.event("x")
    assert not ev.triggered and not ev.ok
    ev.succeed("v")
    assert ev.triggered and ev.ok
    assert ev.value == "v"
    bad = eng.event()
    bad.fail(RuntimeError("no"))
    assert bad.triggered and not bad.ok


def test_engine_peek():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.schedule(4.0, lambda: None)
    assert eng.peek() == 4.0


def test_run_process_propagates_exception():
    eng = Engine()

    def boom():
        yield Timeout(1.0)
        raise KeyError("k")

    import pytest as _pytest
    with _pytest.raises(KeyError):
        eng.run_process(boom())


# ---------------------------------------------------------------------------
# run(until)/peek interaction and the zero-delay ready-queue fast path
# ---------------------------------------------------------------------------


def test_run_until_leaves_peeked_event_queued():
    """The first event past ``until`` is peeked but not popped.

    It must stay queued for a later ``run`` call and must not count
    toward ``executed``/``stats.events``.
    """
    eng = Engine()
    fired = []
    eng.schedule(5.0, lambda: fired.append(5.0))
    eng.schedule(20.0, lambda: fired.append(20.0))

    assert eng.run(until=10.0) == 10.0
    assert fired == [5.0]
    assert eng.executed == 1  # the peeked t=20 event was not counted
    assert eng.peek() == 20.0  # ... and is still queued

    assert eng.run() == 20.0  # resumable: the event fires later
    assert fired == [5.0, 20.0]
    assert eng.executed == 2
    assert eng.peek() == float("inf")


def test_run_until_exact_boundary_runs_event():
    eng = Engine()
    fired = []
    eng.schedule(10.0, lambda: fired.append("at"))
    eng.run(until=10.0)
    # Callbacks scheduled exactly *at* the horizon do run.
    assert fired == ["at"]


def test_run_until_clamps_clock_then_zero_delay_order_preserved():
    """Zero-delay events scheduled after a backward clock clamp must
    still interleave correctly with older queued events."""
    eng = Engine()
    order = []
    eng.schedule(7.0, lambda: order.append("later"))
    eng.run(until=3.0)  # clock clamped to 3.0, t=7 event still queued
    eng.schedule(0.0, lambda: order.append("now"))  # fires at t=3
    eng.run()
    assert order == ["now", "later"]
    assert eng.now == 7.0


def test_zero_delay_fast_path_fifo_and_priority_bands():
    from repro.sim.engine import PRIORITY_LATE

    eng = Engine()
    order = []
    eng.schedule(0.0, lambda: order.append("late1"), priority=PRIORITY_LATE)
    eng.schedule(0.0, lambda: order.append("n1"))
    eng.schedule(0.0, lambda: order.append("n2"))
    eng.schedule(0.0, lambda: order.append("late2"), priority=PRIORITY_LATE)
    eng.run()
    # Normal band before late band at the same instant; FIFO within a
    # band — identical to a pure-heap engine's (time, priority, seq).
    assert order == ["n1", "n2", "late1", "late2"]
    assert eng.stats.events == 4
    assert eng.stats.fastpath_events >= 1


def test_zero_delay_fast_path_merges_with_heap_events():
    eng = Engine()
    order = []

    def proc():
        order.append("start")
        yield Timeout(1.0)
        # At t=1: queue a zero-delay callback and a delayed one.
        eng.schedule(0.0, lambda: order.append("imm"))
        eng.schedule(2.0, lambda: order.append("delayed"))
        yield Timeout(5.0)
        order.append("end")

    eng.process(proc())
    eng.run()
    assert order == ["start", "imm", "delayed", "end"]


def test_engine_stats_fastpath_counter_bounded_by_events():
    eng = Engine()
    for _ in range(5):
        eng.schedule(0.0, lambda: None)
    eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.stats.events == 6
    assert 0 < eng.stats.fastpath_events <= eng.stats.events
