"""Tests for the checkpoint/restart workload."""

import math

import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.workloads import RestartConfig, restart_program

Mi = 1 << 20

CFG = RestartConfig(elems_per_rank=Mi, checkpoints=2, compute_seconds=2.0)


def make_env(nprocs=4):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    job = MPIJob(cluster, nprocs, ranks_per_node=4)
    lib = H5Library(cluster)
    return eng, cluster, job, lib


def test_fresh_run_writes_checkpoints():
    eng, cluster, job, lib = make_env()
    vol = NativeVOL()
    results = job.run(restart_program(lib, vol, CFG))
    assert all(r[0] == 0.0 for r in results)  # no restart read
    stored = lib.files["/restart.h5"]
    assert set(stored.datasets) == {"/ckpt00000/state", "/ckpt00001/state"}
    for d in stored.datasets.values():
        assert d.coverage_1d() == pytest.approx(1.0)


def test_restart_reads_then_continues():
    eng, cluster, job, lib = make_env()
    # campaign 1: fresh run
    job.run(restart_program(lib, NativeVOL(), CFG))
    # campaign 2: restart from the last checkpoint, same cluster/library
    restart_cfg = RestartConfig(
        elems_per_rank=Mi, checkpoints=2, compute_seconds=2.0,
        restart_from=1,
    )
    job2 = MPIJob(cluster, 4, ranks_per_node=4)
    vol2 = AsyncVOL(init_time=0.0)
    results = job2.run(restart_program(lib, vol2, restart_cfg))
    # restart read cost is visible and nonzero
    assert all(r[0] > 0.0 for r in results)
    # continued numbering: checkpoints 2 and 3 now exist
    stored = lib.files["/restart.h5"]
    assert "/ckpt00002/state" in stored.datasets
    assert "/ckpt00003/state" in stored.datasets
    # restart read was synchronous even under the async VOL (first read)
    reads = vol2.log.select(op="read")
    assert len(reads) == 4
    assert all(not r.cache_hit for r in reads)
    # new checkpoints durable
    assert all(math.isfinite(r.t_complete)
               for r in vol2.log.select(op="write"))


def test_restart_from_missing_checkpoint_raises():
    eng, cluster, job, lib = make_env()
    job.run(restart_program(lib, NativeVOL(), CFG))
    bad = RestartConfig(elems_per_rank=Mi, checkpoints=1,
                        restart_from=7)
    job2 = MPIJob(cluster, 4, ranks_per_node=4)
    with pytest.raises(KeyError):
        job2.run(restart_program(lib, NativeVOL(), bad))


def test_restart_config_validation():
    with pytest.raises(ValueError):
        RestartConfig(checkpoints=0)
    with pytest.raises(ValueError):
        RestartConfig(restart_from=-1)
    with pytest.raises(ValueError):
        RestartConfig(compute_seconds=-1.0)
