"""Tests for the experiment harness, sweeps, fitting and reporting."""

import math

import pytest

from repro.platform import ContentionModel
from repro.platform import testbed as make_testbed
from repro.analysis import fit_sweep_points, variability_stats
from repro.harness import (
    FigureData,
    best_by_config,
    build_vol,
    run_experiment,
    scale_sweep,
)
from repro.harness.figures import resolve_profile
from repro.workloads import VPICConfig, vpic_program

Mi = 1 << 20

MACHINE = make_testbed(nodes=16, ranks_per_node=4, pfs_peak=30e9, nic=8e9)
SMALL = VPICConfig(particles_per_rank=Mi, steps=2, compute_seconds=5.0)


def test_build_vol_modes():
    assert build_vol("sync").mode == "sync"
    assert build_vol("async").mode == "async"
    with pytest.raises(ValueError):
        build_vol("adaptive")


def test_run_experiment_result_fields():
    r = run_experiment(MACHINE, "vpic", vpic_program, SMALL, mode="sync",
                       nranks=8, op="write")
    assert r.machine == "testbed"
    assert r.workload == "vpic"
    assert r.nranks == 8
    assert r.nnodes == 2
    assert r.n_phases == 2
    assert r.total_bytes == pytest.approx(SMALL.total_bytes(8))
    assert r.peak_bandwidth > 0
    assert r.app_time > 2 * 5.0
    assert r.availability == 1.0
    assert r.peak_gbs == pytest.approx(r.peak_bandwidth / 1e9)


def test_run_experiment_contention_applied():
    cm = ContentionModel(seed=5, median_load=2.0)
    # enough ranks that the (scaled) shared PFS backend is the bottleneck
    r = run_experiment(MACHINE, "vpic", vpic_program, SMALL, mode="sync",
                       nranks=32, day=1, contention=cm, op="write")
    assert r.availability < 1.0
    clean = run_experiment(MACHINE, "vpic", vpic_program, SMALL, mode="sync",
                           nranks=32, op="write")
    assert r.peak_bandwidth < clean.peak_bandwidth


def test_scale_sweep_grid_complete():
    results = scale_sweep(
        MACHINE, "vpic", vpic_program, lambda n: SMALL,
        scales=[4, 8], modes=("sync", "async"), reps=2,
    )
    assert len(results) == 2 * 2 * 2
    assert {(r.mode, r.nranks, r.day) for r in results} == {
        (m, n, d) for m in ("sync", "async") for n in (4, 8) for d in (0, 1)
    }
    with pytest.raises(ValueError):
        scale_sweep(MACHINE, "w", vpic_program, lambda n: SMALL, scales=[4],
                    reps=0)


def test_best_by_config_takes_max():
    results = scale_sweep(
        MACHINE, "vpic", vpic_program, lambda n: SMALL,
        scales=[4, 8], modes=("sync",), reps=2,
        contention=ContentionModel(seed=2, median_load=1.0),
    )
    points = best_by_config(results)
    assert len(points) == 2
    for p in points:
        assert p.peak_bandwidth == max(p.all_peaks)
        assert len(p.all_peaks) == 2


def test_sweep_weak_scaling_shapes():
    """On the testbed, async grows linearly while sync saturates."""
    results = scale_sweep(
        MACHINE, "vpic", vpic_program, lambda n: SMALL,
        scales=[8, 16, 32, 64], modes=("sync", "async"), reps=1,
    )
    points = best_by_config(results)
    sync = {p.nranks: p.peak_bandwidth for p in points if p.mode == "sync"}
    async_ = {p.nranks: p.peak_bandwidth for p in points if p.mode == "async"}
    # async linear: doubling ranks doubles bandwidth
    assert async_[64] / async_[8] == pytest.approx(8.0, rel=0.05)
    # sync saturates at the PFS ceiling (30 GB/s)
    assert sync[64] < 30e9 * 1.01
    assert sync[64] / sync[8] < 8.0
    # async beats sync at scale
    assert async_[64] > 2 * sync[64]


def test_fit_sweep_points_model_quality():
    results = scale_sweep(
        MACHINE, "vpic", vpic_program, lambda n: SMALL,
        scales=[8, 16, 32, 64], modes=("sync", "async"), reps=1,
    )
    points = best_by_config(results)
    fit_async = fit_sweep_points(points, "async")
    assert fit_async.r2 > 0.9  # paper: async r2 above 90%
    assert fit_async.transform == "linear"
    fit_sync = fit_sweep_points(points, "sync")
    assert fit_sync.r2 > 0.8  # paper: sync r2 above 80%
    # estimates exist for every swept scale
    assert set(fit_async.estimates) == {8, 16, 32, 64}
    assert fit_async.estimate_gbs(64) == pytest.approx(
        fit_async.estimates[64] / 1e9
    )
    with pytest.raises(ValueError):
        fit_sweep_points([p for p in points if p.mode == "sync"], "async")


def test_variability_stats():
    v = variability_stats([1.0, 2.0, 3.0])
    assert v.mean == pytest.approx(2.0)
    assert v.cv == pytest.approx(v.std / 2.0)
    assert v.spread_ratio == pytest.approx(3.0)
    assert variability_stats([5.0]).cv == 0.0
    with pytest.raises(ValueError):
        variability_stats([])


def test_figure_data_table():
    fig = FigureData("figX", "a title", columns=["a", "b"])
    fig.add_row(1, 2.5)
    fig.add_row(10, 1e7)
    fig.meta["note"] = 0.93
    text = fig.to_text()
    assert "figX" in text and "a title" in text
    assert "note: 0.93" in text
    assert fig.column("a") == [1, 10]
    with pytest.raises(ValueError):
        fig.add_row(1)


def test_resolve_profile():
    assert resolve_profile("quick") == "quick"
    assert resolve_profile("paper") == "paper"
    with pytest.raises(ValueError):
        resolve_profile("fast")


def test_results_save_load_roundtrip(tmp_path):
    from repro.harness import load_results, save_results
    results = scale_sweep(
        MACHINE, "vpic", vpic_program, lambda n: SMALL,
        scales=[4], modes=("sync",), reps=2,
    )
    path = save_results(results, tmp_path / "campaign.json")
    loaded = load_results(path)
    assert loaded == results


def test_load_results_rejects_foreign_files(tmp_path):
    from repro.harness import load_results
    bad = tmp_path / "x.json"
    bad.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        load_results(bad)
    versioned = tmp_path / "y.json"
    versioned.write_text(
        '{"format": "repro-experiment-results", "version": 99, "results": []}'
    )
    with pytest.raises(ValueError):
        load_results(versioned)


def test_profile_scales_consistent():
    """Every paper-profile sweep extends its quick counterpart."""
    from repro.harness.figures import _SCALES, _REPS, _STEPS
    keys = {k[0] for k in _SCALES}
    for key in keys:
        quick = _SCALES[(key, "quick")]
        paper = _SCALES[(key, "paper")]
        assert quick == sorted(quick)
        assert paper == sorted(paper)
        assert set(quick) <= set(paper)
    assert _REPS["paper"] >= 5  # "at least 5 times across multiple days"
    assert _REPS["quick"] >= 2
    assert _STEPS["paper"] >= _STEPS["quick"]


def test_fit_uses_every_days_observation():
    """The regression sees all repetitions, not just the best-of points."""
    results = scale_sweep(
        MACHINE, "vpic", vpic_program, lambda n: SMALL,
        scales=[8, 16, 32], modes=("sync",), reps=3,
        contention=ContentionModel(seed=11, median_load=1.0),
    )
    points = best_by_config(results)
    for p in points:
        assert len(p.all_peaks) == 3
    fit = fit_sweep_points(points, "sync")
    # 3 scales x 3 days = 9 samples behind the fit
    assert 0.0 <= fit.r2 <= 1.0
