"""Fast-path allocator vs. reference: bit-identity and observability.

The optimized flow-class allocator in :mod:`repro.sim.network` must
produce **bit-identical** simulated timestamps and rates to the frozen
per-flow reference in :mod:`repro.sim.network_ref` — not approximately
equal: sweeps in the harness compare derived bandwidths across runs, so
any drift would show up as spurious model error.  These tests drive the
exact same randomized workloads (heterogeneous caps, shared and
duplicated links, mid-flight capacity changes) through both modules and
compare the full traces with ``==``.
"""

import math
import random

import pytest

from repro.sim import Engine, EngineStats
from repro.sim import network as fastmod
from repro.sim import network_ref as refmod
from repro.sim.traffic import fig3a_phase, identical_flows, mixed_classes


def _random_workload(net_mod, seed, nflows=60, nlinks=5, nchanges=8):
    """Seeded chaotic workload; returns the full per-flow trace."""
    rng = random.Random(seed)
    engine = Engine()
    net = net_mod.Network(engine)
    caps = [1e5, 3e6, 5e7, 8e8, 1e9, 2.5e12]
    links = [net_mod.Link(f"l{i}", rng.choice(caps)) for i in range(nlinks)]
    flows = []

    def issue():
        for i in range(nflows):
            path = rng.sample(links, rng.randint(1, 3))
            if rng.random() < 0.3:
                path = path + [path[0]]  # duplicate link in the path
            cap = math.inf if rng.random() < 0.4 else rng.choice(
                [1e5, 3e6, 8e8]
            )
            nbytes = rng.choice([512.0, 1e4, 1e6, 64e6])
            latency = rng.choice([0.0, 0.0, 1e-3, 0.25, rng.random()])
            flows.append(
                net.transfer(nbytes, path, cap=cap, latency=latency, tag=i)
            )
            if rng.random() < 0.5:
                yield engine.timeout(rng.random() * 0.1)

    def chaos():
        for _ in range(nchanges):
            yield engine.timeout(rng.random() * 0.5)
            link = rng.choice(links)
            r = rng.random()
            if r < 0.2:
                link.set_capacity(0.0)
            elif r < 0.4:
                link.set_capacity(link.capacity)  # redundant write
            else:
                link.set_capacity(rng.choice(caps))

    engine.process(issue(), name="issue")
    engine.process(chaos(), name="chaos")
    engine.run()
    return [(f.tag, f.started_at, f.finished_at, f.rate) for f in flows]


@pytest.mark.parametrize("seed", range(12))
def test_random_workload_bit_identical_to_reference(seed):
    assert _random_workload(fastmod, seed) == _random_workload(refmod, seed)


@pytest.mark.parametrize(
    "builder,kwargs",
    [
        (identical_flows, dict(n=200)),
        (mixed_classes, dict(n_classes=8, flows_per_class=5)),
        (fig3a_phase, dict(ranks=96, timesteps=2, datasets=3)),
    ],
)
def test_traffic_shapes_bit_identical_to_reference(builder, kwargs):
    traces = []
    for mod in (fastmod, refmod):
        engine, net, flows = builder(mod, **kwargs)
        engine.run()
        traces.append([(f.started_at, f.finished_at, f.rate) for f in flows])
    assert traces[0] == traces[1]


def test_fig3a_two_runs_deterministic():
    """Two runs of the VPIC-shaped phase produce identical traces."""
    traces = []
    for _ in range(2):
        engine, net, flows = fig3a_phase(ranks=96, timesteps=2, datasets=3)
        engine.run()
        traces.append(
            [(f.tag, f.started_at, f.finished_at, f.rate) for f in flows]
        )
    assert traces[0] == traces[1]


# ---------------------------------------------------------------------------
# Satellite fixes: finite achieved_rate, aggregate-served observability
# ---------------------------------------------------------------------------


def test_achieved_rate_finite_for_zero_duration_transfer():
    engine = Engine()
    net = fastmod.Network(engine)
    link = fastmod.Link("l", 100.0)
    flow = net.transfer(0.0, [link])
    engine.run()
    # Zero-duration transfer: finite, nbytes-consistent value (the old
    # behaviour returned inf, which poisoned downstream curve fits).
    assert flow.achieved_rate == 0.0
    assert math.isfinite(flow.achieved_rate)


def test_achieved_rate_zero_while_in_flight():
    engine = Engine()
    net = fastmod.Network(engine)
    link = fastmod.Link("l", 100.0)
    flow = net.transfer(1e6, [link])
    # Not yet complete: no nan propagation from `elapsed`.
    assert flow.achieved_rate == 0.0
    assert math.isnan(flow.elapsed)
    engine.run()
    assert flow.achieved_rate == pytest.approx(100.0)


def test_link_throughput_served_from_class_aggregates():
    engine = Engine()
    net = fastmod.Network(engine)
    shared = fastmod.Link("shared", 100.0)
    private = fastmod.Link("private", 1000.0)
    f1 = net.transfer(1e6, [shared], tag=1)
    f2 = net.transfer(1e6, [shared, private], cap=10.0, tag=2)
    net._settle()
    assert net.link_throughput(shared) == pytest.approx(100.0)
    assert net.link_throughput(private) == pytest.approx(10.0)
    # Matches the per-flow sum the reference computes.
    assert net.link_throughput(shared) == pytest.approx(f1.rate + f2.rate)
    assert net.active_flows == 2
    assert net.class_count == 2


def test_link_throughput_zero_for_idle_link():
    engine = Engine()
    net = fastmod.Network(engine)
    link = fastmod.Link("l", 100.0)
    assert net.link_throughput(link) == 0.0


def test_flow_remaining_observable_mid_flight():
    engine = Engine()
    net = fastmod.Network(engine)
    link = fastmod.Link("l", 100.0)
    flow = net.transfer(1000.0, [link])

    def poke():
        # Residuals advance at rebalance checkpoints (same as the
        # reference); force one mid-flight to observe progress.
        yield engine.timeout(4.0)
        link.set_capacity(100.0)

    engine.process(poke())
    engine.run(until=5.0)
    # The lazily-advanced residual materializes on read.
    assert flow.remaining == pytest.approx(600.0)
    engine.run()
    assert flow.remaining == 0.0


# ---------------------------------------------------------------------------
# Engine.stats counters
# ---------------------------------------------------------------------------


def test_engine_stats_counts_rebalances_and_rounds():
    engine, net, flows = mixed_classes(n_classes=4, flows_per_class=3)
    engine.run()
    stats = engine.stats
    assert stats.events == engine.executed > 0
    assert stats.rebalances > 0
    assert stats.allocator_rounds > 0
    snap = stats.snapshot()
    assert snap["rebalances"] == stats.rebalances
    assert set(snap) == set(EngineStats.__slots__)


def test_engine_stats_skip_counter_on_redundant_capacity_write():
    engine = Engine()
    net = fastmod.Network(engine)
    link = fastmod.Link("l", 100.0)
    net.transfer(1000.0, [link])

    def poke():
        yield engine.timeout(1.0)
        link.set_capacity(100.0)  # same value: rates cannot change

    engine.process(poke())
    engine.run()
    # The redundant write forces an advance checkpoint (the reference
    # does the same) but the water-filling itself is skipped.
    assert engine.stats.rebalances_skipped >= 1


def test_engine_stats_reset():
    engine, net, flows = identical_flows(n=10)
    engine.run()
    assert engine.stats.events > 0
    engine.stats.reset()
    assert engine.stats.events == 0
    assert engine.stats.rebalances == 0
