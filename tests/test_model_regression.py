"""Tests for the regression machinery (Eq. 4 & 5) and the estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    ComputeTimeModel,
    IORateModel,
    IORateSample,
    LinearLeastSquares,
    MeasurementHistory,
    TransactOverheadModel,
    pearson_r2,
    r2_score,
)
from repro.platform.memory import BandwidthCurve, MemcpySpec

GB = 1e9
MiB = float(1 << 20)


# ---------------------------------------------------------------------------
# LinearLeastSquares
# ---------------------------------------------------------------------------


def test_recovers_exact_linear_relation():
    rng = np.random.default_rng(0)
    X = rng.uniform(1.0, 100.0, size=(50, 2))
    beta_true = np.array([2.5, -1.25])
    y = X @ beta_true
    fit = LinearLeastSquares("linear").fit(X, y)
    assert np.allclose(fit.beta, beta_true)
    assert fit.r2 == pytest.approx(1.0)


def test_recovers_linear_log_relation():
    rng = np.random.default_rng(1)
    X = rng.uniform(1.0, 1e6, size=(60, 2))
    y = 3.0 * np.log(X[:, 0]) + 7.0 * np.log(X[:, 1])
    fit = LinearLeastSquares("linear-log").fit(X, y)
    assert np.allclose(fit.beta, [3.0, 7.0])
    assert fit.r2 == pytest.approx(1.0)


def test_intercept_column():
    X = np.arange(1, 11, dtype=float).reshape(-1, 1)
    y = 4.0 * X[:, 0] + 9.0
    fit = LinearLeastSquares("linear", intercept=True).fit(X, y)
    assert fit.beta[0] == pytest.approx(4.0)
    assert fit.beta[1] == pytest.approx(9.0)


def test_predict_matches_fit():
    X = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    y = np.array([5.0, 11.0, 17.0])  # y = x0 + 2*x1
    fit = LinearLeastSquares("linear").fit(X, y)
    pred = fit.predict([[10.0, 20.0]])
    assert pred[0] == pytest.approx(50.0)


def test_validation_errors():
    with pytest.raises(ValueError):
        LinearLeastSquares("cubic")
    lls = LinearLeastSquares("linear-log")
    with pytest.raises(ValueError):
        lls.fit([[0.0, 1.0]], [1.0])  # non-positive feature for log
    with pytest.raises(ValueError):
        LinearLeastSquares("linear").fit([[1.0, 2.0]], [1.0, 2.0])
    with pytest.raises(RuntimeError):
        LinearLeastSquares("linear").predict([[1.0, 2.0]])
    with pytest.raises(ValueError):
        # fewer samples than parameters
        LinearLeastSquares("linear").fit([[1.0, 2.0]], [1.0])


def test_r2_score_perfect_and_mean_model():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, y) == pytest.approx(1.0)
    assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)


def test_r2_constant_data():
    y = np.ones(5)
    assert r2_score(y, y) == 1.0
    assert r2_score(y, y + 1.0) == 0.0


def test_pearson_r2_eq5():
    x = np.arange(10.0)
    assert pearson_r2(x, 3 * x + 1) == pytest.approx(1.0)
    rng = np.random.default_rng(2)
    noise = rng.normal(size=1000)
    assert pearson_r2(np.arange(1000.0), noise) < 0.05
    with pytest.raises(ValueError):
        pearson_r2([1.0], [1.0])


@given(
    b0=st.floats(min_value=-10, max_value=10),
    b1=st.floats(min_value=-10, max_value=10),
    n=st.integers(min_value=3, max_value=40),
)
@settings(max_examples=50, deadline=None)
def test_property_exact_fit_recovery(b0, b1, n):
    rng = np.random.default_rng(42)
    X = rng.uniform(1.0, 50.0, size=(n, 2))
    y = b0 * X[:, 0] + b1 * X[:, 1]
    fit = LinearLeastSquares("linear").fit(X, y)
    assert np.allclose(fit.predict(X), y, atol=1e-6 * (1 + np.abs(y).max()))


# ---------------------------------------------------------------------------
# ComputeTimeModel
# ---------------------------------------------------------------------------


def test_compute_model_weighted_average():
    m = ComputeTimeModel(decay=0.5)
    assert not m.ready
    m.observe(10.0)
    assert m.estimate() == pytest.approx(10.0)
    m.observe(20.0)
    assert m.estimate() == pytest.approx(15.0)
    m.observe(20.0)
    assert m.estimate() == pytest.approx(17.5)


def test_compute_model_tracks_recent_values():
    m = ComputeTimeModel(decay=0.7)
    for t in [1.0] * 10 + [100.0] * 10:
        m.observe(t)
    assert m.estimate() > 90.0  # converged to the new regime


def test_compute_model_validation():
    with pytest.raises(ValueError):
        ComputeTimeModel(decay=0.0)
    m = ComputeTimeModel()
    with pytest.raises(ValueError):
        m.observe(-1.0)
    with pytest.raises(RuntimeError):
        m.estimate()


# ---------------------------------------------------------------------------
# TransactOverheadModel
# ---------------------------------------------------------------------------


def test_transact_fit_recovers_curve():
    curve = BandwidthCurve(peak=8 * GB, s0=2 * MiB)
    sizes = [2**k * MiB for k in range(0, 10)]
    times = [curve.transfer_time(s) for s in sizes]
    model = TransactOverheadModel.from_samples(sizes, times)
    assert model.peak == pytest.approx(8 * GB, rel=1e-6)
    assert model.setup == pytest.approx(2 * MiB / (8 * GB), rel=1e-6)
    assert model.r2 == pytest.approx(1.0)
    for s in sizes:
        assert model.estimate(s) == pytest.approx(curve.transfer_time(s), rel=1e-9)


def test_transact_constant_bandwidth_above_saturation():
    model = TransactOverheadModel.from_memcpy_spec(MemcpySpec())
    b32 = model.bandwidth(32 * MiB)
    b512 = model.bandwidth(512 * MiB)
    assert b512 / b32 < 1.06


def test_transact_validation():
    with pytest.raises(ValueError):
        TransactOverheadModel.from_samples([1.0], [1.0])
    with pytest.raises(ValueError):
        TransactOverheadModel.from_samples([1.0, 2.0], [1.0])
    m = TransactOverheadModel()
    with pytest.raises(RuntimeError):
        m.estimate(1.0)
    fitted = TransactOverheadModel.from_curve(BandwidthCurve(peak=1.0, s0=0.0))
    with pytest.raises(ValueError):
        fitted.estimate(-1.0)


# ---------------------------------------------------------------------------
# History & IORateModel
# ---------------------------------------------------------------------------


def test_history_matrices():
    h = MeasurementHistory()
    h.record(1e9, 8, 5e9, mode="sync")
    h.record(2e9, 16, 8e9, mode="sync")
    h.record(1e9, 8, 50e9, mode="async")
    X, Y = h.matrices(mode="sync")
    assert X.shape == (2, 2)
    assert Y.shape == (2,)
    assert X[1, 1] == 16.0


def test_history_eviction():
    h = MeasurementHistory(max_samples=3)
    for i in range(5):
        h.record(1e9 + i, 1, 1e9)
    assert len(h) == 3


def test_history_best_rate():
    h = MeasurementHistory()
    h.record(1e9, 8, 5e9)
    h.record(1e9, 8, 7e9)
    h.record(4e9, 64, 9e9)
    assert h.best_rate(1e9, 8) == pytest.approx(7e9)
    assert h.best_rate(1e12, 9999) is None


def test_history_sample_validation():
    with pytest.raises(ValueError):
        IORateSample(0.0, 1, 1.0)
    with pytest.raises(ValueError):
        IORateSample(1.0, 0, 1.0)
    with pytest.raises(ValueError):
        IORateSample(1.0, 1, -1.0)
    with pytest.raises(ValueError):
        IORateSample(1.0, 1, 1.0, mode="turbo")


def test_io_rate_model_fits_linear_history():
    h = MeasurementHistory()
    # rate = 1e6*size_gb + 1e8*ranks  (synthetic linear relation)
    for size in [1e9, 2e9, 4e9, 8e9]:
        for ranks in [8, 16, 32]:
            h.record(size, ranks, 1e-3 * size + 1e8 * ranks)
    model = IORateModel(h, mode="sync").refit()
    assert model.r2 > 0.99
    assert model.estimate_rate(3e9, 24) == pytest.approx(
        1e-3 * 3e9 + 1e8 * 24, rel=0.05
    )


def test_io_rate_model_prefers_log_for_saturating_data():
    h = MeasurementHistory()
    # saturating: rate ~ log(ranks), constant in size
    for ranks in [2, 4, 8, 16, 32, 64, 128, 256]:
        for size in [1e9, 2e9]:
            h.record(size, ranks, 1e9 * np.log(ranks) + 5e9)
    model = IORateModel(h, mode="sync").refit()
    assert model.transform == "linear-log"
    assert model.r2 > 0.95


def test_io_rate_model_estimate_time_eq3():
    h = MeasurementHistory()
    for size in [1e9, 2e9, 4e9]:
        h.record(size, 8, 2e9)
    model = IORateModel(h, mode="sync")
    t = model.estimate_time(4e9, 8)
    assert t == pytest.approx(4e9 / model.estimate_rate(4e9, 8))


def test_io_rate_model_requires_samples():
    h = MeasurementHistory()
    model = IORateModel(h, mode="sync")
    assert not model.ready
    with pytest.raises(RuntimeError):
        model.refit()
    with pytest.raises(ValueError):
        IORateModel(h, mode="bogus")


# ---------------------------------------------------------------------------
# LinearTrendComputeModel (extension: §III-B "advanced models")
# ---------------------------------------------------------------------------


def test_trend_model_tracks_drift_better_than_ewma():
    from repro.model import LinearTrendComputeModel
    ewma = ComputeTimeModel(decay=0.7)
    trend = LinearTrendComputeModel(window=8)
    # compute phase grows by 1s every iteration (AMR refinement)
    times = [10.0 + k for k in range(12)]
    for t in times:
        ewma.observe(t)
        trend.observe(t)
    true_next = 10.0 + 12
    assert abs(trend.estimate() - true_next) < 0.01
    assert abs(ewma.estimate() - true_next) > 0.5  # the EWMA lags


def test_trend_model_single_observation():
    from repro.model import LinearTrendComputeModel
    m = LinearTrendComputeModel()
    assert not m.ready
    m.observe(5.0)
    assert m.ready
    assert m.estimate() == pytest.approx(5.0)


def test_trend_model_window_forgets_old_regime():
    from repro.model import LinearTrendComputeModel
    m = LinearTrendComputeModel(window=4)
    for t in [100.0] * 10 + [1.0] * 4:
        m.observe(t)
    assert m.estimate() == pytest.approx(1.0, abs=0.1)


def test_trend_model_clamps_negative_extrapolation():
    from repro.model import LinearTrendComputeModel
    m = LinearTrendComputeModel(window=4)
    for t in [3.0, 2.0, 1.0, 0.0]:
        m.observe(t)
    assert m.estimate() == 0.0


def test_trend_model_validation():
    from repro.model import LinearTrendComputeModel
    with pytest.raises(ValueError):
        LinearTrendComputeModel(window=1)
    m = LinearTrendComputeModel()
    with pytest.raises(ValueError):
        m.observe(-1.0)
    with pytest.raises(RuntimeError):
        m.estimate()


def test_trend_model_usable_in_advisor():
    from repro.model import Advisor, LinearTrendComputeModel
    history = MeasurementHistory()
    for size in [1e9, 2e9, 4e9]:
        history.record(size, 8, 2e9, mode="sync")
    advisor = Advisor(
        LinearTrendComputeModel(),
        IORateModel(history, mode="sync"),
        TransactOverheadModel.from_memcpy_spec(MemcpySpec()),
    )
    advisor.compute_model.observe(30.0)
    decision = advisor.decide(4e9, 8)
    assert decision.mode is not None
