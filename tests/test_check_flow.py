"""Tests for the flow-sensitive tier of ``repro check``.

Three layers, mirroring the implementation:

- the CFG builder, probed through reaching-state fixtures (a tiny
  constant-tracing analysis run over the graph) for the edge cases the
  builder exists to get right: ``try/finally`` with ``return``,
  ``break``/``continue`` in loops, nested ``with``, early ``raise``;
- the RC4xx typestate and RC5xx unit rules, one good/bad fixture pair
  per rule plus the escape hedges that keep the repo-wide gate at zero
  false positives;
- the gate itself: the flow tier over the whole repository terminates
  and comes back clean.
"""

import ast
import textwrap

from repro.check import lint_paths, lint_source, render_findings
from repro.check.cfg import build_cfg, iter_functions
from repro.check.dataflow import ForwardAnalysis, solve
from repro.check.domains import UNBOUND, Env

import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Flow rules are repo-scoped; any plausible source path will do.
PATH = "src/repro/model/example.py"


def rule_ids(findings):
    return [f.rule_id for f in findings]


def flow(source):
    return lint_source(textwrap.dedent(source), PATH, flow=True)


# ---------------------------------------------------------------------------
# CFG builder: reaching-state fixtures
# ---------------------------------------------------------------------------

class ConstTrace(ForwardAnalysis):
    """Tracks ``name = "literal"`` assignments: a reaching-values probe.

    The state reaching the function exit tells exactly which paths the
    builder wired: a value overwritten on every path must not reach,
    a value live on some path must.
    """

    def transfer(self, cfg, node, env):
        stmt = node.ast_node
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, str):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env = env.set(target.id, frozenset({stmt.value.value}))
        return env


def exit_state(source):
    tree = ast.parse(textwrap.dedent(source))
    cfg = build_cfg(next(iter_functions(tree)))
    return solve(cfg, ConstTrace())[cfg.exit]


def test_cfg_try_finally_with_return_routes_through_finally():
    env = exit_state("""
        def f(cond):
            x = "start"
            try:
                if cond:
                    x = "early"
                    return x
                x = "body"
            finally:
                y = "fin"
            x = "after"
            return x
        """)
    # The early return must pass through the finally suite (y defined on
    # that path too, with no may-unbound marker) and then reach the exit
    # directly -- never the statement after the try, so "early" survives
    # while "body" is overwritten by "after" on the normal path.
    assert env.get("x") == frozenset({"early", "after"})
    assert env.get("y") == frozenset({"fin"})


def test_cfg_break_and_continue_in_loop():
    env = exit_state("""
        def f(items):
            x = "pre"
            for item in items:
                if item:
                    x = "broke"
                    break
                x = "cont"
                continue
            return x
        """)
    # Zero iterations ("pre"), break ("broke") and continue looping back
    # to the header ("cont") all reach the return.
    assert env.get("x") == frozenset({"pre", "broke", "cont"})


def test_cfg_break_skips_loop_else():
    env = exit_state("""
        def f(items):
            x = "pre"
            while items:
                x = "body"
                break
            else:
                x = "else"
            return x
        """)
    # Normal loop exit runs the else suite; break jumps past it.
    assert env.get("x") == frozenset({"body", "else"})


def test_cfg_nested_with_is_linear():
    env = exit_state("""
        def f(a, b):
            with a as f1:
                x = "outer"
                with b as f2:
                    x = "inner"
                y = "post"
            return x
        """)
    # No spurious bypass edges around with blocks: the inner assignment
    # definitely overwrites, and y is definitely bound at the exit.
    assert env.get("x") == frozenset({"inner"})
    assert env.get("y") == frozenset({"post"})


def test_cfg_early_raise_reaches_exit_with_pre_raise_state():
    env = exit_state("""
        def f(cond):
            x = "start"
            if cond:
                raise ValueError("boom")
            x = "ok"
            return x
        """)
    # The uncaught raise routes to the function exit carrying the state
    # before the raise; the fall-through path carries "ok".
    assert env.get("x") == frozenset({"start", "ok"})


def test_cfg_raise_caught_by_handler_does_not_fall_through():
    env = exit_state("""
        def f():
            try:
                x = "body"
                raise ValueError()
            except ValueError:
                x = "handled"
            return x
        """)
    # After an unconditional raise the only way to the return is via the
    # handler, whose assignment overwrites the body's.
    assert env.get("x") == frozenset({"handled"})


def test_env_join_marks_one_sided_keys_unbound():
    a = Env({"x": frozenset({"1"})})
    b = Env({"x": frozenset({"2"}), "y": frozenset({"3"})})
    joined = a.join(b)
    assert joined.get("x") == frozenset({"1", "2"})
    assert joined.get("y") == frozenset({"3", UNBOUND})


# ---------------------------------------------------------------------------
# RC401: operations inserted, never waited
# ---------------------------------------------------------------------------

def test_rc401_bad_never_waited_before_exit():
    findings = flow("""
        def prog(ctx, engine):
            es = EventSet(engine)
            es.add(engine.event())
            return None
        """)
    assert rule_ids(findings) == ["RC401"]
    assert "never waited before the function returns" in findings[0].message


def test_rc401_bad_pending_at_file_close():
    findings = flow("""
        def prog(ctx, lib, vol):
            f = lib.create(ctx, "out.h5", vol)
            es = EventSet(ctx.engine)
            yield from f.write(dset, data, es=es)
            yield from f.close()
        """)
    assert set(rule_ids(findings)) == {"RC401"}
    messages = " | ".join(f.message for f in findings)
    assert "not waited when 'f' is closed" in messages


def test_rc401_good_waited_before_close():
    findings = flow("""
        def prog(ctx, lib, vol):
            f = lib.create(ctx, "out.h5", vol)
            es = EventSet(ctx.engine)
            yield from f.write(dset, data, es=es)
            yield from es.wait()
            yield from f.close()
        """)
    assert findings == []


def test_rc401_escape_hedge_argument_passing():
    # Handing the event set to someone else transfers protocol duty;
    # the zero-false-positive gate must stay silent.
    findings = flow("""
        def prog(engine, sink):
            es = EventSet(engine)
            es.add(engine.event())
            sink.append(es)
            return None
        """)
    assert findings == []


def test_rc401_escape_hedge_closure_capture():
    findings = flow("""
        def prog(engine):
            es = EventSet(engine)
            es.add(engine.event())
            def drain():
                yield from es.wait()
            return drain
        """)
    assert findings == []


def test_rc401_suppressible():
    findings = flow("""
        def prog(ctx, engine):
            # repro-check: disable=RC401 (deliberate leak: fixture)
            es = EventSet(engine)
            es.add(engine.event())
            return None
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# RC402: result used before wait
# ---------------------------------------------------------------------------

def test_rc402_bad_result_used_before_wait():
    findings = flow("""
        def prog(f, engine):
            es = EventSet(engine)
            data = f.read(dset, es=es)
            total = data + 1
            yield from es.wait()
            return total
        """)
    assert rule_ids(findings) == ["RC402"]
    assert "used before es.wait()" in findings[0].message


def test_rc402_good_wait_before_use():
    findings = flow("""
        def prog(f, engine):
            es = EventSet(engine)
            data = f.read(dset, es=es)
            yield from es.wait()
            total = data + 1
            return total
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# RC403: double close / use after close
# ---------------------------------------------------------------------------

def test_rc403_bad_double_close():
    findings = flow("""
        def prog(ctx, lib, vol):
            f = lib.create(ctx, "a.h5", vol)
            yield from f.close()
            yield from f.close()
        """)
    assert rule_ids(findings) == ["RC403"]
    assert "closed twice" in findings[0].message


def test_rc403_bad_use_after_close():
    findings = flow("""
        def prog(ctx, lib, vol):
            f = lib.create(ctx, "a.h5", vol)
            yield from f.close()
            f.create_dataset("d", 8)
        """)
    assert rule_ids(findings) == ["RC403"]
    assert "used after close" in findings[0].message


def test_rc403_good_single_close():
    findings = flow("""
        def prog(ctx, lib, vol):
            f = lib.create(ctx, "a.h5", vol)
            yield from f.close()
        """)
    assert findings == []


def test_rc403_may_closed_is_not_definite():
    # Closed on one branch only: the close afterwards is a *may* double
    # close; the must-style check stays silent (zero-FP gate).
    findings = flow("""
        def prog(ctx, lib, vol, cond):
            f = lib.create(ctx, "a.h5", vol)
            if cond:
                yield from f.close()
            yield from f.close()
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# RC404: AsyncVOL without finalize on all paths
# ---------------------------------------------------------------------------

def test_rc404_bad_never_finalized():
    findings = flow("""
        def prog(ctx, engine):
            vol = AsyncVOL(engine)
            vol.submit(op)
            return None
        """)
    assert rule_ids(findings) == ["RC404"]
    assert "never finalized" in findings[0].message


def test_rc404_bad_finalized_on_some_paths_only():
    findings = flow("""
        def prog(ctx, engine, cond):
            vol = AsyncVOL(engine)
            if cond:
                yield from vol.finalize(ctx)
            return None
        """)
    assert rule_ids(findings) == ["RC404"]
    assert "some paths but not all" in findings[0].message


def test_rc404_good_finalize_in_finally():
    # The canonical fix -- and a typestate walk across the cloned
    # finally suite.
    findings = flow("""
        def prog(ctx, engine):
            vol = AsyncVOL(engine)
            try:
                yield from do_io(ctx)
            finally:
                yield from vol.finalize(ctx)
            return None
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# RC501-RC503: unit consistency
# ---------------------------------------------------------------------------

def test_rc501_bad_seconds_plus_bytes():
    findings = flow("""
        def f(t_comp, nbytes):
            return t_comp + nbytes
        """)
    assert rule_ids(findings) == ["RC501"]
    assert "seconds + bytes" in findings[0].message


def test_rc501_good_eq3_converts_first():
    findings = flow("""
        def f(t_comp, data_size, io_rate):
            t_io = data_size / io_rate
            return t_comp + t_io
        """)
    assert findings == []


def test_rc502_bad_store_seconds_into_bytes_name():
    findings = flow("""
        def f(t_comp, t_wait):
            total_bytes = t_comp + t_wait
            return total_bytes
        """)
    assert rule_ids(findings) == ["RC502"]
    assert "storing seconds into 'total_bytes'" in findings[0].message


def test_rc502_bad_annotation_alias_is_authoritative():
    findings = flow("""
        def f(elapsed):
            budget: Bytes = elapsed
            return budget
        """)
    assert rule_ids(findings) == ["RC502"]
    assert "declared as bytes" in findings[0].message


def test_rc502_bad_keyword_argument_dimension():
    findings = flow("""
        def f(history, t_comp, nranks):
            history.record(data_size=t_comp, nranks=nranks)
        """)
    assert rule_ids(findings) == ["RC502"]
    assert "argument 'data_size' declares bytes" in findings[0].message


def test_rc502_good_bytes_into_bytes_name():
    findings = flow("""
        def f(nbytes):
            total_bytes = nbytes + 4096
            return total_bytes
        """)
    assert findings == []


def test_rc503_bad_compare_seconds_with_bytes():
    findings = flow("""
        def f(t_comp, nbytes):
            if t_comp > nbytes:
                return t_comp
            return nbytes
        """)
    assert rule_ids(findings) == ["RC503"]
    assert "seconds vs bytes" in findings[0].message


def test_rc503_good_compare_after_eq3():
    findings = flow("""
        def f(t_comp, data_size, io_rate):
            t_io = data_size / io_rate
            if t_comp >= t_io:
                return t_comp
            return t_io
        """)
    assert findings == []


def test_units_propagate_through_neutral_names():
    # Eq. 3 inference: bytes / rate = seconds, carried through a name
    # with no naming-convention claim of its own.
    findings = flow("""
        def f(data_size, io_rate):
            x = data_size / io_rate
            if x > data_size:
                return x
            return data_size
        """)
    assert rule_ids(findings) == ["RC503"]


def test_units_branch_join_is_not_definite():
    # A variable that may be bytes or seconds depending on the branch is
    # not a *definite* conflict; the gate stays silent.
    findings = flow("""
        def f(cond, nbytes, t_comp):
            if cond:
                v = nbytes
            else:
                v = t_comp
            return v + nbytes
        """)
    assert findings == []


# ---------------------------------------------------------------------------
# fixtures are invisible to the flat tier
# ---------------------------------------------------------------------------

def test_flow_bugs_are_invisible_to_flat_tier():
    source = textwrap.dedent("""
        def prog(ctx, engine):
            es = EventSet(engine)
            es.add(engine.event())
            return None
        """)
    assert lint_source(source, PATH) == []
    assert rule_ids(lint_source(source, PATH, flow=True)) == ["RC401"]


# ---------------------------------------------------------------------------
# the repo-wide gate: terminates and comes back clean
# ---------------------------------------------------------------------------

def test_repo_is_clean_under_flow_tier():
    """Acceptance gate: every CFG in src/ and tests/ reaches a fixpoint
    (no :class:`~repro.check.dataflow.FixpointDiverged`) and the flow
    rules report nothing."""
    findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"], flow=True)
    assert findings == [], render_findings(findings)
