"""Fleet-level fault tolerance: node ledger, kill/requeue, checkpoints.

Covers the scheduler's reactions to node-level faults end to end:

* the :class:`~repro.platform.Cluster` node-state ledger
  (UP/DOWN/DRAINING transitions, free-set and owner accounting),
* crash → kill → seeded-backoff requeue → checkpoint restart,
* the per-job retry budget and terminal FAILED state,
* the sibling-rank-failure regression (nodes released at the failure
  instant, kill reason and fault signature recorded),
* degraded admission while the shared PFS is inside an outage window,
* advisor quarantine of fault-tainted fleet measurements, and
* same-seed chaos replay determinism, including sweep-engine
  worker-count invariance.

Timings asserted exactly below come from the deterministic testbed: a
``compute_scale=2`` VPIC job runs 3 phases of 3 s compute + one ~70 ms
write each, finishing at ~9.2 s, so a crash at t=4.5 lands mid-phase-2
with exactly one checkpoint durable.
"""

import dataclasses
import json
import math

import pytest

from repro.faults import FaultConfig, FaultInjector, scenario_config
from repro.faults.scenarios import chaos_config
from repro.harness import run_fleet, sched_testbed
from repro.harness.sweepengine import SweepSpec, run_sweep
from repro.platform import Cluster, NodeState, testbed as _testbed
from repro.sched import (
    AdvisorService,
    JobSpec,
    JobState,
    Scheduler,
    StreamConfig,
    make_job,
    make_policy,
)
from repro.sim import Engine

GB = 1e9


def sched_spec(nodes=8):
    return _testbed(nodes=nodes, ranks_per_node=4, pfs_peak=3.0 * GB,
                    nic=2.0 * GB)


def build_chaos(fault_config=None, policy_name="fifo", nodes=8,
                checkpoint_restart=True, **sched_kwargs):
    """A scheduler wired to a fault injector (None = no chaos)."""
    spec = sched_spec(nodes)
    engine = Engine()
    cluster = Cluster(engine, spec, spec.total_nodes)
    injector = (FaultInjector(fault_config).attach(cluster)
                if fault_config is not None else None)
    service = AdvisorService(spec)
    policy = make_policy(
        policy_name, spec.default_ranks_per_node,
        service=service if policy_name == "io-aware" else None,
    )
    sched = Scheduler(engine, cluster, policy, service=service,
                      injector=injector,
                      checkpoint_restart=checkpoint_restart, **sched_kwargs)
    return spec, engine, cluster, sched, service


def crash_job(spec, max_restarts=2):
    """The calibrated single-node VPIC job the timing notes describe."""
    job = make_job("vpic", spec, "victim", nranks=4, mode="sync",
                   compute_scale=2.0)
    return dataclasses.replace(job, max_restarts=max_restarts)


# ---------------------------------------------------------------------------
# Cluster node-state ledger
# ---------------------------------------------------------------------------


def test_node_state_machine_transitions():
    spec = sched_spec()
    cluster = Cluster(Engine(), spec, spec.total_nodes)
    assert cluster.free_node_count == 8
    assert all(cluster.node_state(i) is NodeState.UP for i in range(8))

    cluster.fail_node(0)
    assert cluster.node_state(0) is NodeState.DOWN
    assert cluster.free_node_count == 7
    assert cluster.down_node_count == 1
    assert 0 not in cluster.free_node_indices()
    with pytest.raises(ValueError):
        cluster.fail_node(0)          # already down
    with pytest.raises(ValueError):
        cluster.drain_node(0)         # cannot drain a dead node
    cluster.revive_node(0)
    assert cluster.node_state(0) is NodeState.UP
    assert cluster.free_node_count == 8
    with pytest.raises(ValueError):
        cluster.revive_node(0)        # already up

    cluster.drain_node(1)
    assert cluster.node_state(1) is NodeState.DRAINING
    assert cluster.free_node_count == 7
    cluster.fail_node(1)              # draining node may still crash
    assert cluster.node_state(1) is NodeState.DOWN
    cluster.revive_node(1)
    assert cluster.free_node_count == 8

    with pytest.raises(ValueError):
        cluster.fail_node(99)


def test_down_node_stays_on_owner_books_until_release():
    spec = sched_spec()
    cluster = Cluster(Engine(), spec, spec.total_nodes)
    seen = []
    cluster.on_node_down.append(lambda i, kind: seen.append((i, kind)))

    taken = cluster.allocate_nodes(2, owner=7)
    assert taken == (0, 1)
    assert cluster.busy_node_count == 2

    assert cluster.fail_node(0) == 7          # returns the owner job id
    assert cluster.owner_of(0) == 7           # still on the owner's books
    assert seen == [(0, "crash")]
    assert cluster.free_node_count == 6       # busy node: free set unchanged

    cluster.release_owner(7)                  # the scheduler's reap path
    assert cluster.owner_of(0) is None
    assert cluster.free_node_indices() == (1, 2, 3, 4, 5, 6, 7)
    cluster.revive_node(0)                    # repaired -> placeable again
    assert cluster.free_node_count == 8


def test_allocation_skips_down_and_draining_nodes():
    spec = sched_spec()
    cluster = Cluster(Engine(), spec, spec.total_nodes)
    cluster.fail_node(0)
    cluster.drain_node(1)
    assert cluster.allocate_nodes(3) == (2, 3, 4)
    with pytest.raises(ValueError):
        cluster.allocate_nodes(4)             # only 5, 6, 7 left


# ---------------------------------------------------------------------------
# Crash -> kill -> requeue -> checkpoint restart
# ---------------------------------------------------------------------------


def test_node_crash_requeues_and_restarts_from_checkpoint():
    fc = FaultConfig(seed=0, node_crashes=((0, 4.5),))
    spec, engine, cluster, sched, _svc = build_chaos(fc)
    record = sched.run_stream([(0.0, crash_job(spec))])[0]

    assert record.state is JobState.COMPLETED
    assert record.attempts == 2
    assert sched.node_failures == 1
    assert sched.node_kills == 1
    assert sched.requeues == 1
    # Phase 1 was durable at the kill instant; only the partial phase 2
    # compute (1.5 s of it) is re-done.
    assert record.durable_phases >= 1
    assert record.lost_work_seconds == pytest.approx(1.5)
    [attempt] = record.attempt_history
    assert attempt["reason"] == "node 0 failed"
    assert attempt["nodes"] == [0]
    assert attempt["finish"] == pytest.approx(4.5)
    # The dead node never repairs, so the restart lands elsewhere.
    assert 0 not in record.nodes
    assert cluster.node_state(0) is NodeState.DOWN
    # Clean lifecycle on the final attempt: kill bookkeeping was reset.
    assert record.kill_reason is None and record.fault is None
    # Every surviving node is back in the free set.
    assert cluster.free_node_count == 7


def test_retry_budget_exhaustion_fails_the_job():
    fc = FaultConfig(seed=0, node_crashes=((0, 4.5),))
    spec, engine, cluster, sched, _svc = build_chaos(fc)
    record = sched.run_stream([(0.0, crash_job(spec, max_restarts=0))])[0]

    assert record.state is JobState.FAILED
    assert record.attempts == 1
    assert sched.requeues == 0
    assert record.kill_reason == "node 0 failed"
    assert record.fault == {"kind": "NodeFailureError", "node": 0}
    assert record.finish_time == pytest.approx(4.5)
    assert len(record.attempt_history) == 1


def test_checkpoint_restart_shrinks_lost_work():
    def run(checkpoint):
        fc = FaultConfig(seed=0, node_crashes=((0, 4.5),))
        spec, _e, _c, sched, _s = build_chaos(
            fc, checkpoint_restart=checkpoint)
        return sched.run_stream([(0.0, crash_job(spec))])[0]

    with_ckpt = run(True)
    scratch = run(False)
    assert with_ckpt.state is JobState.COMPLETED
    assert scratch.state is JobState.COMPLETED
    assert with_ckpt.durable_phases >= 1 and scratch.durable_phases == 0
    assert with_ckpt.lost_work_seconds < scratch.lost_work_seconds
    assert with_ckpt.finish_time < scratch.finish_time


def test_crash_on_idle_node_kills_nobody():
    fc = FaultConfig(seed=0, node_crashes=((7, 1.0),))
    spec, engine, cluster, sched, _svc = build_chaos(fc)
    record = sched.run_stream([(0.0, crash_job(spec))])[0]
    assert record.state is JobState.COMPLETED
    assert record.attempts == 1
    assert sched.node_failures == 1 and sched.node_kills == 0


# ---------------------------------------------------------------------------
# Sibling-rank failure (regression: release nodes at the failure instant)
# ---------------------------------------------------------------------------


def boom_factory(lib, vol, config):
    def program(ctx):
        if ctx.rank == 1:
            yield ctx.compute(1.0)
            raise ValueError("rank 1 exploded")
        yield ctx.compute(60.0)
        return ctx.now
    return program


def test_sibling_rank_failure_releases_nodes_immediately():
    spec, engine, cluster, sched, _svc = build_chaos(nodes=2)
    boom = JobSpec(name="boom", tenant="t0", workload="custom", nranks=8,
                   mode="sync", program_factory=boom_factory, config=None,
                   walltime=500.0)
    follower = make_job("vpic", spec, "follower", nranks=8, mode="sync")
    records = sched.run_stream([(0.0, boom), (0.0, follower)])

    dead, after = records
    assert dead.state is JobState.FAILED
    assert dead.kill_reason == "sibling rank failed"
    assert dead.fault == {"kind": "ValueError",
                          "message": "rank 1 exploded"}
    # Survivor ranks were reaped with the failure, not left to run the
    # full 60 s compute: the job ends at the failure instant ...
    assert dead.finish_time == pytest.approx(1.0)
    # ... and its whole allocation is released at that same instant, so
    # the queued job starts right then instead of after 60 s.
    assert after.start_time == pytest.approx(1.0)
    assert after.state is JobState.COMPLETED
    assert cluster.free_node_count == 2


# ---------------------------------------------------------------------------
# Degraded admission during a PFS outage
# ---------------------------------------------------------------------------


def test_degraded_admission_holds_queue_until_outage_ends():
    fc = scenario_config("pfs-outage", seed=0)   # PFS down over [30, 75)
    spec, engine, cluster, sched, _svc = build_chaos(fc)
    record = sched.run_stream([(40.0, crash_job(spec))])[0]

    assert record.state is JobState.COMPLETED
    assert record.start_time == pytest.approx(75.0)
    assert sched.degraded_seconds == pytest.approx(35.0)
    assert record.wait_time == pytest.approx(35.0)


def test_no_degradation_without_pending_work():
    fc = scenario_config("pfs-outage", seed=0)
    spec, engine, cluster, sched, _svc = build_chaos(fc)
    record = sched.run_stream([(80.0, crash_job(spec))])[0]
    assert record.state is JobState.COMPLETED
    assert sched.degraded_seconds == 0.0
    assert record.start_time == pytest.approx(80.0)


# ---------------------------------------------------------------------------
# Fleet metrics, quarantine and chaos replay determinism
# ---------------------------------------------------------------------------

#: The calibrated chaos shape bench_sched.py uses: long compute phases
#: and a busy queue make node crashes land on resident jobs.
CHAOS_STREAM = dict(n_jobs=12, mean_interarrival=5.0, compute_scale=6.0)


def chaos_fleet(checkpoint=True, seed=0):
    return run_fleet(
        sched_testbed(), StreamConfig(seed=seed, **CHAOS_STREAM),
        "io-aware",
        fault_config=chaos_config(10.0, seed=3 + 7919 * seed),
        checkpoint_restart=checkpoint,
    )


def test_chaos_fleet_metrics_and_quarantine():
    metrics = chaos_fleet()
    assert metrics.node_failures > 0
    assert metrics.node_kills > 0
    assert metrics.requeues > 0
    assert metrics.lost_work_seconds > 0.0
    # Wasted node-seconds charge each lost second once per held node.
    assert metrics.wasted_node_seconds >= metrics.lost_work_seconds
    assert metrics.fault_signature != ""
    # Fault-tainted completions never reach the advisor's history.
    assert metrics.quarantined > 0
    # Makespan covers the last job even though fault events outlast it.
    finishes = [j["finish_time"] for j in metrics.jobs
                if not math.isnan(j["finish_time"])]
    assert metrics.makespan == pytest.approx(max(finishes))
    for job in metrics.jobs:
        assert job["state"] in ("completed", "timeout", "failed")


def test_chaos_same_seed_replay_is_byte_identical():
    one = chaos_fleet()
    two = chaos_fleet()
    assert one.fault_signature == two.fault_signature
    assert (json.dumps(one.to_dict(), sort_keys=True)
            == json.dumps(two.to_dict(), sort_keys=True))


def test_zero_rate_chaos_is_disabled():
    assert chaos_config(0.0) is None
    assert chaos_config(-1.0) is None


def test_chaos_sweep_worker_count_is_unobservable():
    spec = SweepSpec(kind="sched", machines=("sched-testbed",),
                     modes=("fifo",), scales=(5,), seeds=(0,), jobs=8,
                     faults=(10.0,), fault_seed=3)
    serial = run_sweep(spec, workers=1)
    threaded = run_sweep(spec, workers=2)
    assert serial.to_json() == threaded.to_json()
    point = serial.merged["points"][0]
    assert point["fault_rate"] == 10.0
    assert point["metrics"]["fault_signature"] != ""
