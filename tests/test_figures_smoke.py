"""Smoke tests for the figure-generation plumbing at toy scales.

The real sweeps run in the benchmark suite; here the scale tables are
patched down so the full sweep → fit → table pipeline is exercised in
seconds, keeping the figure code covered by ``pytest tests/``.
"""

import pytest

from repro.harness import figures


@pytest.fixture
def tiny_scales(monkeypatch):
    monkeypatch.setitem(figures._SCALES, ("summit", "quick"), [12, 24, 48])
    monkeypatch.setitem(figures._SCALES, ("cori", "quick"), [32, 64, 128])
    monkeypatch.setitem(figures._SCALES, ("summit-app", "quick"), [12, 24])
    monkeypatch.setitem(figures._SCALES, ("summit-sat", "quick"), [12, 24])
    monkeypatch.setitem(figures._SCALES, ("cori-app", "quick"), [32, 64])
    monkeypatch.setitem(figures._REPS, "quick", 1)
    monkeypatch.setitem(figures._STEPS, "quick", 2)


def _check_bandwidth_figure(fig, n_rows):
    assert fig.columns == ["ranks", "nodes", "sync GB/s", "est sync GB/s",
                           "async GB/s", "est async GB/s"]
    assert len(fig.rows) == n_rows
    assert 0.0 <= fig.meta["r2 async"] <= 1.0
    assert all(v > 0 for v in fig.column("sync GB/s"))
    assert all(v > 0 for v in fig.column("async GB/s"))


def test_fig3a_pipeline(tiny_scales):
    _check_bandwidth_figure(figures.fig3a("quick"), 3)


def test_fig3d_pipeline(tiny_scales):
    _check_bandwidth_figure(figures.fig3d("quick"), 3)


def test_fig4c_pipeline(tiny_scales):
    _check_bandwidth_figure(figures.fig4c("quick"), 2)


def test_fig6_pipeline(tiny_scales):
    _check_bandwidth_figure(figures.fig6("quick"), 2)


def test_fig5_pipeline(tiny_scales):
    _check_bandwidth_figure(figures.fig5("quick"), 2)


def test_microbench_figures():
    mem = figures.microbench_memcpy("quick")
    gpu = figures.microbench_gpu("quick")
    assert mem.columns[0] == "size MiB"
    assert len(mem.rows) == len(gpu.rows) == 10
