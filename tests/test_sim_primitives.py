"""Unit tests for simulation synchronization primitives."""

import pytest

from repro.sim import Barrier, Engine, Mutex, Queue, Semaphore, Timeout


# ---------------------------------------------------------------------------
# Semaphore / Mutex
# ---------------------------------------------------------------------------


def test_semaphore_limits_concurrency():
    eng = Engine()
    sem = Semaphore(eng, capacity=2)
    active = [0]
    peak = [0]

    def worker():
        yield sem.acquire()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield Timeout(1.0)
        active[0] -= 1
        sem.release()

    for _ in range(6):
        eng.process(worker())
    eng.run()
    assert peak[0] == 2
    assert eng.now == pytest.approx(3.0)  # 6 jobs, 2 wide, 1s each


def test_semaphore_fifo_wakeup():
    eng = Engine()
    sem = Semaphore(eng, capacity=1)
    order = []

    def worker(tag):
        yield sem.acquire()
        order.append(tag)
        yield Timeout(1.0)
        sem.release()

    for tag in "abcd":
        eng.process(worker(tag))
    eng.run()
    assert order == list("abcd")


def test_semaphore_release_unheld_raises():
    eng = Engine()
    sem = Semaphore(eng)
    with pytest.raises(RuntimeError):
        sem.release()


def test_semaphore_invalid_capacity():
    with pytest.raises(ValueError):
        Semaphore(Engine(), capacity=0)


def test_mutex_is_binary():
    eng = Engine()
    m = Mutex(eng)
    assert m.capacity == 1


def test_semaphore_counters():
    eng = Engine()
    sem = Semaphore(eng, capacity=1)

    def holder():
        yield sem.acquire()
        assert sem.in_use == 1
        yield Timeout(2.0)
        sem.release()

    def contender():
        yield Timeout(1.0)
        acq = sem.acquire()
        assert sem.queued == 1
        yield acq
        sem.release()

    eng.process(holder())
    eng.process(contender())
    eng.run()
    assert sem.in_use == 0
    assert sem.queued == 0


# ---------------------------------------------------------------------------
# Queue
# ---------------------------------------------------------------------------


def test_queue_put_then_get():
    eng = Engine()
    q = Queue(eng)
    q.put("item")

    def consumer():
        item = yield q.get()
        return item

    assert eng.run_process(consumer()) == "item"


def test_queue_get_blocks_until_put():
    eng = Engine()
    q = Queue(eng)

    def consumer():
        item = yield q.get()
        return (eng.now, item)

    def producer():
        yield Timeout(4.0)
        q.put("late")

    proc = eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert proc.value == (4.0, "late")


def test_queue_fifo_items_and_getters():
    eng = Engine()
    q = Queue(eng)
    got = []

    def consumer(tag):
        item = yield q.get()
        got.append((tag, item))

    eng.process(consumer("c1"))
    eng.process(consumer("c2"))

    def producer():
        yield Timeout(1.0)
        q.put("first")
        q.put("second")

    eng.process(producer())
    eng.run()
    assert got == [("c1", "first"), ("c2", "second")]


def test_queue_close_releases_getters_with_sentinel():
    eng = Engine()
    q = Queue(eng)

    def consumer():
        item = yield q.get()
        return item is Queue.CLOSED

    proc = eng.process(consumer())

    def closer():
        yield Timeout(1.0)
        q.close()

    eng.process(closer())
    eng.run()
    assert proc.value is True


def test_queue_drains_before_closed_sentinel():
    eng = Engine()
    q = Queue(eng)
    q.put(1)
    q.close()

    def consumer():
        first = yield q.get()
        second = yield q.get()
        return (first, second is Queue.CLOSED)

    assert eng.run_process(consumer()) == (1, True)


def test_queue_put_after_close_raises():
    eng = Engine()
    q = Queue(eng)
    q.close()
    with pytest.raises(RuntimeError):
        q.put(1)


# ---------------------------------------------------------------------------
# Barrier
# ---------------------------------------------------------------------------


def test_barrier_releases_all_at_once():
    eng = Engine()
    bar = Barrier(eng, parties=3)
    release_times = []

    def party(arrival):
        yield Timeout(arrival)
        yield bar.wait()
        release_times.append(eng.now)

    for arrival in [1.0, 5.0, 3.0]:
        eng.process(party(arrival))
    eng.run()
    assert release_times == [5.0, 5.0, 5.0]


def test_barrier_is_cyclic_with_generations():
    eng = Engine()
    bar = Barrier(eng, parties=2)
    gens = []

    def party():
        for _ in range(3):
            gen = yield bar.wait()
            gens.append(gen)
            yield Timeout(1.0)

    eng.process(party())
    eng.process(party())
    eng.run()
    assert sorted(gens) == [0, 0, 1, 1, 2, 2]
    assert bar.generation == 3


def test_barrier_single_party_never_blocks():
    eng = Engine()
    bar = Barrier(eng, parties=1)

    def party():
        for _ in range(5):
            yield bar.wait()
        return eng.now

    assert eng.run_process(party()) == 0.0


def test_barrier_invalid_parties():
    with pytest.raises(ValueError):
        Barrier(Engine(), parties=0)
