"""Tests for MPI-IO-style two-phase collective writes in NativeVOL."""

import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT64, H5Library, NativeVOL, slab_1d

KiB = 1 << 10
MiB = 1 << 20


def run_write(collective, naggregators=1, nprocs=8, elems_per_rank=32 * KiB,
              nodes=2, latency_penalty=0.0):
    import dataclasses
    eng = Engine()
    machine = make_testbed(nodes=nodes, ranks_per_node=4)
    if latency_penalty:
        machine = dataclasses.replace(
            machine,
            filesystem=dataclasses.replace(
                machine.filesystem, client_latency_penalty=latency_penalty
            ),
        )
    cluster = Cluster(eng, machine, nodes)
    job = MPIJob(cluster, nprocs, ranks_per_node=4)
    lib = H5Library(cluster)
    vol = NativeVOL(collective=collective, naggregators=naggregators)

    def program(ctx):
        f = yield from lib.create(ctx, "/coll.h5", vol)
        d = f.create_dataset("/d", shape=(elems_per_rank * ctx.size,),
                             dtype=FLOAT64)
        yield from d.write(slab_1d(ctx.rank, elems_per_rank), phase=0)
        yield from f.close()
        return ctx.now

    times = job.run(program)
    return vol, cluster, times


def test_collective_write_synchronizes_ranks():
    vol, cluster, times = run_write(collective=True)
    # all ranks leave the collective write together
    assert max(times) == pytest.approx(min(times), rel=1e-6)
    recs = vol.log.select(op="write")
    assert len(recs) == 8
    # per-rank records still carry each rank's own contribution
    assert all(r.nbytes == 32 * KiB * 8 for r in recs)


def test_collective_write_moves_all_bytes_once():
    vol, cluster, times = run_write(collective=True, naggregators=2)
    target = cluster.pfs._targets["/coll.h5"]
    assert target.bytes_written == pytest.approx(8 * 32 * KiB * 8)


def test_collective_beats_independent_for_tiny_requests():
    """Two-phase aggregation rescues small-per-rank writes: fewer,
    larger storage requests dodge the per-client metadata serialization
    that many tiny concurrent requests suffer."""
    _, _, t_coll = run_write(collective=True, naggregators=2,
                             elems_per_rank=4 * KiB, latency_penalty=5e-4)
    _, _, t_ind = run_write(collective=False, elems_per_rank=4 * KiB,
                            latency_penalty=5e-4)
    assert max(t_coll) < max(t_ind)


def test_independent_beats_collective_for_huge_requests():
    """With large per-rank requests the shuffle is pure overhead and
    aggregation throttles parallelism."""
    _, _, t_coll = run_write(collective=True, naggregators=1,
                             elems_per_rank=16 * MiB)
    _, _, t_ind = run_write(collective=False, elems_per_rank=16 * MiB)
    assert max(t_ind) < max(t_coll)


def test_collective_round_reusable_across_datasets():
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    job = MPIJob(cluster, 4, ranks_per_node=4)
    lib = H5Library(cluster)
    vol = NativeVOL(collective=True, naggregators=2)

    def program(ctx):
        f = yield from lib.create(ctx, "/multi.h5", vol)
        for i in range(3):
            d = f.create_dataset(f"/d{i}", shape=(4 * KiB * ctx.size,),
                                 dtype=FLOAT64)
            yield from d.write(slab_1d(ctx.rank, 4 * KiB), phase=i)
        yield from f.close()

    job.run(program)
    assert len(vol.log.select(op="write")) == 4 * 3
    assert not vol._rounds  # all rounds retired


def test_naggregators_validation():
    with pytest.raises(ValueError):
        NativeVOL(naggregators=0)
