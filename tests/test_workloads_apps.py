"""Tests for the application workloads: AMReX substrate, Nyx, Castro,
SW4/EQSIM and Cosmoflow."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.workloads import (
    Box,
    BoxArray,
    CastroConfig,
    CosmoflowConfig,
    MultiFab,
    NyxConfig,
    ParticleContainer,
    SW4Config,
    castro_program,
    cosmoflow_program,
    nyx_program,
    sw4_program,
)

Mi = 1 << 20


def run_app(program_factory, config, vol, nprocs=4, prepopulate=None):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=nprocs), 1)
    job = MPIJob(cluster, nprocs, ranks_per_node=nprocs)
    lib = H5Library(cluster)
    if prepopulate is not None:
        prepopulate(lib, nprocs)
    results = job.run(program_factory(lib, vol, config))
    return lib, vol, results


# ---------------------------------------------------------------------------
# AMReX substrate
# ---------------------------------------------------------------------------


def test_box_cells():
    b = Box(lo=(0, 0, 0), hi=(3, 3, 3))
    assert b.ncells == 64
    with pytest.raises(ValueError):
        Box(lo=(1, 0, 0), hi=(0, 0, 0))


def test_boxarray_covers_domain_exactly():
    ba = BoxArray((64, 64, 64), max_grid_size=32)
    assert len(ba) == 8
    assert ba.ncells == 64**3


def test_boxarray_handles_non_divisible_domain():
    ba = BoxArray((10, 10, 10), max_grid_size=4)
    assert ba.ncells == 1000  # partial boxes at the high ends
    assert len(ba) == 27


def test_boxarray_distribution_roundrobin():
    ba = BoxArray((64, 64, 64), max_grid_size=32)
    owned = ba.distribute(3)
    assert [len(o) for o in owned] == [3, 3, 2]
    assert sum(ba.cells_per_rank(3)) == ba.ncells
    prefix = ba.cells_prefix(3)
    assert prefix[0] == 0
    assert prefix[2] == ba.cells_per_rank(3)[0] + ba.cells_per_rank(3)[1]


def test_boxarray_more_ranks_than_boxes():
    ba = BoxArray((32, 32, 32), max_grid_size=32)  # single box
    cells = ba.cells_per_rank(4)
    assert cells == [32**3, 0, 0, 0]


def test_boxarray_validation():
    with pytest.raises(ValueError):
        BoxArray((0, 1, 1), 4)
    with pytest.raises(ValueError):
        BoxArray((4, 4, 4), 0)
    with pytest.raises(ValueError):
        BoxArray((4, 4, 4), 2).cells_per_rank(0)


def test_multifab_bytes():
    ba = BoxArray((16, 16, 16), max_grid_size=8)
    mf = MultiFab(ba, ncomp=6)
    assert mf.total_bytes == 16**3 * 6 * 8
    assert sum(mf.bytes_of_rank(r, 4) for r in range(4)) == mf.total_bytes
    with pytest.raises(ValueError):
        MultiFab(ba, ncomp=0)


def test_particle_container_bytes():
    ba = BoxArray((8, 8, 8), max_grid_size=8)
    pc = ParticleContainer(ba, particles_per_cell=2, reals_per_particle=4)
    assert pc.total_bytes == 8**3 * 2 * 4 * 8
    with pytest.raises(ValueError):
        ParticleContainer(ba, particles_per_cell=-1)


@given(
    nx=st.integers(min_value=1, max_value=40),
    ny=st.integers(min_value=1, max_value=40),
    nz=st.integers(min_value=1, max_value=40),
    mgs=st.integers(min_value=1, max_value=16),
    nranks=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_property_boxarray_partition(nx, ny, nz, mgs, nranks):
    """The decomposition partitions the domain: cells sum exactly and
    every prefix is consistent."""
    ba = BoxArray((nx, ny, nz), mgs)
    cells = ba.cells_per_rank(nranks)
    assert sum(cells) == nx * ny * nz
    prefix = ba.cells_prefix(nranks)
    for r in range(nranks):
        assert prefix[r] == sum(cells[:r])


# ---------------------------------------------------------------------------
# Nyx
# ---------------------------------------------------------------------------

SMALL_NYX = NyxConfig(dim=64, max_grid_size=16, ncomp=4, plot_int=5,
                      n_plotfiles=2, seconds_per_step=0.4)


def test_nyx_config_presets():
    small = NyxConfig.small()
    large = NyxConfig.large()
    assert (small.dim, small.plot_int) == (256, 20)
    assert (large.dim, large.plot_int) == (2048, 50)
    assert small.compute_phase_seconds() == pytest.approx(20 * 0.5)
    with pytest.raises(ValueError):
        NyxConfig(plot_int=0)


def test_nyx_plotfile_bytes_strong_scaling():
    cfg = SMALL_NYX
    assert cfg.plotfile_bytes() == 64**3 * 4 * 8
    # fixed total regardless of rank count (strong scaling)


def test_nyx_writes_plotfiles():
    vol = NativeVOL()
    lib, vol, results = run_app(nyx_program, SMALL_NYX, vol)
    stored = lib.files["/nyx_plt.h5"]
    assert set(stored.datasets) == {"/plt00005/state_lev0",
                                    "/plt00010/state_lev0"}
    total = sum(r.nbytes for r in vol.log.select(op="write"))
    assert total == pytest.approx(2 * SMALL_NYX.plotfile_bytes())


def test_nyx_async_hides_io():
    # Zero the connector constants (t_init, t_term): this test isolates
    # the I/O hiding itself, and rank programs now charge t_term at
    # finalize (Eq. 1), which would otherwise swamp the tiny margin.
    sync = NativeVOL()
    _, _, sync_results = run_app(nyx_program, SMALL_NYX, sync)
    async_vol = AsyncVOL(init_time=0.0, term_time=0.0)
    _, _, async_results = run_app(nyx_program, SMALL_NYX, async_vol)
    assert max(async_results) < max(sync_results)


# ---------------------------------------------------------------------------
# Castro
# ---------------------------------------------------------------------------

SMALL_CASTRO = CastroConfig(dim=32, max_grid_size=16, plot_int=2,
                            n_plotfiles=2, seconds_per_step=0.5)


def test_castro_config_paper_defaults():
    cfg = CastroConfig()
    assert cfg.dim == 128
    assert cfg.ncomp == 6
    assert cfg.particles_per_cell == 2
    with pytest.raises(ValueError):
        CastroConfig(n_multifabs=0)


def test_castro_plotfile_includes_particles():
    vol = NativeVOL()
    lib, vol, results = run_app(castro_program, SMALL_CASTRO, vol)
    stored = lib.files["/castro_plt.h5"]
    names = set(stored.datasets)
    assert "/plt00002/mf0" in names
    assert "/plt00002/mf1" in names
    assert "/plt00002/particles" in names
    total = sum(r.nbytes for r in vol.log.select(op="write"))
    assert total == pytest.approx(2 * SMALL_CASTRO.plotfile_bytes())


def test_castro_per_rank_bytes_shrink_with_scale():
    """Strong scaling: per-rank write sizes drop as ranks grow."""
    cfg = SMALL_CASTRO
    vol4 = NativeVOL()
    run_app(castro_program, cfg, vol4, nprocs=4)
    vol8 = NativeVOL()
    run_app(castro_program, cfg, vol8, nprocs=8)
    mean4 = sum(r.nbytes for r in vol4.log.records) / len(vol4.log.records)
    mean8 = sum(r.nbytes for r in vol8.log.records) / len(vol8.log.records)
    assert mean8 < mean4


# ---------------------------------------------------------------------------
# SW4 / EQSIM
# ---------------------------------------------------------------------------


def test_sw4_paper_geometry():
    cfg = SW4Config()
    assert cfg.grid_points() == 600 * 600 * 340
    assert cfg.checkpoint_bytes() == 600 * 600 * 340 * 6 * 8
    assert cfg.compute_phase_seconds() == pytest.approx(25.0)
    with pytest.raises(ValueError):
        SW4Config(grid_spacing_m=0.0)


SMALL_SW4 = SW4Config(domain_m=(800.0, 800.0, 400.0), grid_spacing_m=50.0,
                      checkpoint_int=4, n_checkpoints=2, seconds_per_step=0.5)


def test_sw4_checkpoints_written():
    vol = NativeVOL()
    lib, vol, results = run_app(sw4_program, SMALL_SW4, vol)
    stored = lib.files["/sw4_ckpt.h5"]
    assert set(stored.datasets) == {"/ckpt0000/u", "/ckpt0001/u"}
    for d in stored.datasets.values():
        assert d.coverage_1d() == pytest.approx(1.0)
    total = sum(r.nbytes for r in vol.log.select(op="write"))
    assert total == pytest.approx(2 * SMALL_SW4.checkpoint_bytes())


def test_sw4_remainder_goes_to_last_rank():
    """Uneven division: last rank takes the remainder, nothing lost."""
    cfg = SW4Config(domain_m=(350.0, 350.0, 350.0), grid_spacing_m=50.0,
                    checkpoint_int=1, n_checkpoints=1, seconds_per_step=0.1)
    vol = NativeVOL()
    lib, vol, results = run_app(sw4_program, cfg, vol, nprocs=4)
    # 7*7*7*6 = 2058 elements over 4 ranks: 514/514/514/516
    sizes = sorted(r.nbytes / 8 for r in vol.log.select(op="write"))
    assert sizes == [514.0, 514.0, 514.0, 516.0]


# ---------------------------------------------------------------------------
# Cosmoflow
# ---------------------------------------------------------------------------

SMALL_CF = CosmoflowConfig(voxels=32, channels=2, batch_size=2,
                           batches_per_rank=3, epochs=2,
                           seconds_per_batch=2.0)


def test_cosmoflow_paper_defaults():
    cfg = CosmoflowConfig()
    assert cfg.voxels == 128
    assert cfg.batch_size == 8
    assert cfg.epochs == 4
    assert cfg.sample_bytes() == 128**3 * 4 * 4
    with pytest.raises(ValueError):
        CosmoflowConfig(batch_size=0)


def test_cosmoflow_reads_batches():
    vol = NativeVOL()
    lib, vol, results = run_app(
        cosmoflow_program, SMALL_CF, vol,
        prepopulate=lambda lib, n: SMALL_CF.prepopulate(lib, n),
    )
    recs = vol.log.select(op="read")
    # ranks * epochs * batches * batch_size sample reads
    assert len(recs) == 4 * 2 * 3 * 2
    assert all(r.nbytes == SMALL_CF.sample_bytes() for r in recs)
    # one phase per (epoch, batch)
    assert vol.log.phases(op="read") == list(range(2 * 3))


def test_cosmoflow_async_loader_sustains_bandwidth():
    pre = lambda lib, n: SMALL_CF.prepopulate(lib, n)
    sync = NativeVOL()
    run_app(cosmoflow_program, SMALL_CF, sync, prepopulate=pre)
    async_vol = AsyncVOL(init_time=0.0)
    run_app(cosmoflow_program, SMALL_CF, async_vol, prepopulate=pre)
    # steady-state async batches beat sync batches
    assert (async_vol.log.peak_bandwidth(op="read")
            > sync.log.peak_bandwidth(op="read"))
    # second-epoch reads are cache hits again (prefetch re-armed)
    later = async_vol.log.select(op="read", phase=4)
    assert any(r.cache_hit for r in later)


def test_cosmoflow_shuffling_defeats_sequential_prefetch():
    """Shuffled access order makes the sequential prefetcher useless —
    the reason loaders shuffle shards, not samples within a stream."""
    from repro.hdf5 import AsyncVOL

    def run(shuffle_seed):
        cfg = CosmoflowConfig(voxels=32, channels=2, batch_size=2,
                              batches_per_rank=4, epochs=1,
                              seconds_per_batch=2.0,
                              shuffle_seed=shuffle_seed)
        vol = AsyncVOL(init_time=0.0)
        run_app(cosmoflow_program, cfg, vol, nprocs=2,
                prepopulate=lambda lib, n: cfg.prepopulate(lib, n))
        recs = vol.log.select(op="read")
        return sum(1 for r in recs if r.cache_hit), len(recs)

    ordered_hits, n = run(None)
    shuffled_hits, n2 = run(12345)
    assert n == n2
    assert ordered_hits > n // 2       # in-order: mostly cache hits
    assert shuffled_hits < ordered_hits  # shuffle erodes hit rate


def test_amr_hierarchy_levels_and_cells():
    from repro.workloads import AMRHierarchy
    h = AMRHierarchy((64, 64, 64), max_grid_size=16, levels=3,
                     ref_ratio=2, coverage=0.125)
    assert len(h) == 3
    # level 1 refines half the extent per side at ratio 2 -> same size
    assert h.levels[0].ncells == 64**3
    assert h.levels[1].ncells == 64**3  # (64*0.5)*2 per side
    assert h.total_cells == sum(ba.ncells for ba in h.levels)
    mfs = h.multifabs(ncomp=4)
    assert [m.name for m in mfs] == ["state_lev0", "state_lev1", "state_lev2"]
    import pytest as _p
    with _p.raises(ValueError):
        AMRHierarchy((8, 8, 8), 4, levels=0)
    with _p.raises(ValueError):
        AMRHierarchy((8, 8, 8), 4, coverage=0.0)
    with _p.raises(ValueError):
        AMRHierarchy((8, 8, 8), 4, ref_ratio=1)


def test_nyx_multilevel_plotfile():
    cfg = NyxConfig(dim=32, max_grid_size=8, ncomp=2, plot_int=2,
                    n_plotfiles=1, seconds_per_step=0.2,
                    amr_levels=2, amr_coverage=0.125)
    vol = NativeVOL()
    lib, vol, results = run_app(nyx_program, cfg, vol)
    stored = lib.files["/nyx_plt.h5"]
    assert set(stored.datasets) == {"/plt00002/state_lev0",
                                    "/plt00002/state_lev1"}
    # the refined level writes its own (refined sub-domain) volume
    total = sum(r.nbytes for r in vol.log.select(op="write"))
    assert total > cfg.plotfile_bytes()  # more than single-level output
