"""Tests for the Advisor and the AdaptiveVOL feedback loop (Fig. 2)."""

import math

import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT64, AsyncVOL, H5Library, NativeVOL, slab_1d
from repro.model import (
    Advisor,
    AdaptiveVOL,
    ComputeTimeModel,
    IORateModel,
    MeasurementHistory,
    Mode,
    TransactOverheadModel,
    memcpy_microbench,
)
from repro.platform.memory import MemcpySpec

MiB = 1 << 20
GB = 1e9


def make_advisor(t_comp=None, sync_rates=None):
    comp = ComputeTimeModel()
    if t_comp is not None:
        comp.observe(t_comp)
    history = MeasurementHistory()
    if sync_rates:
        for size, ranks, rate in sync_rates:
            history.record(size, ranks, rate, mode="sync")
    rate_model = IORateModel(history, mode="sync")
    transact = TransactOverheadModel.from_memcpy_spec(MemcpySpec())
    return Advisor(comp, rate_model, transact)


def seeded_history(rate=2 * GB):
    return [(1 * GB, 8, rate), (2 * GB, 8, rate), (4 * GB, 8, rate),
            (8 * GB, 8, rate)]


# ---------------------------------------------------------------------------
# Advisor decisions
# ---------------------------------------------------------------------------


def test_advisor_falls_back_until_ready():
    adv = make_advisor()
    decision = adv.decide(1 * GB, 8)
    assert decision.mode is Mode.SYNC
    assert math.isnan(decision.est_sync_epoch)


def test_advisor_picks_async_for_long_compute():
    adv = make_advisor(t_comp=30.0, sync_rates=seeded_history())
    decision = adv.decide(4 * GB, 8)
    # t_io = 2s at 2 GB/s; transact ~ 65ms: async epoch ~30.07 vs sync 32
    assert decision.mode is Mode.ASYNC
    assert decision.est_async_epoch < decision.est_sync_epoch
    assert decision.predicted_speedup > 1.0


def test_advisor_picks_sync_for_tiny_compute():
    adv = make_advisor(t_comp=0.001, sync_rates=seeded_history(rate=100 * GB))
    decision = adv.decide(1 * MiB * 8, 8)
    # I/O is nearly free; the staging copy dominates -> stay sync
    assert decision.mode is Mode.SYNC


def test_advisor_hysteresis_margin():
    history = MeasurementHistory()
    for size, ranks, rate in seeded_history(rate=2 * GB):
        history.record(size, ranks, rate, mode="sync")
    comp = ComputeTimeModel()
    comp.observe(0.3)  # marginal benefit regime
    transact = TransactOverheadModel.from_memcpy_spec(MemcpySpec())
    eager = Advisor(comp, IORateModel(history, "sync"), transact, margin=0.0)
    cautious = Advisor(comp, IORateModel(history, "sync"), transact, margin=10.0)
    d_eager = eager.decide(4 * GB, 8)
    d_cautious = cautious.decide(4 * GB, 8)
    assert d_eager.mode is Mode.ASYNC
    assert d_cautious.mode is Mode.SYNC  # same estimates, higher bar


def test_advisor_validation():
    with pytest.raises(ValueError):
        Advisor(ComputeTimeModel(), IORateModel(MeasurementHistory(), "sync"),
                TransactOverheadModel(), margin=-1.0)


def test_microbench_feeds_transact_model():
    machine = make_testbed()
    samples = memcpy_microbench(machine)
    model = TransactOverheadModel.from_samples(
        [s.nbytes for s in samples], [s.seconds for s in samples]
    )
    assert model.r2 > 0.999
    expected = machine.node.memcpy.per_copy.transfer_time(64 * MiB)
    assert model.estimate(64 * MiB) == pytest.approx(expected, rel=0.01)


def test_gpu_microbench_pinned_faster():
    from repro.model import gpu_transfer_microbench
    machine = make_testbed()
    pinned = gpu_transfer_microbench(machine, pinned=True)
    pageable = gpu_transfer_microbench(machine, pinned=False)
    for p, q in zip(pinned, pageable):
        assert p.seconds < q.seconds
    from repro.platform import cori_haswell
    with pytest.raises(ValueError):
        gpu_transfer_microbench(cori_haswell())


# ---------------------------------------------------------------------------
# AdaptiveVOL end-to-end
# ---------------------------------------------------------------------------


def run_adaptive(n_epochs=6, compute_seconds=5.0, nprocs=4, n_elems=32 * MiB):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    job = MPIJob(cluster, nprocs, ranks_per_node=4)
    lib = H5Library(cluster)
    history = MeasurementHistory()
    advisor = Advisor(
        ComputeTimeModel(),
        IORateModel(history, mode="sync", min_samples=3),
        TransactOverheadModel.from_memcpy_spec(cluster.machine.node.memcpy),
    )
    vol = AdaptiveVOL(NativeVOL(), AsyncVOL(init_time=0.0), advisor,
                      nranks=nprocs)

    def program(ctx):
        f = yield from lib.create(ctx, "/adaptive.h5", vol)
        for epoch in range(n_epochs):
            yield ctx.compute(compute_seconds)
            d = f.create_dataset(f"/step{epoch}/x", shape=(nprocs * n_elems,),
                                 dtype=FLOAT64)
            yield from d.write(slab_1d(ctx.rank, n_elems), phase=epoch)
        yield from f.close()
        return ctx.now

    job.run(program)
    return vol, advisor


def test_adaptive_starts_sync_then_switches_to_async():
    vol, advisor = run_adaptive(compute_seconds=5.0)
    modes = [m for _, m in vol.mode_trace]
    assert modes[0] is Mode.SYNC  # cold start: fallback
    assert modes[-1] is Mode.ASYNC  # warmed up: compute long enough
    # once switched, it stays switched in this steady workload
    first_async = modes.index(Mode.ASYNC)
    assert all(m is Mode.ASYNC for m in modes[first_async:])


def test_adaptive_stays_sync_when_compute_below_transact():
    """Fig. 1c: t_comp << t_transact -> the advisor never leaves sync."""
    vol, advisor = run_adaptive(compute_seconds=1e-5, n_elems=4 * MiB)
    modes = [m for _, m in vol.mode_trace]
    assert all(m is Mode.SYNC for m in modes)


def test_adaptive_records_both_modes_into_history():
    vol, advisor = run_adaptive(compute_seconds=5.0)
    history = advisor.io_rate_model.history
    assert len(history.select(mode="sync")) >= 3
    assert len(history.select(mode="async")) >= 1


def test_adaptive_compute_model_learns_gap():
    vol, advisor = run_adaptive(compute_seconds=5.0)
    # observed gaps include the 5s compute (plus small metadata noise)
    assert advisor.compute_model.estimate() == pytest.approx(5.0, rel=0.2)


def test_adaptive_one_decision_per_phase():
    vol, advisor = run_adaptive(n_epochs=4)
    phases = [p for p, _ in vol.mode_trace]
    assert phases == sorted(set(phases))


def test_advisor_r2_gate_blocks_untrusted_fits():
    """§III-B2: below the r² quality bar the advisor keeps the fallback."""
    import numpy as np
    history = MeasurementHistory()
    rng = np.random.default_rng(3)
    # rates uncorrelated with (size, ranks): the fit cannot be trusted
    for _ in range(20):
        history.record(float(rng.uniform(1e9, 8e9)),
                       int(rng.integers(8, 64)),
                       float(rng.uniform(1e9, 100e9)), mode="sync")
    comp = ComputeTimeModel()
    comp.observe(30.0)
    transact = TransactOverheadModel.from_memcpy_spec(MemcpySpec())
    gated = Advisor(comp, IORateModel(history, "sync"), transact, min_r2=0.7)
    decision = gated.decide(4 * GB, 8)
    assert decision.mode is Mode.SYNC  # fallback
    assert math.isnan(decision.est_sync_epoch)
    # same data without the gate: the advisor acts on the (bad) fit
    ungated = Advisor(comp, IORateModel(history, "sync"), transact)
    assert not math.isnan(ungated.decide(4 * GB, 8).est_sync_epoch)


def test_advisor_min_r2_validation():
    with pytest.raises(ValueError):
        Advisor(ComputeTimeModel(), IORateModel(MeasurementHistory(), "sync"),
                TransactOverheadModel(), min_r2=1.5)
