"""Smoke tests: the fast example scripts run end-to-end.

Examples are the library's public face; these tests keep them from
rotting.  Only the quick ones run here (the sweep-heavy examples are
exercised by the benchmark suite instead).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "sync mode" in out and "async mode" in out
    assert "aggregate write bandwidth" in out


def test_adaptive_io_runs():
    out = run_example("adaptive_io.py")
    assert "sync" in out and "async" in out
    assert "cold start" in out


def test_eqsim_checkpointing_runs():
    out = run_example("eqsim_checkpointing.py")
    assert "DRAM staging" in out
    assert "node-SSD staging" in out
