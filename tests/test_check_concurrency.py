"""Tests for the concurrency tier of ``repro check`` (RC6xx).

Four layers, mirroring the implementation:

- the effect summaries (:mod:`repro.check.concurrency`): token
  resolution for class-attr and ctor-local primitives, acquisition
  pairs through resolved callees, the escape hedge, and the
  spawned-worker separation (a worker's ops must not pair with its
  spawner's held set);
- the four rules, each with a good/bad fixture pair — RC601
  acquisition-order cycle through a helper, RC602 lost wakeup with the
  trigger supplied by a spawned producer, RC603 overlapping constant
  region writes vs disjoint/synced, RC604 exception-path claim leak
  inherited across a call vs try/finally;
- fingerprints and the ``--baseline`` CLI mode: stable across pure
  line shifts, carried in JSON and SARIF, regressions-only filtering;
- the repo-wide gate: ``repro check --flow --inter --concurrency``
  reports zero findings over this repository, worker-count invariant.
"""

import json
import pathlib
import textwrap

from repro.check import lint_source, render_findings
from repro.check.lint import findings_to_json, findings_to_sarif
from repro.check.summaries import InterContext

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Conc rules are repo-scoped; module names derive from these paths.
SIM_PATH = "src/repro/sim/fixture.py"


def build(files):
    return InterContext.build(
        {path: textwrap.dedent(src) for path, src in files.items()})


def conc_lint(files, path):
    ctx = build(files)
    return lint_source(textwrap.dedent(files[path]), path, flow=True,
                       inter=ctx, concurrency=True)


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# effect summaries: tokens, pairs, escapes, spawned workers
# ---------------------------------------------------------------------------

def test_class_attr_tokens_compose_acquisition_pairs_across_methods():
    ctx = build({SIM_PATH: """
        from repro.sim import Semaphore


        class Pair:
            def __init__(self, engine):
                self._a = Semaphore(engine, 1)
                self._b = Semaphore(engine, 1)

            def locked(self):
                yield self._a.acquire()
                yield self._b.acquire()
                self._b.release()
                self._a.release()
        """})
    conc = ctx.summaries["repro.sim.fixture.Pair.locked"].conc
    tok_a = "C:repro.sim.fixture.Pair._a"
    tok_b = "C:repro.sim.fixture.Pair._b"
    assert any(p[0] == tok_a and p[1] == tok_b for p in conc.pairs)
    assert conc.imbalance == ()


def test_escaped_token_is_exempt_from_imbalance():
    # Returning the claim hands the release duty to the caller — the
    # ``StagingBuffer.reserve`` pattern.  No RC604.
    ctx = build({SIM_PATH: """
        from repro.sim import Semaphore


        def make_held(engine):
            s = Semaphore(engine, 1)
            yield s.acquire()
            return s
        """})
    conc = ctx.summaries["repro.sim.fixture.make_held"].conc
    assert "L:repro.sim.fixture.make_held:s" in conc.escaped
    assert ctx.conc.findings == ()


def test_spawned_worker_ops_do_not_pair_with_spawner_held_set():
    # The spawner holds ``_a`` while spawning a worker that takes
    # ``_b``: concurrent, not nested, so no a->b acquisition edge and
    # no cycle with the b->a order elsewhere.
    ctx = build({SIM_PATH: """
        from repro.sim import Semaphore


        class Host:
            def __init__(self, engine):
                self.engine = engine
                self._a = Semaphore(engine, 1)
                self._b = Semaphore(engine, 1)

            def spawner(self):
                yield self._a.acquire()
                self.engine.process(self.worker())
                self._a.release()

            def worker(self):
                yield self._b.acquire()
                self._b.release()

            def other(self):
                yield self._b.acquire()
                yield self._a.acquire()
                self._a.release()
                self._b.release()
        """})
    spawner = ctx.summaries["repro.sim.fixture.Host.spawner"].conc
    assert spawner.pairs == ()
    assert not any(f[0] == "RC601" for f in ctx.conc.findings)


# ---------------------------------------------------------------------------
# RC601: acquisition-order cycle
# ---------------------------------------------------------------------------

RC601_BAD = {SIM_PATH: """
    from repro.sim import Semaphore


    class Pair:
        def __init__(self, engine):
            self._a = Semaphore(engine, 1)
            self._b = Semaphore(engine, 1)

        def m1(self):
            yield self._a.acquire()
            yield from self._grab_b()
            self._b.release()
            self._a.release()

        def m2(self):
            yield self._b.acquire()
            yield self._a.acquire()
            self._a.release()
            self._b.release()

        def _grab_b(self):
            yield self._b.acquire()
    """}


def test_rc601_bad_cycle_through_helper_fires_on_both_edges():
    findings = conc_lint(RC601_BAD, SIM_PATH)
    assert rule_ids(findings) == ["RC601", "RC601"]
    assert all("acquisition-order cycle" in f.message for f in findings)


def test_rc601_good_consistent_order_is_clean():
    files = {SIM_PATH: RC601_BAD[SIM_PATH].replace(
        """\
        def m2(self):
            yield self._b.acquire()
            yield self._a.acquire()
            self._a.release()
            self._b.release()
""",
        """\
        def m2(self):
            yield self._a.acquire()
            yield self._b.acquire()
            self._b.release()
            self._a.release()
""")}
    assert files[SIM_PATH] != RC601_BAD[SIM_PATH]
    assert conc_lint(files, SIM_PATH) == []


# ---------------------------------------------------------------------------
# RC602: blocking wait with no reachable trigger
# ---------------------------------------------------------------------------

def test_rc602_bad_untriggered_queue_get():
    findings = conc_lint({SIM_PATH: """
        from repro.sim import Queue


        def lost_wakeup(engine):
            q = Queue(engine)
            item = yield q.get()
            return item
        """}, SIM_PATH)
    assert rule_ids(findings) == ["RC602"]


def test_rc602_good_spawned_producer_is_the_trigger():
    # The trigger lives in a *callee* reached through engine.process:
    # wait/trigger matching must look through the spawn.
    findings = conc_lint({SIM_PATH: """
        from repro.sim import Queue


        def good_wakeup(engine):
            q = Queue(engine)
            engine.process(producer(q))
            item = yield q.get()
            return item


        def producer(q):
            q.put(1)
            yield
        """}, SIM_PATH)
    assert findings == []


# ---------------------------------------------------------------------------
# RC603: conflicting region writes without happens-before
# ---------------------------------------------------------------------------

RC603_SRC = """
    from repro.hdf5 import Hyperslab


    def writer_low(dset, value):
        dset.write(selection=Hyperslab((0,), (10,)), data=value)
        yield


    def writer_high(dset, value):
        dset.write(selection=Hyperslab((10,), (10,)), data=value)
        yield


    def writer_all(dset, value):
        dset.write(selection=Hyperslab((0,), (20,)), data=value)
        yield


    def sync_writer(dset, barrier, value):
        yield barrier.wait()
        dset.write(selection=Hyperslab((0,), (10,)), data=value)


    def spawn_pair(engine, store, first, second):
        d = store.create_dataset("x", (20,))
        engine.process(first(d, 1))
        engine.process(second(d, 2))
        yield
    """


def _rc603(body):
    src = textwrap.dedent(RC603_SRC) + textwrap.dedent(body)
    return conc_lint({SIM_PATH: src}, SIM_PATH)


def test_rc603_bad_overlapping_constant_regions():
    findings = _rc603("""

    def race(engine, store):
        d = store.create_dataset("x", (20,))
        engine.process(writer_low(d, 1))
        engine.process(writer_all(d, 2))
        yield
    """)
    assert rule_ids(findings) == ["RC603"]


def test_rc603_good_disjoint_regions():
    findings = _rc603("""

    def disjoint(engine, store):
        d = store.create_dataset("x", (20,))
        engine.process(writer_low(d, 1))
        engine.process(writer_high(d, 2))
        yield
    """)
    assert findings == []


def test_rc603_good_barrier_synced_writer():
    # Any synchronization inside a task gives it a happens-before
    # story the static tier cannot refute -> excused.
    findings = _rc603("""

    def synced(engine, store, barrier):
        d = store.create_dataset("x", (20,))
        engine.process(sync_writer(d, barrier, 1))
        engine.process(writer_all(d, 2))
        yield
    """)
    assert findings == []


# ---------------------------------------------------------------------------
# RC604: claim released on some paths only
# ---------------------------------------------------------------------------

def test_rc604_bad_exception_path_leak_inherited_across_call():
    # The leak is in the callee (raise between acquire and release) but
    # the token is the *caller's* local: param-exit substitution must
    # carry the {held, free} exit state back to the binding site.
    findings = conc_lint({SIM_PATH: """
        from repro.sim import Semaphore


        def unbalanced(engine, sem, data):
            yield sem.acquire()
            if not data:
                raise ValueError("empty")
            sem.release()


        def caller(engine, data):
            s = Semaphore(engine, 1)
            yield from unbalanced(engine, s, data)
        """}, SIM_PATH)
    assert rule_ids(findings) == ["RC604"]


def test_rc604_good_try_finally_is_balanced():
    findings = conc_lint({SIM_PATH: """
        from repro.sim import Semaphore


        def balanced(engine, data):
            s = Semaphore(engine, 1)
            yield s.acquire()
            try:
                if not data:
                    raise ValueError("empty")
            finally:
                s.release()
        """}, SIM_PATH)
    assert findings == []


def test_rc602_justified_suppression_for_deliberate_leak_fixture():
    # A deliberate lost-wakeup fixture carries a justified disable
    # directive on the wait line, the same escape hatch the other
    # tiers use; without the justification it would earn RC001.
    findings = conc_lint({SIM_PATH: """
        from repro.sim import Queue


        def lost_wakeup(engine):
            q = Queue(engine)
            item = yield q.get()  # repro-check: disable=RC602 (deliberate leak: hang-detector fixture)
            return item
        """}, SIM_PATH)
    assert findings == []


# ---------------------------------------------------------------------------
# tier gating: conc rules only run when asked (and able)
# ---------------------------------------------------------------------------

def test_conc_rules_are_silent_without_the_concurrency_flag():
    ctx = build(RC601_BAD)
    findings = lint_source(textwrap.dedent(RC601_BAD[SIM_PATH]),
                           SIM_PATH, flow=True, inter=ctx)
    assert findings == []


def test_conc_rules_are_silent_without_an_inter_context():
    findings = lint_source(textwrap.dedent(RC601_BAD[SIM_PATH]),
                           SIM_PATH, flow=True, concurrency=True)
    assert findings == []


# ---------------------------------------------------------------------------
# fingerprints and the baseline mode
# ---------------------------------------------------------------------------

def test_fingerprints_survive_pure_line_shifts():
    base = conc_lint(RC601_BAD, SIM_PATH)
    shifted_src = ("# a new leading comment\n\n"
                   + textwrap.dedent(RC601_BAD[SIM_PATH]))
    shifted = conc_lint({SIM_PATH: shifted_src}, SIM_PATH)
    assert [f.fingerprint for f in base] == \
        [f.fingerprint for f in shifted]
    assert [f.line for f in base] != [f.line for f in shifted]
    assert all(len(f.fingerprint) == 20 for f in base)


def test_fingerprints_distinguish_repeated_identical_lines():
    src = "import time\nt0 = time.time()\nt1 = time.time()\n"
    findings = [f for f in lint_source(src, SIM_PATH)
                if f.rule_id == "RC101"]
    assert len(findings) == 2
    assert findings[0].fingerprint != findings[1].fingerprint


def test_fingerprints_are_carried_in_json_and_sarif():
    findings = conc_lint(RC601_BAD, SIM_PATH)
    blob = json.loads(findings_to_json(findings))
    assert all(f["fingerprint"] for f in blob["findings"])
    sarif = json.loads(findings_to_sarif(findings))
    results = sarif["runs"][0]["results"]
    fps = [r["partialFingerprints"]["reproCheck/v1"] for r in results]
    assert fps == [f["fingerprint"] for f in blob["findings"]]
    rules = {r["id"] for r in
             sarif["runs"][0]["tool"]["driver"]["rules"]}
    assert "RC601" in rules


def test_cli_baseline_suppresses_known_and_reports_regressions(
        tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text("def f():\n    try:\n        g()\n"
                   "    except:\n        pass\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    assert main(["check", "--update-baseline", str(baseline),
                 str(bad)]) == 0
    recorded = json.loads(baseline.read_text())
    assert len(recorded["fingerprints"]) == 1
    # Known finding suppressed -> exit 0.
    assert main(["check", "--baseline", str(baseline), str(bad)]) == 0
    assert "1 known finding(s) suppressed" in capsys.readouterr().err
    # A new finding is a regression -> exit 1, old one still quiet
    # (the occurrence counter keeps the second identical bare except
    # from colliding with the recorded fingerprint).
    bad.write_text(bad.read_text(encoding="utf-8")
                   + "\n\ndef h():\n    try:\n        g()\n"
                   "    except:\n        pass\n",
                   encoding="utf-8")
    assert main(["check", "--baseline", str(baseline), str(bad)]) == 1
    captured = capsys.readouterr()
    assert "1 regression(s)" in captured.err
    # Only the new bare except (line 11) is reported; the recorded
    # one on line 4 stays suppressed.
    assert "bad.py:11:" in captured.out
    assert "bad.py:4:" not in captured.out


# ---------------------------------------------------------------------------
# driver: cache keys, invalidation, worker invariance under --concurrency
# ---------------------------------------------------------------------------

CONC_HELPER_SRC = """\
def unbalanced(engine, sem, data):
    yield sem.acquire()
    if not data:
        raise ValueError("empty")
    sem.release()
"""

CONC_CALLER_SRC = """\
from pkg.helper import unbalanced


def caller(engine, data):
    s = Semaphore(engine, 1)
    yield from unbalanced(engine, s, data)
"""


def _conc_project(tmp_path, monkeypatch):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "helper.py").write_text(CONC_HELPER_SRC)
    (pkg / "caller.py").write_text(CONC_CALLER_SRC)
    monkeypatch.chdir(tmp_path)


def wire(findings):
    return json.dumps([(f.rule_id, f.path, f.line, f.col, f.message,
                        f.fingerprint) for f in findings])


def test_driver_concurrency_cold_warm_and_fix_invalidation(
        tmp_path, monkeypatch):
    from repro.check.driver import check_paths

    _conc_project(tmp_path, monkeypatch)
    cold = check_paths(["pkg"], cache_dir=".cache", concurrency=True)
    assert not cold.tree_hit
    assert rule_ids(cold.findings) == ["RC604"]
    warm = check_paths(["pkg"], cache_dir=".cache", concurrency=True)
    assert warm.tree_hit
    assert wire(warm.findings) == wire(cold.findings)
    # Balancing the helper must invalidate the caller's RC604 even
    # though the caller file itself never changed.
    (tmp_path / "pkg" / "helper.py").write_text(
        CONC_HELPER_SRC.replace(
            "    if not data:\n"
            "        raise ValueError(\"empty\")\n"
            "    sem.release()\n",
            "    try:\n"
            "        if not data:\n"
            "            raise ValueError(\"empty\")\n"
            "    finally:\n"
            "        sem.release()\n"))
    fixed = check_paths(["pkg"], cache_dir=".cache", concurrency=True)
    assert fixed.findings == []


def test_driver_concurrency_cache_is_distinct_from_inter(
        tmp_path, monkeypatch):
    # The same tree linted without --concurrency must not serve its
    # cached (conc-free) findings to a --concurrency run.
    from repro.check.driver import check_paths

    _conc_project(tmp_path, monkeypatch)
    plain = check_paths(["pkg"], cache_dir=".cache")
    assert plain.findings == []
    conc = check_paths(["pkg"], cache_dir=".cache", concurrency=True)
    assert rule_ids(conc.findings) == ["RC604"]


def test_driver_concurrency_output_is_worker_count_invariant(
        tmp_path, monkeypatch):
    from repro.check.driver import check_paths

    _conc_project(tmp_path, monkeypatch)
    serial = check_paths(["pkg"], cache_dir=".c1", workers=1,
                         use_cache=False, concurrency=True)
    fanout = check_paths(["pkg"], cache_dir=".c4", workers=4,
                         use_cache=False, concurrency=True)
    assert wire(serial.findings) == wire(fanout.findings)
    assert rule_ids(serial.findings) == ["RC604"]


# ---------------------------------------------------------------------------
# the repo-wide gate: zero findings under the concurrency tier
# ---------------------------------------------------------------------------

def test_repo_is_clean_under_concurrency_tier(monkeypatch):
    """Acceptance gate: the conc index assembles over the whole project
    and RC601-RC604 report nothing."""
    from repro.check.driver import check_paths

    # Same invocation shape as ``repro check --flow --inter
    # --concurrency`` so the test and the CLI share one incremental
    # cache.
    monkeypatch.chdir(REPO_ROOT)
    result = check_paths(["src", "tests"],
                         cache_dir=".repro-check-cache",
                         concurrency=True)
    assert result.findings == [], render_findings(result.findings)
