"""Vectorized allocator edge cases, differentially tested vs. the reference.

The chaos tests in ``test_sim_network_fastpath.py`` sweep broad random
workloads; these tests pin the specific corners the array-backed
allocator handles with dedicated code paths — zero-capacity links,
runtime capacity changes mid-transfer, cap-frozen classes arriving
while other classes are mid-flight — plus a second, structurally
different seeded fuzz (heavy class churn, frequent zero-capacity
flips).  Every assertion is full-trace ``==`` against
:mod:`repro.sim.network_ref`: bit-identity, not tolerance.
"""

import math
import random

import pytest

from repro.sim import Engine
from repro.sim import network as fastmod
from repro.sim import network_ref as refmod


def _trace(flows):
    return [(f.tag, f.started_at, f.finished_at, f.rate) for f in flows]


def _both(scenario, *args, **kwargs):
    """Run ``scenario(net_mod, ...)`` under both modules; return traces."""
    return (
        scenario(fastmod, *args, **kwargs),
        scenario(refmod, *args, **kwargs),
    )


# ---------------------------------------------------------------------------
# Zero-capacity links
# ---------------------------------------------------------------------------


def _zero_cap_from_start(net_mod):
    """Flows on a dead link stall until a chaos process revives it."""
    engine = Engine()
    net = net_mod.Network(engine)
    dead = net_mod.Link("dead", 0.0)
    live = net_mod.Link("live", 1e8)
    flows = [
        net.transfer(1e6, [dead], tag="blocked"),
        net.transfer(1e6, [dead, live], tag="blocked-path"),
        net.transfer(1e6, [live], tag="free"),
    ]

    def revive():
        yield engine.timeout(2.0)
        dead.set_capacity(5e7)

    engine.process(revive(), name="revive")
    engine.run()
    return _trace(flows)


def test_zero_capacity_link_stalls_then_revives():
    fast, ref = _both(_zero_cap_from_start)
    assert fast == ref
    by_tag = {t[0]: t for t in fast}
    # The unblocked flow finishes long before the revival...
    assert by_tag["free"][2] < 2.0
    # ...while both dead-link flows only finish after it.
    assert by_tag["blocked"][2] > 2.0
    assert by_tag["blocked-path"][2] > 2.0


def _zero_cap_forever(net_mod):
    """A permanently dead link: flows on it must never complete."""
    engine = Engine()
    net = net_mod.Network(engine)
    dead = net_mod.Link("dead", 0.0)
    live = net_mod.Link("live", 1e8)
    blocked = net.transfer(1e6, [dead], tag="blocked")
    free = net.transfer(1e6, [live], tag="free")
    engine.run()
    return _trace([blocked, free])


def test_zero_capacity_link_never_completes():
    fast, ref = _both(_zero_cap_forever)
    assert fast == ref
    blocked, free = fast
    assert blocked[2] is None  # finished_at
    assert free[2] is not None


# ---------------------------------------------------------------------------
# Runtime set_capacity mid-transfer
# ---------------------------------------------------------------------------


def _mid_transfer_steps(net_mod, steps):
    """Deterministic capacity staircase applied while flows are in flight."""
    engine = Engine()
    net = net_mod.Network(engine)
    shared = net_mod.Link("shared", 1e8)
    side = net_mod.Link("side", 4e7)
    flows = [
        net.transfer(5e8, [shared], tag=0),
        net.transfer(5e8, [shared, side], tag=1),
        net.transfer(5e8, [side], cap=1e7, tag=2),
    ]

    def staircase():
        for dt, cap in steps:
            yield engine.timeout(dt)
            shared.set_capacity(cap)

    engine.process(staircase(), name="staircase")
    engine.run()
    return _trace(flows)


@pytest.mark.parametrize(
    "steps",
    [
        # Shrink, then restore.
        [(1.0, 2e7), (2.0, 1e8)],
        # Drop to zero mid-transfer, then revive at a different value.
        [(1.5, 0.0), (1.5, 6e7)],
        # Redundant rewrite of the same value (must still re-checkpoint).
        [(1.0, 1e8), (1.0, 1e8)],
        # Rapid-fire changes within one simulated second.
        [(0.25, 5e7), (0.25, 0.0), (0.25, 9e7), (0.25, 3e7)],
    ],
)
def test_set_capacity_mid_transfer_bit_identical(steps):
    fast, ref = _both(_mid_transfer_steps, steps)
    assert fast == ref


# ---------------------------------------------------------------------------
# Cap-frozen classes joining mid-round
# ---------------------------------------------------------------------------


def _cap_frozen_late_join(net_mod):
    """Tiny-cap classes arrive while an uncapped class is mid-flight.

    The late arrivals' caps are far below their fair share, so the
    allocator freezes them at cap in the very first filling round while
    the incumbent class keeps absorbing the remainder.
    """
    engine = Engine()
    net = net_mod.Network(engine)
    backend = net_mod.Link("backend", 1e9)
    flows = [net.transfer(4e9, [backend], tag=("big", i)) for i in range(4)]

    def trickle():
        for i in range(6):
            yield engine.timeout(0.5)
            # Each arrival is its own (links, cap) class: cap varies.
            flows.append(
                net.transfer(1e6, [backend], cap=1e3 * (i + 1),
                             tag=("tiny", i))
            )

    engine.process(trickle(), name="trickle")
    engine.run()
    return _trace(flows)


def test_cap_frozen_class_joining_mid_round():
    fast, ref = _both(_cap_frozen_late_join)
    assert fast == ref
    # The tiny flows really were cap-limited, not share-limited.
    for tag, _started, _finished, rate in fast:
        if tag[0] == "tiny":
            assert rate <= 1e3 * 6 + 1e-6


def _all_frozen_leaves_headroom(net_mod):
    """Every class cap-frozen below link capacity: loop must terminate
    with unused headroom rather than spin looking for a saturated link."""
    engine = Engine()
    net = net_mod.Network(engine)
    link = net_mod.Link("l", 1e9)
    flows = [
        net.transfer(1e6, [link], cap=1e4 * (i + 1), tag=i) for i in range(5)
    ]
    engine.run()
    return _trace(flows)


def test_all_classes_cap_frozen_terminates_with_headroom():
    fast, ref = _both(_all_frozen_leaves_headroom)
    assert fast == ref
    for i, (_tag, _started, _finished, rate) in enumerate(fast):
        assert rate == pytest.approx(1e4 * (i + 1))


# ---------------------------------------------------------------------------
# Structured fuzz: heavy class churn + zero-capacity flips
# ---------------------------------------------------------------------------


def _churn_workload(net_mod, seed, nflows=80, nlinks=4):
    """Seeded fuzz biased toward the vectorized allocator's hard cases.

    Differs from the broad chaos fuzz by design: many short flows so
    class slots are freed and recycled constantly, caps drawn from a
    near-fair-share band so freezing happens mid-round (not just round
    one), and capacity flips that favour exact zero.
    """
    rng = random.Random(seed)
    engine = Engine()
    net = net_mod.Network(engine)
    links = [net_mod.Link(f"l{i}", rng.choice([1e6, 1e8, 1e9]))
             for i in range(nlinks)]
    flows = []

    def issue():
        for i in range(nflows):
            path = rng.sample(links, rng.randint(1, nlinks))
            if rng.random() < 0.25:
                path = path + [path[-1]]  # duplicated link
            # Caps clustered around plausible fair shares → mid-round
            # freezes; occasional inf keeps uncapped classes in play.
            cap = math.inf if rng.random() < 0.25 else rng.choice(
                [2e5, 9e5, 1.1e6, 2.4e7, 9.9e7, 2.6e8]
            )
            flows.append(net.transfer(
                rng.choice([256.0, 4e3, 1e5]), path, cap=cap,
                latency=rng.choice([0.0, 1e-4]), tag=i,
            ))
            if rng.random() < 0.7:
                yield engine.timeout(rng.random() * 0.01)

    def flip():
        for _ in range(10):
            yield engine.timeout(rng.random() * 0.05)
            link = rng.choice(links)
            if rng.random() < 0.5:
                link.set_capacity(0.0)
            else:
                link.set_capacity(rng.choice([1e6, 1e8, 1e9]))
        # Leave everything alive so the run terminates.
        for link in links:
            link.set_capacity(1e9)

    engine.process(issue(), name="issue")
    engine.process(flip(), name="flip")
    engine.run()
    return _trace(flows)


@pytest.mark.parametrize("seed", range(8))
def test_churn_fuzz_bit_identical_to_reference(seed):
    assert _churn_workload(fastmod, seed) == _churn_workload(refmod, seed)
