"""Tests for ``repro check``: the static analyzer and runtime checker.

Each lint rule gets a good/bad fixture pair; the suppression grammar is
exercised in both its valid and invalid forms; the runtime checker is
driven through real engine runs (races, leaks, swallowed failures); and
a self-test lints the whole repository, which must come back clean.
"""

import pathlib

import pytest

from repro.check import (
    Finding,
    RuntimeChecker,
    all_rules,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.check import hooks as check_hooks
from repro.check.rules import RULES
from repro.sim import Engine
from repro.sim.primitives import Mutex, Queue

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: A path the sim-scoped rules apply to, and one they do not.
SIM_PATH = "src/repro/sim/example.py"
HOST_PATH = "src/repro/analysis/example.py"


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_has_all_rule_bands():
    assert set(RULES) == {
        "RC101", "RC102", "RC110", "RC111",
        "RC201", "RC202", "RC203", "RC205",
        "RC301", "RC302", "RC303",
        "RC401", "RC402", "RC403", "RC404", "RC405",
        "RC501", "RC502", "RC503",
        "RC601", "RC602", "RC603", "RC604",
    }


def test_flow_rules_are_flow_tier_and_flat_default_skips_them():
    flow_ids = {r.id for r in all_rules() if r.tier == "flow"}
    assert flow_ids == {"RC401", "RC402", "RC403", "RC404",
                        "RC501", "RC502", "RC503"}
    # The flat tier (default) must not run flow rules: this source is a
    # blatant RC401 violation yet lints clean without flow=True.
    source = (
        "def prog(ctx, lib, vol):\n"
        "    es = EventSet(ctx.engine)\n"
        "    es.add(ctx.engine.event())\n"
        "    return ctx.now\n"
    )
    assert lint_source(source, SIM_PATH) == []
    assert rule_ids(lint_source(source, SIM_PATH, flow=True)) == ["RC401"]


def test_all_rules_have_metadata_and_stable_order():
    rules = all_rules()
    assert [r.id for r in rules] == sorted(RULES)
    for rule in rules:
        assert rule.id and rule.title and rule.hint
        assert rule.scope in ("repo", "sim")


# ---------------------------------------------------------------------------
# RC101 wall clock / RC102 unseeded RNG (sim scope)
# ---------------------------------------------------------------------------

def test_rc101_flags_wall_clock_in_sim_path():
    src = "import time\nt0 = time.time()\n"
    assert rule_ids(lint_source(src, SIM_PATH)) == ["RC101"]


def test_rc101_ignores_wall_clock_outside_sim_paths():
    src = "import time\nt0 = time.time()\n"
    assert lint_source(src, HOST_PATH) == []


def test_rc101_flags_datetime_and_urandom():
    src = (
        "import datetime, os\n"
        "stamp = datetime.datetime.now()\n"
        "blob = os.urandom(16)\n"
    )
    assert rule_ids(lint_source(src, SIM_PATH)) == ["RC101", "RC101"]


def test_rc101_clean_on_engine_time():
    src = "def step(engine):\n    return engine.now + 1.0\n"
    assert lint_source(src, SIM_PATH) == []


def test_rc102_flags_global_rng():
    src = "import random\nx = random.random()\n"
    assert rule_ids(lint_source(src, SIM_PATH)) == ["RC102"]


def test_rc102_flags_unseeded_constructors():
    src = (
        "import random\nimport numpy as np\n"
        "a = random.Random()\n"
        "b = np.random.default_rng()\n"
    )
    assert rule_ids(lint_source(src, SIM_PATH)) == ["RC102", "RC102"]


def test_rc102_clean_on_seeded_generators():
    src = (
        "import random\nimport numpy as np\n"
        "a = random.Random(7)\n"
        "b = np.random.default_rng((1234, 5))\n"
        "x = a.random() + b.random()\n"
    )
    assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# RC201/RC202/RC203 error discipline
# ---------------------------------------------------------------------------

def test_rc201_flags_bare_except_everywhere():
    src = "try:\n    x = 1\nexcept:\n    pass\n"
    assert rule_ids(lint_source(src, HOST_PATH)) == ["RC201"]


def test_rc201_clean_on_typed_except():
    src = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
    assert lint_source(src, HOST_PATH) == []


def test_rc202_flags_generic_raise():
    src = "def f():\n    raise Exception('boom')\n"
    assert rule_ids(lint_source(src, HOST_PATH)) == ["RC202"]


def test_rc202_clean_on_typed_raise_and_reraise():
    src = (
        "def f():\n"
        "    try:\n"
        "        raise ValueError('boom')\n"
        "    except ValueError:\n"
        "        raise\n"
    )
    assert lint_source(src, HOST_PATH) == []


def test_rc203_flags_bare_exception_subclass_in_sim_path():
    src = "class StallError(Exception):\n    pass\n"
    assert rule_ids(lint_source(src, SIM_PATH)) == ["RC203"]
    assert lint_source(src, HOST_PATH) == []


def test_rc203_clean_on_taxonomy_subclass():
    src = (
        "from repro.faults.errors import FaultError\n"
        "class StallError(FaultError):\n    pass\n"
    )
    assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# RC205 retry discipline
# ---------------------------------------------------------------------------

def test_rc205_flags_unbounded_delay_free_retry():
    src = (
        "def fetch(op):\n"
        "    while True:\n"
        "        try:\n"
        "            return op()\n"
        "        except TransientIOError:\n"
        "            continue\n"
    )
    findings = lint_source(src, SIM_PATH)
    assert rule_ids(findings) == ["RC205", "RC205"]
    assert "bounded" in findings[0].message
    assert "backoff" in findings[1].message
    # Outside the sim packages the rule does not apply.
    assert lint_source(src, HOST_PATH) == []


def test_rc205_flags_bounded_retry_without_backoff():
    src = (
        "def fetch(op):\n"
        "    for attempt in range(5):\n"
        "        try:\n"
        "            return op()\n"
        "        except FlakyReadError:\n"
        "            continue\n"
    )
    findings = lint_source(src, SIM_PATH)
    assert rule_ids(findings) == ["RC205"]
    assert "backoff" in findings[0].message


def test_rc205_clean_on_bounded_backoff_retry():
    src = (
        "def fetch(engine, op, max_retries):\n"
        "    attempt = 0\n"
        "    while True:\n"
        "        try:\n"
        "            return op()\n"
        "        except TransientIOError:\n"
        "            attempt += 1\n"
        "            if attempt > max_retries:\n"
        "                raise\n"
        "            yield engine.timeout(0.1 * attempt)\n"
    )
    assert lint_source(src, SIM_PATH) == []


def test_rc205_ignores_propagating_and_bailing_handlers():
    # A handler that re-raises or breaks is not a retry loop.
    src = (
        "def drain(ops):\n"
        "    for op in ops:\n"
        "        try:\n"
        "            op()\n"
        "        except PFSUnavailableError:\n"
        "            raise\n"
        "        except FlakyWriteError:\n"
        "            break\n"
    )
    assert lint_source(src, SIM_PATH) == []


def test_rc205_inner_retry_does_not_taint_outer_loop():
    # The disciplined inner loop must not flag the undisciplined-
    # looking outer sweep loop: attribution is innermost-loop only.
    src = (
        "def sweep(engine, points, op):\n"
        "    for point in points:\n"
        "        for attempt in range(3):\n"
        "            try:\n"
        "                op(point)\n"
        "                break\n"
        "            except TransientIOError:\n"
        "                yield engine.timeout(2.0 ** attempt)\n"
    )
    assert lint_source(src, SIM_PATH) == []


# ---------------------------------------------------------------------------
# RC301/RC302/RC303 hygiene
# ---------------------------------------------------------------------------

def test_rc301_flags_mutable_defaults():
    src = (
        "def f(items=[]):\n    return items\n"
        "def g(table=dict()):\n    return table\n"
    )
    assert rule_ids(lint_source(src, HOST_PATH)) == ["RC301", "RC301"]


def test_rc301_clean_on_none_default():
    src = (
        "def f(items=None):\n"
        "    items = [] if items is None else items\n"
        "    return items\n"
    )
    assert lint_source(src, HOST_PATH) == []


def test_rc302_flags_computed_time_equality():
    src = "def check(t_start, dt, t_end):\n    return t_start + dt == t_end\n"
    assert rule_ids(lint_source(src, HOST_PATH)) == ["RC302"]


def test_rc302_clean_on_stored_timestamps_and_tolerance():
    src = (
        "import math\n"
        "def same(t_submit, t_complete, dt):\n"
        "    a = t_submit == t_complete\n"
        "    b = math.isclose(t_submit + dt, t_complete)\n"
        "    return a and b\n"
    )
    assert lint_source(src, HOST_PATH) == []


def test_rc303_flags_set_iteration():
    src = (
        "def f(names):\n"
        "    out = []\n"
        "    for n in set(names):\n"
        "        out.append(n)\n"
        "    return ','.join({x for x in names})\n"
    )
    assert rule_ids(lint_source(src, HOST_PATH)) == ["RC303", "RC303"]


def test_rc303_clean_on_sorted_set():
    src = (
        "def f(names):\n"
        "    return [n for n in sorted(set(names))]\n"
    )
    assert lint_source(src, HOST_PATH) == []


# ---------------------------------------------------------------------------
# suppression grammar and meta rules
# ---------------------------------------------------------------------------

def test_valid_suppression_silences_the_finding():
    src = (
        "import time\n"
        "t0 = time.time()  # repro-check: disable=RC101 (host harness "
        "wall-time, not simulated time)\n"
    )
    assert lint_source(src, SIM_PATH) == []


def test_suppression_on_comment_line_above():
    src = (
        "import time\n"
        "# repro-check: disable=RC101 (host harness timing)\n"
        "t0 = time.time()\n"
    )
    assert lint_source(src, SIM_PATH) == []


def test_rc001_suppression_without_justification_suppresses_nothing():
    src = (
        "import time\n"
        "t0 = time.time()  # repro-check: disable=RC101\n"
    )
    assert sorted(rule_ids(lint_source(src, SIM_PATH))) == ["RC001", "RC101"]


def test_rc002_unknown_rule_in_suppression():
    src = "x = 1  # repro-check: disable=RC999 (no such rule)\n"
    assert rule_ids(lint_source(src, HOST_PATH)) == ["RC002"]


def test_suppression_covers_only_named_rules():
    src = (
        "import time, random\n"
        "t0 = time.time()  # repro-check: disable=RC102 (wrong rule named)\n"
    )
    # The wrong-rule directive does not silence RC101, and RC003 flags
    # it as orphaned: RC102 never fires on the covered line.
    assert rule_ids(lint_source(src, SIM_PATH)) == ["RC101", "RC003"]


def test_rc000_syntax_error():
    findings = lint_source("def broken(:\n", HOST_PATH)
    assert rule_ids(findings) == ["RC000"]


# ---------------------------------------------------------------------------
# output formatting and the repo-wide self-test
# ---------------------------------------------------------------------------

def test_finding_format_and_render():
    finding = Finding("src/x.py", 3, 4, "RC101", "msg", "hint text")
    assert finding.format() == "src/x.py:3:4: RC101 msg (hint: hint text)"
    rendered = render_findings([finding, finding])
    assert "RC101 x2" in rendered and "2 findings" in rendered
    assert render_findings([]) == "repro check: no findings"


def test_repo_is_clean():
    """The acceptance gate: the analyzer finds nothing in the repo itself."""
    findings = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert findings == [], render_findings(findings)


# ---------------------------------------------------------------------------
# runtime checker: installation seam
# ---------------------------------------------------------------------------

def test_checker_seam_is_off_by_default():
    assert check_hooks.checker is None


def test_install_is_exclusive():
    with RuntimeChecker().installed():
        with pytest.raises(RuntimeError):
            RuntimeChecker().install()
    assert check_hooks.checker is None


def test_uninstalled_runs_leave_no_instrumentation_state():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)

    p = eng.process(proc())
    eng.run()
    assert not hasattr(p, "_vc")


# ---------------------------------------------------------------------------
# runtime checker: RT101 races
# ---------------------------------------------------------------------------

def _touch(key, write, detail="dset[0+4]"):
    """Access tracked shared state the way objects.py instrumentation does."""
    ck = check_hooks.checker
    if ck is not None:
        ck.on_state(key, write=write, detail=detail)


def test_rt101_unsynchronized_writers_race():
    eng = Engine()
    key = ("region", 0, 4)

    def writer(delay):
        yield eng.timeout(delay)
        _touch(key, write=True)

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(writer(1.0))
        eng.process(writer(2.0))
        eng.run()
    assert [f.rule_id for f in checker.report()] == ["RT101"]


def test_rt101_read_write_race():
    eng = Engine()
    key = ("region", 0, 4)

    def reader():
        yield eng.timeout(1.0)
        _touch(key, write=False)

    def writer():
        yield eng.timeout(2.0)
        _touch(key, write=True)

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(reader())
        eng.process(writer())
        eng.run()
    assert [f.rule_id for f in checker.report()] == ["RT101"]


def test_queue_handoff_orders_accesses():
    """put -> get is a happens-before edge: producer/consumer is clean."""
    eng = Engine()
    key = ("region", 0, 4)
    q = Queue(eng, name="work")

    def producer():
        yield eng.timeout(1.0)
        _touch(key, write=True)
        q.put("item")

    def consumer():
        item = yield q.get()
        assert item == "item"
        _touch(key, write=True)

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(producer())
        eng.process(consumer())
        eng.run()
    assert checker.report() == []


def test_mutex_orders_accesses():
    eng = Engine()
    key = ("region", 0, 4)
    mutex = Mutex(eng, name="m")

    def writer(delay):
        yield eng.timeout(delay)
        yield mutex.acquire()
        _touch(key, write=True)
        mutex.release()

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(writer(1.0))
        eng.process(writer(2.0))
        eng.run()
    assert checker.report() == []


def test_reads_do_not_race_with_reads():
    eng = Engine()
    key = ("region", 0, 4)

    def reader(delay):
        yield eng.timeout(delay)
        _touch(key, write=False)

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(reader(1.0))
        eng.process(reader(2.0))
        eng.run()
    assert checker.report() == []


# ---------------------------------------------------------------------------
# runtime checker: RT2xx leaks
# ---------------------------------------------------------------------------

def test_rt201_leaked_reservation():
    from repro.hdf5.async_vol import StagingBuffer

    eng = Engine()
    buf = StagingBuffer(eng, capacity=1024.0, name="stage")

    def leaky():
        res = yield from buf.reserve(128.0)
        assert res.state == "held"
        # ... and never releases it.

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(leaky())
        eng.run()
        assert [f.rule_id for f in checker.findings] == ["RT201"]


def test_reservation_released_is_clean():
    from repro.hdf5.async_vol import StagingBuffer

    eng = Engine()
    buf = StagingBuffer(eng, capacity=1024.0, name="stage")

    def tidy():
        res = yield from buf.reserve(128.0)
        yield eng.timeout(1.0)
        res.release()

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(tidy())
        eng.run()
    assert checker.report() == []


def test_rt202_undrained_eventset():
    from repro.hdf5.eventset import EventSet

    eng = Engine()
    checker = RuntimeChecker()
    with checker.installed():
        # repro-check: disable=RC401 (deliberate leak: RT202 fixture)
        es = EventSet(eng, name="es0")
        es.add(eng.event(name="op"))  # never triggered, never waited
        eng.run()
    assert [f.rule_id for f in checker.report()] == ["RT202"]


def test_rt203_swallowed_failure():
    eng = Engine()
    checker = RuntimeChecker()
    with checker.installed():
        ev = eng.event(name="doomed")
        ev.fail(ValueError("boom"))
        eng.run()
    findings = checker.report()
    assert [f.rule_id for f in findings] == ["RT203"]
    assert "doomed" in findings[0].format()


def test_rt203_not_raised_when_failure_is_awaited():
    eng = Engine()

    def waiter(ev):
        try:
            yield ev
        except ValueError:
            pass

    def failer(ev):
        yield eng.timeout(1.0)
        ev.fail(ValueError("boom"))

    checker = RuntimeChecker()
    with checker.installed():
        # Failure arrives while a waiter is already registered.
        ev = eng.event(name="doomed")
        eng.process(waiter(ev))
        eng.process(failer(ev))
        eng.run()
        # Failure arrives first; the waiter observes it on wakeup.
        ev2 = eng.event(name="late-fail")
        eng.process(waiter(ev2))
        ev2.fail(ValueError("boom"))
        eng.run()
    assert checker.report() == []


def test_rt204_parked_process():
    eng = Engine()

    def stuck():
        yield eng.event(name="never")

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(stuck())
        eng.run()
    findings = checker.report()
    assert [f.rule_id for f in findings] == ["RT204"]
    assert "never" in findings[0].format()


def test_assert_clean_raises_with_report():
    eng = Engine()

    def stuck():
        yield eng.event(name="never")

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(stuck())
        eng.run()
    with pytest.raises(AssertionError, match="RT204"):
        checker.assert_clean()


def test_drain_flush_isolates_sequential_runs():
    """Accesses from separate engine drains never race with each other."""
    eng = Engine()
    key = ("region", 0, 4)

    def writer(delay):
        yield eng.timeout(delay)
        _touch(key, write=True)

    checker = RuntimeChecker()
    with checker.installed():
        eng.process(writer(1.0))
        eng.run()
        eng.process(writer(1.0))
        eng.run()
    assert checker.drains == 2
    assert checker.report() == []


# ---------------------------------------------------------------------------
# runtime checker: the observational guarantee, end to end
# ---------------------------------------------------------------------------

def test_checker_is_observational_on_async_pipeline():
    """The ``check --runtime smoke`` gate: an instrumented async VPIC run
    emits a byte-identical trace and reports nothing."""
    from repro.cli import _runtime_smoke_text

    baseline = _runtime_smoke_text()
    checker = RuntimeChecker()
    with checker.installed():
        checked = _runtime_smoke_text()
    assert checked == baseline
    assert checker.report() == []
    assert checker.drains > 0


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

def test_cli_check_exits_nonzero_on_bad_file(tmp_path):
    from repro.cli import main

    bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt0 = time.time()\n", encoding="utf-8")
    assert main(["check", str(bad)]) == 1


def test_cli_check_exits_zero_on_clean_file(tmp_path, capsys):
    from repro.cli import main

    good = tmp_path / "good.py"
    good.write_text("x = 1\n", encoding="utf-8")
    assert main(["check", str(good)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    from repro.cli import main

    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out
