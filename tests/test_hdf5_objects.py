"""Tests for the HDF5 object model: dataspaces, types, files, datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import (
    FLOAT32,
    FLOAT64,
    Datatype,
    H5Library,
    Hyperslab,
    NativeVOL,
    slab_1d,
)

MiB = 1 << 20


def make_env(nodes=1, ranks_per_node=4, nprocs=2):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=nodes, ranks_per_node=ranks_per_node),
                      nodes)
    job = MPIJob(cluster, nprocs, ranks_per_node=ranks_per_node)
    lib = H5Library(cluster)
    return eng, cluster, job, lib


# ---------------------------------------------------------------------------
# Datatypes
# ---------------------------------------------------------------------------


def test_builtin_datatypes():
    assert FLOAT32.itemsize == 4
    assert FLOAT64.itemsize == 8
    assert FLOAT32.np_dtype == np.float32


def test_datatype_validation():
    with pytest.raises(ValueError):
        Datatype("bad", 0)


# ---------------------------------------------------------------------------
# Hyperslabs
# ---------------------------------------------------------------------------


def test_hyperslab_npoints_and_nbytes():
    h = Hyperslab(start=(0, 0), count=(4, 8))
    assert h.npoints == 32
    assert h.nbytes(4) == 128


def test_hyperslab_fits_in():
    h = Hyperslab(start=(2,), count=(3,))
    assert h.fits_in((5,))
    assert not h.fits_in((4,))
    assert not h.fits_in((5, 5))


def test_hyperslab_validation():
    with pytest.raises(ValueError):
        Hyperslab(start=(0,), count=(1, 2))
    with pytest.raises(ValueError):
        Hyperslab(start=(-1,), count=(1,))
    with pytest.raises(ValueError):
        Hyperslab(start=(), count=())


def test_hyperslab_overlap():
    a = Hyperslab(start=(0,), count=(10,))
    b = Hyperslab(start=(5,), count=(10,))
    c = Hyperslab(start=(10,), count=(5,))
    assert a.overlaps(b)
    assert not a.overlaps(c)
    with pytest.raises(ValueError):
        a.overlaps(Hyperslab(start=(0, 0), count=(1, 1)))


def test_slab_1d_decomposition():
    assert slab_1d(0, 100) == Hyperslab(start=(0,), count=(100,))
    assert slab_1d(3, 100) == Hyperslab(start=(300,), count=(100,))
    with pytest.raises(ValueError):
        slab_1d(-1, 10)


def test_hyperslab_whole():
    h = Hyperslab.whole((3, 4, 5))
    assert h.start == (0, 0, 0)
    assert h.count == (3, 4, 5)
    assert h.npoints == 60


@given(
    starts=st.lists(st.integers(0, 50), min_size=1, max_size=4),
    counts=st.lists(st.integers(0, 50), min_size=1, max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_property_hyperslab_npoints(starts, counts):
    n = min(len(starts), len(counts))
    h = Hyperslab(start=tuple(starts[:n]), count=tuple(counts[:n]))
    expected = 1
    for c in counts[:n]:
        expected *= c
    assert h.npoints == expected
    assert h.nbytes(8) == expected * 8


# ---------------------------------------------------------------------------
# File / dataset lifecycle through the native VOL
# ---------------------------------------------------------------------------


def test_create_write_read_roundtrip():
    eng, cluster, job, lib = make_env(nprocs=2)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/round.h5", vol)
        dset = f.create_dataset("/x", shape=(200,), dtype=FLOAT64)
        sel = slab_1d(ctx.rank, 100)
        data = np.full(100, float(ctx.rank) + 1.0)
        yield from dset.write(sel, data=data, phase=0)
        yield from ctx.barrier()
        got = yield from dset.read(sel, phase=1)
        yield from f.close()
        return got

    results = job.run(program)
    assert np.allclose(results[0], 1.0)
    assert np.allclose(results[1], 2.0)


def test_cross_rank_visibility_after_barrier():
    eng, cluster, job, lib = make_env(nprocs=2)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/shared.h5", vol)
        dset = f.create_dataset("/x", shape=(20,), dtype=FLOAT64)
        yield from dset.write(slab_1d(ctx.rank, 10),
                              data=np.arange(10) + 100.0 * ctx.rank)
        yield from ctx.barrier()
        other = (ctx.rank + 1) % 2
        got = yield from dset.read(slab_1d(other, 10))
        yield from f.close()
        return got

    r0, r1 = job.run(program)
    assert np.allclose(r0, np.arange(10) + 100.0)  # rank 0 reads rank 1's slab
    assert np.allclose(r1, np.arange(10))


def test_dataset_creation_idempotent_across_ranks():
    eng, cluster, job, lib = make_env(nprocs=4, ranks_per_node=4)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/idem.h5", vol)
        dset = f.create_dataset("/g/d", shape=(40,), dtype=FLOAT32)
        yield from f.close()
        return dset.stored

    stores = job.run(program)
    assert all(s is stores[0] for s in stores)


def test_dataset_shape_conflict_raises():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/conflict.h5", vol)
        f.create_dataset("/d", shape=(10,), dtype=FLOAT32)
        f.create_dataset("/d", shape=(20,), dtype=FLOAT32)
        yield from f.close()

    with pytest.raises(ValueError, match="exists with shape"):
        job.run(program)


def test_open_missing_file_raises():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.open(ctx, "/missing.h5", vol)
        yield from f.close()

    with pytest.raises(FileNotFoundError):
        job.run(program)


def test_selection_outside_dataset_raises():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/oob.h5", vol)
        d = f.create_dataset("/d", shape=(10,), dtype=FLOAT32)
        yield from d.write(Hyperslab(start=(5,), count=(10,)))

    with pytest.raises(ValueError, match="outside dataset"):
        job.run(program)


def test_closed_handle_rejected():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/closed.h5", vol)
        yield from f.close()
        # repro-check: disable=RC403 (deliberate: closed-handle rejection under test)
        f.create_dataset("/late", shape=(1,), dtype=FLOAT32)

    with pytest.raises(RuntimeError, match="already closed"):
        job.run(program)


def test_groups_and_path_normalization():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/grp.h5", vol)
        g = f.create_group("Step#0")
        d = g.create_dataset("x", shape=(4,), dtype=FLOAT32)
        same = f.dataset("/Step#0/x")
        yield from f.close()
        return d.stored is same.stored, f.stored.groups

    ok, groups = job.run(program)[0]
    assert ok
    assert "/Step#0" in groups


def test_large_dataset_not_materialized():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/big.h5", vol)
        d = f.create_dataset("/d", shape=(64 * MiB,), dtype=FLOAT64)  # 512 MiB
        yield from d.write(slab_1d(0, 1024))
        got = yield from d.read(slab_1d(0, 1024))
        yield from f.close()
        return d.stored.data, got

    data, got = job.run(program)[0]
    assert data is None
    assert got is None


def test_coverage_tracking():
    eng, cluster, job, lib = make_env(nprocs=2)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/cov.h5", vol)
        d = f.create_dataset("/d", shape=(100,), dtype=FLOAT32)
        yield from d.write(slab_1d(ctx.rank, 40))  # covers [0,80)
        yield from ctx.barrier()
        yield from f.close()
        return d.stored.coverage_1d()

    coverage = job.run(program)[0]
    assert coverage == pytest.approx(0.8)


def test_prepopulate_marks_datasets_written():
    eng, cluster, job, lib = make_env(nprocs=1)
    stored = lib.prepopulate(
        "/pre.h5", {"/Step#0/x": ((100,), FLOAT32), "/Step#1/x": ((100,), FLOAT32)}
    )
    assert lib.exists("/pre.h5")
    assert stored.datasets["/Step#0/x"].coverage_1d() == 1.0
    assert stored.dataset_order == ["/Step#0/x", "/Step#1/x"]


def test_sync_write_blocks_for_pfs_time():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()
    nbytes = 64 * MiB * 8  # 512 MiB of float64

    def program(ctx):
        f = yield from lib.create(ctx, "/timed.h5", vol)
        d = f.create_dataset("/d", shape=(64 * MiB,), dtype=FLOAT64)
        t0 = ctx.now
        yield from d.write()
        dt = ctx.now - t0
        yield from f.close()
        return dt

    dt = job.run(program)[0]
    machine = cluster.machine
    eff = nbytes / (nbytes + machine.filesystem.efficiency_s0)
    expected = nbytes / (machine.node.nic_bandwidth * eff)
    expected += machine.filesystem.metadata_latency
    assert dt == pytest.approx(expected, rel=1e-3)


def test_contains_and_groups_listing():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/nav.h5", vol)
        f.create_group("Step#0")
        f.create_dataset("/Step#0/x", shape=(4,), dtype=FLOAT32)
        result = (
            "/Step#0" in f,
            "/Step#0/x" in f,
            "Step#0/x" in f,       # normalized
            "/nope" in f,
            f.groups(),
        )
        yield from f.close()
        return result

    has_group, has_dset, has_norm, has_missing, groups = job.run(program)[0]
    assert has_group and has_dset and has_norm
    assert not has_missing
    assert groups == ["/", "/Step#0"]


def test_require_dataset_idempotent_and_validating():
    eng, cluster, job, lib = make_env(nprocs=1)
    vol = NativeVOL()

    def program(ctx):
        f = yield from lib.create(ctx, "/req.h5", vol)
        d1 = f.require_dataset("/d", shape=(10,), dtype=FLOAT32)
        d2 = f.require_dataset("/d", shape=(10,), dtype=FLOAT32)
        ok = d1.stored is d2.stored
        try:
            f.require_dataset("/d", shape=(20,), dtype=FLOAT32)
            conflict = False
        except ValueError:
            conflict = True
        yield from f.close()
        return ok, conflict

    ok, conflict = job.run(program)[0]
    assert ok and conflict
