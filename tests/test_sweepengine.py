"""Sweep engine: determinism across worker counts, crash isolation, edges.

The merged artifact of :func:`repro.harness.sweepengine.run_sweep` must
be **byte-identical** for every worker count — that is the whole
contract that lets a 4-worker sweep be ``cmp``-ed against a 1-worker
run or yesterday's artifact.  These tests exercise that contract on a
real (small) grid, plus the failure paths: a point that dies is
recorded in place with the :mod:`repro.faults` taxonomy while its
siblings succeed, and degenerate grids (empty, single point) still
produce well-formed artifacts.
"""

import json

import pytest

from repro.faults import FlakyWriteError
from repro.harness import sweepengine
from repro.harness.sweepengine import (
    SweepSpec,
    SweepTask,
    expand_grid,
    merged_results,
    merged_sweep_points,
    run_point,
    run_sweep,
    sweepable_grids,
)


SMALL = SweepSpec(
    kind="workload", workload="vpic", machines=("testbed",),
    modes=("sync", "async"), scales=(4.0,), seeds=(0, 1),
)


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------


def test_expand_grid_canonical_order_and_indices():
    tasks = expand_grid(SMALL)
    assert [t.index for t in tasks] == [0, 1, 2, 3]
    # Canonical nesting: machine, mode, scale, seed (seed innermost).
    assert [(t.mode, t.seed) for t in tasks] == [
        ("sync", 0), ("sync", 1), ("async", 0), ("async", 1),
    ]
    # Tasks carry everything a worker needs — no global state.
    assert all(t.workload == "vpic" and t.machine == "testbed"
               for t in tasks)


def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        SweepSpec(kind="nonsense")


def test_run_sweep_rejects_zero_workers():
    with pytest.raises(ValueError, match="workers"):
        run_sweep(SMALL, workers=0)


# ---------------------------------------------------------------------------
# Worker-count determinism (the headline contract)
# ---------------------------------------------------------------------------


def test_merged_json_byte_identical_1_vs_4_workers():
    serial = run_sweep(SMALL, workers=1)
    parallel = run_sweep(SMALL, workers=4)
    assert serial.to_json() == parallel.to_json()
    # And the artifact itself is sane.
    merged = serial.merged
    assert merged["schema"] == "repro-sweep/v1"
    assert [p["index"] for p in merged["points"]] == [0, 1, 2, 3]
    assert all(p["ok"] for p in merged["points"])
    # Telemetry stays out of the artifact.
    assert "elapsed" not in merged and "workers" not in merged
    assert serial.workers == 1 and parallel.workers == 4


def test_merged_json_round_trips_and_reduces():
    outcome = run_sweep(SMALL, workers=1)
    merged = json.loads(outcome.to_json())
    results = merged_results(merged)
    assert [r.index for r in results] == [0, 1, 2, 3]
    assert all(isinstance(r.task, SweepTask) for r in results)
    points = merged_sweep_points(merged)
    # One best-of point per (mode, nranks) config.
    assert {(p.mode, p.nranks) for p in points} == {
        ("sync", 4), ("async", 4),
    }
    for p in points:
        assert p.peak_bandwidth > 0


# ---------------------------------------------------------------------------
# Crash isolation
# ---------------------------------------------------------------------------


def test_crashed_point_is_isolated():
    # An unknown machine makes its points raise inside the worker; the
    # testbed points must be unaffected.  This exercises the real
    # cross-process path (no monkeypatching survives a fork).
    spec = SweepSpec(
        kind="workload", workload="vpic", machines=("testbed", "no-such"),
        modes=("sync",), scales=(4.0,), seeds=(0,),
    )
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=2)
    assert serial.to_json() == parallel.to_json()
    ok_point, bad_point = serial.merged["points"]
    assert ok_point["ok"] and ok_point["error"] is None
    assert not bad_point["ok"] and bad_point["metrics"] is None
    assert bad_point["error"]["family"] == "crash"
    assert bad_point["error"]["kind"] == "ValueError"
    assert "no-such" in bad_point["error"]["message"]
    # Failed points contribute no observations downstream.
    points = merged_sweep_points(serial.merged)
    assert len(points) == 1


def test_fault_taxonomy_errors_keep_their_class(monkeypatch):
    def boom(task):
        raise FlakyWriteError("injected EIO")

    monkeypatch.setattr(sweepengine, "_run_workload_point", boom)
    point = run_point(expand_grid(SMALL)[0])
    assert not point["ok"]
    assert point["error"] == {
        "family": "fault",
        "kind": "FlakyWriteError",
        "message": "injected EIO",
    }


# ---------------------------------------------------------------------------
# Degenerate grids
# ---------------------------------------------------------------------------


def test_empty_grid():
    spec = SweepSpec(kind="workload", seeds=())
    outcome = run_sweep(spec, workers=4)
    assert outcome.merged["points"] == []
    assert merged_sweep_points(outcome.merged) == []
    # to_json still yields a parseable, schema-tagged artifact.
    assert json.loads(outcome.to_json())["schema"] == "repro-sweep/v1"


def test_one_point_grid_runs_serially_even_with_workers():
    spec = SweepSpec(
        kind="workload", workload="vpic", machines=("testbed",),
        modes=("sync",), scales=(4.0,), seeds=(0,),
    )
    outcome = run_sweep(spec, workers=4)
    assert len(outcome.merged["points"]) == 1
    assert outcome.merged["points"][0]["ok"]


# ---------------------------------------------------------------------------
# Sched-kind sweeps and progress reporting
# ---------------------------------------------------------------------------


def test_sched_sweep_1_vs_2_workers_identical():
    spec = SweepSpec(
        kind="sched", machines=("sched-testbed",),
        modes=("fifo", "io-aware"), scales=(2.0,), seeds=(0,), jobs=4,
    )
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=2)
    assert serial.to_json() == parallel.to_json()
    for p in serial.merged["points"]:
        assert p["ok"]
        assert p["metrics"]["n_jobs"] == 4


def test_progress_callback_sees_every_point():
    seen = []
    run_sweep(SMALL, workers=1,
              progress=lambda done, total, point: seen.append((done, total)))
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_sweepable_grids_lists_workloads_and_sched():
    names = [name for name, _desc in sweepable_grids()]
    assert "workload:vpic" in names
    assert "sched" in names
