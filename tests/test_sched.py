"""Tests for the multi-tenant scheduler and cluster service layer."""

import dataclasses
import json
import math

import pytest

from repro.sim import Engine, Interrupted
from repro.platform import Cluster, ContentionModel, ContentionTimeline
from repro.platform import testbed as _testbed
from repro.sched import (
    AdvisorService,
    BackfillPolicy,
    FIFOPolicy,
    IOAwarePolicy,
    JobRecord,
    JobSpec,
    JobState,
    JobStream,
    Placement,
    Scheduler,
    StreamConfig,
    make_job,
    make_policy,
)
from repro.trace import Span, SpanLog, records_to_json

GB = 1e9


def sched_spec(nodes=8):
    return _testbed(nodes=nodes, ranks_per_node=4, pfs_peak=3.0 * GB,
                    nic=2.0 * GB)


def build_sched(policy_name="fifo", nodes=8, **policy_kwargs):
    spec = sched_spec(nodes)
    engine = Engine()
    cluster = Cluster(engine, spec, spec.total_nodes)
    service = AdvisorService(spec)
    policy = make_policy(
        policy_name, spec.default_ranks_per_node,
        service=service if policy_name == "io-aware" else None,
        **policy_kwargs,
    )
    sched = Scheduler(engine, cluster, policy, service=service)
    return spec, engine, cluster, sched


# ---------------------------------------------------------------------------
# JobSpec / JobRecord
# ---------------------------------------------------------------------------


def test_job_spec_validation():
    spec = sched_spec()
    job = make_job("vpic", spec, "j0", nranks=8)
    assert job.mode == "auto"
    assert job.phase_bytes > 0 and job.n_phases >= 1
    assert math.isfinite(job.walltime)
    with pytest.raises(ValueError):
        dataclasses.replace(job, mode="turbo")
    with pytest.raises(ValueError):
        dataclasses.replace(job, nranks=0)
    with pytest.raises(ValueError):
        dataclasses.replace(job, walltime=0.0)
    with pytest.raises(ValueError):
        dataclasses.replace(job, n_phases=0)
    with pytest.raises(ValueError):
        make_job("doom3", spec, "j0", nranks=8)


def test_job_spec_nnodes_rounds_up():
    job = make_job("vpic", sched_spec(), "j0", nranks=9)
    assert job.nnodes(default_rpn=4) == 3
    assert job.nnodes(default_rpn=8) == 2


def test_job_record_metrics():
    job = make_job("vpic", sched_spec(), "j0", nranks=4)
    rec = JobRecord(job, job_id=3, submit_time=10.0)
    assert rec.state is JobState.PENDING and not rec.finished
    rec.start_time, rec.finish_time = 12.0, 20.0
    rec.state = JobState.COMPLETED
    assert rec.wait_time == pytest.approx(2.0)
    assert rec.run_time == pytest.approx(8.0)
    assert rec.completion_time == pytest.approx(10.0)
    assert rec.finished
    summary = rec.summary()
    assert summary["job_id"] == 3 and summary["state"] == "completed"


# ---------------------------------------------------------------------------
# Stream determinism
# ---------------------------------------------------------------------------


def test_stream_same_seed_identical():
    spec = sched_spec()
    cfg = StreamConfig(n_jobs=12, seed=5)
    assert (JobStream(spec, cfg).fingerprint()
            == JobStream(spec, cfg).fingerprint())


def test_stream_different_seed_differs():
    spec = sched_spec()
    a = JobStream(spec, StreamConfig(n_jobs=12, seed=5)).fingerprint()
    b = JobStream(spec, StreamConfig(n_jobs=12, seed=6)).fingerprint()
    assert a != b


def test_stream_unique_paths_and_monotone_arrivals():
    spec = sched_spec()
    arrivals = JobStream(spec, StreamConfig(n_jobs=15, seed=2)).arrivals()
    times = [t for t, _s in arrivals]
    assert times == sorted(times)
    paths = [getattr(s.config, "path", None)
             or getattr(s.config, "path_prefix") for _t, s in arrivals]
    assert len(set(paths)) == len(paths)


def test_stream_config_validation():
    with pytest.raises(ValueError):
        StreamConfig(n_jobs=0)
    with pytest.raises(ValueError):
        StreamConfig(mean_interarrival=0.0)
    with pytest.raises(ValueError):
        StreamConfig(workload_mix=(("doom", 1.0),))
    with pytest.raises(ValueError):
        StreamConfig(mode_mix=(("auto", -1.0),))
    with pytest.raises(ValueError):
        StreamConfig(rank_choices=())


# ---------------------------------------------------------------------------
# Cluster node ledger
# ---------------------------------------------------------------------------


def test_node_ledger_allocate_release():
    engine = Engine()
    cluster = Cluster(engine, sched_spec(), 8)
    assert cluster.free_node_count == 8
    taken = cluster.allocate_nodes(3, owner=1)
    assert taken == (0, 1, 2)
    assert cluster.free_node_count == 5 and cluster.busy_node_count == 3
    more = cluster.allocate_nodes(2, owner=2)
    assert more == (3, 4)
    cluster.release_owner(1)
    assert cluster.free_node_count == 6
    assert cluster.free_node_indices() == (0, 1, 2, 5, 6, 7)
    # Next allocation reuses the lowest free indices (fragmentation).
    assert cluster.allocate_nodes(4) == (0, 1, 2, 5)


def test_node_ledger_errors():
    engine = Engine()
    cluster = Cluster(engine, sched_spec(), 4)
    cluster.allocate_nodes(4)
    with pytest.raises(ValueError):
        cluster.allocate_nodes(1)
    with pytest.raises(ValueError):
        cluster.allocate_nodes(0)
    cluster.release_nodes((0, 1))
    with pytest.raises(ValueError):
        cluster.release_nodes((1,))  # double release
    with pytest.raises(ValueError):
        cluster.release_nodes((99,))
    cluster.release_owner(42)  # unknown owner is a no-op


# ---------------------------------------------------------------------------
# Policies (pure planning)
# ---------------------------------------------------------------------------


def _pending(spec, shapes):
    """JobRecords for (nranks, walltime) shapes, submitted at t=0."""
    records = []
    for i, (nranks, walltime) in enumerate(shapes):
        job = make_job("vpic", spec, f"j{i}", nranks=nranks)
        job = dataclasses.replace(job, walltime=walltime)
        records.append(JobRecord(job, i, 0.0))
    return records


def test_fifo_head_of_line_blocks():
    spec = sched_spec()
    policy = FIFOPolicy(default_ranks_per_node=4)
    # Head needs 8 nodes, only 4 free; the small job behind must wait.
    pending = _pending(spec, [(32, 100.0), (4, 100.0)])
    assert policy.plan(0.0, pending, free_nodes=4, running=[]) == []


def test_fifo_starts_in_order_while_fitting():
    spec = sched_spec()
    policy = FIFOPolicy(default_ranks_per_node=4)
    pending = _pending(spec, [(8, 100.0), (8, 100.0), (32, 100.0)])
    plan = policy.plan(0.0, pending, free_nodes=4, running=[])
    assert [p.record.job_id for p in plan] == [0, 1]
    assert all(p.mode == "sync" for p in plan)  # 'auto' defaults to sync


def test_backfill_lets_short_job_jump():
    spec = sched_spec()
    policy = BackfillPolicy(default_ranks_per_node=4)
    # One running job holds 4 nodes for 50 more seconds.
    running = _pending(spec, [(16, 50.0)])[:1]
    running[0].start_time = 0.0
    running[0].nodes = (0, 1, 2, 3)
    # Head needs 8 nodes (must wait for the release at t=50); the short
    # job behind fits in the 4 free nodes and ends before t=50.
    pending = _pending(spec, [(32, 100.0), (8, 20.0)])
    plan = policy.plan(0.0, pending, free_nodes=4, running=running)
    assert [p.record.job_id for p in plan] == [1]


def test_backfill_blocks_reservation_violators():
    spec = sched_spec()
    policy = BackfillPolicy(default_ranks_per_node=4)
    running = _pending(spec, [(16, 50.0)])[:1]
    running[0].start_time = 0.0
    running[0].nodes = (0, 1, 2, 3)
    # The trailing job would outlive the shadow time AND needs nodes
    # the head's reservation will use: it must stay queued.
    pending = _pending(spec, [(32, 100.0), (8, 500.0)])
    plan = policy.plan(0.0, pending, free_nodes=4, running=running)
    assert plan == []


def test_io_aware_resolves_auto_to_async():
    spec = sched_spec()
    service = AdvisorService(spec)
    policy = IOAwarePolicy(default_ranks_per_node=4, service=service)
    pending = _pending(spec, [(8, 100.0)])
    plan = policy.plan(0.0, pending, free_nodes=8, running=[])
    assert len(plan) == 1
    assert plan[0].mode == "async"
    assert pending[0].decision is not None


def test_io_aware_staggers_colliding_sync_bursts():
    spec = sched_spec()
    service = AdvisorService(spec)
    policy = IOAwarePolicy(default_ranks_per_node=4, service=service,
                           max_stagger=10.0)
    records = _pending(spec, [(8, 100.0), (8, 100.0)])
    for rec in records:  # force both jobs synchronous
        object.__setattr__(rec.spec, "mode", "sync")
    plan = policy.plan(0.0, records, free_nodes=8, running=[])
    delays = sorted(p.start_delay for p in plan)
    assert delays[0] == 0.0
    assert delays[1] > 0.0  # second sync burst slides out of the first
    # Async jobs are never staggered.
    async_rec = _pending(spec, [(8, 100.0)])
    object.__setattr__(async_rec[0].spec, "mode", "async")
    plan2 = policy.plan(0.0, async_rec, free_nodes=8, running=[])
    assert plan2[0].start_delay == 0.0


def test_placement_validation():
    spec = sched_spec()
    rec = _pending(spec, [(8, 100.0)])[0]
    with pytest.raises(ValueError):
        Placement(rec, nnodes=0, mode="sync")
    with pytest.raises(ValueError):
        Placement(rec, nnodes=1, mode="auto")
    with pytest.raises(ValueError):
        Placement(rec, nnodes=1, mode="sync", start_delay=-1.0)


def test_make_policy_factory():
    assert isinstance(make_policy("fifo", 4), FIFOPolicy)
    assert isinstance(make_policy("backfill", 4), BackfillPolicy)
    service = AdvisorService(sched_spec())
    assert isinstance(make_policy("io-aware", 4, service=service),
                      IOAwarePolicy)
    with pytest.raises(ValueError):
        make_policy("io-aware", 4)  # needs a service
    with pytest.raises(ValueError):
        make_policy("sjf", 4)


# ---------------------------------------------------------------------------
# Advisor service
# ---------------------------------------------------------------------------


def test_advisor_service_ready_from_prior():
    spec = sched_spec()
    service = AdvisorService(spec)
    decision = service.decide("vpic", phase_bytes=1 * GB, nranks=8,
                              compute_seconds=2.0)
    assert decision.mode.value in ("sync", "async")
    assert math.isfinite(decision.est_sync_epoch)
    assert service.tenants() == ["vpic"]


def test_advisor_service_prior_disabled_falls_back_to_sync():
    service = AdvisorService(sched_spec(), prior_weight=0)
    decision = service.decide("cold", phase_bytes=1 * GB, nranks=8,
                              compute_seconds=2.0)
    assert decision.mode.value == "sync"  # no history, advisor not ready
    assert math.isnan(decision.est_sync_epoch)


def test_advisor_service_histories_are_per_tenant():
    service = AdvisorService(sched_spec())
    h_a = service.history_for("a")
    h_b = service.history_for("b")
    assert h_a is not h_b
    assert service.history_for("a") is h_a
    n_before = len(h_a)
    h_a.record(data_size=1e9, nranks=8, io_rate=1e9)
    assert len(h_a) == n_before + 1
    assert len(h_b) == n_before


def test_advisor_service_estimate_sync_time_positive():
    service = AdvisorService(sched_spec())
    t = service.estimate_sync_io_time("vpic", phase_bytes=1 * GB, nranks=8)
    assert t > 0 and math.isfinite(t)


# ---------------------------------------------------------------------------
# Scheduler end-to-end
# ---------------------------------------------------------------------------


def test_scheduler_runs_fleet_to_completion():
    spec, engine, cluster, sched = build_sched("fifo")
    arrivals = JobStream(
        spec, StreamConfig(n_jobs=8, seed=1, mean_interarrival=5.0)
    ).arrivals()
    records = sched.run_stream(arrivals)
    assert len(records) == 8
    assert all(r.state is JobState.COMPLETED for r in records)
    assert cluster.free_node_count == len(cluster.nodes)  # all released
    for rec in records:
        assert rec.bytes_moved() > 0
        assert rec.completion_time >= rec.wait_time >= 0.0
        assert rec.stats_delta["events"] > 0


def test_scheduler_spans_and_timeline():
    spec, engine, cluster, sched = build_sched("fifo")
    arrivals = JobStream(
        spec, StreamConfig(n_jobs=6, seed=3, mean_interarrival=2.0)
    ).arrivals()
    records = sched.run_stream(arrivals)
    table = {row["job_id"]: row for row in sched.spans.tenant_table()}
    assert sorted(table) == [r.job_id for r in records]
    for rec in records:
        row = table[rec.job_id]
        assert row["queued_s"] == pytest.approx(rec.wait_time)
        assert row["run_s"] == pytest.approx(rec.run_time)
        assert row["events"] == rec.stats_delta["events"]
    timeline = sched.timeline
    assert timeline.live_jobs == 0
    assert timeline.peak_live_jobs() >= 1
    assert timeline.busy_node_seconds() > 0
    assert len(timeline.events) == 2 * len(records)


def test_scheduler_walltime_timeout_kills_and_releases():
    spec, engine, cluster, sched = build_sched("fifo")
    job = make_job("vpic", spec, "killme", nranks=4)
    job = dataclasses.replace(job, walltime=2.0)  # well under its runtime
    sched.submit(job)
    engine.run()
    rec = sched.records[0]
    assert rec.state is JobState.TIMEOUT
    assert rec.run_time == pytest.approx(2.0)
    assert cluster.free_node_count == len(cluster.nodes)
    # Killed jobs never feed the advisor's measurement history.
    assert len(sched.service.history_for("vpic")) == len(
        AdvisorService(spec).history_for("vpic")
    )


def test_scheduler_rejects_oversized_job():
    spec, engine, cluster, sched = build_sched("fifo")
    job = make_job("vpic", spec, "huge", nranks=4096)
    rec = sched.submit(job)
    assert rec.state is JobState.REJECTED
    assert "nodes" in rec.reject_reason
    engine.run()
    assert rec.finished


def test_scheduler_same_seed_replay_identical():
    def run_once():
        spec, engine, cluster, sched = build_sched("io-aware")
        arrivals = JobStream(
            spec, StreamConfig(n_jobs=10, seed=4, mean_interarrival=3.0)
        ).arrivals()
        records = sched.run_stream(arrivals)
        return [(r.job_id, r.mode, r.nodes, r.start_time, r.finish_time)
                for r in records]

    assert run_once() == run_once()


def test_io_aware_beats_fifo_under_load():
    from repro.harness.sched import run_fleet, sched_testbed

    cfg = StreamConfig(n_jobs=15, seed=7, mean_interarrival=2.0,
                       rank_choices=(8, 16, 32), size_scale=4.0)
    machine = sched_testbed()
    fifo = run_fleet(machine, cfg, "fifo")
    io_aware = run_fleet(machine, cfg, "io-aware")
    assert io_aware.completion_p95 < fifo.completion_p95
    assert io_aware.n_async > fifo.n_async
    assert fifo.completed == io_aware.completed == 15


def test_run_fleet_metrics_consistent():
    from repro.harness.sched import percentile, run_fleet, sched_testbed

    cfg = StreamConfig(n_jobs=8, seed=1, mean_interarrival=4.0)
    m = run_fleet(sched_testbed(), cfg, "backfill")
    assert m.completed + m.timeouts + m.failed + m.rejected == m.n_jobs
    assert m.completion_p50 <= m.completion_p95 <= m.completion_p99
    assert m.makespan > 0 and 0 <= m.pfs_utilization <= 1
    assert len(m.jobs) == m.n_jobs
    assert percentile([3, 1, 2], 50) == 2
    assert percentile([3, 1, 2], 100) == 3
    assert math.isnan(percentile([], 50))
    with pytest.raises(ValueError):
        percentile([1], 0)


# ---------------------------------------------------------------------------
# ContentionTimeline
# ---------------------------------------------------------------------------


def test_timeline_bookkeeping_and_errors():
    engine = Engine()
    timeline = ContentionTimeline(engine)
    timeline.job_started(1, nodes=4)
    timeline.job_started(2, nodes=2)
    assert timeline.live_jobs == 2 and timeline.busy_nodes == 6
    with pytest.raises(ValueError):
        timeline.job_started(1, nodes=1)
    timeline.job_finished(1)
    with pytest.raises(ValueError):
        timeline.job_finished(1)
    assert timeline.availability() == 1.0  # no external model


def test_timeline_external_model_scales_with_live_jobs():
    engine = Engine()
    spec = sched_spec()
    cluster = Cluster(engine, spec, 2)
    model = ContentionModel(seed=3, median_load=0.3)
    timeline = ContentionTimeline(engine, cluster.pfs, model=model, day=1,
                                  external_per_job=0.5)
    base = timeline.availability()
    assert base == pytest.approx(model.availability(1))
    timeline.job_started(1, nodes=1)
    assert timeline.availability() < base
    timeline.job_finished(1)
    assert timeline.availability() == pytest.approx(base)


# ---------------------------------------------------------------------------
# Spans and trace export
# ---------------------------------------------------------------------------


def test_span_validation_and_log():
    log = SpanLog()
    log.record(1, "queued", 0.0, 2.0)
    log.record(1, "run", 2.0, 5.0, mode="async")
    log.record(2, "queued", 1.0, 1.0)
    assert len(log) == 3
    assert log.total(1) == pytest.approx(5.0)
    assert log.total(1, "run") == pytest.approx(3.0)
    assert log.job_ids() == [1, 2]
    assert [s.name for s in log.for_job(1)] == ["queued", "run"]
    rows = log.tenant_table()
    assert rows[0]["mode"] == "async"
    parsed = json.loads(log.to_json())
    assert len(parsed) == 3 and parsed[1]["meta"] == {"mode": "async"}
    with pytest.raises(ValueError):
        Span(1, "bad", 5.0, 4.0)


def test_records_to_json_engine_stats_opt_in():
    from repro.sim import EngineStats

    legacy = json.loads(records_to_json([]))
    assert legacy == []
    stats = EngineStats()
    stats.events = 42
    tagged = json.loads(records_to_json([], engine_stats=stats))
    assert tagged["records"] == []
    assert tagged["engine_stats"]["events"] == 42
    plain = json.loads(records_to_json([], engine_stats={"events": 7}))
    assert plain["engine_stats"] == {"events": 7}


# ---------------------------------------------------------------------------
# Engine interrupt (the kill primitive)
# ---------------------------------------------------------------------------


def test_interrupt_waiting_process():
    engine = Engine()
    seen = []

    def sleeper():
        try:
            yield engine.timeout(100.0)
        except Interrupted as exc:
            seen.append(exc.cause)
        return "done"

    proc = engine.process(sleeper())

    def killer():
        yield engine.timeout(1.0)
        assert proc.interrupt("scancel")

    engine.process(killer())
    engine.run()
    assert seen == ["scancel"]
    assert engine.now == pytest.approx(100.0)  # dangling timeout still fires
    assert proc.value == "done"


def test_interrupt_finished_process_is_noop():
    engine = Engine()

    def instant():
        return "ok"
        yield  # pragma: no cover - makes this a generator

    proc = engine.process(instant())
    engine.run()
    assert proc.interrupt("late") is False


def test_interrupted_process_ignores_stale_event():
    engine = Engine()
    trace = []

    def waits_twice():
        try:
            yield engine.timeout(10.0)
            trace.append("first")
        except Interrupted:
            trace.append("interrupted")
        yield engine.timeout(50.0)
        trace.append("second")

    proc = engine.process(waits_twice())

    def killer():
        yield engine.timeout(1.0)
        proc.interrupt()

    engine.process(killer())
    engine.run()
    # The stale 10 s timeout firing at t=10 must NOT resume the process
    # a second time; only the post-interrupt 50 s wait completes it.
    assert trace == ["interrupted", "second"]
    assert engine.now == pytest.approx(51.0)


# ---------------------------------------------------------------------------
# MPIJob explicit placement
# ---------------------------------------------------------------------------


def test_mpijob_node_indices_placement():
    from repro.mpi import MPIJob

    engine = Engine()
    cluster = Cluster(engine, sched_spec(), 8)
    job = MPIJob(cluster, 8, ranks_per_node=4, node_indices=(5, 2))
    assert job.node_indices == (5, 2)
    assert job.contexts[0].node.index == 5
    assert job.contexts[3].node.index == 5
    assert job.contexts[4].node.index == 2
    with pytest.raises(ValueError):
        MPIJob(cluster, 8, ranks_per_node=4, node_indices=(5,))
    with pytest.raises(ValueError):
        MPIJob(cluster, 4, ranks_per_node=4, node_indices=(9,))
    with pytest.raises(ValueError):
        MPIJob(cluster, 4, ranks_per_node=4, node_indices=(1,), node_offset=2)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_list_includes_workloads_and_microbenchmarks(capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "workloads" in out and "micro-benchmarks" in out
    for name in ("vpic", "bdcats", "cosmoflow", "fig-sched", "mb-gpu"):
        assert name in out


def test_cli_sched_command(capsys):
    from repro.cli import main

    code = main(["sched", "--policy", "io-aware", "--jobs", "6",
                 "--load", "4", "--seed", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "io-aware" in out and "compl p95" in out


def test_cli_profile_stats_flag(capsys):
    from repro.cli import main

    code = main(["profile", "--workload", "vpic", "--machine", "testbed",
                 "--mode", "sync", "--ranks", "8", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "engine stats:" in out
    assert "fastpath_events" in out
