"""Tests for the epoch time model (Eq. 1-3, Fig. 1 scenarios)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    EpochCosts,
    Scenario,
    app_time,
    async_epoch_time,
    classify_scenario,
    io_time,
    speedup,
    sync_epoch_time,
)


def test_io_time_eq3():
    assert io_time(data_size=1e9, io_rate=1e8) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        io_time(-1.0, 1.0)
    with pytest.raises(ValueError):
        io_time(1.0, 0.0)


def test_sync_epoch_eq2a():
    c = EpochCosts(t_comp=30.0, t_io=10.0, t_transact=1.0)
    assert sync_epoch_time(c) == pytest.approx(40.0)


def test_async_epoch_ideal_overlap():
    """Fig. 1a: compute >= I/O -> epoch = compute + overhead."""
    c = EpochCosts(t_comp=30.0, t_io=10.0, t_transact=1.0)
    assert async_epoch_time(c) == pytest.approx(31.0)
    assert classify_scenario(c) is Scenario.IDEAL


def test_async_epoch_partial_overlap():
    """Fig. 1b: compute < I/O -> epoch = (io - comp) + overhead ... if
    that beats sync."""
    c = EpochCosts(t_comp=10.0, t_io=30.0, t_transact=1.0)
    assert async_epoch_time(c) == pytest.approx(21.0)
    assert sync_epoch_time(c) == pytest.approx(40.0)
    assert classify_scenario(c) is Scenario.PARTIAL


def test_async_epoch_slowdown():
    """Fig. 1c: t_comp <= t_transact -> async never wins."""
    c = EpochCosts(t_comp=0.5, t_io=1.0, t_transact=2.0)
    assert async_epoch_time(c) >= sync_epoch_time(c)
    assert classify_scenario(c) is Scenario.SLOWDOWN


def test_speedup_above_one_when_async_wins():
    c = EpochCosts(t_comp=30.0, t_io=10.0, t_transact=1.0)
    assert speedup(c) > 1.0
    bad = EpochCosts(t_comp=0.1, t_io=1.0, t_transact=5.0)
    assert speedup(bad) < 1.0


def test_app_time_eq1_sync():
    epochs = [EpochCosts(t_comp=10.0, t_io=5.0)] * 4
    assert app_time(epochs, "sync", t_init=2.0, t_term=1.0) == pytest.approx(
        2.0 + 4 * 15.0 + 1.0
    )


def test_app_time_eq1_async():
    epochs = [EpochCosts(t_comp=10.0, t_io=5.0, t_transact=0.5)] * 4
    assert app_time(epochs, "async", t_init=2.0, t_term=1.0) == pytest.approx(
        2.0 + 4 * 10.5 + 1.0
    )


def test_app_time_final_drain_option():
    epochs = [EpochCosts(t_comp=2.0, t_io=10.0, t_transact=0.5)] * 2
    base = app_time(epochs, "async")
    with_drain = app_time(epochs, "async", include_final_drain=True)
    assert with_drain == pytest.approx(base + 8.0)


def test_app_time_validation():
    with pytest.raises(ValueError):
        app_time([], "weird")
    with pytest.raises(ValueError):
        app_time([], "sync", t_init=-1.0)


def test_epoch_costs_validation():
    with pytest.raises(ValueError):
        EpochCosts(t_comp=-1.0, t_io=0.0)


@given(
    t_comp=st.floats(min_value=0.0, max_value=1e4),
    t_io=st.floats(min_value=0.0, max_value=1e4),
    t_transact=st.floats(min_value=0.0, max_value=1e4),
)
@settings(max_examples=100, deadline=None)
def test_property_async_epoch_bounds(t_comp, t_io, t_transact):
    """Eq. 2b invariants: epoch >= max component lower bounds, and the
    paper's slowdown condition t_comp <= t_transact implies no benefit
    whenever I/O is at least as long as compute."""
    c = EpochCosts(t_comp=t_comp, t_io=t_io, t_transact=t_transact)
    t_async = async_epoch_time(c)
    assert t_async >= t_comp  # compute can never be hidden
    assert t_async >= t_transact
    # async epoch never beats pure compute+overhead
    assert t_async == pytest.approx(
        max(t_comp, t_io - t_comp) + t_transact
    )
    if t_comp <= t_transact and t_io >= t_comp:
        assert t_async >= sync_epoch_time(c) - 2 * t_comp


@given(
    t_comp=st.floats(min_value=0.001, max_value=1e3),
    t_io=st.floats(min_value=0.001, max_value=1e3),
    t_transact=st.floats(min_value=0.0, max_value=1e3),
    n=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_property_app_time_additive(t_comp, t_io, t_transact, n):
    """Eq. 1 is additive over identical epochs."""
    c = EpochCosts(t_comp=t_comp, t_io=t_io, t_transact=t_transact)
    for mode, epoch_fn in [("sync", sync_epoch_time), ("async", async_epoch_time)]:
        total = app_time([c] * n, mode, t_init=1.0, t_term=2.0)
        assert total == pytest.approx(3.0 + n * epoch_fn(c), rel=1e-9)
