"""Unit and property tests for the max-min fair bandwidth-sharing network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Link, Network


def make_net():
    eng = Engine()
    return eng, Network(eng)


def run_transfer(nbytes, capacity, nflows=1, cap=math.inf, latency=0.0):
    """Run ``nflows`` identical transfers over one link; return durations."""
    eng, net = make_net()
    link = Link("l", capacity)
    flows = [
        net.transfer(nbytes, [link], cap=cap, latency=latency, tag=i)
        for i in range(nflows)
    ]
    eng.run()
    return [f.elapsed for f in flows]


# ---------------------------------------------------------------------------
# Single-flow basics
# ---------------------------------------------------------------------------


def test_single_flow_duration():
    (dt,) = run_transfer(nbytes=1000.0, capacity=100.0)
    assert dt == pytest.approx(10.0)


def test_flow_cap_limits_rate():
    (dt,) = run_transfer(nbytes=1000.0, capacity=100.0, cap=10.0)
    assert dt == pytest.approx(100.0)


def test_latency_added_before_transfer():
    (dt,) = run_transfer(nbytes=1000.0, capacity=100.0, latency=5.0)
    # elapsed counts from activation; check total wall time instead
    eng, net = make_net()
    link = Link("l", 100.0)
    flow = net.transfer(1000.0, [link], latency=5.0)
    eng.run()
    assert flow.finished_at == pytest.approx(15.0)


def test_zero_byte_transfer_completes_instantly():
    eng, net = make_net()
    link = Link("l", 100.0)
    flow = net.transfer(0.0, [link])
    eng.run()
    assert flow.finished_at == 0.0
    assert flow.done.triggered


def test_negative_size_rejected():
    eng, net = make_net()
    with pytest.raises(ValueError):
        net.transfer(-1.0, [Link("l", 1.0)])


def test_achieved_rate():
    eng, net = make_net()
    link = Link("l", 250.0)
    flow = net.transfer(1000.0, [link])
    eng.run()
    assert flow.achieved_rate == pytest.approx(250.0)


# ---------------------------------------------------------------------------
# Fair sharing
# ---------------------------------------------------------------------------


def test_two_flows_share_link_equally():
    durations = run_transfer(nbytes=1000.0, capacity=100.0, nflows=2)
    assert durations == [pytest.approx(20.0)] * 2


def test_many_identical_flows_finish_together():
    durations = run_transfer(nbytes=100.0, capacity=1000.0, nflows=50)
    assert all(d == pytest.approx(durations[0]) for d in durations)
    assert durations[0] == pytest.approx(50 * 100.0 / 1000.0)


def test_late_arrival_slows_first_flow():
    eng, net = make_net()
    link = Link("l", 100.0)
    first = net.transfer(1000.0, [link], tag="first")
    second = net.transfer(1000.0, [link], latency=5.0, tag="second")
    eng.run()
    # first: 5s alone (500B) then shares; remaining 500B at 50 B/s = 10s
    assert first.finished_at == pytest.approx(15.0)
    # second: shares 50B/s for 10s (500B), then alone at 100B/s for 5s
    assert second.finished_at == pytest.approx(20.0)


def test_completion_releases_bandwidth():
    eng, net = make_net()
    link = Link("l", 100.0)
    small = net.transfer(100.0, [link], tag="small")
    big = net.transfer(1000.0, [link], tag="big")
    eng.run()
    # both at 50 B/s until small finishes at t=2 (100B);
    # big then has 900B left at 100 B/s -> t = 2 + 9 = 11
    assert small.finished_at == pytest.approx(2.0)
    assert big.finished_at == pytest.approx(11.0)


def test_capped_flow_leaves_headroom_for_others():
    eng, net = make_net()
    link = Link("l", 100.0)
    capped = net.transfer(100.0, [link], cap=10.0, tag="capped")
    free = net.transfer(900.0, [link], tag="free")
    eng.run()
    # capped runs at 10; free gets the remaining 90 -> both end at t=10
    assert capped.finished_at == pytest.approx(10.0)
    assert free.finished_at == pytest.approx(10.0)


def test_two_link_path_bottleneck():
    eng, net = make_net()
    fast = Link("fast", 1000.0)
    slow = Link("slow", 10.0)
    flow = net.transfer(100.0, [fast, slow])
    eng.run()
    assert flow.elapsed == pytest.approx(10.0)


def test_cross_traffic_on_shared_bottleneck():
    """Two node NICs feeding one PFS link: PFS is the shared bottleneck."""
    eng, net = make_net()
    nic_a = Link("nic_a", 100.0)
    nic_b = Link("nic_b", 100.0)
    pfs = Link("pfs", 100.0)
    fa = net.transfer(500.0, [nic_a, pfs], tag="a")
    fb = net.transfer(500.0, [nic_b, pfs], tag="b")
    eng.run()
    # both share pfs at 50 B/s
    assert fa.finished_at == pytest.approx(10.0)
    assert fb.finished_at == pytest.approx(10.0)


def test_nic_limited_flow_frees_pfs_share():
    eng, net = make_net()
    nic_a = Link("nic_a", 10.0)  # this NIC is the flow's bottleneck
    nic_b = Link("nic_b", 1000.0)
    pfs = Link("pfs", 100.0)
    fa = net.transfer(100.0, [nic_a, pfs], tag="a")
    fb = net.transfer(900.0, [nic_b, pfs], tag="b")
    eng.run()
    # max-min: a gets 10 (NIC-bound), b gets the remaining 90 of the PFS
    assert fa.finished_at == pytest.approx(10.0)
    assert fb.finished_at == pytest.approx(10.0)


def test_capacity_change_rebalances_in_flight():
    eng, net = make_net()
    link = Link("l", 100.0)
    flow = net.transfer(1000.0, [link])

    def contention():
        yield eng.timeout(5.0)
        link.set_capacity(50.0)

    eng.process(contention())
    eng.run()
    # 5s at 100 B/s = 500B, then 500B at 50 B/s = 10s -> total 15s
    assert flow.finished_at == pytest.approx(15.0)


def test_zero_capacity_link_stalls_flow():
    eng, net = make_net()
    link = Link("l", 100.0)
    flow = net.transfer(1000.0, [link])

    def blackout():
        yield eng.timeout(2.0)
        link.set_capacity(0.0)
        yield eng.timeout(10.0)
        link.set_capacity(100.0)

    eng.process(blackout())
    eng.run()
    # 2s at 100 (200B), 10s stalled, then 800B at 100 -> ends at t=20
    assert flow.finished_at == pytest.approx(20.0)


def test_link_cannot_join_two_networks():
    eng = Engine()
    net1, net2 = Network(eng), Network(eng)
    link = Link("l", 1.0)
    net1.transfer(1.0, [link])
    with pytest.raises(RuntimeError):
        net2.transfer(1.0, [link])


def test_link_throughput_observability():
    eng, net = make_net()
    link = Link("l", 100.0)
    net.transfer(1000.0, [link])
    net.transfer(1000.0, [link])

    def probe():
        yield eng.timeout(1.0)
        return net.link_throughput(link)

    proc = eng.process(probe())
    eng.run()
    assert proc.value == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# Property-based tests on the allocator
# ---------------------------------------------------------------------------


@given(
    nflows=st.integers(min_value=1, max_value=40),
    capacity=st.floats(min_value=1.0, max_value=1e6),
    nbytes=st.floats(min_value=1.0, max_value=1e9),
)
@settings(max_examples=60, deadline=None)
def test_property_identical_flows_duration(nflows, capacity, nbytes):
    """N identical flows over one link take exactly N*nbytes/capacity."""
    durations = run_transfer(nbytes=nbytes, capacity=capacity, nflows=nflows)
    expected = nflows * nbytes / capacity
    for d in durations:
        assert d == pytest.approx(expected, rel=1e-6)


@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=15
    ),
    capacity=st.floats(min_value=1.0, max_value=1e4),
)
@settings(max_examples=60, deadline=None)
def test_property_work_conservation(sizes, capacity):
    """Link is fully utilized until the last flow finishes.

    Total bytes / capacity == makespan when a single link is the only
    constraint, regardless of the flow size mix.
    """
    eng = Engine()
    net = Network(eng)
    link = Link("l", capacity)
    flows = [net.transfer(s, [link], tag=i) for i, s in enumerate(sizes)]
    eng.run()
    makespan = max(f.finished_at for f in flows)
    assert makespan == pytest.approx(sum(sizes) / capacity, rel=1e-6)


@given(
    caps=st.lists(
        st.floats(min_value=0.5, max_value=100.0), min_size=2, max_size=10
    )
)
@settings(max_examples=60, deadline=None)
def test_property_caps_respected(caps):
    """No flow ever beats its cap: elapsed >= nbytes/cap."""
    eng = Engine()
    net = Network(eng)
    link = Link("l", 1e6)  # effectively unconstrained
    nbytes = 1000.0
    flows = [net.transfer(nbytes, [link], cap=c, tag=i) for i, c in enumerate(caps)]
    eng.run()
    for f, c in zip(flows, caps):
        assert f.elapsed >= nbytes / c * (1 - 1e-9)
        assert f.elapsed == pytest.approx(nbytes / c, rel=1e-6)


@given(
    n_a=st.integers(min_value=1, max_value=10),
    n_b=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_property_maxmin_two_classes(n_a, n_b):
    """Flows through a private fast NIC + shared PFS split the PFS fairly."""
    eng = Engine()
    net = Network(eng)
    pfs = Link("pfs", 100.0)
    nic_a = Link("nic_a", 1e6)
    nic_b = Link("nic_b", 1e6)
    nbytes = 1000.0
    flows = [net.transfer(nbytes, [nic_a, pfs], tag=("a", i)) for i in range(n_a)]
    flows += [net.transfer(nbytes, [nic_b, pfs], tag=("b", i)) for i in range(n_b)]
    eng.run()
    total = n_a + n_b
    for f in flows:
        assert f.elapsed == pytest.approx(total * nbytes / 100.0, rel=1e-6)


@given(
    caps=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2,
                  max_size=5),
    flows=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e6),   # nbytes
            st.integers(min_value=0, max_value=4),     # first link
            st.integers(min_value=0, max_value=4),     # second link
            st.floats(min_value=0.0, max_value=5.0),   # start latency
        ),
        min_size=1, max_size=12,
    ),
)
@settings(max_examples=50, deadline=None)
def test_property_random_topology_invariants(caps, flows):
    """Random multi-link topologies: every flow completes, no flow beats
    its path's bottleneck, and the makespan respects each link's load."""
    eng = Engine()
    net = Network(eng)
    links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
    live = []
    for nbytes, i, j, latency in flows:
        path_links = {links[i % len(links)], links[j % len(links)]}
        live.append((net.transfer(nbytes, list(path_links), latency=latency,
                                  tag=len(live)), path_links, nbytes, latency))
    eng.run()
    for flow, path_links, nbytes, latency in live:
        assert flow.done.triggered
        bottleneck = min(l.capacity for l in path_links)
        # can't move faster than the path's bottleneck allows
        assert flow.elapsed >= nbytes / bottleneck * (1 - 1e-6)
    # per-link work conservation lower bound on the makespan
    makespan = max(f.finished_at for f, *_ in live)
    for link in links:
        load = sum(n for f, p, n, lat in live if link in p)
        earliest = min((lat for f, p, n, lat in live if link in p),
                       default=0.0)
        if load:
            assert makespan >= earliest + load / link.capacity * (1 - 1e-6)
