"""Tests for the VPIC-IO and BD-CATS-IO kernels."""

import pytest

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.workloads import (
    BDCATSConfig,
    VPICConfig,
    bdcats_program,
    prepopulate_vpic_file,
    summarize_run,
    vpic_program,
)

Mi = 1 << 20


def run_workload(program_factory, config, vol, nprocs=4, nodes=1,
                 ranks_per_node=4, prepopulate=None):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=nodes, ranks_per_node=ranks_per_node),
                      nodes)
    job = MPIJob(cluster, nprocs, ranks_per_node=ranks_per_node)
    lib = H5Library(cluster)
    if prepopulate is not None:
        prepopulate(lib, nprocs)
    program = program_factory(lib, vol, config)
    results = job.run(program)
    return eng, cluster, lib, vol, results


# Small configs keep simulations fast.
SMALL_VPIC = VPICConfig(particles_per_rank=Mi, steps=3, compute_seconds=2.0)


def test_vpic_config_paper_defaults():
    cfg = VPICConfig()
    assert cfg.particles_per_rank == 8 * Mi
    assert cfg.n_properties == 8
    # ≈32 MB per property per rank, 256 MiB total per rank per step
    assert cfg.particles_per_rank * 4 == 32 * Mi
    assert cfg.bytes_per_rank_per_step() == 256 * Mi
    assert cfg.total_bytes(nranks=2) == 2 * 5 * 256 * Mi
    with pytest.raises(ValueError):
        VPICConfig(steps=0)
    with pytest.raises(ValueError):
        VPICConfig(compute_seconds=-1.0)


def test_vpic_sync_writes_all_datasets():
    vol = NativeVOL()
    eng, cluster, lib, vol, _ = run_workload(vpic_program, SMALL_VPIC, vol)
    stored = lib.files["/vpic.h5"]
    assert len(stored.datasets) == 3 * 8
    for dset in stored.datasets.values():
        assert dset.shape == (4 * Mi,)
        assert dset.coverage_1d() == pytest.approx(1.0)
    recs = vol.log.select(op="write")
    assert len(recs) == 4 * 3 * 8  # ranks * steps * properties
    assert vol.log.phases() == [0, 1, 2]


def test_vpic_async_faster_epochs_than_sync():
    sync = NativeVOL()
    run_workload(vpic_program, SMALL_VPIC, sync)
    async_vol = AsyncVOL(init_time=0.0)
    run_workload(vpic_program, SMALL_VPIC, async_vol)
    sync_peak = sync.log.peak_bandwidth(op="write")
    async_peak = async_vol.log.peak_bandwidth(op="write")
    assert async_peak > sync_peak


def test_vpic_app_time_structure_sync():
    """Sync run time ≈ steps * (compute + io) + metadata overheads."""
    vol = NativeVOL()
    eng, cluster, lib, vol, results = run_workload(vpic_program, SMALL_VPIC, vol)
    app_time = max(results)
    t_io = sum(vol.log.phase_io_time(p, op="write") for p in vol.log.phases())
    expected_min = 3 * 2.0 + t_io
    assert app_time >= expected_min
    assert app_time < expected_min * 1.1


def test_vpic_async_app_time_hides_io():
    """Compute 2s/epoch dominates: async app time ≈ compute + overheads."""
    async_vol = AsyncVOL(init_time=0.0)
    eng, cluster, lib, vol, results = run_workload(
        vpic_program, SMALL_VPIC, async_vol
    )
    app_time = max(results)
    transact = sum(
        r.blocking_time for r in vol.log.select(op="write", rank=0)
    )
    # epochs ~ compute + staging copies; the final drain adds the last
    # step's PFS write (cannot overlap).
    assert app_time < 3 * 2.0 + transact + 2.5
    assert app_time >= 3 * 2.0


def test_summarize_run():
    vol = NativeVOL()
    eng, cluster, lib, vol, results = run_workload(vpic_program, SMALL_VPIC, vol)
    stats = summarize_run(vol.log, max(results), op="write", mode="sync")
    assert stats.n_phases == 3
    assert stats.total_bytes == pytest.approx(SMALL_VPIC.total_bytes(4))
    assert stats.peak_bandwidth >= stats.mean_bandwidth > 0


def test_bdcats_matching_config():
    cfg = BDCATSConfig.matching(SMALL_VPIC)
    assert cfg.particles_per_rank == SMALL_VPIC.particles_per_rank
    assert cfg.steps == SMALL_VPIC.steps
    assert cfg.path == SMALL_VPIC.path
    with pytest.raises(ValueError):
        BDCATSConfig(steps=0)


def test_bdcats_reads_prepopulated_file():
    cfg = BDCATSConfig(particles_per_rank=Mi, steps=3, compute_seconds=2.0)
    vol = NativeVOL()
    eng, cluster, lib, vol, results = run_workload(
        bdcats_program, cfg, vol,
        prepopulate=lambda lib, n: prepopulate_vpic_file(lib, cfg, n),
    )
    recs = vol.log.select(op="read")
    assert len(recs) == 4 * 3 * 8
    assert all(r.nbytes == Mi * 4 for r in recs)


def test_bdcats_reads_actual_vpic_output():
    """End-to-end: BD-CATS job reads the file a VPIC job wrote."""
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    lib = H5Library(cluster)
    vol = NativeVOL()
    job = MPIJob(cluster, 4, ranks_per_node=4)
    job.run(vpic_program(lib, vol, SMALL_VPIC))

    read_vol = NativeVOL()
    cfg = BDCATSConfig.matching(SMALL_VPIC, compute_seconds=1.0)
    job2 = MPIJob(cluster, 4, ranks_per_node=4)
    job2.run(bdcats_program(lib, read_vol, cfg))
    assert len(read_vol.log.select(op="read")) == 4 * 3 * 8


def test_bdcats_async_prefetch_beats_sync():
    cfg = BDCATSConfig(particles_per_rank=Mi, steps=3, compute_seconds=5.0)
    pre = lambda lib, n: prepopulate_vpic_file(lib, cfg, n)
    sync = NativeVOL()
    run_workload(bdcats_program, cfg, sync, prepopulate=pre)
    async_vol = AsyncVOL(init_time=0.0)
    run_workload(bdcats_program, cfg, async_vol, prepopulate=pre)
    # later phases served from prefetch: orders of magnitude faster
    sync_bw = sync.log.peak_bandwidth(op="read")
    async_bw = async_vol.log.peak_bandwidth(op="read")
    assert async_bw > 2 * sync_bw
    # and the first step was still blocking
    first = [r for r in async_vol.log.select(op="read", phase=0)]
    assert any(not r.cache_hit for r in first)
