"""Tests for the interprocedural tier of ``repro check``.

Four layers, mirroring the implementation:

- the call graph (:mod:`repro.check.callgraph`): resolution edge cases
  the summaries depend on — decorated functions, methods reached
  through ``self``-typed receivers, nested defs, lambdas staying
  opaque, dynamic calls staying conservative;
- the effect summaries (:mod:`repro.check.summaries`): waits/closes of
  parameters, pending returns, parameter passthrough, generator
  deferral, determinism taint and dimension propagation, and the SCC
  fixpoint over mutual recursion;
- the summary-driven rules: RC405 and the RC110/RC111 taint twins,
  plus the sharpened RC401 — the old escape hedge replaced by an
  actual answer in both directions;
- the incremental driver (:mod:`repro.check.driver`): cold/warm runs,
  reverse-call-graph invalidation, and worker-count-invariant output.
"""

import json
import pathlib
import textwrap

import pytest

from repro.check import lint_source, render_findings
from repro.check.summaries import InterContext

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Inter rules are repo-scoped; module names derive from these paths.
HELPER_PATH = "src/repro/util/helpers.py"
SIM_PATH = "src/repro/sim/consumer.py"


def build(files):
    return InterContext.build(
        {path: textwrap.dedent(src) for path, src in files.items()})


def inter_lint(files, path):
    ctx = build(files)
    return lint_source(textwrap.dedent(files[path]), path, flow=True,
                       inter=ctx)


def rule_ids(findings):
    return [f.rule_id for f in findings]


def effects(ctx, qualname):
    return [sorted(e) for e in ctx.summaries[qualname].param_effects]


# ---------------------------------------------------------------------------
# call graph: resolution edge cases
# ---------------------------------------------------------------------------

def test_callgraph_decorated_functions_are_resolved():
    ctx = build({HELPER_PATH: """
        import functools


        def deco(fn):
            return fn


        @deco
        def waits(es):
            es.wait()


        @functools.lru_cache(maxsize=None)
        def cached_wait(es):
            es.wait()


        def run(es):
            waits(es)
            cached_wait(es)
        """})
    edges = ctx.edges["repro.util.helpers.run"]
    assert "repro.util.helpers.waits" in edges
    assert "repro.util.helpers.cached_wait" in edges
    assert effects(ctx, "repro.util.helpers.waits") == [["arg.waited"]]


def test_callgraph_method_resolved_through_self_typed_receiver():
    ctx = build({HELPER_PATH: """
        class Batch:
            def wait_all(self, es):
                es.wait()


        def run(engine):
            b = Batch()
            es = EventSet(engine)
            es.add(engine.event())
            b.wait_all(es)
            return None
        """})
    assert "repro.util.helpers.Batch.wait_all" in \
        ctx.edges["repro.util.helpers.run"]
    # Receiver offset: ``es`` is param 1 (after self) and gets waited.
    assert effects(ctx, "repro.util.helpers.Batch.wait_all") == \
        [["arg"], ["arg.waited"]]


def test_callgraph_nested_defs_are_indexed_and_called():
    ctx = build({HELPER_PATH: """
        def outer(es):
            def waiter(e):
                e.wait()
            waiter(es)
            return None
        """})
    nested = "repro.util.helpers.outer.<locals>.waiter"
    assert nested in ctx.index.functions
    assert nested in ctx.edges["repro.util.helpers.outer"]


def test_callgraph_lambdas_stay_opaque():
    # A lambda-bound name never resolves; its argument escapes (the
    # hedge), so the caller is neither cleaned nor flagged.
    ctx = build({HELPER_PATH: """
        def run(es):
            f = lambda e: e.wait()
            f(es)
            return None
        """})
    assert ctx.edges["repro.util.helpers.run"] == set()
    assert effects(ctx, "repro.util.helpers.run") == [["arg.escaped"]]


def test_callgraph_dynamic_calls_stay_conservative():
    findings = inter_lint({HELPER_PATH: """
        import importlib


        def run(engine, name):
            es = EventSet(engine)
            es.add(engine.event())
            fn = getattr(importlib.import_module(name), "drain")
            fn(es)
            return None
        """}, HELPER_PATH)
    assert findings == [], render_findings(findings)


def test_callgraph_mutual_recursion_scc_fixpoint_converges():
    ctx = build({HELPER_PATH: """
        def ping(es, n):
            if n <= 0:
                es.wait()
                return None
            return pong(es, n - 1)


        def pong(es, n):
            return ping(es, n)
        """})
    # The SCC solve converges to the exact may-wait fixpoint: the wait
    # on the base path joins with the recursive identity path.
    for qual in ("repro.util.helpers.ping", "repro.util.helpers.pong"):
        es_effects = ctx.summaries[qual].param_effects[0]
        assert "arg.waited" in es_effects
        assert "arg.escaped" not in es_effects


# ---------------------------------------------------------------------------
# summaries: effects, returns, deferral, taint, dimensions
# ---------------------------------------------------------------------------

def test_summary_transitive_wait_through_wrapper_and_return_position():
    ctx = build({HELPER_PATH: """
        def waits(es):
            es.wait()
            return None


        def via_return(es):
            return waits(es)
        """})
    assert effects(ctx, "repro.util.helpers.via_return") == [["arg.waited"]]


def test_summary_pending_return_and_param_passthrough():
    ctx = build({HELPER_PATH: """
        def start_batch(engine):
            es = EventSet(engine)
            es.add(engine.event())
            return es


        def identity(es):
            return es
        """})
    start = ctx.summaries["repro.util.helpers.start_batch"]
    assert start.return_states == frozenset({"es.pending"})
    assert not start.return_from_param
    ident = ctx.summaries["repro.util.helpers.identity"]
    assert ident.return_from_param


def test_summary_generator_effects_deferred_until_driven():
    # A bare call to a generator only creates the object, so the wait
    # inside must NOT be credited to the caller; driving the generator
    # with ``yield from`` applies it.
    ctx = build({HELPER_PATH: """
        def drain(es):
            yield from es.wait()


        def bare_call(es):
            drain(es)
            return None


        def driven_call(es):
            yield from drain(es)
        """})
    assert ctx.index.functions["repro.util.helpers.drain"].deferred
    assert effects(ctx, "repro.util.helpers.bare_call") == [["arg.escaped"]]
    assert effects(ctx, "repro.util.helpers.driven_call") == [["arg.waited"]]


def test_summary_return_taint_from_clock_and_rng():
    ctx = build({HELPER_PATH: """
        import random
        import time


        def stamp():
            return time.time()


        def roll():
            return random.random()


        def seeded(seed):
            rng = random.Random(seed)
            return rng.random()
        """})
    assert ctx.summaries["repro.util.helpers.stamp"].return_taint == \
        frozenset({"clock"})
    assert ctx.summaries["repro.util.helpers.roll"].return_taint == \
        frozenset({"rng"})
    # A seeded draw is only as tainted as its seed: pure parameter
    # passthrough, resolved against the argument at each call site.
    assert ctx.summaries["repro.util.helpers.seeded"].return_taint == \
        frozenset({"param:0"})


def test_summary_return_dimension_propagates_into_rc502():
    findings = inter_lint({HELPER_PATH: """
        def slab_bytes(n_ranks):
            per_rank_bytes = 1024.0 * n_ranks
            return per_rank_bytes


        def run(n_ranks):
            elapsed_seconds = slab_bytes(n_ranks)
            return elapsed_seconds
        """}, HELPER_PATH)
    assert "RC502" in rule_ids(findings)


# ---------------------------------------------------------------------------
# summary-driven rules: RC401 sharpened, RC405, RC110/RC111
# ---------------------------------------------------------------------------

_GOOD_HELPER = """
    def finish(es):
        es.wait()
        return None


    def run(engine):
        es = EventSet(engine)
        es.add(engine.event())
        finish(es)
        return None
    """

_BAD_HELPER = """
    def log_only(es, sink):
        sink.append("batch started")
        return None


    def run(engine, sink):
        es = EventSet(engine)
        es.add(engine.event())
        log_only(es, sink)
        return None
    """


def test_rc401_sharpened_good_helper_wait_is_proven():
    # Previously the escape hedge: passing ``es`` to any call silenced
    # RC401.  Now the summary proves the helper waits.
    findings = inter_lint({HELPER_PATH: _GOOD_HELPER}, HELPER_PATH)
    assert findings == [], render_findings(findings)


def test_rc401_sharpened_bad_helper_no_longer_hides_the_leak():
    # The same pattern was a false negative under the flow tier (the
    # hedge); with summaries the non-waiting helper no longer launders
    # the pending event set.
    src = textwrap.dedent(_BAD_HELPER)
    hedged = lint_source(src, HELPER_PATH, flow=True)
    assert hedged == [], render_findings(hedged)
    findings = inter_lint({HELPER_PATH: _BAD_HELPER}, HELPER_PATH)
    assert "RC401" in rule_ids(findings)


def test_rc405_bad_discarded_pending_return():
    findings = inter_lint({
        HELPER_PATH: """
            def start_batch(engine):
                es = EventSet(engine)
                es.add(engine.event())
                return es
            """,
        SIM_PATH: """
            from repro.util.helpers import start_batch


            def drive(engine):
                start_batch(engine)
                return None
            """,
    }, SIM_PATH)
    assert rule_ids(findings) == ["RC405"]
    assert "start_batch" in findings[0].message


def test_rc405_good_bound_return_is_clean():
    findings = inter_lint({
        HELPER_PATH: """
            def start_batch(engine):
                es = EventSet(engine)
                es.add(engine.event())
                return es
            """,
        SIM_PATH: """
            from repro.util.helpers import start_batch


            def drive(engine):
                es = start_batch(engine)
                es.wait()
                return None
            """,
    }, SIM_PATH)
    assert findings == [], render_findings(findings)


def test_rc110_bad_clock_tainted_return_consumed_in_sim_path():
    findings = inter_lint({
        HELPER_PATH: """
            import time


            def stamp():
                return time.time()
            """,
        SIM_PATH: """
            from repro.util.helpers import stamp


            def drive(engine):
                started = stamp()
                return started
            """,
    }, SIM_PATH)
    assert "RC110" in rule_ids(findings)


def test_rc110_bad_clock_tainted_argument_into_sim_path():
    # The taint flows the other way: a host-clock value computed in a
    # harness file is passed as an argument into a sim-path function.
    findings = inter_lint({
        SIM_PATH: """
            def advance(engine, deadline):
                return engine.at(deadline)
            """,
        "src/repro/harness/driver2.py": """
            import time

            from repro.sim.consumer import advance


            def kick(engine):
                return advance(engine, time.time() + 5.0)
            """,
    }, "src/repro/harness/driver2.py")
    assert "RC110" in rule_ids(findings)


def test_rc110_good_engine_time_is_untainted():
    findings = inter_lint({
        HELPER_PATH: """
            def stamp(engine):
                return engine.now
            """,
        SIM_PATH: """
            from repro.util.helpers import stamp


            def drive(engine):
                started = stamp(engine)
                return started
            """,
    }, SIM_PATH)
    assert findings == [], render_findings(findings)


def test_rc111_bad_unseeded_rng_return_consumed_in_sim_path():
    findings = inter_lint({
        HELPER_PATH: """
            import random


            def roll():
                return random.random()
            """,
        SIM_PATH: """
            from repro.util.helpers import roll


            def drive(engine):
                jitter = roll()
                return jitter
            """,
    }, SIM_PATH)
    assert "RC111" in rule_ids(findings)


def test_rc111_good_seeded_rng_is_untainted():
    findings = inter_lint({
        HELPER_PATH: """
            import random


            def roll(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
        SIM_PATH: """
            from repro.util.helpers import roll


            def drive(engine, seed):
                jitter = roll(seed)
                return jitter
            """,
    }, SIM_PATH)
    assert findings == [], render_findings(findings)


def test_inter_rules_are_silent_without_an_inter_context():
    # The flow tier alone must not run inter rules (no summaries to
    # consult): the RC405 fixture lints clean without the context.
    src = textwrap.dedent("""
        from repro.util.helpers import start_batch


        def drive(engine):
            start_batch(engine)
            return None
        """)
    assert lint_source(src, SIM_PATH, flow=True) == []


# ---------------------------------------------------------------------------
# incremental driver: caching, invalidation, parallel determinism
# ---------------------------------------------------------------------------

HELPER_SRC = """\
def start_batch(engine):
    es = EventSet(engine)
    es.add(engine.event())
    return es
"""

CALLER_SRC = """\
from pkg.helper import start_batch


def drive(engine):
    start_batch(engine)
    return None
"""


@pytest.fixture
def project(tmp_path, monkeypatch):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "helper.py").write_text(HELPER_SRC)
    (pkg / "caller.py").write_text(CALLER_SRC)
    monkeypatch.chdir(tmp_path)
    return tmp_path


def wire(findings):
    return json.dumps([(f.rule_id, f.path, f.line, f.col, f.message)
                       for f in findings])


def test_driver_cold_then_warm_tree_hit(project):
    from repro.check.driver import check_paths

    cold = check_paths(["pkg"], cache_dir=".cache")
    assert not cold.tree_hit
    assert rule_ids(cold.findings) == ["RC405"]
    warm = check_paths(["pkg"], cache_dir=".cache")
    assert warm.tree_hit
    assert warm.stats["analyzed"] == 0
    assert wire(warm.findings) == wire(cold.findings)


def test_driver_editing_callee_reanalyzes_caller(project):
    from repro.check.driver import check_paths

    first = check_paths(["pkg"], cache_dir=".cache")
    assert rule_ids(first.findings) == ["RC405"]
    # The helper now waits before returning: its summary changes, so
    # the reverse call graph must pull the caller back in and the
    # caller's RC405 must disappear.
    (project / "pkg" / "helper.py").write_text(
        HELPER_SRC.replace("return es", "es.wait()\n    return es"))
    second = check_paths(["pkg"], cache_dir=".cache")
    assert "pkg/caller.py" in second.analyzed
    assert second.findings == []


def test_driver_touching_caller_leaves_helper_cached(project):
    from repro.check.driver import check_paths

    check_paths(["pkg"], cache_dir=".cache")
    (project / "pkg" / "caller.py").write_text(
        CALLER_SRC + "\n# trailing comment\n")
    result = check_paths(["pkg"], cache_dir=".cache")
    assert result.analyzed == ["pkg/caller.py"]
    assert rule_ids(result.diff_findings()) == ["RC405"]


def test_driver_output_is_worker_count_invariant(project):
    from repro.check.driver import check_paths

    serial = check_paths(["pkg"], cache_dir=".c1", workers=1,
                         use_cache=False)
    fanout = check_paths(["pkg"], cache_dir=".c4", workers=4,
                         use_cache=False)
    warm = check_paths(["pkg"], cache_dir=".c1")
    assert wire(serial.findings) == wire(fanout.findings)
    assert wire(serial.findings) == wire(warm.findings)


# ---------------------------------------------------------------------------
# the repo-wide gate: zero findings under the inter tier
# ---------------------------------------------------------------------------

def test_repo_is_clean_under_inter_tier(monkeypatch):
    """Acceptance gate: summaries converge over the whole project and
    the interprocedural tier reports nothing new."""
    from repro.check.driver import check_paths

    # Same invocation shape as ``repro check --flow --inter`` so the
    # test and the CLI share one incremental cache.
    monkeypatch.chdir(REPO_ROOT)
    result = check_paths(["src", "tests"],
                         cache_dir=".repro-check-cache")
    assert result.findings == [], render_findings(result.findings)
