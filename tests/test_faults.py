"""Chaos tests: fault injection, retry/fallback ladders, failure APIs.

Every scenario here is seeded — the same schedule replays bit-for-bit,
which is asserted explicitly (a chaos layer that cannot reproduce a
failure is useless for debugging one).
"""

import math

import numpy as np
import pytest

from repro.sim import DeadlineExceeded, Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import (
    FLOAT64,
    AsyncVOL,
    EventSet,
    H5Library,
    NativeVOL,
    slab_1d,
)
from repro.hdf5.async_vol import StagingBuffer
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FlakyWriteError,
    OutageWindow,
    RetryExhaustedError,
    StagingTimeoutError,
)

MiB = 1 << 20


def make_env(nodes=1, ranks_per_node=4, nprocs=1, fault_config=None,
             **machine_kw):
    eng = Engine()
    cluster = Cluster(
        eng, make_testbed(nodes=nodes, ranks_per_node=ranks_per_node,
                          **machine_kw),
        nodes,
    )
    injector = None
    if fault_config is not None:
        injector = FaultInjector(fault_config).attach(cluster)
    job = MPIJob(cluster, nprocs, ranks_per_node=ranks_per_node)
    # Materialize even the multi-MiB test datasets so the no-data-loss
    # assertions can check real payload round trips.
    lib = H5Library(cluster, materialize_limit=256 * MiB)
    return eng, cluster, job, lib, injector


def write_program(lib, vol, n_writes=4, n_elems=MiB):
    """One rank writing ``n_writes`` datasets, payload = arange."""

    def program(ctx):
        f = yield from lib.create(ctx, "/chaos.h5", vol)
        for i in range(n_writes):
            d = f.create_dataset(f"/d{i}", shape=(n_elems,), dtype=FLOAT64)
            yield from d.write(data=np.arange(float(n_elems)), phase=i)
        yield from f.close()
        return ctx.now

    return program


def assert_no_data_loss(lib, vol, n_writes, n_elems=MiB):
    """Every write durable with the exact payload the app handed over."""
    recs = vol.log.select(op="write")
    assert len(recs) == n_writes
    assert all(math.isfinite(r.t_complete) for r in recs)
    f = lib.files["/chaos.h5"]
    for i in range(n_writes):
        stored = f.datasets[f"/d{i}"]
        assert np.allclose(stored.data, np.arange(float(n_elems)))


# ---------------------------------------------------------------------------
# Sim kernel: failing events and deadline guards
# ---------------------------------------------------------------------------


def test_failed_event_raises_in_waiter():
    eng = Engine()
    ev = eng.event(name="boom")

    def failer():
        yield eng.timeout(1.0)
        ev.fail(ValueError("injected"))

    def waiter():
        with pytest.raises(ValueError, match="injected"):
            yield ev
        return eng.now

    eng.process(failer())
    assert eng.run_process(waiter()) == 1.0


def test_timeout_guard_expires_with_typed_error():
    eng = Engine()
    never = eng.event(name="never")

    def proc():
        with pytest.raises(DeadlineExceeded):
            yield eng.timeout_guard(never, 2.5)
        return eng.now

    assert eng.run_process(proc()) == 2.5


def test_timeout_guard_mirrors_inner_success():
    eng = Engine()
    ev = eng.event(name="inner")

    def firer():
        yield eng.timeout(1.0)
        ev.succeed("payload")

    def proc():
        got = yield eng.timeout_guard(ev, 5.0)
        return got, eng.now

    eng.process(firer())
    assert eng.run_process(proc()) == ("payload", 1.0)


# ---------------------------------------------------------------------------
# StagingBuffer strict accounting
# ---------------------------------------------------------------------------


def test_staging_over_release_raises():
    buf = StagingBuffer(Engine(), capacity=100.0)
    with pytest.raises(RuntimeError, match="over-release"):
        buf.release(1.0)


def test_reservation_double_release_raises():
    eng = Engine()
    buf = StagingBuffer(eng, capacity=100.0)

    def proc():
        res = yield from buf.reserve(10.0)
        res.release()
        assert buf.used == 0.0
        with pytest.raises(RuntimeError, match="release of 'released'"):
            res.release()

    eng.run_process(proc())


def test_staging_reserve_timeout_withdraws_waiter():
    """A timed-out reservation raises the typed error, holds nothing,
    and later releases admit other waiters normally (no phantom usage,
    no deadlock)."""
    eng = Engine()
    buf = StagingBuffer(eng, capacity=100.0)
    got = []

    def holder():
        res = yield from buf.reserve(90.0)
        yield eng.timeout(10.0)
        res.release()

    def impatient():
        yield eng.timeout(1.0)
        with pytest.raises(StagingTimeoutError):
            yield from buf.reserve(50.0, timeout=2.0)
        got.append(("timeout", eng.now))

    def patient():
        yield eng.timeout(2.0)
        res = yield from buf.reserve(50.0)
        got.append(("granted", eng.now))
        res.release()

    eng.process(holder())
    eng.process(impatient())
    eng.process(patient())
    eng.run()
    assert got == [("timeout", 3.0), ("granted", 10.0)]
    assert buf.used == 0.0


# ---------------------------------------------------------------------------
# Chaos scenario (a): drain failure -> retry -> success
# ---------------------------------------------------------------------------


def run_flaky_writes(seed=7, rate=0.4, **vol_kw):
    fc = FaultConfig(seed=seed, write_error_rate=rate)
    eng, cluster, job, lib, injector = make_env(fault_config=fc)
    vol = AsyncVOL(init_time=0.0, faults=injector, **vol_kw)
    job.run(write_program(lib, vol))
    return lib, vol, injector


def test_flaky_drain_retried_to_success():
    lib, vol, injector = run_flaky_writes()
    assert injector.count("flaky_write") > 0
    assert vol.retries > 0
    assert_no_data_loss(lib, vol, n_writes=4)
    # faulted ops are flagged (and only those)
    recs = vol.log.select(op="write")
    assert any(r.faulted and r.retries > 0 for r in recs)
    assert all(r.retries == 0 for r in recs if not r.faulted)


def test_chaos_deterministic_per_seed():
    _, vol_a, inj_a = run_flaky_writes(seed=7)
    _, vol_b, inj_b = run_flaky_writes(seed=7)
    assert inj_a.signature() == inj_b.signature()
    assert [(r.dataset, r.t_complete, r.retries, r.fallback)
            for r in vol_a.log.records] == \
           [(r.dataset, r.t_complete, r.retries, r.fallback)
            for r in vol_b.log.records]
    # ... and a different seed draws a different fault schedule
    _, _, inj_c = run_flaky_writes(seed=8)
    assert inj_a.signature() != inj_c.signature()


# ---------------------------------------------------------------------------
# Chaos scenario (b): retries exhausted -> sync fallback, no data loss
# ---------------------------------------------------------------------------


def test_retry_exhaustion_falls_back_without_data_loss():
    lib, vol, injector = run_flaky_writes(rate=0.97, max_retries=2)
    assert vol.fallbacks > 0
    assert_no_data_loss(lib, vol, n_writes=4)
    recs = vol.log.select(op="write")
    assert any(r.fallback for r in recs)
    assert injector.count("sync_fallback") > 0


def test_retry_exhaustion_raises_when_fallback_disabled():
    fc = FaultConfig(seed=7, write_error_rate=0.97)
    eng, cluster, job, lib, injector = make_env(fault_config=fc)
    vol = AsyncVOL(init_time=0.0, faults=injector, max_retries=1,
                   fallback_sync=False)
    with pytest.raises(RetryExhaustedError) as excinfo:
        job.run(write_program(lib, vol))
    assert isinstance(excinfo.value.__cause__, FlakyWriteError)


def test_outage_window_waited_out_by_backoff():
    """A hard PFS outage fails the drain; the backoff sleeps past the
    window's end (PFSUnavailableError.until) and the retry lands."""
    fc = FaultConfig(seed=1, pfs_outages=(OutageWindow(0.0, 5.0),))
    eng, cluster, job, lib, injector = make_env(fault_config=fc)
    vol = AsyncVOL(init_time=0.0, faults=injector)
    job.run(write_program(lib, vol, n_writes=2))
    assert injector.count("pfs_outage_hit") > 0
    assert_no_data_loss(lib, vol, n_writes=2)
    recs = vol.log.select(op="write")
    assert all(r.t_complete >= 5.0 for r in recs)


# ---------------------------------------------------------------------------
# Chaos scenario (c): staging timeout -> typed error, not deadlock
# ---------------------------------------------------------------------------


def stalled_staging_env(**vol_kw):
    """Writes into a tiny staging buffer while the PFS is down for a
    long time: the drain cannot free space, so later reservations
    cannot be granted before their timeout."""
    fc = FaultConfig(seed=3, pfs_outages=(OutageWindow(0.0, 1000.0),))
    eng, cluster, job, lib, injector = make_env(fault_config=fc)
    frac = 64 * MiB / cluster.machine.node.dram_bytes
    vol = AsyncVOL(init_time=0.0, faults=injector, staging_fraction=frac,
                   max_retries=100, staging_timeout=5.0, **vol_kw)
    return eng, job, lib, vol


def test_staging_timeout_raises_typed_error():
    eng, job, lib, vol = stalled_staging_env(fallback_sync=False)

    def program(ctx):
        f = yield from lib.create(ctx, "/t.h5", vol)
        with pytest.raises(StagingTimeoutError):
            for i in range(4):  # 4 x 32 MiB > 64 MiB staging
                d = f.create_dataset(f"/d{i}", shape=(4 * MiB,),
                                     dtype=FLOAT64)
                yield from d.write(phase=i)
        return ctx.now

    # raised into the app promptly (submit + timeout), not a hang until
    # the outage clears at t=1000
    assert job.run(program)[0] < 100.0


def test_staging_timeout_falls_back_inline():
    eng, job, lib, vol = stalled_staging_env(fallback_sync=True)

    def program(ctx):
        f = yield from lib.create(ctx, "/t.h5", vol)
        for i in range(4):
            d = f.create_dataset(f"/d{i}", shape=(4 * MiB,), dtype=FLOAT64)
            yield from d.write(data=np.arange(4.0 * MiB), phase=i)
        yield from f.close()

    job.run(program)
    recs = vol.log.select(op="write")
    assert len(recs) == 4
    assert all(math.isfinite(r.t_complete) for r in recs)
    assert any(r.fallback for r in recs)
    f = lib.files["/t.h5"]
    for i in range(4):
        assert np.allclose(f.datasets[f"/d{i}"].data, np.arange(4.0 * MiB))


# ---------------------------------------------------------------------------
# Worker crash / stall
# ---------------------------------------------------------------------------


def test_worker_crash_drains_queue_via_fallback():
    fc = FaultConfig(seed=5, worker_crashes=((0, 1),))
    eng, cluster, job, lib, injector = make_env(fault_config=fc)
    vol = AsyncVOL(init_time=0.0, faults=injector)
    job.run(write_program(lib, vol, n_writes=6))
    assert injector.count("worker_crash") == 1
    assert vol.fallbacks > 0
    assert_no_data_loss(lib, vol, n_writes=6)
    # writes issued after the crash took the inline reliable path
    assert injector.count("inline_fallback") > 0


def test_worker_stall_delays_completion_only():
    def total_drain(fault_config):
        eng, cluster, job, lib, injector = make_env(fault_config=fault_config)
        vol = AsyncVOL(init_time=0.0, faults=injector)
        job.run(write_program(lib, vol, n_writes=2))
        recs = vol.log.select(op="write")
        assert all(math.isfinite(r.t_complete) for r in recs)
        return max(r.t_complete for r in recs)

    clean = total_drain(FaultConfig(seed=5))
    stalled = total_drain(FaultConfig(seed=5, worker_stalls=((0, 0, 7.0),)))
    assert stalled == pytest.approx(clean + 7.0, rel=1e-6)


# ---------------------------------------------------------------------------
# EventSet error accounting (H5ES semantics)
# ---------------------------------------------------------------------------


def test_eventset_error_accounting_and_suppression():
    eng = Engine()
    es = EventSet(eng)
    ok1, bad, ok2 = (eng.event(name=n) for n in ("ok1", "bad", "ok2"))
    for ev in (ok1, bad, ok2):
        es.add(ev)

    def driver():
        yield eng.timeout(1.0)
        ok1.succeed()
        bad.fail(FlakyWriteError("injected"))
        yield eng.timeout(1.0)
        ok2.succeed()

    def waiter():
        yield from es.wait(raise_on_error=False)
        assert eng.now == 2.0  # drained everything despite the failure
        assert es.n_pending == 0
        assert es.err_count == 1
        [(idx, exc)] = es.get_err_info()
        assert idx == 1 and isinstance(exc, FlakyWriteError)
        es.clear_errors()
        assert es.err_count == 0

    eng.process(driver())
    eng.run_process(waiter())


def test_eventset_wait_with_concurrent_inserts_and_one_failure():
    """Ops inserted while the wait is in progress (prefetcher-style) are
    drained too; the one failure is raised only after everything —
    including the late inserts — completed."""
    eng = Engine()
    es = EventSet(eng)
    first = eng.event(name="first")
    es.add(first)
    landed = []

    def prefetcher():
        # inserts trickle in while the app is already inside es.wait()
        for i in range(3):
            ev = eng.event(name=f"pf{i}")
            es.add(ev)
            if i == 1:
                ev.fail(FlakyWriteError("prefetch died"))
            else:
                ev.succeed(delay=2.0)
                ev._wait(lambda e, i=i: landed.append((eng.now, i)))
            yield eng.timeout(1.0)

    def app():
        first.succeed(delay=0.5)
        with pytest.raises(FlakyWriteError, match="prefetch died"):
            yield from es.wait()
        return eng.now, es.err_count

    eng.process(prefetcher())
    t_done, nerr = eng.run_process(app())
    # last insert lands at t=2 and completes at t=4: the failure at t=1
    # did not cut the wait short
    assert t_done == 4.0
    assert nerr == 1
    assert len(landed) == 2
    assert es.n_pending == 0


# ---------------------------------------------------------------------------
# Advisor: faulted measurements are quarantined
# ---------------------------------------------------------------------------


def test_advisor_history_excludes_faulted_records():
    from repro.model import (
        AdaptiveVOL,
        Advisor,
        ComputeTimeModel,
        IORateModel,
        MeasurementHistory,
        TransactOverheadModel,
    )
    from repro.platform.memory import MemcpySpec
    from repro.trace import IOLog, IOOpRecord

    advisor = Advisor(
        ComputeTimeModel(),
        IORateModel(MeasurementHistory(), mode="sync"),
        TransactOverheadModel.from_memcpy_spec(MemcpySpec()),
    )
    log = IOLog()
    adaptive = AdaptiveVOL(NativeVOL(log), AsyncVOL(log=IOLog()),
                           advisor, nranks=4, log=log)
    common = dict(op="write", mode="sync", rank=0, nbytes=float(MiB),
                  dataset="/d", phase=0, t_submit=0.0)
    log.append(IOOpRecord(t_unblocked=1.0, t_complete=1.0, **common))
    log.append(IOOpRecord(t_unblocked=9.0, t_complete=9.0, faulted=True,
                          retries=2, **common))
    adaptive._feed_history(0, float(MiB))
    history = advisor.io_rate_model.history
    assert len(history) == 1  # the faulted (slow) measurement is excluded


# ---------------------------------------------------------------------------
# MPIJob failure reporting
# ---------------------------------------------------------------------------


def test_mpijob_reports_all_failed_ranks():
    from repro.sim.engine import SimulationError

    eng, cluster, job, lib, _ = make_env(nprocs=4)

    def program(ctx):
        yield ctx.engine.timeout(float(ctx.rank))
        if ctx.rank >= 2:
            raise FlakyWriteError(f"rank {ctx.rank} storm")
        return ctx.rank

    with pytest.raises(SimulationError) as excinfo:
        job.run(program)
    msg = str(excinfo.value)
    assert "2/4 ranks failed" in msg
    assert "job.rank2" in msg and "job.rank3" in msg
    assert "FlakyWriteError" in msg and "rank 2 storm" in msg
    assert isinstance(excinfo.value.__cause__, FlakyWriteError)


def test_mpijob_single_failure_preserved():
    eng, cluster, job, lib, _ = make_env(nprocs=4)

    def program(ctx):
        yield ctx.engine.timeout(1.0)
        if ctx.rank == 1:
            raise ValueError("just one")

    with pytest.raises(ValueError, match="just one"):
        job.run(program)


def test_mpijob_deadlock_reports_survivor_state():
    from repro.sim.engine import SimulationError

    eng, cluster, job, lib, _ = make_env(nprocs=4)

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.engine.event(name="never")  # hangs forever
        elif ctx.rank == 1:
            raise FlakyWriteError("died early")
        else:
            yield ctx.engine.timeout(1.0)

    with pytest.raises(SimulationError) as excinfo:
        job.run(program)
    msg = str(excinfo.value)
    assert "1/4 ranks deadlocked" in msg
    assert "job.rank0" in msg
    assert "2 completed, 1 failed" in msg


# ---------------------------------------------------------------------------
# Fault-injector unit checks
# ---------------------------------------------------------------------------


def test_fault_config_validation():
    with pytest.raises(ValueError):
        FaultConfig(write_error_rate=1.0)
    with pytest.raises(ValueError):
        OutageWindow(start=-1.0, duration=2.0)
    with pytest.raises(ValueError):
        FaultConfig(worker_stalls=((0, 0, 0.0),))


def test_injector_attach_twice_rejected():
    eng, cluster, _, _, injector = make_env(
        fault_config=FaultConfig(seed=0, write_error_rate=0.1))
    with pytest.raises(RuntimeError, match="already attached"):
        injector.attach(cluster)


def test_reliable_tags_exempt_from_faults():
    fc = FaultConfig(seed=0, write_error_rate=0.999)
    injector = FaultInjector(fc)
    injector.engine = Engine()
    # the reliable fallback path never draws an error...
    for _ in range(50):
        injector.pfs_hook("write", None, None, 1.0, ("fallback-w", 0, "/d"))
    # ...while a normal op at this rate fails essentially immediately
    with pytest.raises(FlakyWriteError):
        for _ in range(50):
            injector.pfs_hook("write", None, None, 1.0, ("w", 0, "/d"))
