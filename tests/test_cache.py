"""Tests for the tiered staging cache: tiers, agents, planner, wiring.

Covers the five mandated behaviors — full-tier admission rejection,
eviction skipping in-flight blocks, a prefetch landing *exactly* at its
deadline counting as on time, deadline misses under the
``tier_degraded`` fault, and same-seed copy-schedule replay — plus the
zero-cost-off identity, the write-through drain ledgers, the warm-node
placement hints and the sweep/CLI surface.
"""

import math

import pytest

from repro.sim import Engine
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT32, H5Library
from repro.cache import (
    DRAM,
    NVME,
    PFS,
    CacheMetrics,
    CacheRequest,
    CacheSubsystem,
    CacheTier,
    NodeAgent,
    TierSpec,
    cache_key,
    tier_preset,
    tier_preset_names,
    tier_stack_for,
)
from repro.faults import (
    CacheAdmissionError,
    FaultConfig,
    FaultInjector,
    TierDegradedError,
)
from repro.harness import run_experiment
from repro.harness.sweepengine import SweepSpec, expand_grid
from repro.sched.policies import IOAwarePolicy, Placement
from repro.trace.recorder import _merge_cache_stats
from repro.workloads import BDCATSConfig, bdcats_program, prepopulate_vpic_file

MiB = 1 << 20


def make_env(nodes=1, ranks_per_node=4):
    eng = Engine()
    cluster = Cluster(
        eng, make_testbed(nodes=nodes, ranks_per_node=ranks_per_node), nodes
    )
    lib = H5Library(cluster)
    return eng, cluster, lib


def prepopulated_target(lib, path="/in.h5", n=1 << 20):
    lib.prepopulate(path, {"/d": ((n,), FLOAT32)})
    return lib.stored_file(path).target


def small_tiers(dram_cap=100.0, nvme_cap=None):
    """A tiny explicit stack for admission/eviction tests."""
    tiers = [TierSpec(DRAM, dram_cap, 8e9, 8e9)]
    if nvme_cap is not None:
        tiers.append(TierSpec(NVME, nvme_cap, 3.5e9, 2e9, latency=1e-4))
    tiers.append(TierSpec(PFS, math.inf, 40e9, 40e9, latency=1e-3))
    return tuple(tiers)


# ---------------------------------------------------------------------------
# TierSpec / CacheTier
# ---------------------------------------------------------------------------


def test_tierspec_validation():
    with pytest.raises(ValueError):
        TierSpec("tape", 1e9, 1e9, 1e9)
    with pytest.raises(ValueError):
        TierSpec(DRAM, 0.0, 1e9, 1e9)
    with pytest.raises(ValueError):
        TierSpec(DRAM, 1e9, 0.0, 1e9)
    with pytest.raises(ValueError):
        TierSpec(DRAM, 1e9, 1e9, 1e9, latency=-1.0)
    # inf capacity is legal (the PFS backs everything).
    assert math.isinf(TierSpec(PFS, math.inf, 1e9, 1e9).capacity_bytes)


def test_cache_tier_strict_ledger():
    tier = CacheTier(TierSpec(DRAM, 100.0, 1e9, 1e9))
    tier.take(60.0)
    assert tier.used == 60.0 and tier.free_bytes == 40.0
    with pytest.raises(RuntimeError):
        tier.take(50.0)  # over-claim
    with pytest.raises(ValueError):
        tier.take(0.0)
    with pytest.raises(RuntimeError):
        tier.give(70.0)  # over-release
    tier.give(60.0)
    assert tier.used == 0.0


def test_tier_stack_presets():
    assert tier_preset_names() == [
        "cori-haswell", "exascale-testbed", "summit", "testbed",
    ]
    for name in tier_preset_names():
        stack = tier_preset(name)
        names = [t.name for t in stack]
        assert names[0] == DRAM and names[-1] == PFS
        assert NVME in names  # every preset machine has a middle tier
    with pytest.raises(ValueError):
        tier_preset("laptop")
    stack = tier_stack_for(make_testbed())
    nvme = next(t for t in stack if t.name == NVME)
    assert nvme.capacity_bytes == pytest.approx(1e12)
    with pytest.raises(ValueError):
        tier_stack_for(make_testbed(), dram_fraction=0.0)


# ---------------------------------------------------------------------------
# Mandated: full-tier admission rejection
# ---------------------------------------------------------------------------


def test_admission_rejected_when_tier_full():
    eng, cluster, lib = make_env()
    target = prepopulated_target(lib)
    cs = CacheSubsystem(cluster, tiers=small_tiers(dram_cap=100.0))

    def req(key, nbytes, deadline=10.0):
        return CacheRequest(
            tenant="t", key=(0, "/d", key, 1), nbytes=nbytes,
            tier_src=PFS, tier_dst=DRAM, deadline=deadline,
            node_index=0, target=target,
        )

    assert cs.planner.submit(req(0, 80.0)) is True
    # The first block is still in flight and fills the tier: the second
    # request has nothing evictable to displace and must be rejected.
    assert cs.planner.submit(req(1, 80.0)) is False
    assert cs.metrics.prefetch_rejected == 1
    # A block larger than the whole tier is rejected outright.
    assert cs.planner.submit(req(2, 200.0)) is False
    assert cs.metrics.prefetch_rejected == 2
    eng.run()
    assert cs.metrics.prefetch_on_time == 1
    # Rejection degraded service, never corrupted the ledger.
    assert cs.agent(0).tiers[DRAM].used == 80.0


def test_agent_admission_error_leaves_ledger_untouched():
    eng = Engine()
    agent = NodeAgent(eng, 0, small_tiers(dram_cap=100.0), CacheMetrics())
    block = agent.admit(("a",), 70.0, DRAM)
    agent.mark_resident(block)
    block.pins += 1  # a reader is consuming it: not evictable
    with pytest.raises(CacheAdmissionError):
        agent.admit(("b",), 80.0, DRAM)
    assert agent.tiers[DRAM].used == 70.0
    assert agent.lookup(("a",)) is block


# ---------------------------------------------------------------------------
# Mandated: eviction must skip blocks with an in-flight copy
# ---------------------------------------------------------------------------


def test_eviction_skips_inflight_blocks():
    eng = Engine()
    agent = NodeAgent(eng, 0, small_tiers(dram_cap=100.0), CacheMetrics())
    resident = agent.admit(("old",), 50.0, DRAM)
    agent.mark_resident(resident)
    inflight = agent.admit(("filling",), 50.0, DRAM)
    assert inflight.state == "inflight"
    # 60B needs eviction; only the resident 50B block is evictable, so
    # admission fails rather than yanking the in-flight block's bytes.
    with pytest.raises(CacheAdmissionError):
        agent.admit(("new",), 60.0, DRAM)
    assert agent.lookup(("filling",)) is inflight
    assert agent.lookup(("old",)) is resident
    assert agent.tiers[DRAM].used == 100.0
    assert agent.metrics.evictions == 0
    # Once the copy lands the block becomes fair game, LRU order:
    # "old" was touched by the lookup above *after* "filling", so
    # "filling" is now the least recently used and goes first.
    agent.mark_resident(inflight)
    agent.admit(("new",), 40.0, DRAM)
    assert agent.metrics.evictions == 1
    assert agent.lookup(("filling",)) is None
    assert agent.lookup(("old",)) is resident


def test_pinned_blocks_never_evicted():
    eng = Engine()
    agent = NodeAgent(eng, 0, small_tiers(dram_cap=100.0), CacheMetrics())
    block = agent.admit(("pinned",), 100.0, DRAM)
    agent.mark_resident(block)
    block.pins += 1
    with pytest.raises(CacheAdmissionError):
        agent.admit(("other",), 10.0, DRAM)
    block.pins -= 1
    agent.admit(("other",), 10.0, DRAM)
    assert agent.lookup(("pinned",)) is None  # now evictable, and gone


# ---------------------------------------------------------------------------
# Mandated: prefetch completing exactly at the deadline is on time
# ---------------------------------------------------------------------------


def _run_one_prefetch(deadline):
    """Submit one pfs->dram prefetch; return (completion time, metrics)."""
    eng, cluster, lib = make_env()
    target = prepopulated_target(lib)
    cs = CacheSubsystem(cluster)
    done = []
    request = CacheRequest(
        tenant="t", key=(0, "/d", 0, 1024), nbytes=float(4 * MiB),
        tier_src=PFS, tier_dst=DRAM, deadline=deadline,
        node_index=0, target=target,
        on_ready=lambda block: done.append(eng.now),
    )
    assert cs.planner.submit(request) is True
    eng.run()
    assert len(done) == 1
    return done[0], cs.metrics


def test_prefetch_exactly_at_deadline_is_on_time():
    # Self-calibrate: learn the copy's completion time, then re-run the
    # identical scenario with the deadline set to that exact instant.
    t_done, _ = _run_one_prefetch(deadline=math.inf)
    assert t_done > 0.0
    _, metrics = _run_one_prefetch(deadline=t_done)
    assert metrics.prefetch_on_time == 1
    assert metrics.prefetch_late == 0
    assert metrics.on_time_ratio == 1.0
    # Any earlier deadline makes the same copy late.
    _, metrics = _run_one_prefetch(deadline=t_done / 2)
    assert metrics.prefetch_on_time == 0
    assert metrics.prefetch_late == 1
    assert metrics.on_time_ratio == 0.0


# ---------------------------------------------------------------------------
# Mandated: deadline missed under the tier_degraded fault
# ---------------------------------------------------------------------------


def test_deadline_missed_under_tier_degraded():
    eng, cluster, lib = make_env()
    target = prepopulated_target(lib)
    injector = FaultInjector(
        FaultConfig(tier_degraded=((0, 0.0, 50.0),))
    ).attach(cluster)
    cs = CacheSubsystem(cluster, faults=injector)
    request = CacheRequest(
        tenant="t", key=(0, "/d", 0, 1024), nbytes=float(MiB),
        tier_src=PFS, tier_dst=NVME, deadline=5.0,
        node_index=0, target=target,
    )
    assert cs.planner.submit(request) is True
    block = cs.lookup(cluster.nodes[0], request.key)
    woken = []

    def reader():
        yield block.ready
        woken.append((eng.now, block.state))

    eng.process(reader(), name="reader")
    eng.run()
    # The copy was refused inside the degradation window: the block
    # failed, the reader woke (and would fall back to a PFS read), the
    # deadline was missed, and nothing leaked.
    assert cs.metrics.prefetch_failed == 1
    assert cs.metrics.on_time_ratio == 0.0
    assert woken == [(0.0, "failed")]  # refused at issue, woken at once
    assert cs.lookup(cluster.nodes[0], request.key) is None
    assert cs.agent(0).tiers[NVME].used == 0.0
    assert cluster.nodes[0].ssd.bytes_stored == 0.0
    # The injected fault is part of the deterministic signature.
    kinds = [event[1] for event in injector.signature()]
    assert "tier_degraded_hit" in kinds
    assert injector.tier_degraded_at(0, 10.0)
    assert not injector.tier_degraded_at(0, 60.0)


def test_stage_write_bypasses_on_tier_degraded():
    eng, cluster, lib = make_env()
    injector = FaultInjector(
        FaultConfig(tier_degraded=((0, 0.0, 50.0),))
    ).attach(cluster)
    cs = CacheSubsystem(cluster, faults=injector)

    def proc():
        with pytest.raises(TierDegradedError):
            yield from cs.stage_write(cluster.nodes[0], 1000.0)
        return cs.agent(0).tiers[NVME].used

    assert eng.run_process(proc()) == 0.0
    assert cluster.nodes[0].ssd.bytes_stored == 0.0


# ---------------------------------------------------------------------------
# Mandated: same-seed copy-schedule replay determinism
# ---------------------------------------------------------------------------


def _copy_schedule_run():
    eng, cluster, lib = make_env(nodes=2)
    target = prepopulated_target(lib)
    injector = FaultInjector(
        FaultConfig(seed=7, tier_degraded=((1, 0.0, 0.002),))
    ).attach(cluster)
    cs = CacheSubsystem(cluster, faults=injector)
    for node_index in (0, 1):
        for i, (dst, deadline) in enumerate(
            [(DRAM, 9.0), (NVME, 3.0), (DRAM, 6.0)]
        ):
            cs.planner.submit(CacheRequest(
                tenant=f"t{node_index}", key=(node_index, "/d", i, 1),
                nbytes=float((i + 1) * MiB), tier_src=PFS, tier_dst=dst,
                deadline=deadline, node_index=node_index, target=target,
            ))
    eng.run()
    return tuple(cs.copy_engine.schedule), cs.snapshot()


def test_copy_schedule_replay_is_deterministic():
    schedule_a, stats_a = _copy_schedule_run()
    schedule_b, stats_b = _copy_schedule_run()
    assert schedule_a == schedule_b
    assert stats_a == stats_b
    # EDF: within each node the earliest deadline issues first, so the
    # nvme-bound (deadline 3.0) copy leads despite being submitted second.
    node0 = [entry for entry in schedule_a if entry[1] == 0]
    assert node0[0][3] == NVME


# ---------------------------------------------------------------------------
# Write-through drain hops
# ---------------------------------------------------------------------------


def test_stage_write_roundtrip_and_release():
    eng, cluster, lib = make_env()
    cs = CacheSubsystem(cluster)
    node = cluster.nodes[0]
    tier = cs.agent(0).tiers[NVME]

    def proc():
        yield from cs.stage_write(node, 1000.0, tag=("t", 0))
        assert tier.used == 1000.0
        assert node.ssd.bytes_stored == 1000.0
        yield from cs.stage_read(node, 1000.0, tag=("t", 0))
        cs.stage_release(node, 1000.0)
        return tier.used, node.ssd.bytes_stored

    assert eng.run_process(proc()) == (0.0, 0.0)
    assert cs.metrics.bytes_to_tier[NVME] == 1000.0


def test_stage_write_full_tier_raises_admission_error():
    eng, cluster, lib = make_env()
    cs = CacheSubsystem(cluster, tiers=small_tiers(nvme_cap=500.0))
    node = cluster.nodes[0]

    def proc():
        with pytest.raises(CacheAdmissionError):
            yield from cs.stage_write(node, 1000.0)
        return cs.agent(0).tiers[NVME].used

    assert eng.run_process(proc()) == 0.0
    assert node.ssd.bytes_stored == 0.0


def test_serve_requires_resident_block():
    eng, cluster, lib = make_env()
    cs = CacheSubsystem(cluster)
    block = cs.agent(0).admit(("k",), 10.0, DRAM)
    with pytest.raises(RuntimeError):
        next(cs.serve(cluster.nodes[0], block))


# ---------------------------------------------------------------------------
# Experiment wiring: zero-cost-off and stall reduction
# ---------------------------------------------------------------------------

SMALL_BDCATS = BDCATSConfig(
    particles_per_rank=1 << 16, n_properties=2, steps=3, compute_seconds=5.0
)


def _bdcats_run(cache_mode, **kw):
    return run_experiment(
        make_testbed(nodes=1, ranks_per_node=4), "bdcats", bdcats_program,
        SMALL_BDCATS, mode="async", nranks=4, op="read",
        prepopulate=lambda lib, n: prepopulate_vpic_file(lib, SMALL_BDCATS, n),
        cache_mode=cache_mode, **kw,
    )


def test_cache_off_is_zero_cost():
    base = _bdcats_run(None)
    off = _bdcats_run("off")
    assert base.app_time == off.app_time
    assert base.read_stall_seconds == off.read_stall_seconds
    assert base.peak_bandwidth == off.peak_bandwidth
    assert base.cache_stats is None
    assert off.cache_stats["hits"] == 0
    assert off.cache_stats["bytes_to_tier"] == {}


def test_prefetch_reduces_read_stall():
    # The VOL's own heuristic prefetcher is disabled on both sides so
    # the planner is the only read-ahead in play.
    off = _bdcats_run("off", vol_kwargs={"prefetcher": None})
    on = _bdcats_run("on", vol_kwargs={"prefetcher": None})
    assert on.total_bytes == off.total_bytes
    assert off.read_stall_seconds > 0.0
    assert on.read_stall_seconds < off.read_stall_seconds
    stats = on.cache_stats
    assert stats["hits"] > 0
    assert stats["on_time_ratio"] == 1.0
    assert stats["bytes_to_tier"][DRAM] > 0


def test_run_experiment_rejects_bad_cache_mode():
    with pytest.raises(ValueError):
        _bdcats_run("turbo")


# ---------------------------------------------------------------------------
# Warm-node placement
# ---------------------------------------------------------------------------


def test_warm_nodes_ranking():
    policy = IOAwarePolicy(
        4, service=None,
        tier_telemetry=lambda: {0: 50.0, 1: 0.0, 2: 100.0, 3: 50.0},
    )
    assert policy._warm_nodes() == (2, 0, 3)
    assert IOAwarePolicy(4, service=None)._warm_nodes() == ()


def test_placement_validates_preferred_nodes():
    with pytest.raises(ValueError):
        Placement(record=None, nnodes=1, mode="sync",
                  preferred_nodes=(-1,))


def test_allocate_nodes_prefers_warm_nodes():
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=4, ranks_per_node=4), 4)
    assert cluster.allocate_nodes(2, preferred=(2, 1)) == (2, 1)
    cluster.release_nodes((2, 1))
    # Preferences already taken fall back to lowest-free order.
    assert cluster.allocate_nodes(2) == (0, 1)
    assert cluster.allocate_nodes(2, preferred=(0, 1)) == (2, 3)


def test_warm_bytes_telemetry():
    eng, cluster, lib = make_env(nodes=2)
    cs = CacheSubsystem(cluster)
    block = cs.agent(1).admit(("k",), 42.0, DRAM)
    cs.agent(1).mark_resident(block)
    cs.agent(0)  # touched but empty
    assert cs.warm_bytes() == {0: 0.0, 1: 42.0}


# ---------------------------------------------------------------------------
# Metrics merging, sweep axis, CLI surface
# ---------------------------------------------------------------------------


def test_merge_cache_stats():
    a = CacheMetrics()
    a.hits = 3
    a.misses = 1
    a.prefetch_on_time = 2
    a.bytes_to_tier[DRAM] = 100.0
    b = CacheMetrics()
    b.hits = 1
    b.misses = 3
    b.prefetch_late = 2
    b.bytes_to_tier[NVME] = 50.0
    merged = _merge_cache_stats(a.snapshot(), b.snapshot())
    assert merged["hits"] == 4 and merged["misses"] == 4
    assert merged["hit_ratio"] == 0.5
    assert merged["on_time_ratio"] == 0.5
    assert merged["bytes_to_tier"] == {DRAM: 100.0, NVME: 50.0}
    assert _merge_cache_stats({}, b.snapshot()) == b.snapshot()


def test_sweep_cache_axis():
    spec = SweepSpec(
        kind="workload", workload="bdcats", modes=("async",),
        scales=(4,), seeds=(0,), cache=("none", "on"),
    )
    tasks = expand_grid(spec)
    assert [t.cache for t in tasks] == ["none", "on"]
    assert "2 cache mode(s)" in spec.describe()
    with pytest.raises(ValueError):
        SweepSpec(cache=("turbo",))
    with pytest.raises(ValueError):
        SweepSpec(kind="sched", modes=("fifo",), cache=("on",))


def test_cli_cache_parser():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["cache", "--workload", "bdcats", "--tiers", "testbed",
         "--prefetch", "off", "--seeds", "0", "1"]
    )
    assert args.command == "cache"
    assert args.workload == "bdcats"
    assert args.tiers == "testbed"
    assert args.prefetch == "off"
    assert args.seeds == [0, 1]
