"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_figures(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for fid in ["fig3a", "fig4d", "fig8", "mb-memcpy"]:
        assert fid in out


def test_unknown_figure_id_rejected():
    with pytest.raises(SystemExit):
        main(["figures", "fig99"])


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "doom", "--machine", "testbed"])


def test_run_vpic_on_testbed(capsys):
    code = main(["run", "--workload", "vpic", "--machine", "testbed",
                 "--mode", "sync", "--ranks", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "peak bandwidth" in out
    assert "ranks / nodes   8 / 2" in out


def test_run_read_workload_with_prepopulate(capsys):
    code = main(["run", "--workload", "bdcats", "--machine", "testbed",
                 "--mode", "async", "--ranks", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "bdcats (read)" in out


def test_parser_structure():
    parser = build_parser()
    args = parser.parse_args(["figures", "fig3a", "--profile", "quick"])
    assert args.ids == ["fig3a"]
    assert args.profile == "quick"
    with pytest.raises(SystemExit):
        parser.parse_args(["figures", "--profile", "warp"])


def test_figures_writes_output_files(tmp_path, capsys):
    code = main(["figures", "mb-memcpy", "--out", str(tmp_path)])
    assert code == 0
    saved = tmp_path / "mb-memcpy.txt"
    assert saved.exists()
    assert "memcpy bandwidth" in saved.read_text()


def test_profile_command(capsys):
    code = main(["profile", "--workload", "vpic", "--machine", "testbed",
                 "--mode", "async", "--ranks", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "I/O profile" in out
    assert "I/O-blocked fraction" in out
    assert "async" in out
