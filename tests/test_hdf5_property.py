"""Property-based tests on VOL connector invariants.

Random operation sequences over random sizes must always preserve:

- durability: every operation has a finite completion time after close;
- ordering (single background stream): completions in submission order;
- accounting: bytes written reach the file target exactly once;
- staging hygiene: all staging reservations released at quiescence.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT64, AsyncVOL, EventSet, H5Library, NativeVOL, slab_1d

KiB = 1 << 10


def run_program(vol_factory, op_sizes, nprocs=2, compute_gaps=None):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    job = MPIJob(cluster, nprocs, ranks_per_node=4)
    lib = H5Library(cluster)
    vol = vol_factory()
    gaps = compute_gaps or [0.0] * len(op_sizes)

    def program(ctx):
        f = yield from lib.create(ctx, "/prop.h5", vol)
        es = EventSet(ctx.engine)
        for i, (size_kib, gap) in enumerate(zip(op_sizes, gaps)):
            if gap:
                yield ctx.compute(gap)
            d = f.create_dataset(
                f"/d{i}", shape=(size_kib * KiB * ctx.size,), dtype=FLOAT64
            )
            yield from d.write(slab_1d(ctx.rank, size_kib * KiB),
                               phase=i, es=es)
        yield from es.wait()
        yield from f.close()
        return ctx.now

    job.run(program)
    return vol, lib, cluster


@given(
    op_sizes=st.lists(st.integers(min_value=1, max_value=512),
                      min_size=1, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_property_async_all_ops_durable_and_ordered(op_sizes):
    vol, lib, cluster = run_program(
        lambda: AsyncVOL(init_time=0.0), op_sizes
    )
    records = vol.log.select(op="write")
    assert len(records) == 2 * len(op_sizes)
    for r in records:
        assert math.isfinite(r.t_complete)
        assert r.t_complete >= r.t_unblocked >= r.t_submit
    # single background stream: per-rank completion order == submit order
    for rank in (0, 1):
        mine = vol.log.select(op="write", rank=rank)
        submits = [r.t_submit for r in mine]
        completes = [r.t_complete for r in mine]
        assert submits == sorted(submits)
        assert completes == sorted(completes)


@given(
    op_sizes=st.lists(st.integers(min_value=1, max_value=256),
                      min_size=1, max_size=6),
)
@settings(max_examples=25, deadline=None)
def test_property_bytes_reach_target_once(op_sizes):
    for factory in (NativeVOL, lambda: AsyncVOL(init_time=0.0)):
        vol, lib, cluster = run_program(factory, op_sizes)
        expected = sum(s * KiB * 8 for s in op_sizes) * 2  # both ranks
        stored = lib.files["/prop.h5"]
        assert stored.target.bytes_written == pytest.approx(expected)
        for dset in stored.datasets.values():
            assert dset.coverage_1d() == pytest.approx(1.0)


@given(
    op_sizes=st.lists(st.integers(min_value=1, max_value=128),
                      min_size=1, max_size=6),
    gaps=st.lists(st.floats(min_value=0.0, max_value=2.0),
                  min_size=6, max_size=6),
)
@settings(max_examples=25, deadline=None)
def test_property_staging_fully_released(op_sizes, gaps):
    vol, lib, cluster = run_program(
        lambda: AsyncVOL(init_time=0.0), op_sizes,
        compute_gaps=gaps[: len(op_sizes)],
    )
    for buf in vol._staging.values():
        assert buf.used == pytest.approx(0.0)
        assert not buf._waiters


@given(
    op_sizes=st.lists(st.integers(min_value=1, max_value=256),
                      min_size=1, max_size=6),
)
@settings(max_examples=20, deadline=None)
def test_property_sync_and_async_agree_on_data_moved(op_sizes):
    """Both connectors move identical byte totals for the same program;
    async never blocks longer than sync in aggregate."""
    sync_vol, _, _ = run_program(NativeVOL, op_sizes)
    async_vol, _, _ = run_program(lambda: AsyncVOL(init_time=0.0), op_sizes)
    sync_bytes = sum(r.nbytes for r in sync_vol.log.records)
    async_bytes = sum(r.nbytes for r in async_vol.log.records)
    assert sync_bytes == pytest.approx(async_bytes)
    sync_blocked = max(sync_vol.log.total_blocking_time(r) for r in (0, 1))
    async_blocked = max(async_vol.log.total_blocking_time(r) for r in (0, 1))
    assert async_blocked <= sync_blocked * 1.5 + 1e-6
