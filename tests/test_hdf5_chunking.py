"""Tests for chunked dataset layout (per-chunk storage requests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform import testbed as make_testbed
from repro.hdf5 import FLOAT64, AsyncVOL, H5Library, Hyperslab, NativeVOL, slab_1d

MiB = 1 << 20


def make_env(nprocs=1):
    eng = Engine()
    cluster = Cluster(eng, make_testbed(nodes=1, ranks_per_node=4), 1)
    job = MPIJob(cluster, nprocs, ranks_per_node=4)
    lib = H5Library(cluster)
    return eng, cluster, job, lib


def test_request_sizes_contiguous():
    eng, cluster, job, lib = make_env()
    stored = lib.stored_file("/c.h5").ensure_dataset(
        "/d", (1000,), FLOAT64, materialize_limit=0
    )
    assert stored.chunks is None
    assert stored.request_sizes(Hyperslab((0,), (1000,))) == [8000.0]


def test_request_sizes_chunked_exact_and_partial():
    eng, cluster, job, lib = make_env()
    stored = lib.stored_file("/c.h5").ensure_dataset(
        "/d", (1000,), FLOAT64, materialize_limit=0, chunks=(100,)
    )
    assert stored.chunk_bytes == 800
    # 250 elements = 2000 B = 2 full chunks + 400 B remainder
    sizes = stored.request_sizes(Hyperslab((0,), (250,)))
    assert sizes == [800.0, 800.0, 400.0]
    # exact multiple: no remainder request
    assert stored.request_sizes(Hyperslab((0,), (200,))) == [800.0, 800.0]


def test_chunk_validation():
    eng, cluster, job, lib = make_env()
    f = lib.stored_file("/v.h5")
    with pytest.raises(ValueError):
        f.ensure_dataset("/bad", (10, 10), FLOAT64, 0, chunks=(5,))
    with pytest.raises(ValueError):
        f.ensure_dataset("/bad2", (10,), FLOAT64, 0, chunks=(0,))
    f.ensure_dataset("/ok", (10,), FLOAT64, 0, chunks=(5,))
    with pytest.raises(ValueError):
        f.ensure_dataset("/ok", (10,), FLOAT64, 0, chunks=(2,))


def test_small_chunks_slower_than_contiguous_sync():
    """Each chunk pays its own metadata latency: tiny chunks hurt."""

    def run(chunks):
        eng, cluster, job, lib = make_env()
        vol = NativeVOL()

        def program(ctx):
            f = yield from lib.create(ctx, "/t.h5", vol)
            d = f.create_dataset("/d", shape=(8 * MiB,), dtype=FLOAT64,
                                 chunks=chunks)
            t0 = ctx.now
            yield from d.write(phase=0)
            dt = ctx.now - t0
            yield from f.close()
            return dt

        return job.run(program)[0]

    contiguous = run(None)
    chunky = run((MiB // 4,))  # 32 chunks of 2 MiB
    assert chunky > 2 * contiguous


def test_chunked_async_write_completes():
    eng, cluster, job, lib = make_env()
    vol = AsyncVOL(init_time=0.0)

    def program(ctx):
        f = yield from lib.create(ctx, "/a.h5", vol)
        d = f.create_dataset("/d", shape=(4 * MiB,), dtype=FLOAT64,
                             chunks=(MiB,))
        yield from d.write(phase=0)
        yield from f.close()

    job.run(program)
    rec = vol.log.select(op="write")[0]
    assert rec.nbytes == 4 * MiB * 8  # record covers the whole API call
    import math
    assert math.isfinite(rec.t_complete)


def test_chunked_read_roundtrip():
    eng, cluster, job, lib = make_env(nprocs=2)
    vol = NativeVOL()

    def program(ctx):
        import numpy as np
        f = yield from lib.create(ctx, "/r.h5", vol)
        d = f.create_dataset("/d", shape=(64,), dtype=FLOAT64, chunks=(16,))
        yield from d.write(slab_1d(ctx.rank, 32),
                           data=np.full(32, float(ctx.rank)), phase=0)
        yield from ctx.barrier()
        got = yield from d.read(slab_1d(1 - ctx.rank, 32), phase=1)
        yield from f.close()
        return got

    r0, r1 = job.run(program)
    assert all(v == 1.0 for v in r0)
    assert all(v == 0.0 for v in r1)


@given(
    n_elems=st.integers(min_value=1, max_value=10_000),
    chunk=st.integers(min_value=1, max_value=2_000),
)
@settings(max_examples=80, deadline=None)
def test_property_request_sizes_partition_selection(n_elems, chunk):
    """Chunk requests always sum to the selection size, each request is
    positive and at most one is smaller than the chunk size."""
    eng, cluster, job, lib = make_env()
    stored = lib.stored_file("/p.h5").ensure_dataset(
        f"/d{n_elems}_{chunk}", (n_elems,), FLOAT64, 0, chunks=(chunk,)
    )
    sizes = stored.request_sizes(Hyperslab((0,), (n_elems,)))
    assert sum(sizes) == pytest.approx(n_elems * 8)
    assert all(s > 0 for s in sizes)
    assert sum(1 for s in sizes if s < stored.chunk_bytes) <= 1
