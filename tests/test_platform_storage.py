"""Tests for storage models, cluster wiring and contention."""

import math

import pytest

from repro.sim import Engine
from repro.platform import Cluster, ContentionModel, cori_haswell, summit
from repro.platform import testbed as _testbed

MiB = float(1 << 20)
GB = 1e9


def build(machine, nodes):
    eng = Engine()
    return eng, Cluster(eng, machine, nodes)


# ---------------------------------------------------------------------------
# Machine specs
# ---------------------------------------------------------------------------


def test_summit_spec_matches_paper():
    m = summit()
    assert m.filesystem.kind == "gpfs"
    assert m.filesystem.peak_bandwidth == pytest.approx(2.5e12)
    assert m.default_ranks_per_node == 6
    assert m.node.gpus == 6
    assert m.node.local_ssd is not None
    assert m.node.local_ssd.capacity_bytes == pytest.approx(1.6e12)
    assert m.node.gpu_link.link_peak == pytest.approx(50 * GB)


def test_cori_spec_matches_paper():
    m = cori_haswell()
    assert m.filesystem.kind == "lustre"
    assert m.filesystem.peak_bandwidth == pytest.approx(700 * GB)
    assert m.filesystem.default_stripe_count == 72
    assert m.default_ranks_per_node == 32
    assert m.burst_buffer_bandwidth == pytest.approx(1.7e12)
    assert m.node.gpus == 0


def test_allocation_bounds():
    eng = Engine()
    with pytest.raises(ValueError):
        Cluster(eng, _testbed(nodes=4), nodes=5)
    with pytest.raises(ValueError):
        Cluster(eng, _testbed(nodes=4), nodes=0)


# ---------------------------------------------------------------------------
# PFS transfers
# ---------------------------------------------------------------------------


def test_single_write_duration_reasonable():
    eng, cluster = build(_testbed(), 1)
    target = cluster.pfs.open_file("/out.h5")
    node = cluster.nodes[0]
    flow = cluster.pfs_write(node, target, 64 * MiB)
    eng.run()
    # client cap = nic * eff(64MiB); eff = 64/(64+4) ~ 0.94
    expected_rate = 10 * GB * (64 / 68.0)
    assert flow.achieved_rate == pytest.approx(expected_rate, rel=1e-3)


def test_small_requests_get_lower_bandwidth():
    eng, cluster = build(_testbed(), 1)
    target = cluster.pfs.open_file("/out.h5")
    node = cluster.nodes[0]
    big = cluster.pfs_write(node, target, 64 * MiB)
    eng.run()
    eng2, cluster2 = build(_testbed(), 1)
    target2 = cluster2.pfs.open_file("/out.h5")
    small = cluster2.pfs_write(cluster2.nodes[0], target2, 1 * MiB)
    eng2.run()
    assert small.achieved_rate < 0.3 * big.achieved_rate


def test_pfs_ceiling_caps_aggregate_bandwidth():
    """Enough nodes writing together saturate the shared backend."""
    machine = _testbed(nodes=8, pfs_peak=20 * GB, nic=10 * GB)
    eng, cluster = build(machine, 8)
    target = cluster.pfs.open_file("/big.h5")
    nbytes = 256 * MiB
    flows = [
        cluster.pfs_write(node, target, nbytes, tag=node.index)
        for node in cluster.nodes
    ]
    eng.run()
    t_io = max(f.finished_at for f in flows) - machine.filesystem.metadata_latency
    aggregate = 8 * nbytes / t_io
    assert aggregate == pytest.approx(20 * GB, rel=0.02)


def test_ranks_share_node_nic():
    machine = _testbed(nodes=1, pfs_peak=100 * GB, nic=10 * GB)
    eng, cluster = build(machine, 1)
    target = cluster.pfs.open_file("/f.h5")
    node = cluster.nodes[0]
    flows = [cluster.pfs_write(node, target, 64 * MiB, tag=i) for i in range(4)]
    eng.run()
    t_io = max(f.finished_at for f in flows) - machine.filesystem.metadata_latency
    aggregate = 4 * 64 * MiB / t_io
    assert aggregate <= 10 * GB * 1.001
    assert aggregate == pytest.approx(10 * GB, rel=0.05)


def test_metadata_latency_applied():
    eng, cluster = build(_testbed(), 1)
    target = cluster.pfs.open_file("/meta.h5")
    flow = cluster.pfs_write(cluster.nodes[0], target, 0.0)
    eng.run()
    assert flow.finished_at == pytest.approx(
        _testbed().filesystem.metadata_latency
    )


def test_file_target_accounting_and_reopen():
    eng, cluster = build(_testbed(), 1)
    t1 = cluster.pfs.open_file("/data.h5")
    t2 = cluster.pfs.open_file("/data.h5")
    assert t1 is t2
    cluster.pfs_write(cluster.nodes[0], t1, 100.0)
    cluster.pfs_read(cluster.nodes[0], t1, 40.0)
    eng.run()
    assert t1.bytes_written == 100.0
    assert t1.bytes_read == 40.0


# ---------------------------------------------------------------------------
# Lustre specifics
# ---------------------------------------------------------------------------


def test_lustre_stripe_ceiling():
    machine = cori_haswell()
    eng, cluster = build(machine, 64)
    target = cluster.pfs.open_file("/striped.h5")  # default 72 OSTs
    assert target.stripe_count == 72
    ceiling = 72 * machine.filesystem.ost_bandwidth
    nbytes = 512 * MiB
    flows = [
        cluster.pfs_write(node, target, nbytes, tag=node.index)
        for node in cluster.nodes
    ]
    eng.run()
    t_io = max(f.finished_at for f in flows) - machine.filesystem.metadata_latency
    aggregate = len(flows) * nbytes / t_io
    # 64 nodes * 6.5 GB/s = 416 GB/s of injection > 208.8 GB/s stripe ceiling
    assert aggregate == pytest.approx(ceiling, rel=0.02)


def test_lustre_stripe_count_validation():
    eng, cluster = build(cori_haswell(), 1)
    with pytest.raises(ValueError):
        cluster.pfs.open_file("/bad.h5", stripe_count=0)
    with pytest.raises(ValueError):
        cluster.pfs.open_file("/bad2.h5", stripe_count=10_000)


def test_lustre_single_stripe_is_slow():
    machine = cori_haswell()
    eng, cluster = build(machine, 4)
    narrow = cluster.pfs.open_file("/narrow.h5", stripe_count=1)
    flows = [
        cluster.pfs_write(node, narrow, 256 * MiB, tag=node.index)
        for node in cluster.nodes
    ]
    eng.run()
    t_io = max(f.finished_at for f in flows) - machine.filesystem.metadata_latency
    aggregate = 4 * 256 * MiB / t_io
    assert aggregate == pytest.approx(machine.filesystem.ost_bandwidth, rel=0.02)


def test_gpfs_rejects_user_striping():
    eng, cluster = build(summit(), 1)
    with pytest.raises(ValueError):
        cluster.pfs.open_file("/x.h5", stripe_count=4)


# ---------------------------------------------------------------------------
# Node-local resources
# ---------------------------------------------------------------------------


def test_memcpy_total_time_follows_curve():
    """Setup latency + peak-rate stream == the §III-B1 curve's time."""
    eng, cluster = build(_testbed(), 1)
    node = cluster.nodes[0]
    flow = cluster.memcpy(node, 256 * MiB)
    eng.run()
    expected = node.spec.memcpy.per_copy.transfer_time(256 * MiB)
    assert flow.finished_at == pytest.approx(expected, rel=1e-6)
    # effective bandwidth over the whole copy matches the curve
    assert 256 * MiB / flow.finished_at == pytest.approx(
        node.spec.memcpy.per_copy.bandwidth(256 * MiB), rel=1e-6
    )


def test_concurrent_memcpy_shares_node_aggregate():
    machine = summit()  # 48 GB/s aggregate, 10 GB/s per stream
    eng, cluster = build(machine, 1)
    node = cluster.nodes[0]
    flows = [cluster.memcpy(node, 256 * MiB, tag=i) for i in range(6)]
    eng.run()
    # 6 streams want ~9.7 GB/s each = 58 GB/s > 48 -> link-shared at 8 GB/s
    for f in flows:
        assert f.achieved_rate == pytest.approx(48 * GB / 6, rel=0.02)


def test_gpu_transfer_pinned_vs_pageable():
    eng, cluster = build(summit(), 1)
    node = cluster.nodes[0]
    pinned = cluster.gpu_transfer(node, 100 * MiB, pinned=True)
    eng.run()
    eng2, cluster2 = build(summit(), 1)
    pageable = cluster2.gpu_transfer(cluster2.nodes[0], 100 * MiB, pinned=False)
    eng2.run()
    assert pinned.elapsed < pageable.elapsed


def test_gpu_transfer_requires_gpu():
    eng, cluster = build(cori_haswell(), 1)
    with pytest.raises(ValueError):
        cluster.gpu_transfer(cluster.nodes[0], 1.0)


def test_node_ssd_write_and_capacity():
    eng, cluster = build(summit(), 1)
    node = cluster.nodes[0]
    flow = node.ssd.write(1 * GB)
    eng.run()
    assert flow.achieved_rate == pytest.approx(2.1 * GB, rel=1e-6)
    with pytest.raises(RuntimeError):
        node.ssd.write(2e12)  # over 1.6 TB capacity
    node.ssd.evict(1 * GB)
    assert node.ssd.bytes_stored == 0.0


def test_node_without_ssd_raises():
    eng, cluster = build(cori_haswell(), 1)
    with pytest.raises(ValueError):
        _ = cluster.nodes[0].ssd


def test_burst_buffer_available_on_cori():
    eng, cluster = build(cori_haswell(), 1)
    assert cluster.burst_buffer is not None
    flow = cluster.burst_buffer.write(cluster.nodes[0], 100 * MiB)
    eng.run()
    # NIC (6.5 GB/s) is the bottleneck, not the 1.7 TB/s BB
    assert flow.achieved_rate == pytest.approx(6.5 * GB, rel=1e-6)


def test_burst_buffer_shared_by_co_tenant_jobs():
    """Two tenants' nodes draining to one BB split its link fairly."""
    machine = cori_haswell()
    eng, cluster = build(machine, 4)
    bb = cluster.burst_buffer
    nbytes = 512 * MiB
    # Tenant A on nodes 0-1, tenant B on nodes 2-3, all writing at once.
    flows = [
        bb.write(node, nbytes, tag=("A" if node.index < 2 else "B", node.index))
        for node in cluster.nodes
    ]
    eng.run()
    # Each node's 6.5 GB/s NIC is the bottleneck (4 * 6.5 = 26 GB/s
    # << 1.7 TB/s BB): co-tenancy costs nothing until the BB saturates.
    for f in flows:
        assert f.achieved_rate == pytest.approx(6.5 * GB, rel=1e-6)


def test_burst_buffer_saturation_splits_across_tenants():
    """When aggregate injection exceeds the BB link, tenants share it."""
    machine = _testbed(nodes=4, nic=10 * GB)
    machine = type(machine)(**{**machine.__dict__,
                               "burst_buffer_bandwidth": 20 * GB})
    eng, cluster = build(machine, 4)
    bb = cluster.burst_buffer
    # 4 nodes * 10 GB/s NIC = 40 GB/s wants through a 20 GB/s BB link.
    flows = [bb.write(node, 512 * MiB, tag=node.index)
             for node in cluster.nodes]
    eng.run()
    for f in flows:
        assert f.achieved_rate == pytest.approx(20 * GB / 4, rel=0.02)


def test_burst_buffer_drain_competes_with_other_tenant_pfs_writes():
    """A BB->PFS drain and a direct PFS write share the PFS backend."""
    machine = _testbed(nodes=2, pfs_peak=10 * GB, nic=10 * GB)
    machine = type(machine)(**{**machine.__dict__,
                               "burst_buffer_bandwidth": 100 * GB})
    eng, cluster = build(machine, 2)
    bb = cluster.burst_buffer
    target_a = cluster.pfs.open_file("/tenants/a/drain.h5")
    target_b = cluster.pfs.open_file("/tenants/b/direct.h5")
    drain = bb.drain_to_pfs(cluster.pfs, target_a, 512 * MiB, tag="a")
    direct = cluster.pfs_write(cluster.nodes[1], target_b, 512 * MiB, tag="b")
    eng.run()
    # Both want the full 10 GB/s backend; max-min gives each half.
    assert drain.achieved_rate == pytest.approx(5 * GB, rel=0.02)
    assert direct.achieved_rate == pytest.approx(5 * GB, rel=0.02)


def test_node_local_ssds_are_private_per_tenant():
    """Co-tenant jobs on *different* nodes never share SSD bandwidth."""
    eng, cluster = build(summit(), 2)
    f_a = cluster.nodes[0].ssd.write(1 * GB, tag="tenant-a")
    f_b = cluster.nodes[1].ssd.write(1 * GB, tag="tenant-b")
    eng.run()
    # Each gets the full 2.1 GB/s device rate: node-local isolation.
    assert f_a.achieved_rate == pytest.approx(2.1 * GB, rel=1e-6)
    assert f_b.achieved_rate == pytest.approx(2.1 * GB, rel=1e-6)
    # Capacity accounting is per-device too.
    assert cluster.nodes[0].ssd.bytes_stored == pytest.approx(1 * GB)
    assert cluster.nodes[1].ssd.bytes_stored == pytest.approx(1 * GB)


def test_node_local_ssd_shared_within_a_node():
    """Ranks co-located on one node DO share that node's SSD link."""
    eng, cluster = build(summit(), 1)
    ssd = cluster.nodes[0].ssd
    flows = [ssd.write(512 * MiB, tag=i) for i in range(4)]
    eng.run()
    for f in flows:
        assert f.achieved_rate == pytest.approx(2.1 * GB / 4, rel=0.02)


def test_node_local_ssd_capacity_is_shared_by_co_tenants():
    """Two tenants filling one node's SSD hit the same capacity wall."""
    eng, cluster = build(summit(), 1)
    ssd = cluster.nodes[0].ssd
    ssd.write(1.0e12, tag="tenant-a")
    ssd.write(0.5e12, tag="tenant-b")
    eng.run()
    with pytest.raises(RuntimeError):
        ssd.write(0.2e12, tag="tenant-c")  # 1.5 + 0.2 > 1.6 TB
    ssd.evict(0.5e12)
    flow = ssd.write(0.1e12, tag="tenant-c")
    eng.run()
    assert flow.done.triggered


def test_rank_placement():
    eng, cluster = build(_testbed(nodes=4, ranks_per_node=4), 4)
    assert cluster.node_of_rank(0, 4).index == 0
    assert cluster.node_of_rank(3, 4).index == 0
    assert cluster.node_of_rank(4, 4).index == 1
    assert cluster.node_of_rank(15, 4).index == 3
    with pytest.raises(ValueError):
        cluster.node_of_rank(16, 4)
    with pytest.raises(ValueError):
        cluster.node_of_rank(-1, 4)


# ---------------------------------------------------------------------------
# Contention
# ---------------------------------------------------------------------------


def test_contention_deterministic_per_day():
    model = ContentionModel(seed=7)
    assert model.availability(3) == model.availability(3)
    series = model.series(days=10)
    assert len(set(series)) > 1  # days differ


def test_contention_factors_in_range():
    model = ContentionModel(seed=1)
    for a in model.series(days=50):
        assert 0.05 <= a <= 1.0


def test_contention_scales_pfs_but_not_memcpy():
    machine = _testbed(nodes=1)
    eng, cluster = build(machine, 1)
    model = ContentionModel(seed=3, median_load=1.0)
    factor = model.apply(cluster.pfs, day=0)
    assert factor < 1.0
    target = cluster.pfs.open_file("/c.h5")
    node = cluster.nodes[0]
    pfs_flow = cluster.pfs_write(node, target, 512 * MiB)
    mem_flow = cluster.memcpy(node, 512 * MiB)
    eng.run()
    # memcpy unaffected by contention
    assert mem_flow.finished_at == pytest.approx(
        node.spec.memcpy.per_copy.transfer_time(512 * MiB), rel=1e-6
    )
    # pfs flow capped by scaled backend when factor small enough
    assert pfs_flow.achieved_rate <= machine.filesystem.peak_bandwidth * factor * 1.01


def test_contention_zero_load_gives_full_availability():
    model = ContentionModel(seed=0, median_load=0.0)
    assert model.availability(5) == 1.0


def test_contention_validation():
    with pytest.raises(ValueError):
        ContentionModel(median_load=-1.0)
    with pytest.raises(ValueError):
        ContentionModel(floor=0.0)
    eng, cluster = build(_testbed(), 1)
    with pytest.raises(ValueError):
        cluster.pfs.set_availability(0.0)


def test_exascale_testbed_three_tiers():
    """The paper's §I outlook: node-local + performance + capacity tiers."""
    from repro.platform import exascale_testbed
    m = exascale_testbed()
    assert m.node.local_ssd is not None            # fast node-local tier
    assert m.burst_buffer_bandwidth > m.filesystem.peak_bandwidth  # perf tier
    assert m.filesystem.kind == "lustre"           # capacity tier
    eng = Engine()
    cluster = Cluster(eng, m, 4)
    # all three tiers usable for async staging
    node = cluster.nodes[0]
    f1 = node.ssd.write(1 << 20)
    f2 = cluster.burst_buffer.write(node, 1 << 20)
    t = cluster.pfs.open_file("/x.h5")
    f3 = cluster.pfs_write(node, t, 1 << 20)
    eng.run()
    for f in (f1, f2, f3):
        assert f.done.triggered
