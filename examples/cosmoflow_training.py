#!/usr/bin/env python
"""Cosmoflow on simulated Summit: prefetching DataLoader (paper Fig. 5).

Distributed CNN training reads a batch of 128³-voxel samples before
every step.  A synchronous loader stalls training on every batch; the
asynchronous loader (async VOL + sequential prefetcher) streams the
next samples into node memory while the GPUs train, so steady-state
batches are served from the prefetch cache.

Run:  python examples/cosmoflow_training.py       (~30 seconds)
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, summit
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.workloads import CosmoflowConfig, cosmoflow_program

NRANKS = 96  # 16 Summit nodes x 6 ranks

CONFIG = CosmoflowConfig(
    batch_size=8,
    batches_per_rank=4,
    epochs=2,
    seconds_per_batch=1.0,
)


def run(mode: str):
    engine = Engine()
    machine = summit()
    cluster = Cluster(engine, machine, NRANKS // 6)
    lib = H5Library(cluster)
    CONFIG.prepopulate(lib, NRANKS)
    vol = NativeVOL() if mode == "sync" else AsyncVOL()
    job = MPIJob(cluster, NRANKS)
    durations = job.run(cosmoflow_program(lib, vol, CONFIG))
    return vol.log, max(durations)


def main() -> None:
    sample_mib = CONFIG.sample_bytes() / 2**20
    print(f"Cosmoflow: {NRANKS} ranks, batch {CONFIG.batch_size} x "
          f"{sample_mib:.1f} MiB samples, {CONFIG.epochs} epochs, "
          f"{CONFIG.seconds_per_batch}s training step\n")
    for mode in ("sync", "async"):
        log, duration = run(mode)
        phases = log.phases(op="read")
        first = log.phase_bandwidth(phases[0], op="read") / 1e9
        steady = [log.phase_bandwidth(p, op="read") / 1e9 for p in phases[1:]]
        hits = sum(1 for r in log.select(op="read") if r.cache_hit)
        print(f"--- {mode} loader ---")
        print(f"  epoch time                  {duration / CONFIG.epochs:8.2f} s")
        print(f"  first-batch read bandwidth  {first:8.1f} GB/s")
        print(f"  steady-state batch reads    {sum(steady) / len(steady):8.1f} GB/s")
        print(f"  prefetch cache hits         {hits:8d} / {len(log.select(op='read'))}")
    print("\nWith prefetching, the first batch is still a blocking read "
          "(nothing to\nprefetch from), after which the loader stays ahead "
          "of training — matching\nFig. 5's gap between the sync and async "
          "series.")


if __name__ == "__main__":
    main()
