#!/usr/bin/env python
"""VPIC-IO campaign on simulated Summit: sweep, model fit, decision.

Reproduces the paper's Fig. 3a workflow end to end on a reduced rank
sweep: run the VPIC-IO kernel in both I/O modes at several scales
(repeated across contention "days"), fit the Eq. 4 regression to the
measurements, and print the measured-vs-estimated table the figure
plots — then use the fitted models to predict the crossover scale at
which asynchronous I/O starts to pay off.

Run:  python examples/vpic_campaign.py        (~1 minute)
"""

from repro.platform import ContentionModel, summit
from repro.analysis import fit_sweep_points
from repro.harness import best_by_config, scale_sweep
from repro.harness.report import FigureData
from repro.workloads import VPICConfig, vpic_program

SCALES = [96, 192, 384, 768]
REPS = 2


def main() -> None:
    machine = summit()
    config = VPICConfig(steps=3)
    print(f"VPIC-IO on simulated {machine.name}: "
          f"{config.bytes_per_rank_per_step() / 2**20:.0f} MiB/rank/step, "
          f"{config.steps} steps, ranks {SCALES} x {REPS} days each ...")
    results = scale_sweep(
        machine, "vpic-io", vpic_program, lambda n: config,
        scales=SCALES, reps=REPS,
        contention=ContentionModel(seed=7, median_load=0.15),
    )
    points = best_by_config(results)
    fits = {m: fit_sweep_points(points, m) for m in ("sync", "async")}

    table = FigureData(
        "campaign", "VPIC-IO write bandwidth, measured vs Eq. 4 estimate",
        columns=["ranks", "sync GB/s", "est sync", "async GB/s", "est async"],
    )
    for p in sorted((p for p in points if p.mode == "sync"),
                    key=lambda p: p.nranks):
        table.add_row(
            p.nranks, p.peak_gbs, fits["sync"].estimate_gbs(p.nranks),
            next(q.peak_gbs for q in points
                 if q.mode == "async" and q.nranks == p.nranks),
            fits["async"].estimate_gbs(p.nranks),
        )
    table.meta["sync fit"] = fits["sync"].transform
    table.meta["sync r2"] = fits["sync"].r2
    table.meta["async fit"] = fits["async"].transform
    table.meta["async r2"] = fits["async"].r2
    print()
    print(table.to_text())

    print("\nInterpretation: synchronous bandwidth follows a linear-log "
          "curve that\nflattens at the GPFS ceiling, while asynchronous "
          "bandwidth (the staging\nmemcpy) grows linearly with ranks — "
          "beyond the saturation point, hiding\nI/O behind computation "
          "is the only way to keep scaling.")


if __name__ == "__main__":
    main()
