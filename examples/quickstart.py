#!/usr/bin/env python
"""Quickstart: synchronous vs asynchronous parallel I/O in 60 lines.

Builds a small simulated cluster, runs the same iterative
checkpoint-writing program through the native (synchronous) and async
VOL connectors, and prints the paper's headline effect: the async
connector hides the parallel-file-system transfer behind computation,
so the *observed* I/O cost collapses to the local staging copy.

Run:  python examples/quickstart.py
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, testbed
from repro.hdf5 import FLOAT64, AsyncVOL, EventSet, H5Library, NativeVOL, slab_1d

MiB = 1 << 20
N_EPOCHS = 4
COMPUTE_SECONDS = 5.0
ELEMS_PER_RANK = 8 * MiB  # 64 MiB of float64 per rank per epoch


def checkpointing_app(lib, vol, path):
    """One rank of an iterative app: compute, then dump a checkpoint."""

    def program(ctx):
        f = yield from lib.create(ctx, path, vol)
        es = EventSet(ctx.engine)
        for epoch in range(N_EPOCHS):
            yield ctx.compute(COMPUTE_SECONDS)
            dset = f.create_dataset(
                f"/ckpt{epoch}/state",
                shape=(ELEMS_PER_RANK * ctx.size,),
                dtype=FLOAT64,
            )
            yield from dset.write(slab_1d(ctx.rank, ELEMS_PER_RANK),
                                  phase=epoch, es=es)
        yield from es.wait()
        yield from f.close()
        return ctx.now

    return program


def run(mode: str) -> None:
    engine = Engine()
    machine = testbed(nodes=4, ranks_per_node=4)
    cluster = Cluster(engine, machine, nodes=4)
    lib = H5Library(cluster)
    vol = NativeVOL() if mode == "sync" else AsyncVOL()
    job = MPIJob(cluster, nprocs=16)
    durations = job.run(checkpointing_app(lib, vol, f"/app_{mode}.h5"))

    log = vol.log
    print(f"\n--- {mode} mode ---")
    print(f"application ran for       {max(durations):8.2f} simulated seconds")
    print(f"rank 0 blocked in I/O for {log.total_blocking_time(0):8.2f} seconds")
    for phase in log.phases(op='write'):
        bw = log.phase_bandwidth(phase, op="write") / 1e9
        print(f"  epoch {phase}: aggregate write bandwidth {bw:8.2f} GB/s")


if __name__ == "__main__":
    print(f"{N_EPOCHS} epochs x ({COMPUTE_SECONDS}s compute + "
          f"{ELEMS_PER_RANK * 8 / MiB:.0f} MiB/rank checkpoint), 16 ranks")
    run("sync")
    run("async")
    print("\nAsync epochs overlap the file-system write with the next "
          "computation phase;\nonly the staging memcpy blocks the "
          "application, hence the higher bandwidth.")
