#!/usr/bin/env python
"""Adaptive I/O-mode selection: the paper's Fig. 2 feedback loop, live.

An application alternates between two regimes: early epochs do long
computations (asynchronous I/O can hide the transfers), late epochs do
nearly no computation between checkpoints (the transactional overhead
can no longer be amortized — the paper's Fig. 1c slowdown scenario).
The :class:`~repro.model.advisor.AdaptiveVOL` watches measurements flow
by and switches connector per I/O phase.

Run:  python examples/adaptive_io.py
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, testbed
from repro.hdf5 import FLOAT64, AsyncVOL, H5Library, NativeVOL, slab_1d
from repro.model import (
    Advisor,
    AdaptiveVOL,
    ComputeTimeModel,
    IORateModel,
    MeasurementHistory,
    TransactOverheadModel,
)

MiB = 1 << 20
NPROCS = 8
ELEMS = 4 * MiB  # 32 MiB of float64 per rank per epoch
LONG_COMPUTE, SHORT_COMPUTE = 8.0, 1e-4
SCHEDULE = [LONG_COMPUTE] * 5 + [SHORT_COMPUTE] * 11


def make_adaptive_vol(cluster):
    advisor = Advisor(
        ComputeTimeModel(decay=0.7),
        IORateModel(MeasurementHistory(), mode="sync", min_samples=3),
        TransactOverheadModel.from_memcpy_spec(cluster.machine.node.memcpy),
    )
    return AdaptiveVOL(NativeVOL(), AsyncVOL(init_time=0.0), advisor,
                       nranks=NPROCS), advisor


def app(lib, vol):
    def program(ctx):
        f = yield from lib.create(ctx, "/adaptive.h5", vol)
        for epoch, compute in enumerate(SCHEDULE):
            yield ctx.compute(compute)
            dset = f.create_dataset(f"/e{epoch}/x",
                                    shape=(ELEMS * ctx.size,), dtype=FLOAT64)
            yield from dset.write(slab_1d(ctx.rank, ELEMS), phase=epoch)
        yield from f.close()
        return ctx.now

    return program


def main() -> None:
    engine = Engine()
    cluster = Cluster(engine, testbed(nodes=2, ranks_per_node=4), 2)
    lib = H5Library(cluster)
    vol, advisor = make_adaptive_vol(cluster)
    job = MPIJob(cluster, NPROCS)
    durations = job.run(app(lib, vol))

    print(f"{len(SCHEDULE)} epochs, {NPROCS} ranks, "
          f"{ELEMS * 8 // MiB} MiB/rank/epoch")
    print(f"compute schedule: {SCHEDULE[0]}s x5 then {SCHEDULE[-1]}s x11\n")
    print("epoch | chosen mode | predicted sync/async epoch (s)")
    for ((_path, phase), mode), decision in zip(vol.mode_trace,
                                                advisor.decisions):
        est = (f"{decision.est_sync_epoch:8.3f} / {decision.est_async_epoch:8.3f}"
               if decision.est_sync_epoch == decision.est_sync_epoch
               else "   (cold start - defaulting to sync)")
        print(f"{phase:5d} | {mode.value:^11s} | {est}")
    print(f"\ntotal simulated time: {max(durations):.2f}s")
    print("\nThe advisor warms up in sync mode, switches to async while "
          "computation\ndominates, and falls back to sync once epochs "
          "become too short to amortize\nthe transactional copy "
          "(t_comp <= t_transact, the paper's slowdown case).")


if __name__ == "__main__":
    main()
