#!/usr/bin/env python
"""Choosing a checkpoint frequency (paper Fig. 7).

Domain scientists trade checkpoint frequency against throughput: more
frequent plotfiles mean more I/O stalls.  This example runs Nyx on
simulated Cori-Haswell with a fixed total step count while varying the
plotfile interval, in both I/O modes, and compares the measured
application durations with the Eq. 1/2 model predictions — showing that
asynchronous I/O makes frequent checkpointing nearly free until the
computation phase is too short to overlap (1 step per phase).

Run:  python examples/checkpoint_frequency.py     (~1 minute)
"""

from repro.platform import cori_haswell
from repro.harness import run_experiment
from repro.model import EpochCosts, app_time
from repro.workloads import NyxConfig, nyx_program

TOTAL_STEPS = 48
INTERVALS = [1, 2, 4, 8, 16, 48]
NRANKS = 128
SECONDS_PER_STEP = 0.5


def main() -> None:
    machine = cori_haswell()
    print(f"Nyx 256^3 on simulated {machine.name}, {NRANKS} ranks, "
          f"{TOTAL_STEPS} total steps, {SECONDS_PER_STEP}s/step\n")
    print("steps/phase | plotfiles | sync (s) | async (s) | async saves")
    measured = {}
    for interval in INTERVALS:
        cfg = NyxConfig.small(
            plot_int=interval,
            n_plotfiles=TOTAL_STEPS // interval,
            seconds_per_step=SECONDS_PER_STEP,
        )
        for mode in ("sync", "async"):
            r = run_experiment(machine, "nyx", nyx_program, cfg, mode=mode,
                               nranks=NRANKS, op="write")
            measured[(mode, interval)] = r
        s = measured[("sync", interval)]
        a = measured[("async", interval)]
        saving = (1.0 - a.app_time / s.app_time) * 100.0
        print(f"{interval:11d} | {TOTAL_STEPS // interval:9d} | "
              f"{s.app_time:8.1f} | {a.app_time:9.1f} | {saving:9.1f}%")

    # What the model would have told us without running everything:
    ref_sync = measured[("sync", INTERVALS[-1])]
    ref_async = measured[("async", INTERVALS[-1])]
    phase_bytes = ref_sync.total_bytes / ref_sync.n_phases
    t_io = phase_bytes / ref_sync.peak_bandwidth
    t_tr = phase_bytes / ref_async.peak_bandwidth
    print(f"\nmodel costs measured once: t_io={t_io:.2f}s, "
          f"t_transact={t_tr:.3f}s")
    print("model-predicted durations (Eq. 1/2):")
    for interval in INTERVALS:
        n = TOTAL_STEPS // interval
        costs = EpochCosts(t_comp=interval * SECONDS_PER_STEP, t_io=t_io,
                           t_transact=t_tr)
        print(f"  {interval:3d} steps/phase: sync "
              f"{app_time([costs] * n, 'sync'):7.1f}s   async "
              f"{app_time([costs] * n, 'async', include_final_drain=True):7.1f}s")
    print("\nAsync keeps the duration nearly flat as checkpoints become "
          "frequent;\nthe advantage collapses at 1 step/phase where no "
          "overlap is possible.")


if __name__ == "__main__":
    main()
