#!/usr/bin/env python
"""EQSIM checkpointing with node-local SSD staging (paper Fig. 6 + §II-C).

Runs the SW4 earthquake-simulation checkpoint workload on simulated
Summit in three configurations:

1. synchronous HDF5 (baseline),
2. async VOL staging to node DRAM (the evaluated connector),
3. async VOL staging to the node-local 1.6 TB NVMe — the paper's
   "caching data ... to a node-local SSD" option: slower transactional
   copy, zero DRAM footprint.

Run:  python examples/eqsim_checkpointing.py     (~30 seconds)
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, summit
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.workloads import SW4Config, sw4_program

NRANKS = 192  # 32 Summit nodes

CONFIG = SW4Config(
    checkpoint_int=100,
    n_checkpoints=3,
    seconds_per_step=0.25,  # 25 s computation between checkpoints
)


def run(label, vol_factory):
    engine = Engine()
    cluster = Cluster(engine, summit(), NRANKS // 6)
    lib = H5Library(cluster)
    vol = vol_factory()
    job = MPIJob(cluster, NRANKS)
    durations = job.run(sw4_program(lib, vol, CONFIG))
    log = vol.log
    blocked = max(log.total_blocking_time(r) for r in range(NRANKS))
    print(f"--- {label} ---")
    print(f"  app time            {max(durations):8.2f} s")
    print(f"  worst rank blocked  {blocked:8.3f} s in I/O calls")
    print(f"  peak aggregate bw   {log.peak_bandwidth(op='write') / 1e9:8.1f} GB/s")


def main() -> None:
    ckpt_gb = CONFIG.checkpoint_bytes() / 1e9
    print(f"EQSIM/SW4 on simulated Summit: {NRANKS} ranks, "
          f"{ckpt_gb:.1f} GB per checkpoint, "
          f"{CONFIG.compute_phase_seconds():.0f} s compute between "
          f"checkpoints\n")
    run("sync (native VOL)", NativeVOL)
    run("async, DRAM staging", lambda: AsyncVOL())
    run("async, node-SSD staging", lambda: AsyncVOL(staging="ssd"))
    print("\nBoth async variants hide the parallel-file-system write "
          "behind the next\ncomputation phase; SSD staging trades a "
          "slower blocking copy (NVMe write\nrate) for zero DRAM "
          "footprint — the choice the paper's §II-C describes.")


if __name__ == "__main__":
    main()
