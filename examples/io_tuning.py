#!/usr/bin/env python
"""I/O tuning knobs on one workload: the practitioner's menu.

The paper contrasts its adaptive-async vision with the classic tuning
literature (stripe counts, aggregators, chunking — §II-C).  This
example runs the same strong-scaled Castro-style plotfile write on
simulated Summit under every knob this library implements and prints a
league table:

1. synchronous, independent writes (the untuned baseline),
2. synchronous + HDF5 chunking mismatch (what naive chunking costs),
3. synchronous + MPI-IO collective buffering (the classic fix),
4. asynchronous VOL (the paper's answer),
5. asynchronous + background write merging (connector-side tuning).

Run:  python examples/io_tuning.py        (~1 minute)
"""

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, summit
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.workloads import CastroConfig, castro_program

NRANKS = 384  # 64 Summit nodes, deep into the Fig. 4c small-request regime
CONFIG = CastroConfig(n_plotfiles=2, seconds_per_step=0.5)


def run(label, vol_factory):
    engine = Engine()
    cluster = Cluster(engine, summit(), NRANKS // 6)
    lib = H5Library(cluster)
    vol = vol_factory()
    durations = MPIJob(cluster, NRANKS).run(castro_program(lib, vol, CONFIG))
    peak = vol.log.peak_bandwidth(op="write") / 1e9
    blocked = max(vol.log.total_blocking_time(r) for r in range(NRANKS))
    print(f"{label:38s} {peak:10.1f} GB/s   app {max(durations):7.2f} s   "
          f"blocked {blocked:6.3f} s")


def main() -> None:
    per_rank_kib = CONFIG.plotfile_bytes() / NRANKS / 1024
    print(f"Castro plotfiles on simulated Summit: {NRANKS} ranks, "
          f"{CONFIG.plotfile_bytes() / 1e9:.2f} GB per plotfile "
          f"(~{per_rank_kib:.0f} KiB per rank — the hard regime)\n")
    print(f"{'strategy':38s} {'peak write bw':>13s}")
    run("sync, independent (baseline)", NativeVOL)
    run("sync, collective buffering (x64 aggr)",
        lambda: NativeVOL(collective=True, naggregators=NRANKS // 6))
    run("async VOL (DRAM staging)", lambda: AsyncVOL())
    run("async VOL + write merging",
        lambda: AsyncVOL(merge_writes=True))
    print("\nCollective buffering rebuilds large requests and recovers much "
          "of the\nsynchronous bandwidth; the async VOL sidesteps the problem "
          "by taking the\nfile system off the critical path entirely, and "
          "merging cleans up its\nbackground drain too.")


if __name__ == "__main__":
    main()
