"""Tabular figure data with paper-style text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["FigureData"]


@dataclass
class FigureData:
    """One regenerated figure: labelled columns and data rows.

    ``meta`` carries figure-level scalars (e.g. fitted r², chosen
    regression transform) that the paper reports in prose.
    """

    name: str
    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned text table with the title and metadata."""
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                if v == 0:
                    return "0"
                if abs(v) >= 1e4 or abs(v) < 1e-2:
                    return f"{v:.3g}"
                return f"{v:,.2f}"
            return str(v)

        body = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in body))
            if body else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.name}: {self.title} =="]
        header = " | ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in body:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
        for key, value in self.meta.items():
            lines.append(f"  {key}: {fmt(value)}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
