"""Fleet experiments: run one job stream under each scheduling policy.

:func:`run_fleet` is the scheduler-layer analogue of
:func:`~repro.harness.experiment.run_experiment`: one seeded
:class:`~repro.sched.stream.JobStream`, one machine, one policy, one
co-run simulation — summarized into a :class:`FleetMetrics` carrying
the facility-level numbers (goodput, p50/p95/p99 queue wait and
completion time, makespan, PFS utilization).  Percentiles use the
deterministic nearest-rank definition so two same-seed runs produce
bit-identical metrics — the benchmark's replay gate depends on it.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.sim import Engine
from repro.faults import FaultConfig, FaultInjector
from repro.platform import Cluster, ContentionTimeline
from repro.platform.spec import MachineSpec
from repro.sched import (
    AdvisorService,
    JobState,
    JobStream,
    Scheduler,
    StreamConfig,
    make_policy,
)

__all__ = ["FleetMetrics", "percentile", "run_fleet", "sched_testbed"]

GB = 1e9


def sched_testbed() -> MachineSpec:
    """The fleet experiments' machine: a small, PFS-bound testbed.

    Deliberately storage-starved relative to :func:`~repro.platform.
    machines.testbed` (3 GB/s shared PFS against 8 nodes × 2 GB/s NICs)
    so that co-running jobs genuinely contend on the file system —
    the regime where scheduling policy moves tail latency.
    """
    from repro.platform import testbed
    return testbed(nodes=8, ranks_per_node=4, pfs_peak=3.0 * GB,
                   nic=2.0 * GB)


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not 0 < q <= 100:
        raise ValueError(f"q must be in (0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        return math.nan
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class FleetMetrics:
    """Facility-level summary of one scheduled fleet run."""

    policy: str
    machine: str
    n_jobs: int
    seed: int
    mean_interarrival: float
    completed: int
    timeouts: int
    failed: int
    rejected: int
    n_async: int
    n_sync: int
    makespan: float
    #: Completed jobs per simulated hour.
    goodput_jobs_per_hour: float
    #: Bytes moved by completed jobs / (makespan * PFS peak).
    pfs_utilization: float
    wait_p50: float
    wait_p95: float
    wait_p99: float
    completion_p50: float
    completion_p95: float
    completion_p99: float
    peak_live_jobs: int
    busy_node_seconds: float
    # -- fault-tolerance ledger (all zero when no faults injected) ----
    #: Node crash events observed via the cluster ledger.
    node_failures: int = 0
    #: Jobs killed by a node crash (a job can be a victim repeatedly).
    node_kills: int = 0
    #: Requeues performed after node-failure kills.
    requeues: int = 0
    #: Compute-seconds destroyed by kills (work past the last durable
    #: checkpoint, summed over every killed attempt).
    lost_work_seconds: float = 0.0
    #: Lost work weighted by each attempt's node count — the facility's
    #: view of the same waste.
    wasted_node_seconds: float = 0.0
    #: Simulated seconds admission spent paused in degraded mode.
    degraded_seconds: float = 0.0
    #: Completed-job records whose measurements the advisor quarantined
    #: because the run saw injected faults.
    quarantined: int = 0
    #: Whether requeued jobs restarted from durable checkpoints.
    checkpoint_restart: bool = True
    #: sha256 of the injector's fault-trace signature ("" = no faults)
    #: — the chaos determinism gate compares this across replays.
    fault_signature: str = ""
    #: Per-job rows (JobRecord.summary()) for drill-down / JSON.
    jobs: tuple = field(default_factory=tuple, repr=False)

    def row(self) -> list:
        """Row for the ``fig-sched`` table."""
        return [
            self.policy, self.completed, self.n_async,
            self.goodput_jobs_per_hour, self.wait_p50, self.wait_p95,
            self.completion_p50, self.completion_p95, self.completion_p99,
            self.makespan, self.pfs_utilization,
        ]

    def to_dict(self, with_jobs: bool = True) -> dict:
        """Plain dict for benchmark JSON."""
        out = {
            k: getattr(self, k)
            for k in self.__dataclass_fields__ if k != "jobs"
        }
        if with_jobs:
            out["jobs"] = list(self.jobs)
        return out


def run_fleet(
    spec: MachineSpec,
    stream_config: StreamConfig,
    policy_name: str,
    max_stagger: float = 10.0,
    external_contention=None,
    day: int = 0,
    fault_config: Optional[FaultConfig] = None,
    checkpoint_restart: bool = True,
) -> FleetMetrics:
    """Run one seeded job stream to completion under one policy.

    Builds a fresh engine + cluster, streams the
    :class:`~repro.sched.stream.JobStream` submissions through a
    :class:`~repro.sched.scheduler.Scheduler`, and reduces the records.
    ``external_contention`` (a :class:`~repro.platform.contention.
    ContentionModel`) optionally layers a day-sampled availability
    factor for traffic outside the fleet on top of the mechanistic
    co-run contention.  ``fault_config`` attaches a
    :class:`~repro.faults.FaultInjector` to the cluster (the chaos
    axis: node crashes, drains, PFS outages); ``checkpoint_restart``
    controls whether requeued victims restart from durable checkpoints
    or from scratch.
    """
    engine = Engine()
    cluster = Cluster(engine, spec, spec.total_nodes)
    injector = (FaultInjector(fault_config).attach(cluster)
                if fault_config is not None else None)
    service = AdvisorService(spec)
    kwargs = {"max_stagger": max_stagger} if policy_name == "io-aware" else {}
    policy = make_policy(
        policy_name, spec.default_ranks_per_node,
        service=service if policy_name == "io-aware" else None, **kwargs
    )
    timeline = ContentionTimeline(
        engine, cluster.pfs, model=external_contention, day=day,
    )
    scheduler = Scheduler(
        engine, cluster, policy, service=service, timeline=timeline,
        injector=injector, checkpoint_restart=checkpoint_restart,
    )
    records = scheduler.run_stream(JobStream(spec, stream_config).arrivals())

    done = [r for r in records if r.state is JobState.COMPLETED]
    waits = [r.wait_time for r in done]
    completions = [r.completion_time for r in done]
    # Scheduled fault windows (repairs, planned crashes on idle nodes)
    # can outlast the last job, so engine.now is only the fallback:
    # the fleet's makespan is the last job-finish instant.
    finishes = [r.finish_time for r in records
                if not math.isnan(r.finish_time)]
    makespan = max(finishes) if finishes else engine.now
    moved = sum(r.bytes_moved() for r in done)
    wasted = sum(
        row["lost_work_seconds"] * len(row["nodes"])
        for r in records for row in r.attempt_history
    )
    fault_signature = ""
    if injector is not None:
        fault_signature = hashlib.sha256(
            repr(injector.signature()).encode()
        ).hexdigest()
    return FleetMetrics(
        policy=policy_name,
        machine=spec.name,
        n_jobs=len(records),
        seed=stream_config.seed,
        mean_interarrival=stream_config.mean_interarrival,
        completed=len(done),
        timeouts=sum(1 for r in records if r.state is JobState.TIMEOUT),
        failed=sum(1 for r in records if r.state is JobState.FAILED),
        rejected=sum(1 for r in records if r.state is JobState.REJECTED),
        n_async=sum(1 for r in records if r.mode == "async"),
        n_sync=sum(1 for r in records if r.mode == "sync"),
        makespan=makespan,
        goodput_jobs_per_hour=(
            len(done) / makespan * 3600.0 if makespan > 0 else 0.0
        ),
        pfs_utilization=(
            moved / (makespan * spec.filesystem.peak_bandwidth)
            if makespan > 0 else 0.0
        ),
        wait_p50=percentile(waits, 50),
        wait_p95=percentile(waits, 95),
        wait_p99=percentile(waits, 99),
        completion_p50=percentile(completions, 50),
        completion_p95=percentile(completions, 95),
        completion_p99=percentile(completions, 99),
        peak_live_jobs=timeline.peak_live_jobs(),
        busy_node_seconds=timeline.busy_node_seconds(),
        node_failures=scheduler.node_failures,
        node_kills=scheduler.node_kills,
        requeues=scheduler.requeues,
        lost_work_seconds=sum(r.lost_work_seconds for r in records),
        wasted_node_seconds=wasted,
        degraded_seconds=scheduler.degraded_seconds,
        quarantined=service.quarantined,
        checkpoint_restart=checkpoint_restart,
        fault_signature=fault_signature,
        jobs=tuple(r.summary() for r in records),
    )
