"""Single-experiment runner: one workload, one machine, one mode, one day."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, ContentionModel
from repro.platform.spec import MachineSpec
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.hdf5.vol import VOLConnector
from repro.trace import IOLog
from repro.workloads import summarize_run

__all__ = ["ExperimentResult", "build_vol", "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one run, carrying the paper's metrics."""

    machine: str
    workload: str
    mode: str
    nranks: int
    nnodes: int
    day: int
    availability: float
    n_phases: int
    total_bytes: float
    peak_bandwidth: float
    mean_bandwidth: float
    app_time: float

    @property
    def peak_gbs(self) -> float:
        """Peak aggregate bandwidth in GB/s (the paper's plot unit)."""
        return self.peak_bandwidth / 1e9


def build_vol(mode: str, log: Optional[IOLog] = None, **kwargs) -> VOLConnector:
    """Instantiate the connector for ``mode`` ('sync' | 'async')."""
    if mode == "sync":
        return NativeVOL(log=log)
    if mode == "async":
        kwargs.setdefault("init_time", 0.05)
        return AsyncVOL(log=log, **kwargs)
    raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")


def run_experiment(
    machine: MachineSpec,
    workload_name: str,
    program_factory: Callable,
    config,
    mode: str,
    nranks: int,
    ranks_per_node: Optional[int] = None,
    day: int = 0,
    contention: Optional[ContentionModel] = None,
    prepopulate: Optional[Callable] = None,
    op: str = "write",
    vol_kwargs: Optional[dict] = None,
) -> ExperimentResult:
    """Run ``program_factory(lib, vol, config)`` once and summarize.

    ``prepopulate(lib, nranks)``, when given, creates input files before
    the job starts (read workloads).  ``day`` selects the contention
    sample (paper: runs repeated "across multiple days").
    """
    engine = Engine()
    rpn = ranks_per_node or machine.default_ranks_per_node
    nnodes = math.ceil(nranks / rpn)
    cluster = Cluster(engine, machine, nnodes)
    availability = 1.0
    if contention is not None:
        availability = contention.apply(cluster.pfs, day)
    lib = H5Library(cluster)
    vol = build_vol(mode, **(vol_kwargs or {}))
    if prepopulate is not None:
        prepopulate(lib, nranks)
    job = MPIJob(cluster, nranks, ranks_per_node=rpn)
    results = job.run(program_factory(lib, vol, config))
    app_time = max(results)
    stats = summarize_run(vol.log, app_time, op=op, mode=mode)
    return ExperimentResult(
        machine=machine.name,
        workload=workload_name,
        mode=mode,
        nranks=nranks,
        nnodes=nnodes,
        day=day,
        availability=availability,
        n_phases=stats.n_phases,
        total_bytes=stats.total_bytes,
        peak_bandwidth=stats.peak_bandwidth,
        mean_bandwidth=stats.mean_bandwidth,
        app_time=app_time,
    )
