"""Single-experiment runner: one workload, one machine, one mode, one day."""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster, ContentionModel
from repro.platform.spec import MachineSpec
from repro.hdf5 import AsyncVOL, H5Library, NativeVOL
from repro.hdf5.vol import VOLConnector
from repro.trace import IOLog
from repro.workloads import summarize_run

__all__ = ["CACHE_MODES", "ExperimentResult", "build_vol", "run_experiment"]

#: Staging-cache wiring levels for :func:`run_experiment`.  ``None``
#: (no subsystem at all) and ``"off"`` (inert subsystem: hooks wired,
#: every behavior flag down) must produce byte-identical event
#: schedules — the ``cache_off`` perf-budget gate enforces it.
CACHE_MODES = ("off", "write", "on")


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one run, carrying the paper's metrics."""

    machine: str
    workload: str
    mode: str
    nranks: int
    nnodes: int
    day: int
    availability: float
    n_phases: int
    total_bytes: float
    peak_bandwidth: float
    mean_bandwidth: float
    app_time: float
    #: Slowest rank's summed read blocking time (the BD-CATS "read
    #: stall" the prefetch gate compares; 0.0 for write workloads).
    read_stall_seconds: float = 0.0
    #: Cache-metrics snapshot when a subsystem was wired (else None).
    cache_stats: Optional[dict] = None

    @property
    def peak_gbs(self) -> float:
        """Peak aggregate bandwidth in GB/s (the paper's plot unit)."""
        return self.peak_bandwidth / 1e9


def build_vol(mode: str, log: Optional[IOLog] = None, **kwargs) -> VOLConnector:
    """Instantiate the connector for ``mode`` ('sync' | 'async')."""
    if mode == "sync":
        return NativeVOL(log=log)
    if mode == "async":
        kwargs.setdefault("init_time", 0.05)
        return AsyncVOL(log=log, **kwargs)
    raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")


def _read_stall(log: IOLog) -> float:
    """Max-over-ranks summed read blocking time (§III-B2 convention:
    the slowest rank determines the stall the application observes)."""
    per_rank: dict[int, float] = {}
    for r in log.records:
        if r.op == "read":
            per_rank[r.rank] = per_rank.get(r.rank, 0.0) + r.blocking_time
    return max(per_rank.values()) if per_rank else 0.0


def run_experiment(
    machine: MachineSpec,
    workload_name: str,
    program_factory: Callable,
    config,
    mode: str,
    nranks: int,
    ranks_per_node: Optional[int] = None,
    day: int = 0,
    contention: Optional[ContentionModel] = None,
    prepopulate: Optional[Callable] = None,
    op: str = "write",
    vol_kwargs: Optional[dict] = None,
    cache_mode: Optional[str] = None,
    cache_tiers=None,
    faults=None,
) -> ExperimentResult:
    """Run ``program_factory(lib, vol, config)`` once and summarize.

    ``prepopulate(lib, nranks)``, when given, creates input files before
    the job starts (read workloads).  ``day`` selects the contention
    sample (paper: runs repeated "across multiple days").

    ``cache_mode`` wires a :class:`~repro.cache.CacheSubsystem` into the
    connector: ``"off"`` builds it inert (the byte-identity baseline),
    ``"write"`` enables the write-through drain, ``"on"`` additionally
    enables deadline prefetch (program factories accepting ``cache`` /
    ``prefetch`` keyword arguments get them passed through).
    """
    if cache_mode is not None and cache_mode not in CACHE_MODES:
        raise ValueError(
            f"cache_mode must be one of {CACHE_MODES} or None, "
            f"got {cache_mode!r}"
        )
    engine = Engine()
    rpn = ranks_per_node or machine.default_ranks_per_node
    nnodes = math.ceil(nranks / rpn)
    cluster = Cluster(engine, machine, nnodes)
    availability = 1.0
    if contention is not None:
        availability = contention.apply(cluster.pfs, day)
    lib = H5Library(cluster)
    cache = None
    kwargs = dict(vol_kwargs or {})
    if cache_mode is not None:
        from repro.cache import CacheSubsystem

        cache = CacheSubsystem(
            cluster, tiers=cache_tiers, faults=faults,
            write_through=cache_mode in ("write", "on"),
            prefetch=cache_mode == "on",
        )
        if mode == "async":
            kwargs.setdefault("cache", cache)
    vol = build_vol(mode, **kwargs)
    if prepopulate is not None:
        prepopulate(lib, nranks)
    factory_kwargs = {}
    if cache is not None:
        accepted = inspect.signature(program_factory).parameters
        if "cache" in accepted:
            factory_kwargs["cache"] = cache
        if "prefetch" in accepted:
            factory_kwargs["prefetch"] = cache.prefetch
    job = MPIJob(cluster, nranks, ranks_per_node=rpn)
    results = job.run(program_factory(lib, vol, config, **factory_kwargs))
    app_time = max(results)
    stats = summarize_run(vol.log, app_time, op=op, mode=mode)
    cache_stats = None
    if cache is not None:
        cache_stats = cache.snapshot()
        vol.log.note_cache(cache_stats)
    return ExperimentResult(
        machine=machine.name,
        workload=workload_name,
        mode=mode,
        nranks=nranks,
        nnodes=nnodes,
        day=day,
        availability=availability,
        n_phases=stats.n_phases,
        total_bytes=stats.total_bytes,
        peak_bandwidth=stats.peak_bandwidth,
        mean_bandwidth=stats.mean_bandwidth,
        app_time=app_time,
        read_stall_seconds=_read_stall(vol.log),
        cache_stats=cache_stats,
    )
