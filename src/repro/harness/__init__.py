"""Experiment harness: runs, sweeps, figures, reports.

This package regenerates every figure of the paper's evaluation
(§V).  Each ``fig*`` function in :mod:`repro.harness.figures` runs the
corresponding workload sweep on the simulated machine, fits the paper's
regression model to the measurements (the dotted "estimated" lines),
and returns a :class:`~repro.harness.report.FigureData` that prints the
same series the paper plots.

Scale profiles: the full paper configurations reach 12,288 ranks /
2,048 nodes; set ``REPRO_PROFILE=paper`` to run them.  The default
``quick`` profile uses truncated rank sweeps and fewer repetitions so
the entire benchmark suite completes in minutes while preserving every
qualitative shape (saturation points scale accordingly).
"""

from repro.harness.experiment import ExperimentResult, build_vol, run_experiment
from repro.harness.sweep import SweepPoint, best_by_config, scale_sweep
from repro.harness.report import FigureData
from repro.harness.store import load_results, save_results
from repro.harness.recovery import (
    RecoveryResult,
    durable_progress,
    recovery_sweep,
    run_recovery,
)
from repro.harness.sched import FleetMetrics, run_fleet, sched_testbed
from repro.harness import figures

__all__ = [
    "ExperimentResult",
    "FigureData",
    "FleetMetrics",
    "RecoveryResult",
    "SweepPoint",
    "best_by_config",
    "build_vol",
    "durable_progress",
    "figures",
    "load_results",
    "recovery_sweep",
    "run_experiment",
    "run_fleet",
    "run_recovery",
    "save_results",
    "scale_sweep",
    "sched_testbed",
]
