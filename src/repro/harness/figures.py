"""Regeneration of every figure in the paper's evaluation (§V).

Each ``fig*`` function runs the corresponding sweep on the simulated
machine, fits the Eq. 4 model for the dotted "estimated" series, and
returns a :class:`~repro.harness.report.FigureData`.

Two scale profiles exist (``REPRO_PROFILE`` or the ``profile=``
argument):

- ``quick`` (default): truncated rank sweeps / fewer repetitions; every
  qualitative shape is preserved and the whole set runs in minutes.
- ``paper``: the published configurations (up to 12,288 ranks on
  Summit, 8,192 on Cori-Haswell, 5 repetitions).
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence

from repro.platform import ContentionModel, cori_haswell, summit
from repro.platform.spec import MachineSpec
from repro.analysis import fit_sweep_points, variability_stats
from repro.harness.experiment import run_experiment
from repro.harness.report import FigureData
from repro.harness.sweep import best_by_config, scale_sweep
from repro.model import EpochCosts, app_time
from repro.model.microbench import gpu_transfer_microbench, memcpy_microbench
from repro.workloads import (
    BDCATSConfig,
    CastroConfig,
    CosmoflowConfig,
    NyxConfig,
    SW4Config,
    VPICConfig,
    bdcats_program,
    castro_program,
    cosmoflow_program,
    nyx_program,
    prepopulate_vpic_file,
    sw4_program,
    vpic_program,
)

__all__ = [
    "all_figures",
    "fig3a", "fig3b", "fig3c", "fig3d",
    "fig4a", "fig4b", "fig4c", "fig4d",
    "fig5", "fig6", "fig7", "fig8",
    "fig_faults", "fig_sched",
    "microbench_memcpy", "microbench_gpu",
    "resolve_profile",
]

GB = 1e9
Mi = 1 << 20

#: Rank sweeps per (figure-machine, profile).
_SCALES = {
    ("summit", "quick"): [96, 192, 384, 768, 1536],
    ("summit", "paper"): [96, 192, 384, 768, 1536, 3072, 6144, 12288],
    ("cori", "quick"): [128, 256, 512, 1024, 2048],
    ("cori", "paper"): [128, 256, 512, 1024, 2048, 4096, 8192],
    ("summit-app", "quick"): [96, 192, 384, 768],
    ("summit-app", "paper"): [96, 192, 384, 768, 1536, 3072],
    ("cori-app", "quick"): [128, 256, 512, 1024],
    ("cori-app", "paper"): [128, 256, 512, 1024, 2048, 4096],
    # Strong-scaling sweeps whose paper plots start in the saturated
    # regime (Nyx large / EQSIM: huge fixed datasets).
    ("summit-sat", "quick"): [768, 1536, 3072],
    ("summit-sat", "paper"): [768, 1536, 3072, 6144, 12288],
}
_REPS = {"quick": 2, "paper": 5}
_STEPS = {"quick": 3, "paper": 5}


def resolve_profile(profile: Optional[str] = None) -> str:
    """Profile from argument or ``REPRO_PROFILE`` (default ``quick``)."""
    profile = profile or os.environ.get("REPRO_PROFILE", "quick")
    if profile not in ("quick", "paper"):
        raise ValueError(f"profile must be 'quick' or 'paper', got {profile!r}")
    return profile


def _contention(seed: int) -> ContentionModel:
    # Mild baseline contention so repetitions across "days" differ.
    return ContentionModel(seed=seed, median_load=0.15, sigma=0.5)


def _bandwidth_figure(
    name: str,
    title: str,
    machine: MachineSpec,
    workload_name: str,
    program_factory: Callable,
    config_factory: Callable[[int], object],
    scales: Sequence[int],
    reps: int,
    op: str = "write",
    prepopulate_factory: Optional[Callable] = None,
    seed: int = 0,
) -> FigureData:
    """Shared sweep → fit → table pipeline for Figs. 3-6."""
    results = scale_sweep(
        machine, workload_name, program_factory, config_factory,
        scales=scales, modes=("sync", "async"), reps=reps,
        contention=_contention(seed), prepopulate_factory=prepopulate_factory,
        op=op,
    )
    points = best_by_config(results)
    fits = {mode: fit_sweep_points(points, mode) for mode in ("sync", "async")}
    fig = FigureData(
        name=name,
        title=title,
        columns=["ranks", "nodes", "sync GB/s", "est sync GB/s",
                 "async GB/s", "est async GB/s"],
    )
    sync_points = {p.nranks: p for p in points if p.mode == "sync"}
    async_points = {p.nranks: p for p in points if p.mode == "async"}
    for nranks in scales:
        fig.add_row(
            nranks,
            sync_points[nranks].nnodes,
            sync_points[nranks].peak_gbs,
            fits["sync"].estimate_gbs(nranks),
            async_points[nranks].peak_gbs,
            fits["async"].estimate_gbs(nranks),
        )
    fig.meta["r2 sync"] = fits["sync"].r2
    fig.meta["r2 async"] = fits["async"].r2
    fig.meta["fit sync"] = fits["sync"].transform
    fig.meta["fit async"] = fits["async"].transform
    return fig


# ---------------------------------------------------------------------------
# Fig. 3 — I/O kernels, weak scaling
# ---------------------------------------------------------------------------


def fig3a(profile: Optional[str] = None) -> FigureData:
    """VPIC-IO write bandwidth on Summit (weak scaling, sync vs async)."""
    p = resolve_profile(profile)
    cfg = VPICConfig(steps=_STEPS[p])
    return _bandwidth_figure(
        "fig3a", "VPIC-IO write aggregate bandwidth, Summit (weak scaling)",
        summit(), "vpic-io", vpic_program, lambda nranks: cfg,
        scales=_SCALES[("summit", p)], reps=_REPS[p], op="write", seed=31,
    )


def fig3b(profile: Optional[str] = None) -> FigureData:
    """VPIC-IO write bandwidth on Cori-Haswell."""
    p = resolve_profile(profile)
    cfg = VPICConfig(steps=_STEPS[p])
    return _bandwidth_figure(
        "fig3b", "VPIC-IO write aggregate bandwidth, Cori-Haswell (weak scaling)",
        cori_haswell(), "vpic-io", vpic_program, lambda nranks: cfg,
        scales=_SCALES[("cori", p)], reps=_REPS[p], op="write", seed=32,
    )


def _bdcats_figure(name: str, machine: MachineSpec, scales, reps, seed,
                   profile: str) -> FigureData:
    cfg = BDCATSConfig(steps=_STEPS[profile])
    return _bandwidth_figure(
        name, f"BD-CATS-IO read aggregate bandwidth, {machine.name} (weak scaling)",
        machine, "bdcats-io", bdcats_program, lambda nranks: cfg,
        scales=scales, reps=reps, op="read",
        prepopulate_factory=lambda config: (
            lambda lib, nranks: prepopulate_vpic_file(lib, config, nranks)
        ),
        seed=seed,
    )


def fig3c(profile: Optional[str] = None) -> FigureData:
    """BD-CATS-IO read bandwidth on Summit."""
    p = resolve_profile(profile)
    return _bdcats_figure("fig3c", summit(), _SCALES[("summit", p)],
                          _REPS[p], seed=33, profile=p)


def fig3d(profile: Optional[str] = None) -> FigureData:
    """BD-CATS-IO read bandwidth on Cori-Haswell."""
    p = resolve_profile(profile)
    return _bdcats_figure("fig3d", cori_haswell(), _SCALES[("cori", p)],
                          _REPS[p], seed=34, profile=p)


# ---------------------------------------------------------------------------
# Fig. 4 — Nyx and Castro, strong scaling
# ---------------------------------------------------------------------------


def fig4a(profile: Optional[str] = None) -> FigureData:
    """Nyx large (2048³) plotfile bandwidth on Summit (strong scaling)."""
    p = resolve_profile(profile)
    # Nyx runs GPU-accelerated on Summit (§V-A.3): writes include the
    # device→host transfer.
    cfg = NyxConfig.large(n_plotfiles=_STEPS[p], use_gpu=True)
    return _bandwidth_figure(
        "fig4a", "Nyx large (2048^3, GPU) write aggregate bandwidth, Summit "
                 "(strong scaling)",
        summit(), "nyx-large", nyx_program, lambda nranks: cfg,
        scales=_SCALES[("summit-sat", p)], reps=_REPS[p], op="write", seed=41,
    )


def fig4b(profile: Optional[str] = None) -> FigureData:
    """Nyx small (256³) plotfile bandwidth on Cori-Haswell."""
    p = resolve_profile(profile)
    cfg = NyxConfig.small(n_plotfiles=_STEPS[p])
    return _bandwidth_figure(
        "fig4b", "Nyx small (256^3) write aggregate bandwidth, Cori-Haswell "
                 "(strong scaling)",
        cori_haswell(), "nyx-small", nyx_program, lambda nranks: cfg,
        scales=_SCALES[("cori", p)], reps=_REPS[p], op="write", seed=42,
    )


def fig4c(profile: Optional[str] = None) -> FigureData:
    """Castro plotfile bandwidth on Summit (strong scaling)."""
    p = resolve_profile(profile)
    cfg = CastroConfig(n_plotfiles=_STEPS[p])
    return _bandwidth_figure(
        "fig4c", "Castro (128^3, 6 comps, 2 particles/cell) write aggregate "
                 "bandwidth, Summit (strong scaling)",
        summit(), "castro", castro_program, lambda nranks: cfg,
        scales=_SCALES[("summit-app", p)], reps=_REPS[p], op="write", seed=43,
    )


def fig4d(profile: Optional[str] = None) -> FigureData:
    """Castro plotfile bandwidth on Cori-Haswell."""
    p = resolve_profile(profile)
    cfg = CastroConfig(n_plotfiles=_STEPS[p])
    return _bandwidth_figure(
        "fig4d", "Castro write aggregate bandwidth, Cori-Haswell "
                 "(strong scaling)",
        cori_haswell(), "castro", castro_program, lambda nranks: cfg,
        scales=_SCALES[("cori-app", p)], reps=_REPS[p], op="write", seed=44,
    )


# ---------------------------------------------------------------------------
# Fig. 5 — Cosmoflow, Fig. 6 — EQSIM
# ---------------------------------------------------------------------------


def fig5(profile: Optional[str] = None) -> FigureData:
    """Cosmoflow batch-read bandwidth on Summit (4 training epochs)."""
    p = resolve_profile(profile)
    cfg = CosmoflowConfig(
        epochs=2 if p == "quick" else 4,
        batches_per_rank=4 if p == "quick" else 8,
    )
    return _bandwidth_figure(
        "fig5", "Cosmoflow batch read aggregate bandwidth, Summit",
        summit(), "cosmoflow", cosmoflow_program, lambda nranks: cfg,
        scales=_SCALES[("summit-app", p)], reps=_REPS[p], op="read",
        prepopulate_factory=lambda config: (
            lambda lib, nranks: config.prepopulate(lib, nranks)
        ),
        seed=50,
    )


def fig6(profile: Optional[str] = None) -> FigureData:
    """EQSIM/SW4 checkpoint bandwidth on Summit (strong scaling)."""
    p = resolve_profile(profile)
    cfg = SW4Config(n_checkpoints=_STEPS[p])
    return _bandwidth_figure(
        "fig6", "EQSIM (SW4, grid 50, 30000x30000x17000) checkpoint aggregate "
                "bandwidth, Summit (strong scaling)",
        summit(), "eqsim-sw4", sw4_program, lambda nranks: cfg,
        scales=_SCALES[("summit-sat", p)], reps=_REPS[p], op="write", seed=60,
    )


# ---------------------------------------------------------------------------
# Fig. 7 — partial overlap: time steps per computation phase
# ---------------------------------------------------------------------------


def fig7(profile: Optional[str] = None) -> FigureData:
    """Nyx on Cori: application duration vs time steps per compute phase.

    Total simulation steps stay fixed; the plotfile interval varies, so
    small intervals mean many I/O phases.  The estimated durations come
    from the Eq. 1/2 model with costs measured on the *largest*
    interval's runs (the model's history-driven workflow).
    """
    p = resolve_profile(profile)
    total_steps = 48 if p == "quick" else 192
    intervals = ([1, 2, 4, 8, 16, 48] if p == "quick"
                 else [1, 3, 6, 12, 24, 48, 96, 192])
    nranks = 128 if p == "quick" else 512
    machine = cori_haswell()
    # Short steps relative to the plotfile cost, so checkpoint frequency
    # visibly stretches the synchronous duration (the Fig. 7 regime).
    seconds_per_step = 0.1

    fig = FigureData(
        name="fig7",
        title=f"Nyx on Cori-Haswell: application duration vs time steps per "
              f"computation phase ({total_steps} total steps, {nranks} ranks)",
        columns=["steps/phase", "io phases", "sync s", "est sync s",
                 "async s", "est async s"],
    )

    measured: dict[tuple[str, int], float] = {}
    probe = {}
    for interval in intervals:
        cfg = NyxConfig.small(
            plot_int=interval,
            n_plotfiles=total_steps // interval,
            seconds_per_step=seconds_per_step,
        )
        for mode in ("sync", "async"):
            result = run_experiment(
                machine, "nyx-overlap", nyx_program, cfg, mode=mode,
                nranks=nranks, op="write",
            )
            measured[(mode, interval)] = result.app_time
            probe[(mode, interval)] = result

    # Model costs from the largest-interval runs (one I/O phase each).
    ref = max(intervals)
    ref_sync = probe[("sync", ref)]
    ref_async = probe[("async", ref)]
    phase_bytes = ref_sync.total_bytes / ref_sync.n_phases
    t_io = phase_bytes / ref_sync.peak_bandwidth
    t_transact = phase_bytes / ref_async.peak_bandwidth

    for interval in intervals:
        n_phases = total_steps // interval
        costs = EpochCosts(
            t_comp=interval * seconds_per_step,
            t_io=t_io,
            t_transact=t_transact,
        )
        est_sync = app_time([costs] * n_phases, "sync")
        est_async = app_time([costs] * n_phases, "async",
                             include_final_drain=True)
        fig.add_row(
            interval, n_phases,
            measured[("sync", interval)], est_sync,
            measured[("async", interval)], est_async,
        )
    fig.meta["t_io (s)"] = t_io
    fig.meta["t_transact (s)"] = t_transact
    return fig


# ---------------------------------------------------------------------------
# Fig. 8 — run-to-run variability under contention
# ---------------------------------------------------------------------------


def fig8(profile: Optional[str] = None) -> FigureData:
    """VPIC-IO on Summit across days: sync varies, async stays flat."""
    p = resolve_profile(profile)
    days = 6 if p == "quick" else 10
    nranks = 768 if p == "quick" else 3072
    cfg = VPICConfig(steps=_STEPS[p])
    machine = summit()
    contention = ContentionModel(seed=80, median_load=0.6, sigma=0.8)

    fig = FigureData(
        name="fig8",
        title=f"VPIC-IO variability on Summit across {days} runs "
              f"({nranks} ranks)",
        columns=["day", "availability", "sync GB/s", "async GB/s"],
    )
    sync_obs, async_obs = [], []
    for day in range(days):
        row = [day]
        availability = contention.availability(day)
        row.append(availability)
        for mode, obs in (("sync", sync_obs), ("async", async_obs)):
            result = run_experiment(
                machine, "vpic-io", vpic_program, cfg, mode=mode,
                nranks=nranks, day=day, contention=contention, op="write",
            )
            obs.append(result.peak_bandwidth)
            row.append(result.peak_bandwidth / GB)
        fig.add_row(*row)
    s = variability_stats(sync_obs)
    a = variability_stats(async_obs)
    fig.meta["sync CV"] = s.cv
    fig.meta["async CV"] = a.cv
    fig.meta["sync max/min"] = s.spread_ratio
    fig.meta["async max/min"] = a.spread_ratio
    return fig


# ---------------------------------------------------------------------------
# Robustness extension — checkpoint recovery under injected faults
# ---------------------------------------------------------------------------


def fig_faults(profile: Optional[str] = None) -> FigureData:
    """Checkpoint-restart goodput and data-loss window under faults.

    Not a paper figure: the evaluation covers only the happy path.  A
    checkpointing job is killed mid-epoch at each injected flaky-write
    rate; the table compares sync vs async on durable progress, the
    data-loss window, and goodput across kill + restart (see
    :mod:`repro.harness.recovery`).  The synchronous writer surfaces
    the first fault to the application and forfeits every later epoch;
    the async VOL's retry + sync-fallback ladder absorbs the same
    faults and keeps goodput flat.
    """
    from repro.harness.recovery import recovery_sweep
    from repro.workloads.restart import RestartConfig

    p = resolve_profile(profile)
    nranks = 12 if p == "quick" else 96
    rates = (0.0, 0.05, 0.2) if p == "quick" else (0.0, 0.02, 0.05, 0.1, 0.2)
    cfg = RestartConfig(elems_per_rank=Mi, checkpoints=4, compute_seconds=5.0)
    results = recovery_sweep(summit(), nranks, fault_rates=rates,
                             config=cfg, seed=90)
    fig = FigureData(
        name="fig-faults",
        title=f"checkpoint recovery under injected faults, Summit "
              f"({nranks} ranks, kill at 60%)",
        columns=["mode", "fault rate", "durable ckpts", "lost ckpts",
                 "loss window s", "goodput", "retries", "fallbacks"],
    )
    for r in results:
        fig.add_row(r.mode, r.fault_rate, r.durable_checkpoints,
                    r.lost_checkpoints, r.data_loss_window, r.goodput,
                    r.retries, r.fallbacks)
    return fig


def fig_sched(profile: Optional[str] = None) -> FigureData:
    """Fleet tail latency by scheduling policy at two cluster loads.

    Not a paper figure: an extension grounded in Fig. 8's variability
    result.  A seeded multi-tenant job stream (VPIC / BD-CATS / Nyx /
    Castro / SW4 / Cosmoflow mix) is co-run on one storage-starved
    testbed under FIFO, conservative backfill, and the I/O-aware
    policy that applies the paper's sync-vs-async model at admission
    time; the table reports per-policy goodput, p50/p95/p99 queue wait
    and completion time, makespan and PFS utilization at a high and a
    moderate arrival rate.
    """
    from repro.harness.sched import run_fleet, sched_testbed
    from repro.sched import StreamConfig

    p = resolve_profile(profile)
    n_jobs = 25 if p == "quick" else 60
    loads = (2.0, 4.0)
    machine = sched_testbed()
    fig = FigureData(
        name="fig-sched",
        title=f"multi-tenant scheduling on {machine.name} "
              f"({n_jobs} jobs/stream, loads = mean interarrival s)",
        columns=["load", "policy", "done", "async", "jobs/h",
                 "wait p95", "compl p50", "compl p95", "compl p99",
                 "makespan", "PFS util"],
    )
    for mean_ia in loads:
        cfg = StreamConfig(
            n_jobs=n_jobs, seed=7, mean_interarrival=mean_ia,
            rank_choices=(8, 16, 32), size_scale=4.0,
        )
        for policy in ("fifo", "backfill", "io-aware"):
            m = run_fleet(machine, cfg, policy)
            fig.add_row(
                mean_ia, policy, m.completed, m.n_async,
                m.goodput_jobs_per_hour, m.wait_p95, m.completion_p50,
                m.completion_p95, m.completion_p99, m.makespan,
                m.pfs_utilization,
            )
    return fig


# ---------------------------------------------------------------------------
# §III-B1 micro-benchmarks
# ---------------------------------------------------------------------------


def microbench_memcpy(profile: Optional[str] = None) -> FigureData:
    """Host memcpy bandwidth vs size on both machines (§III-B1)."""
    resolve_profile(profile)
    fig = FigureData(
        name="mb-memcpy",
        title="memcpy bandwidth vs transfer size (constant above 32 MB)",
        columns=["size MiB", "summit GB/s", "cori GB/s"],
    )
    s_samples = memcpy_microbench(summit())
    c_samples = memcpy_microbench(cori_haswell())
    for s, c in zip(s_samples, c_samples):
        fig.add_row(s.nbytes / Mi, s.bandwidth / GB, c.bandwidth / GB)
    return fig


def microbench_gpu(profile: Optional[str] = None) -> FigureData:
    """GPU↔CPU copy bandwidth vs size, pinned vs pageable (§III-B1)."""
    resolve_profile(profile)
    fig = FigureData(
        name="mb-gpu",
        title="Summit NVLink device-host copy bandwidth (amortized above "
              "10 MB; pinned near the 50 GB/s theoretical peak)",
        columns=["size MiB", "pinned GB/s", "pageable GB/s"],
    )
    pinned = gpu_transfer_microbench(summit(), pinned=True)
    pageable = gpu_transfer_microbench(summit(), pinned=False)
    for p_, q in zip(pinned, pageable):
        fig.add_row(p_.nbytes / Mi, p_.bandwidth / GB, q.bandwidth / GB)
    return fig


def all_figures(profile: Optional[str] = None) -> dict[str, FigureData]:
    """Regenerate every evaluation figure; keyed by figure id."""
    makers = [fig3a, fig3b, fig3c, fig3d, fig4a, fig4b, fig4c, fig4d,
              fig5, fig6, fig7, fig8, fig_faults, fig_sched,
              microbench_memcpy, microbench_gpu]
    return {fig.name: fig for fig in (m(profile) for m in makers)}
