"""Scale sweeps with repetitions across contention days.

The paper runs "each configuration at least 5 times across multiple
days" and plots "the peak measured aggregate bandwidth for all I/O
phases" (§V-A.1).  :func:`scale_sweep` runs (scale × mode × day)
experiments; :func:`best_by_config` reduces repetitions to the best
observation per (mode, scale), the paper's plotted quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.platform import ContentionModel
from repro.platform.spec import MachineSpec
from repro.harness.experiment import ExperimentResult, run_experiment

__all__ = ["SweepPoint", "best_by_config", "scale_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Best-of-repetitions summary at one (mode, scale) grid point."""

    mode: str
    nranks: int
    nnodes: int
    peak_bandwidth: float
    mean_app_time: float
    all_peaks: tuple[float, ...]  # per-day observations (Fig. 8 raw data)
    total_bytes: float
    n_phases: int

    @property
    def peak_gbs(self) -> float:
        """Peak aggregate bandwidth in GB/s."""
        return self.peak_bandwidth / 1e9


def scale_sweep(
    machine: MachineSpec,
    workload_name: str,
    program_factory: Callable,
    config_factory: Callable[[int], object],
    scales: Sequence[int],
    modes: Sequence[str] = ("sync", "async"),
    reps: int = 3,
    contention: Optional[ContentionModel] = None,
    prepopulate_factory: Optional[Callable] = None,
    op: str = "write",
    ranks_per_node: Optional[int] = None,
    vol_kwargs: Optional[dict] = None,
) -> list[ExperimentResult]:
    """Run the full (scale × mode × rep) grid; returns raw results.

    ``config_factory(nranks)`` builds the workload config at each scale
    (weak scaling changes sizes with ranks; strong scaling ignores the
    argument).  ``prepopulate_factory(config)`` returns the
    ``prepopulate(lib, nranks)`` hook for read workloads.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    results: list[ExperimentResult] = []
    for nranks in scales:
        config = config_factory(nranks)
        prepopulate = (
            prepopulate_factory(config) if prepopulate_factory is not None else None
        )
        for mode in modes:
            for rep in range(reps):
                results.append(run_experiment(
                    machine, workload_name, program_factory, config,
                    mode=mode, nranks=nranks, ranks_per_node=ranks_per_node,
                    day=rep, contention=contention, prepopulate=prepopulate,
                    op=op, vol_kwargs=vol_kwargs,
                ))
    return results


def best_by_config(results: Sequence[ExperimentResult]) -> list[SweepPoint]:
    """Reduce repetitions to the paper's plotted best-of-runs points."""
    grid: dict[tuple[str, int], list[ExperimentResult]] = {}
    for r in results:
        grid.setdefault((r.mode, r.nranks), []).append(r)
    points = []
    for (mode, nranks), runs in sorted(grid.items(), key=lambda kv: (kv[0][0],
                                                                     kv[0][1])):
        peaks = tuple(r.peak_bandwidth for r in runs)
        points.append(SweepPoint(
            mode=mode,
            nranks=nranks,
            nnodes=runs[0].nnodes,
            peak_bandwidth=max(peaks),
            mean_app_time=sum(r.app_time for r in runs) / len(runs),
            all_peaks=peaks,
            total_bytes=runs[0].total_bytes,
            n_phases=runs[0].n_phases,
        ))
    return points
