"""Process-parallel sweep engine: declarative grids → merged JSON.

The paper's variability claims (§V-A.1, Fig. 8) rest on many cheap,
reproducible runs — "each configuration at least 5 times across
multiple days".  :mod:`repro.harness.sweep` models one such grid
in-process; this module turns a declarative (machine × mode × scale ×
seed) grid into independent tasks, fans them across
``multiprocessing`` workers, and merges the results into a JSON
artifact that is **byte-identical for every worker count** — so a
4-worker sweep can be diffed against a 1-worker run (or yesterday's
artifact) with ``cmp``.

Design rules that make that guarantee hold:

- Every task is a pure function of its :class:`SweepTask` (the
  simulator is deterministic; per-task seeds are carried explicitly in
  the task, never drawn from process-global state).
- Workers return plain dicts; the merger sorts by task index, so
  arrival order — the only thing worker count changes — is erased.
- Wall-clock timing lives only on the :class:`SweepOutcome` (for
  scaling reports), never inside the merged artifact.

Crash isolation reuses the :mod:`repro.faults` taxonomy: a task that
raises a :class:`~repro.faults.FaultError` records that class name with
family ``"fault"``; any other exception is recorded with family
``"crash"`` — morally a :class:`~repro.faults.WorkerCrashError`: the
worker died, the sweep survives, the point is marked failed.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import asdict, dataclass
from typing import Callable, Optional, Sequence

from repro.faults import FaultError
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.sweep import SweepPoint, best_by_config
from repro.platform import ContentionModel

__all__ = [
    "PointResult",
    "SweepOutcome",
    "SweepSpec",
    "SweepTask",
    "expand_grid",
    "merged_results",
    "merged_sweep_points",
    "run_sweep",
    "sweepable_grids",
]

#: Progress callback: ``(done_count, total, point_dict)``.
ProgressFn = Callable[[int, int, dict], None]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid.

    ``kind`` selects the task runner:

    - ``"workload"`` — one :func:`~repro.harness.experiment.
      run_experiment` per point; ``modes`` are VOL modes
      (``sync``/``async``), ``scales`` are rank counts, and each seed
      selects a contention *day* (the paper's run-to-run variability).
    - ``"sched"`` — one :func:`~repro.harness.sched.run_fleet` per
      point; ``modes`` are scheduler policies, ``scales`` are mean
      interarrival gaps (load), and each seed selects the job stream.
    """

    kind: str = "workload"
    workload: str = "vpic"
    machines: tuple[str, ...] = ("testbed",)
    modes: tuple[str, ...] = ("sync", "async")
    scales: tuple[float, ...] = (8,)
    seeds: tuple[int, ...] = (0,)
    #: Jobs per stream (``kind="sched"`` only).
    jobs: int = 12
    #: Chaos axis (``kind="sched"`` only): node-crash rates, in
    #: expected crashes per node per 1000 simulated seconds (see
    #: :func:`repro.faults.chaos_config`).  The default ``(0.0,)`` is
    #: the zero-cost-off path — no injector is built at all.
    faults: tuple[float, ...] = (0.0,)
    #: Base seed of the chaos axis, mixed with each point's stream seed
    #: so fault times decorrelate across seeds but replay identically.
    fault_seed: int = 0
    #: Whether requeued crash victims restart from durable checkpoints.
    checkpoint: bool = True
    #: Staging-cache axis (``kind="workload"`` only): each value is a
    #: :func:`~repro.harness.experiment.run_experiment` ``cache_mode``
    #: (``"none"`` maps to no subsystem — the default, zero-cost-off).
    cache: tuple[str, ...] = ("none",)

    def __post_init__(self) -> None:
        if self.kind not in ("workload", "sched"):
            raise ValueError(
                f"kind must be 'workload' or 'sched', got {self.kind!r}"
            )
        if self.kind == "workload" and any(f > 0 for f in self.faults):
            raise ValueError("the fault axis applies to kind='sched' only")
        if any(f < 0 for f in self.faults):
            raise ValueError("fault rates must be non-negative")
        valid_cache = ("none", "off", "write", "on")
        if any(c not in valid_cache for c in self.cache):
            raise ValueError(
                f"cache values must be from {valid_cache}, got {self.cache}"
            )
        if self.kind == "sched" and tuple(self.cache) != ("none",):
            raise ValueError("the cache axis applies to kind='workload' only")

    def describe(self) -> str:
        axes = (
            f"{len(self.machines)} machine(s) x {len(self.modes)} "
            f"{'policy' if self.kind == 'sched' else 'mode'}(s) x "
            f"{len(self.scales)} scale(s) x {len(self.seeds)} seed(s)"
        )
        if any(f > 0 for f in self.faults):
            axes += f" x {len(self.faults)} fault rate(s)"
        if tuple(self.cache) != ("none",):
            axes += f" x {len(self.cache)} cache mode(s)"
        return f"{self.kind}:{self.workload} {axes}"


@dataclass(frozen=True)
class SweepTask:
    """One grid point — everything a worker needs, explicitly seeded."""

    index: int
    kind: str
    workload: str
    machine: str
    mode: str
    scale: float
    seed: int
    jobs: int
    #: Chaos axis: node-crash rate, base fault seed, checkpointing
    #: on/off.  ``fault_rate == 0`` builds no injector (zero-cost off).
    fault_rate: float = 0.0
    fault_seed: int = 0
    checkpoint: bool = True
    #: Staging-cache mode of this point (``"none"`` = no subsystem).
    cache: str = "none"


@dataclass(frozen=True)
class PointResult:
    """Typed view of one merged point (see :func:`merged_results`)."""

    index: int
    ok: bool
    error: Optional[dict]
    metrics: Optional[dict]
    task: SweepTask


@dataclass(frozen=True)
class SweepOutcome:
    """A finished sweep: the mergeable artifact plus run telemetry.

    ``merged`` is the deterministic artifact (identical for every
    worker count); ``elapsed``/``workers`` describe *this* execution
    and stay out of it.
    """

    merged: dict
    elapsed: float
    workers: int

    @property
    def points_per_sec(self) -> float:
        n = len(self.merged["points"])
        return n / self.elapsed if self.elapsed > 0 else float("inf")

    def to_json(self) -> str:
        """The canonical artifact encoding (sorted keys, 2-space indent)."""
        return json.dumps(self.merged, indent=2, sort_keys=True) + "\n"


def expand_grid(spec: SweepSpec) -> list[SweepTask]:
    """Enumerate the grid in canonical (machine, mode, scale, fault,
    cache, seed) order."""
    tasks: list[SweepTask] = []
    index = 0
    for machine in spec.machines:
        for mode in spec.modes:
            for scale in spec.scales:
                for fault_rate in spec.faults:
                    for cache in spec.cache:
                        for seed in spec.seeds:
                            tasks.append(SweepTask(
                                index=index, kind=spec.kind,
                                workload=spec.workload,
                                machine=machine, mode=mode, scale=scale,
                                seed=seed, jobs=spec.jobs,
                                fault_rate=fault_rate,
                                fault_seed=spec.fault_seed,
                                checkpoint=spec.checkpoint,
                                cache=cache,
                            ))
                            index += 1
    return tasks


def _machine_spec(name: str):
    from repro.harness.sched import sched_testbed
    from repro.platform import cori_haswell, summit, testbed

    table = {
        "summit": summit,
        "cori": cori_haswell,
        "cori-haswell": cori_haswell,
        "testbed": testbed,
        "sched-testbed": sched_testbed,
    }
    if name not in table:
        raise ValueError(
            f"unknown machine {name!r}; choose from {sorted(table)}"
        )
    return table[name]()


def _run_workload_point(task: SweepTask) -> dict:
    from repro.cli import _workload_entry

    machine = _machine_spec(task.machine)
    program_factory, config_factory, prepopulate_factory, op = (
        _workload_entry(task.workload)
    )
    config = config_factory()
    prepopulate = (
        prepopulate_factory(config) if prepopulate_factory is not None
        else None
    )
    cache_mode = None if task.cache == "none" else task.cache
    result = run_experiment(
        machine, task.workload, program_factory, config, mode=task.mode,
        nranks=int(task.scale), day=task.seed,
        contention=ContentionModel(seed=0), prepopulate=prepopulate, op=op,
        cache_mode=cache_mode,
    )
    return asdict(result)


def _run_sched_point(task: SweepTask) -> dict:
    from repro.faults import chaos_config
    from repro.harness.sched import run_fleet
    from repro.sched import StreamConfig

    machine = _machine_spec(task.machine)
    cfg = StreamConfig(
        n_jobs=task.jobs, seed=task.seed, mean_interarrival=task.scale,
        rank_choices=(4, 8, 16),
    )
    # Mix the stream seed into the fault seed (a fixed odd prime keeps
    # the map injective) so each stream meets its own crash schedule,
    # yet the pair replays bit-identically.
    fault = chaos_config(task.fault_rate,
                         seed=task.fault_seed + 7919 * task.seed)
    metrics = run_fleet(machine, cfg, task.mode, fault_config=fault,
                        checkpoint_restart=task.checkpoint)
    return asdict(metrics)


def run_point(task: SweepTask) -> dict:
    """Run one grid point with crash isolation; never raises.

    The returned dict is JSON-ready.  Failures are recorded, not
    propagated: fault-taxonomy errors keep their class name (family
    ``"fault"``), everything else is a worker crash (family
    ``"crash"``).
    """
    point = {
        "index": task.index,
        "kind": task.kind,
        "workload": task.workload,
        "machine": task.machine,
        "mode": task.mode,
        "scale": task.scale,
        "seed": task.seed,
        "fault_rate": task.fault_rate,
        "cache": task.cache,
        "ok": False,
        "error": None,
        "metrics": None,
    }
    try:
        if task.kind == "sched":
            point["metrics"] = _run_sched_point(task)
        else:
            point["metrics"] = _run_workload_point(task)
        point["ok"] = True
    except FaultError as exc:
        point["error"] = {
            "family": "fault",
            "kind": type(exc).__name__,
            "message": str(exc),
        }
    except Exception as exc:
        point["error"] = {
            "family": "crash",
            "kind": type(exc).__name__,
            "message": str(exc),
        }
    return point


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
) -> SweepOutcome:
    """Run the whole grid; returns the merged artifact plus telemetry.

    ``workers > 1`` fans points across a ``multiprocessing`` pool
    (chunk size 1, unordered collection — stragglers never serialize
    the queue).  The merged artifact is sorted by task index, so it is
    byte-identical for every worker count.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tasks = expand_grid(spec)
    total = len(tasks)
    points: list[dict] = []
    t0 = time.perf_counter()
    if workers == 1 or total <= 1:
        for task in tasks:
            point = run_point(task)
            points.append(point)
            if progress is not None:
                progress(len(points), total, point)
    else:
        with multiprocessing.Pool(processes=min(workers, total)) as pool:
            for point in pool.imap_unordered(run_point, tasks, chunksize=1):
                points.append(point)
                if progress is not None:
                    progress(len(points), total, point)
    elapsed = time.perf_counter() - t0
    points.sort(key=lambda p: p["index"])
    merged = {
        "schema": "repro-sweep/v1",
        "spec": asdict(spec),
        "points": points,
    }
    return SweepOutcome(merged=merged, elapsed=elapsed, workers=workers)


def merged_results(merged: dict) -> list[PointResult]:
    """Typed points from a merged artifact (or ``SweepOutcome.merged``)."""
    spec = merged["spec"]
    out = []
    for p in merged["points"]:
        out.append(PointResult(
            index=p["index"], ok=p["ok"], error=p["error"],
            metrics=p["metrics"],
            task=SweepTask(
                index=p["index"], kind=p["kind"], workload=p["workload"],
                machine=p["machine"], mode=p["mode"], scale=p["scale"],
                seed=p["seed"], jobs=spec["jobs"],
                fault_rate=p.get("fault_rate", 0.0),
                fault_seed=spec.get("fault_seed", 0),
                checkpoint=spec.get("checkpoint", True),
                cache=p.get("cache", "none"),
            ),
        ))
    return out


def merged_sweep_points(merged: dict) -> list[SweepPoint]:
    """Reduce a merged *workload* sweep to the paper's plotted points.

    Reconstructs :class:`~repro.harness.experiment.ExperimentResult`
    rows from the successful points and funnels them through the
    existing :func:`~repro.harness.sweep.best_by_config`, so downstream
    figure code consumes engine output unchanged.  Failed points are
    skipped — a crashed day simply contributes no observation, the
    same as a lost batch job.
    """
    results = []
    for p in merged["points"]:
        if p["ok"] and p["kind"] == "workload":
            results.append(ExperimentResult(**p["metrics"]))
    return best_by_config(results)


def sweepable_grids() -> list[tuple[str, str]]:
    """(name, description) of the grids ``repro sweep`` can enumerate."""
    from repro.cli import _workload_table

    grids = [
        (f"workload:{name}",
         f"machines x (sync|async) x ranks x seeds — {entry[4]}")
        for name, entry in sorted(_workload_table().items())
    ]
    grids.append((
        "sched",
        "machines x (fifo|backfill|io-aware) x loads x fault rates x "
        "seeds — multi-tenant job streams, optional chaos axis",
    ))
    return grids
