"""Checkpoint-restart under failure: goodput and the data-loss window.

The paper's evaluation measures steady-state bandwidth; this experiment
measures what checkpoints are *for* — recovering from a mid-run kill.
A job writing periodic checkpoints is killed mid-epoch; progress is
whatever reached **durable** storage by then.  The async VOL changes
the durability story in both directions:

- *Risk*: an async checkpoint is "written" (``t_unblocked``) long
  before it is durable (``t_complete``) — a kill inside that gap loses
  a checkpoint a synchronous writer would have kept.
- *Resilience*: injected storage faults are absorbed by the connector's
  retry + sync-fallback ladder, while a synchronous writer surfaces the
  same fault to the application, which dies on the spot and forfeits
  every epoch after it.

:func:`run_recovery` plays one kill-and-restart cycle and reports the
paper-style bottom line: the **data-loss window** (kill time minus the
moment the last durable checkpoint landed) and **goodput** (useful
compute seconds per wall-clock second across kill + restart).
:func:`recovery_sweep` runs the sync-vs-async comparison across fault
rates — the ``fig_faults`` figure and ``benchmarks/bench_faults.py``
both sit on top of it.  Everything is deterministic per seed: the sweep
also returns each run's fault-trace signature so CI can gate on
replay-identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.sim import Engine
from repro.mpi import MPIJob
from repro.platform import Cluster
from repro.platform.spec import MachineSpec
from repro.hdf5 import FLOAT64, H5Library
from repro.faults import FaultConfig, FaultInjector
from repro.harness.experiment import build_vol
from repro.workloads.restart import RestartConfig, restart_program

__all__ = ["RecoveryResult", "durable_progress", "recovery_sweep",
           "run_recovery"]


@dataclass(frozen=True)
class RecoveryResult:
    """One kill-and-restart cycle's outcome."""

    machine: str
    mode: str
    nranks: int
    fault_rate: float
    #: Simulated time at which the first run was killed.
    t_kill: float
    #: Checkpoints the application wanted durable.
    checkpoints: int
    #: Contiguous-from-zero checkpoints durable at the kill.
    durable_checkpoints: int
    #: Checkpoints the app had *issued* by the kill that were not yet
    #: durable (the async-staging exposure).
    lost_checkpoints: int
    #: ``t_kill`` minus the completion time of the newest durable
    #: checkpoint (all progress since then is re-done after restart).
    data_loss_window: float
    #: Slowest rank's restart-read time in the second run.
    restart_seconds: float
    #: Wall time of the restart run (0 when nothing was lost).
    restart_wall: float
    #: ``t_kill + restart_wall``.
    total_wall: float
    #: Useful compute seconds per wall second across both runs.
    goodput: float
    #: Reliable-path completions in the killed run (async recovery).
    fallbacks: int
    #: Transient-fault retries in the killed run.
    retries: int
    #: Fault-trace signature of the killed run (determinism gate).
    fault_signature: tuple


def _build(machine: MachineSpec, mode: str, nranks: int,
           ranks_per_node: Optional[int],
           fault_config: Optional[FaultConfig]):
    """One engine/cluster/lib/vol/job stack, with optional injector."""
    engine = Engine()
    rpn = ranks_per_node or machine.default_ranks_per_node
    cluster = Cluster(engine, machine, math.ceil(nranks / rpn))
    injector = None
    if fault_config is not None:
        injector = FaultInjector(fault_config).attach(cluster)
    lib = H5Library(cluster)
    vol_kwargs = {}
    if mode == "async" and injector is not None:
        vol_kwargs["faults"] = injector
    vol = build_vol(mode, **vol_kwargs)
    job = MPIJob(cluster, nranks, ranks_per_node=rpn)
    return engine, lib, vol, job, injector


def _clean_wall(machine: MachineSpec, mode: str, nranks: int,
                config: RestartConfig,
                ranks_per_node: Optional[int]) -> float:
    """Wall time of a fault-free, uninterrupted run (the kill anchor)."""
    _, lib, vol, job, _ = _build(machine, mode, nranks, ranks_per_node, None)
    results = job.run(restart_program(lib, vol, config))
    return max(finish for _, finish in results)


def durable_progress(log, nranks: int, t_kill: float,
                     checkpoints: int) -> tuple[int, float, int]:
    """Scan a killed run's log for checkpoint durability.

    Returns ``(n_durable, durable_at, lost)``: the count of
    contiguous-from-zero checkpoints durable on every rank by
    ``t_kill``, the completion time of the newest one (0 when none),
    and the count of further checkpoints issued but not durable.
    Shared with the scheduler's requeue path, which replays the same
    scan over a node-failure victim's private IOLog to decide where the
    requeued job restarts.
    """
    by_phase: dict[int, list] = {}
    for r in log.records:
        if r.op == "write" and r.phase is not None and r.phase >= 0:
            by_phase.setdefault(r.phase, []).append(r)
    n_durable = 0
    durable_at = 0.0
    for k in range(checkpoints):
        recs = by_phase.get(k, [])
        done_ranks = {r.rank for r in recs
                      if math.isfinite(r.t_complete) and r.t_complete <= t_kill}
        if len(done_ranks) < nranks:
            break
        n_durable = k + 1
        durable_at = max(r.t_complete for r in recs)
    lost = sum(1 for k in by_phase if k >= n_durable)
    return n_durable, durable_at, lost


def run_recovery(
    machine: MachineSpec,
    mode: str,
    nranks: int,
    config: Optional[RestartConfig] = None,
    kill_fraction: float = 0.6,
    fault_config: Optional[FaultConfig] = None,
    ranks_per_node: Optional[int] = None,
    t_kill: Optional[float] = None,
) -> RecoveryResult:
    """Kill a checkpointing job mid-epoch, restart from the last durable
    checkpoint, and report goodput + data-loss window.

    ``t_kill`` defaults to ``kill_fraction`` of a fault-free reference
    run's wall time, so the kill lands mid-campaign for either mode.
    The killed run sees ``fault_config``'s injected faults; the restart
    runs clean (the storm has passed), which isolates the *killed* run's
    durability behaviour in the comparison.
    """
    if not 0.0 < kill_fraction < 1.0:
        raise ValueError(f"kill_fraction must be in (0,1), got {kill_fraction}")
    if config is None:
        config = RestartConfig()
    if config.restart_from is not None:
        raise ValueError("run_recovery drives restart_from itself")
    if t_kill is None:
        t_kill = kill_fraction * _clean_wall(
            machine, mode, nranks, config, ranks_per_node)

    # -- run 1: the job that dies ---------------------------------------
    engine, lib, vol, job, injector = _build(
        machine, mode, nranks, ranks_per_node, fault_config)
    procs = job.launch(restart_program(lib, vol, config))
    for proc in procs:
        # Subscribe to each rank's terminal event so a rank dying on an
        # un-retried fault (the sync path) is recorded instead of
        # aborting the engine — this experiment expects casualties.
        proc.done._wait(lambda ev: None)
    engine.run(until=t_kill)
    n_durable, durable_at, lost = durable_progress(
        vol.log, nranks, t_kill, config.checkpoints)
    data_loss_window = t_kill - durable_at

    # -- run 2: restart from the newest durable checkpoint --------------
    remaining = config.checkpoints - n_durable
    restart_seconds = 0.0
    restart_wall = 0.0
    if remaining > 0:
        _, lib2, vol2, job2, _ = _build(
            machine, mode, nranks, ranks_per_node, None)
        n_global = config.elems_per_rank * nranks
        restart_from = None
        if n_durable > 0:
            restart_from = n_durable - 1
            lib2.prepopulate(config.path, {
                config.checkpoint_name(i): ((n_global,), FLOAT64)
                for i in range(n_durable)
            })
        cfg2 = replace(config, checkpoints=remaining,
                       restart_from=restart_from)
        results = job2.run(restart_program(lib2, vol2, cfg2))
        restart_seconds = max(rs for rs, _ in results)
        restart_wall = max(finish for _, finish in results)

    total_wall = t_kill + restart_wall
    useful = config.checkpoints * config.compute_seconds
    return RecoveryResult(
        machine=machine.name,
        mode=mode,
        nranks=nranks,
        fault_rate=(fault_config.write_error_rate
                    if fault_config is not None else 0.0),
        t_kill=t_kill,
        checkpoints=config.checkpoints,
        durable_checkpoints=n_durable,
        lost_checkpoints=lost,
        data_loss_window=data_loss_window,
        restart_seconds=restart_seconds,
        restart_wall=restart_wall,
        total_wall=total_wall,
        goodput=useful / total_wall if total_wall > 0 else float("inf"),
        fallbacks=getattr(vol, "fallbacks", 0),
        retries=getattr(vol, "retries", 0),
        fault_signature=(injector.signature() if injector is not None else ()),
    )


def recovery_sweep(
    machine: MachineSpec,
    nranks: int,
    fault_rates: tuple[float, ...] = (0.0, 0.02, 0.1),
    config: Optional[RestartConfig] = None,
    kill_fraction: float = 0.6,
    seed: int = 0,
    ranks_per_node: Optional[int] = None,
) -> list[RecoveryResult]:
    """Sync-vs-async recovery across flaky-write fault rates.

    One :func:`run_recovery` per (mode, rate); rate 0 runs with no
    injector at all (the zero-cost-off path).  Deterministic per
    ``seed``.
    """
    results = []
    for mode in ("sync", "async"):
        for rate in fault_rates:
            fc = (FaultConfig(seed=seed, write_error_rate=rate)
                  if rate > 0.0 else None)
            results.append(run_recovery(
                machine, mode, nranks, config=config,
                kill_fraction=kill_fraction, fault_config=fc,
                ranks_per_node=ranks_per_node,
            ))
    return results
