"""Persistence for experiment campaigns.

Sweeps at the paper profile take real wall-clock time; saving their raw
results lets the analysis (fits, figures, crossover searches) be rerun
without resimulating.  Results serialize to a small JSON document with
a format version for forward compatibility.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Sequence, Union

from repro.harness.experiment import ExperimentResult

__all__ = ["load_results", "save_results"]

FORMAT_VERSION = 1


def save_results(results: Sequence[ExperimentResult],
                 path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write experiment results to ``path`` as JSON; returns the path."""
    path = pathlib.Path(path)
    doc = {
        "format": "repro-experiment-results",
        "version": FORMAT_VERSION,
        "results": [dataclasses.asdict(r) for r in results],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1))
    return path


def load_results(path: Union[str, pathlib.Path]) -> list[ExperimentResult]:
    """Read experiment results saved by :func:`save_results`."""
    path = pathlib.Path(path)
    doc = json.loads(path.read_text())
    if doc.get("format") != "repro-experiment-results":
        raise ValueError(f"{path} is not a repro results file")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path} has format version {doc.get('version')}, "
            f"expected {FORMAT_VERSION}"
        )
    return [ExperimentResult(**row) for row in doc["results"]]
