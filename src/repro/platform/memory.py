"""Memory-copy bandwidth models (paper §III-B1).

The paper measures two kinds of transactional overhead:

- **CPU applications**: a ``memcpy`` between two host buffers.  The
  measured bandwidth is "constant after 32 MB"; below that the per-copy
  setup cost matters.
- **GPU applications**: a blocking device↔host copy.  The cost is
  "amortized for data sizes greater than 10 MB"; with pinned host
  memory the peak approaches the link's theoretical maximum (NVLink 2.0:
  50 GB/s on Summit; PCIe 3.0 x16: 15.75 GB/s elsewhere), while pageable
  memory pays an extra bounce-buffer copy.

Both are captured by a saturating :class:`BandwidthCurve`
``B(s) = peak * s / (s + s0)`` whose half-saturation size ``s0`` is
derived from the size at which the curve reaches a target fraction of
peak (95% by default), matching the "constant after X MB" observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BandwidthCurve", "GpuLinkSpec", "MemcpySpec"]

MiB = float(1 << 20)
GiB = float(1 << 30)
GB = 1e9


@dataclass(frozen=True)
class BandwidthCurve:
    """Saturating effective-bandwidth curve ``B(s) = peak*s/(s+s0)``.

    ``peak`` is the asymptotic bandwidth in bytes/second; ``s0`` the
    half-saturation transfer size in bytes (at ``s = s0`` the effective
    bandwidth is half of peak).
    """

    peak: float
    s0: float

    def __post_init__(self) -> None:
        if self.peak <= 0:
            raise ValueError(f"peak must be positive, got {self.peak}")
        if self.s0 < 0:
            raise ValueError(f"s0 must be non-negative, got {self.s0}")

    @classmethod
    def from_saturation(
        cls, peak: float, saturation_size: float, fraction: float = 0.95
    ) -> "BandwidthCurve":
        """Build a curve that reaches ``fraction`` of peak at ``saturation_size``.

        Solving ``peak*s/(s+s0) = fraction*peak`` gives
        ``s0 = s*(1-fraction)/fraction``.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0,1), got {fraction}")
        if saturation_size <= 0:
            raise ValueError("saturation_size must be positive")
        return cls(peak=peak, s0=saturation_size * (1.0 - fraction) / fraction)

    def bandwidth(self, nbytes: float) -> float:
        """Effective bandwidth in bytes/second for a transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        if nbytes == 0.0:
            return 0.0
        return self.peak * nbytes / (nbytes + self.s0)

    def transfer_time(self, nbytes: float) -> float:
        """Blocking time in seconds: ``s/B(s) = (s + s0)/peak``."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        if nbytes == 0.0:
            return 0.0
        return (nbytes + self.s0) / self.peak


@dataclass(frozen=True)
class MemcpySpec:
    """Host memory-copy characteristics of a node.

    ``per_copy`` bounds a single copy stream (one rank's staging copy);
    ``node_aggregate`` bounds all concurrent copies on the node (the
    DRAM controller).  The paper's "constant after 32 MB" observation
    fixes the default saturation size.
    """

    per_copy: BandwidthCurve = field(
        default_factory=lambda: BandwidthCurve.from_saturation(
            peak=8.0 * GB, saturation_size=32 * MiB
        )
    )
    node_aggregate: float = 40.0 * GB

    def __post_init__(self) -> None:
        if self.node_aggregate <= 0:
            raise ValueError("node_aggregate must be positive")


@dataclass(frozen=True)
class GpuLinkSpec:
    """Device↔host transfer characteristics (paper §III-B1).

    ``pinned`` approaches the link's theoretical peak; ``pageable_factor``
    is the bandwidth fraction achieved without pinning (extra bounce
    copy through a DMA-able buffer).  Amortized above ~10 MB.
    """

    link_peak: float = 50.0 * GB  # NVLink 2.0 (Summit)
    pageable_factor: float = 0.45
    saturation_size: float = 10 * MiB

    def __post_init__(self) -> None:
        if self.link_peak <= 0:
            raise ValueError("link_peak must be positive")
        if not 0.0 < self.pageable_factor <= 1.0:
            raise ValueError("pageable_factor must be in (0,1]")

    def curve(self, pinned: bool = True) -> BandwidthCurve:
        """Effective-bandwidth curve for a pinned or pageable copy."""
        peak = self.link_peak if pinned else self.link_peak * self.pageable_factor
        return BandwidthCurve.from_saturation(
            peak=peak, saturation_size=self.saturation_size
        )

    def transfer_time(self, nbytes: float, pinned: bool = True) -> float:
        """Blocking device↔host copy time in seconds."""
        return self.curve(pinned).transfer_time(nbytes)


#: PCIe 3.0 x16 theoretical peak cited in the paper.
PCIE3_PEAK = 15.75 * GB
#: NVLink 2.0 theoretical peak cited in the paper (Summit).
NVLINK2_PEAK = 50.0 * GB
