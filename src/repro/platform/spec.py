"""Frozen machine-description dataclasses.

Specs are pure data: they can be constructed, compared and serialized
without an engine.  :class:`~repro.platform.cluster.Cluster` turns a
:class:`MachineSpec` into live simulation objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.platform.memory import GpuLinkSpec, MemcpySpec

__all__ = [
    "FileSystemSpec",
    "InterconnectSpec",
    "MachineSpec",
    "NodeSpec",
    "SSDSpec",
]

GB = 1e9
MiB = float(1 << 20)


@dataclass(frozen=True)
class SSDSpec:
    """Node-local SSD (e.g. Summit's 1.6 TB NVMe burst drive)."""

    capacity_bytes: float
    write_bandwidth: float
    read_bandwidth: float

    def __post_init__(self) -> None:
        if min(self.capacity_bytes, self.write_bandwidth, self.read_bandwidth) <= 0:
            raise ValueError("SSD parameters must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: cores, memory behaviour, NIC and optional extras."""

    name: str
    cores: int
    memcpy: MemcpySpec = field(default_factory=MemcpySpec)
    #: Injection bandwidth from this node toward the storage network, B/s.
    nic_bandwidth: float = 12.5 * GB
    gpus: int = 0
    gpu_link: Optional[GpuLinkSpec] = None
    local_ssd: Optional[SSDSpec] = None
    dram_bytes: float = 256e9

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("node needs at least one core")
        if self.nic_bandwidth <= 0:
            raise ValueError("nic_bandwidth must be positive")
        if self.gpus and self.gpu_link is None:
            raise ValueError("GPU-equipped node requires a gpu_link spec")


@dataclass(frozen=True)
class FileSystemSpec:
    """Shared parallel file system characteristics.

    ``kind`` selects the concrete model (:mod:`repro.platform.storage`):

    - ``"gpfs"``: no user-visible striping; the system "reacts to the
      workload", modeled as a per-client efficiency that *degrades for
      small requests* (``efficiency_s0``) — the mechanism behind the
      strong-scaling bandwidth collapse the paper observes on Summit.
    - ``"lustre"``: user-visible striping; a file's ceiling is
      ``stripe_count * ost_bandwidth``, and per-client efficiency also
      degrades for small requests.
    """

    kind: str
    peak_bandwidth: float
    #: Request size at which a client achieves ~half its peak share.
    efficiency_s0: float = 4 * MiB
    #: Fixed metadata/setup latency per I/O request, seconds.
    metadata_latency: float = 2e-3
    #: Extra metadata serialization per already-in-flight client request
    #: (seconds).  Models lock/allocation contention on the server side:
    #: the k-th concurrent request waits ~k*penalty longer, so phases
    #: with many small requests degrade as ranks grow — the mechanism
    #: behind the paper's strong-scaling bandwidth decrease on GPFS.
    client_latency_penalty: float = 0.0
    #: Minimum sustained per-request rate (bytes/second) regardless of
    #: request size — a client's RPC pipeline always keeps some data in
    #: flight.  Lets Lustre aggregate bandwidth keep growing with ranks
    #: in strong scaling until the stripe ceiling binds (Fig. 4d).
    client_floor_rate: float = 1.0
    #: Lustre-only: number of object storage targets and per-OST bandwidth.
    n_osts: int = 0
    ost_bandwidth: float = 0.0
    #: Lustre-only: default stripe count for new files.
    default_stripe_count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("gpfs", "lustre"):
            raise ValueError(f"unknown file system kind: {self.kind!r}")
        if self.peak_bandwidth <= 0:
            raise ValueError("peak_bandwidth must be positive")
        if self.client_latency_penalty < 0:
            raise ValueError("client_latency_penalty must be non-negative")
        if self.client_floor_rate <= 0:
            raise ValueError("client_floor_rate must be positive")
        if self.kind == "lustre":
            if self.n_osts < 1 or self.ost_bandwidth <= 0:
                raise ValueError("lustre spec requires n_osts and ost_bandwidth")
            if not 1 <= self.default_stripe_count <= self.n_osts:
                raise ValueError("default_stripe_count must be in [1, n_osts]")


@dataclass(frozen=True)
class InterconnectSpec:
    """Cost model constants for MPI-style communication.

    A collective over ``p`` ranks moving ``n`` bytes per rank costs
    ``alpha * ceil(log2 p) + n / beta`` (LogP-style tree model).
    """

    #: Per-hop message latency in seconds.
    alpha: float = 2e-6
    #: Point-to-point bandwidth in bytes/second.
    beta: float = 12.0 * GB

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta <= 0:
            raise ValueError("invalid interconnect constants")


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: nodes, file system, interconnect, extras."""

    name: str
    total_nodes: int
    node: NodeSpec
    filesystem: FileSystemSpec
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    #: Default MPI ranks per node used in the paper's runs.
    default_ranks_per_node: int = 1
    #: Optional shared burst buffer bandwidth (Cori: 1.7 TB/s), B/s.
    burst_buffer_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.total_nodes < 1:
            raise ValueError("machine needs at least one node")
        if self.default_ranks_per_node < 1:
            raise ValueError("default_ranks_per_node must be >= 1")

    def max_ranks(self) -> int:
        """Total rank slots at the default ranks-per-node density."""
        return self.total_nodes * self.default_ranks_per_node
