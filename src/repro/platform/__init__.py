"""Simulated HPC platform: machines, memory, storage, contention.

This package encodes the *system configuration* facts of the paper's
§IV-A — Summit (IBM POWER9 + GPFS "Alpine" at 2.5 TB/s, NVLink 2.0,
1.6 TB node-local NVMe) and Cori-Haswell (Cray XC40 + Lustre at
700 GB/s, 72-OST ``stripe_large``, burst buffer at 1.7 TB/s) — as
machine specifications, and builds them into live simulation objects
(:class:`~repro.platform.cluster.Cluster`) composed of links, storage
models and a contention process.
"""

from repro.platform.cluster import Cluster, Node, NodeState
from repro.platform.contention import (
    ContentionModel,
    ContentionProcess,
    ContentionTimeline,
)
from repro.platform.machines import (
    cori_haswell,
    exascale_testbed,
    summit,
    testbed,
)
from repro.platform.memory import BandwidthCurve, GpuLinkSpec, MemcpySpec
from repro.platform.spec import (
    FileSystemSpec,
    InterconnectSpec,
    MachineSpec,
    NodeSpec,
    SSDSpec,
)
from repro.platform.storage import (
    BurstBuffer,
    FileTarget,
    GPFSModel,
    LustreModel,
    NodeLocalSSD,
    ParallelFileSystem,
    make_filesystem,
)

__all__ = [
    "BandwidthCurve",
    "BurstBuffer",
    "Cluster",
    "ContentionModel",
    "ContentionProcess",
    "ContentionTimeline",
    "FileSystemSpec",
    "FileTarget",
    "GPFSModel",
    "GpuLinkSpec",
    "InterconnectSpec",
    "LustreModel",
    "MachineSpec",
    "MemcpySpec",
    "Node",
    "NodeLocalSSD",
    "NodeState",
    "NodeSpec",
    "ParallelFileSystem",
    "SSDSpec",
    "cori_haswell",
    "exascale_testbed",
    "make_filesystem",
    "summit",
    "testbed",
]
