"""Machine presets calibrated from the paper's §IV-A.

Absolute numbers follow the published system configurations where the
paper states them (GPFS 2.5 TB/s, Lustre 700 GB/s, 72-OST
``stripe_large``, NVLink 2.0 at 50 GB/s, PCIe 3.0 at 15.75 GB/s,
6 ranks/node on Summit, 32 ranks/node on Cori-Haswell) and public
system documentation otherwise (per-node injection bandwidth, node-local
NVMe).  Only the *shapes* of the resulting curves are validated against
the paper (see DESIGN.md §4); see EXPERIMENTS.md for the comparison.
"""

from __future__ import annotations

from repro.platform.memory import (
    NVLINK2_PEAK,
    PCIE3_PEAK,
    BandwidthCurve,
    GpuLinkSpec,
    MemcpySpec,
)
from repro.platform.spec import (
    FileSystemSpec,
    InterconnectSpec,
    MachineSpec,
    NodeSpec,
    SSDSpec,
)

__all__ = ["cori_haswell", "exascale_testbed", "summit", "testbed"]

GB = 1e9
TB = 1e12
MiB = float(1 << 20)


def summit() -> MachineSpec:
    """OLCF Summit: 4,608 nodes, GPFS "Alpine" at 2.5 TB/s peak.

    Calibration notes:

    - 2× POWER9 (22 cores each) + 6 V100, NVLink 2.0 (50 GB/s) to GPUs,
      1.6 TB node-local NVMe — all from §IV-A / §II.
    - Per-node injection: dual-rail EDR InfiniBand, 25 GB/s.  With the
      size-dependent GPFS client efficiency this saturates the 2.5 TB/s
      Alpine ceiling at roughly 128 nodes for 32 MiB requests, matching
      Fig. 3a's "synchronous bandwidth saturates at 768 ranks (128
      nodes)".
    - Host memcpy: single-stream ~10 GB/s saturating at 32 MiB
      (paper §III-B1), ~48 GB/s per-node aggregate; 6 ranks/node give
      each staging copy a constant ~8 GB/s share, which is what makes
      the async aggregate bandwidth scale linearly in Fig. 3a.
    """
    node = NodeSpec(
        name="summit-node",
        cores=44,
        memcpy=MemcpySpec(
            per_copy=BandwidthCurve.from_saturation(
                peak=10.0 * GB, saturation_size=32 * MiB
            ),
            node_aggregate=48.0 * GB,
        ),
        nic_bandwidth=25.0 * GB,
        gpus=6,
        gpu_link=GpuLinkSpec(link_peak=NVLINK2_PEAK),
        local_ssd=SSDSpec(
            capacity_bytes=1.6e12,
            write_bandwidth=2.1 * GB,
            read_bandwidth=5.5 * GB,
        ),
        dram_bytes=512e9,
    )
    fs = FileSystemSpec(
        kind="gpfs",
        peak_bandwidth=2.5 * TB,
        efficiency_s0=8 * MiB,
        metadata_latency=3e-3,
        # GPFS allocates storage resources reactively; many concurrent
        # small requests serialize on block allocation, which is what
        # drags the strong-scaling aggregate bandwidth *down* (Fig. 4a/4c).
        client_latency_penalty=5e-6,
        client_floor_rate=25e6,
    )
    return MachineSpec(
        name="summit",
        total_nodes=4608,
        node=node,
        filesystem=fs,
        interconnect=InterconnectSpec(alpha=1.5e-6, beta=12.5 * GB),
        default_ranks_per_node=6,
    )


def cori_haswell() -> MachineSpec:
    """NERSC Cori-Haswell: 2,388 nodes, Lustre at 700 GB/s peak.

    Calibration notes:

    - 32 ranks/node (paper §V-A), Aries interconnect.
    - The paper follows NERSC best practice: 72 OSTs (``stripe_large``)
      for every run.  With ~2.9 GB/s per OST a 72-stripe file tops out
      near 208 GB/s; per-node injection ~6.5 GB/s then saturates that
      ceiling around 32 nodes = 1024 ranks, matching Fig. 3b.
    - Host memcpy: single-stream ~6 GB/s, ~25 GB/s per-node aggregate;
      32 ranks/node share it, so per-rank staging bandwidth (~0.8 GB/s)
      is the async ceiling — visibly lower per rank than Summit, which
      is why small-request workloads (Nyx small, Fig. 4b) stop scaling.
    - Burst buffer: 1.7 TB/s (§IV-A), exposed for the staging-target
      ablation.
    """
    node = NodeSpec(
        name="cori-haswell-node",
        cores=32,
        memcpy=MemcpySpec(
            per_copy=BandwidthCurve.from_saturation(
                peak=6.0 * GB, saturation_size=32 * MiB
            ),
            node_aggregate=25.0 * GB,
        ),
        nic_bandwidth=6.5 * GB,
        gpus=0,
        gpu_link=None,
        local_ssd=None,
        dram_bytes=128e9,
    )
    fs = FileSystemSpec(
        kind="lustre",
        peak_bandwidth=700.0 * GB,
        efficiency_s0=4 * MiB,
        metadata_latency=2e-3,
        # Lustre clients keep their RPC pipelines busy even for small
        # requests (floor), and its distributed lock manager serializes
        # far less than GPFS block allocation (small penalty) — so
        # strong-scaling aggregate bandwidth *grows* until the stripe
        # ceiling binds (Fig. 4d).
        client_latency_penalty=0.3e-6,
        client_floor_rate=100e6,
        n_osts=248,
        ost_bandwidth=2.9 * GB,
        default_stripe_count=72,
    )
    return MachineSpec(
        name="cori-haswell",
        total_nodes=2388,
        node=node,
        filesystem=fs,
        interconnect=InterconnectSpec(alpha=1.3e-6, beta=10.0 * GB),
        default_ranks_per_node=32,
        burst_buffer_bandwidth=1.7 * TB,
    )


def exascale_testbed(nodes: int = 64) -> MachineSpec:
    """A forward-looking three-tier machine (paper §I outlook).

    "Upcoming exascale computing architectures are expected to contain a
    fast node-local storage layer, a high performance storage layer, and
    a high capacity storage layer."  This preset wires all three: per-
    node NVMe (fast local tier), a shared flash burst buffer (high
    performance tier) and a large disk-backed PFS (capacity tier), with
    node counts kept modest so exploratory simulations stay cheap.
    Numbers loosely follow Frontier-class public specifications.
    """
    node = NodeSpec(
        name="exascale-node",
        cores=64,
        memcpy=MemcpySpec(
            per_copy=BandwidthCurve.from_saturation(
                peak=20.0 * GB, saturation_size=32 * MiB
            ),
            node_aggregate=100.0 * GB,
        ),
        nic_bandwidth=50.0 * GB,
        gpus=4,
        gpu_link=GpuLinkSpec(link_peak=100.0 * GB,  # Infinity-Fabric class
                             saturation_size=10 * MiB),
        local_ssd=SSDSpec(
            capacity_bytes=3.84e12,
            write_bandwidth=4.0 * GB,
            read_bandwidth=8.0 * GB,
        ),
        dram_bytes=512e9,
    )
    fs = FileSystemSpec(
        kind="lustre",
        peak_bandwidth=5.0 * TB,  # capacity tier (Orion-class, HDD+flash)
        efficiency_s0=8 * MiB,
        metadata_latency=1.5e-3,
        client_latency_penalty=1e-6,
        client_floor_rate=200e6,
        n_osts=450,
        ost_bandwidth=11.0 * GB,
        default_stripe_count=8,
    )
    return MachineSpec(
        name="exascale-testbed",
        total_nodes=nodes,
        node=node,
        filesystem=fs,
        interconnect=InterconnectSpec(alpha=1.0e-6, beta=25.0 * GB),
        default_ranks_per_node=8,
        burst_buffer_bandwidth=10.0 * TB,  # performance tier
    )


def testbed(
    nodes: int = 8,
    ranks_per_node: int = 4,
    pfs_peak: float = 40.0 * GB,
    nic: float = 10.0 * GB,
) -> MachineSpec:
    """A small fictional machine for tests and quickstart examples.

    Keeps simulations tiny while preserving the same qualitative
    behaviour (per-node NIC, shared PFS ceiling, size-dependent client
    efficiency).
    """
    node = NodeSpec(
        name="testbed-node",
        cores=ranks_per_node,
        memcpy=MemcpySpec(
            per_copy=BandwidthCurve.from_saturation(
                peak=8.0 * GB, saturation_size=32 * MiB
            ),
            node_aggregate=30.0 * GB,
        ),
        nic_bandwidth=nic,
        gpus=1,
        gpu_link=GpuLinkSpec(link_peak=PCIE3_PEAK),
        local_ssd=SSDSpec(
            capacity_bytes=1e12, write_bandwidth=2.0 * GB, read_bandwidth=3.5 * GB
        ),
        dram_bytes=64e9,
    )
    fs = FileSystemSpec(
        kind="gpfs",
        peak_bandwidth=pfs_peak,
        efficiency_s0=4 * MiB,
        metadata_latency=1e-3,
    )
    return MachineSpec(
        name="testbed",
        total_nodes=nodes,
        node=node,
        filesystem=fs,
        default_ranks_per_node=ranks_per_node,
    )
