"""Storage models: GPFS, Lustre, node-local SSD, burst buffer.

All storage traffic is expressed as flows on the shared
:class:`~repro.sim.network.Network`.  A write from rank *r* on node *n*
to the parallel file system traverses:

``[node n's NIC link] -> [per-file link (Lustre striping ceiling)] ->
[file-system backend link]``

with a per-flow rate cap ``nic_peak * eff(request_size)`` where
``eff(s) = s / (s + s0)`` models the client-side efficiency loss for
small requests (GPFS "reacts to the workload"; Lustre clients pay
per-RPC overhead).  This size-dependent efficiency is the mechanism
behind the paper's strong-scaling observation: as ranks grow and
per-rank data shrinks, synchronous aggregate bandwidth *decreases*
(Fig. 4, Fig. 6), while the async staging copy cost shrinks.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Engine
from repro.sim.network import Flow, Link, Network
from repro.platform.spec import FileSystemSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.cluster import Node

__all__ = [
    "BurstBuffer",
    "FileTarget",
    "GPFSModel",
    "LustreModel",
    "NodeLocalSSD",
    "ParallelFileSystem",
    "make_filesystem",
]


class FileTarget:
    """Storage-side identity of one file on a parallel file system.

    Holds the extra links a flow touching this file must traverse
    (empty for GPFS; the striping-ceiling link for Lustre) plus simple
    accounting used by tests and the harness.
    """

    __slots__ = ("path", "fs", "stripe_count", "links", "bytes_written", "bytes_read")

    def __init__(
        self,
        path: str,
        fs: "ParallelFileSystem",
        stripe_count: int = 0,
        links: tuple[Link, ...] = (),
    ):
        self.path = path
        self.fs = fs
        self.stripe_count = stripe_count
        self.links = links
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FileTarget {self.path!r} stripes={self.stripe_count}>"


class ParallelFileSystem:
    """Common machinery for shared parallel file systems."""

    kind = "abstract"

    def __init__(self, engine: Engine, network: Network, spec: FileSystemSpec,
                 name: str = "pfs"):
        self.engine = engine
        self.network = network
        self.spec = spec
        self.name = name
        self.backend = Link(f"{name}.backend", spec.peak_bandwidth)
        #: Link -> nominal (uncontended) capacity, for contention scaling.
        self._base_capacities: dict[Link, float] = {
            self.backend: spec.peak_bandwidth
        }
        self._availability = 1.0
        #: Multiplicative fault-layer capacity factor (degradation
        #: windows), composed with contention availability.
        self._fault_factor = 1.0
        #: Optional chaos hook ``(op, node, target, nbytes, tag)`` called
        #: as each request is issued; may raise a
        #: :class:`repro.faults.TransientIOError`.  ``None`` (default)
        #: keeps the request path byte-identical to a fault-free build.
        self.fault_hook = None
        self._targets: dict[str, FileTarget] = {}
        #: In-flight request count (drives the metadata-serialization
        #: latency term).
        self._inflight = 0
        #: (nbytes, client_peak) -> cap.  Sweeps issue the same request
        #: size from thousands of ranks; the cache keeps those caps
        #: byte-identical (flows land in one flow class of the fast-path
        #: allocator) and skips the per-request arithmetic.
        self._cap_cache: dict[tuple[float, float], float] = {}

    # -- file namespace --------------------------------------------------
    def open_file(self, path: str, stripe_count: Optional[int] = None) -> FileTarget:
        """Open (or create) the storage target for ``path``.

        Re-opening an existing path returns the same target, so several
        jobs in one simulation share bandwidth ceilings consistently
        (e.g. BD-CATS-IO reading what VPIC-IO wrote).
        """
        if path in self._targets:
            return self._targets[path]
        target = self._make_target(path, stripe_count)
        self._targets[path] = target
        return target

    def _make_target(self, path: str, stripe_count: Optional[int]) -> FileTarget:
        raise NotImplementedError

    # -- performance model -----------------------------------------------
    def client_efficiency(self, nbytes: float) -> float:
        """Fraction of a client's peak achieved for one request of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (nbytes + self.spec.efficiency_s0)

    def client_cap(self, nbytes: float, client_peak: float) -> float:
        """Per-flow rate cap for one client request.

        The size-dependent efficiency shrinks the cap for small
        requests; the floor models the client RPC pipeline's minimum
        sustained rate (and avoids zero-rate stalls).  Results are
        memoized per ``(nbytes, client_peak)``: same request shape, same
        cap float — which also lets the network's fast path aggregate
        the resulting flows into one flow class.
        """
        key = (nbytes, client_peak)
        cap = self._cap_cache.get(key)
        if cap is None:
            eff = self.client_efficiency(nbytes)
            cap = max(client_peak * eff, self.spec.client_floor_rate)
            self._cap_cache[key] = cap
        return cap

    # -- data movement -----------------------------------------------------
    def write(self, node: "Node", target: FileTarget, nbytes: float,
              tag=None) -> Flow:
        """Start one client's write of ``nbytes`` to ``target``.

        Raises a :class:`repro.faults.TransientIOError` *before any
        bytes move* if a fault injector rejects the request, so a failed
        request is always retry-safe (no partial accounting).
        """
        if self.fault_hook is not None:
            self.fault_hook("write", node, target, nbytes, tag)
        target.bytes_written += nbytes
        return self._transfer(node, target, nbytes, tag)

    def read(self, node: "Node", target: FileTarget, nbytes: float,
             tag=None) -> Flow:
        """Start one client's read of ``nbytes`` from ``target``."""
        if self.fault_hook is not None:
            self.fault_hook("read", node, target, nbytes, tag)
        target.bytes_read += nbytes
        return self._transfer(node, target, nbytes, tag)

    def _transfer(self, node: "Node", target: FileTarget, nbytes: float,
                  tag) -> Flow:
        links = [node.nic_link, *target.links, self.backend]
        # Server-side metadata serialization: the k-th concurrent
        # request pays k extra penalties before its data moves.  The
        # latency is quantized so that bulk-synchronous arrivals stay
        # *batched* in the fluid network (a handful of rebalances per
        # phase instead of one per flow — O(F) instead of O(F^2)).
        latency = (self.spec.metadata_latency
                   + self.spec.client_latency_penalty * self._inflight)
        quantum = self.spec.metadata_latency / 4.0
        if quantum > 0.0:
            latency = math.ceil(latency / quantum - 1e-9) * quantum
        self._inflight += 1
        flow = self.network.transfer(
            nbytes,
            links,
            cap=self.client_cap(nbytes, node.spec.nic_bandwidth),
            latency=latency,
            tag=tag,
        )
        flow.done._wait(self._on_flow_done)
        return flow

    def _on_flow_done(self, _event) -> None:
        self._inflight = max(0, self._inflight - 1)

    # -- contention ---------------------------------------------------------
    @property
    def availability(self) -> float:
        """Current fraction of nominal capacity available to this job."""
        return self._availability

    def set_availability(self, factor: float) -> None:
        """Scale every shared storage link to ``factor`` of nominal capacity.

        Models full-system-level contention from other jobs (paper §V-C):
        only *shared* resources are affected; node-local staging links
        are private to the allocation and stay at nominal speed.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"availability factor must be in (0,1], got {factor}")
        if factor == self._availability:
            # Redundant write: capacities cannot change, so don't force
            # a rebalance checkpoint on every in-flight flow.
            return
        self._availability = factor
        self._apply_capacity_factors()

    @property
    def fault_factor(self) -> float:
        """Current fault-layer degradation factor (1.0 = healthy)."""
        return self._fault_factor

    def set_fault_factor(self, factor: float) -> None:
        """Scale shared capacity by a *fault-layer* factor.

        Composes multiplicatively with :meth:`set_availability`, so a
        degradation window injected by :class:`repro.faults.FaultInjector`
        and the contention model's per-day availability never clobber
        each other's state.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"fault factor must be in (0,1], got {factor}")
        if factor == self._fault_factor:
            return
        self._fault_factor = factor
        self._apply_capacity_factors()

    def _apply_capacity_factors(self) -> None:
        factor = self._availability * self._fault_factor
        for link, base in self._base_capacities.items():
            link.set_capacity(base * factor)


class GPFSModel(ParallelFileSystem):
    """GPFS (Summit "Alpine"): no user striping, workload-reactive.

    Files carry no individual ceiling; the global backend link plus the
    size-dependent client efficiency reproduce both the weak-scaling
    saturation and the strong-scaling collapse.
    """

    kind = "gpfs"

    def _make_target(self, path: str, stripe_count: Optional[int]) -> FileTarget:
        if stripe_count is not None:
            raise ValueError("GPFS does not expose user-controlled striping")
        return FileTarget(path, self, stripe_count=0, links=())


class LustreModel(ParallelFileSystem):
    """Lustre (Cori): per-file ceiling of ``stripe_count × ost_bandwidth``."""

    kind = "lustre"

    def _make_target(self, path: str, stripe_count: Optional[int]) -> FileTarget:
        count = stripe_count if stripe_count is not None else self.spec.default_stripe_count
        if not 1 <= count <= self.spec.n_osts:
            raise ValueError(
                f"stripe_count {count} out of range [1, {self.spec.n_osts}]"
            )
        ceiling = min(count * self.spec.ost_bandwidth, self.spec.peak_bandwidth)
        link = Link(f"{self.name}.file({path})", ceiling)
        self._base_capacities[link] = ceiling
        factor = self._availability * self._fault_factor
        if factor != 1.0:
            link.set_capacity(ceiling * factor)
        return FileTarget(path, self, stripe_count=count, links=(link,))


class NodeLocalSSD:
    """A node's private NVMe drive (async staging target option)."""

    def __init__(self, engine: Engine, network: Network, node: "Node"):
        spec = node.spec.local_ssd
        if spec is None:
            raise ValueError(f"node {node.index} has no local SSD")
        self.engine = engine
        self.network = network
        self.node = node
        self.spec = spec
        self.write_link = Link(f"ssd[{node.index}].write", spec.write_bandwidth)
        self.read_link = Link(f"ssd[{node.index}].read", spec.read_bandwidth)
        self.bytes_stored = 0.0
        #: Optional chaos hook ``(op, node_index, nbytes, tag)``; may
        #: raise :class:`repro.faults.SSDFaultError` once the drive has
        #: been failed by an injector schedule.
        self.fault_hook = None

    def write(self, nbytes: float, tag=None) -> Flow:
        """Write ``nbytes`` to the local drive."""
        if self.fault_hook is not None:
            self.fault_hook("write", self.node.index, nbytes, tag)
        if self.bytes_stored + nbytes > self.spec.capacity_bytes:
            raise RuntimeError(
                f"node {self.node.index} SSD full: "
                f"{self.bytes_stored + nbytes:.3g} > {self.spec.capacity_bytes:.3g}"
            )
        self.bytes_stored += nbytes
        return self.network.transfer(nbytes, [self.write_link], tag=tag)

    def read(self, nbytes: float, tag=None) -> Flow:
        """Read ``nbytes`` back from the local drive."""
        if self.fault_hook is not None:
            self.fault_hook("read", self.node.index, nbytes, tag)
        return self.network.transfer(nbytes, [self.read_link], tag=tag)

    def evict(self, nbytes: float) -> None:
        """Release ``nbytes`` of drive space (post-drain cleanup)."""
        self.bytes_stored = max(0.0, self.bytes_stored - nbytes)


class BurstBuffer:
    """Shared SSD tier between compute and the PFS (Cori: 1.7 TB/s)."""

    def __init__(self, engine: Engine, network: Network, bandwidth: float,
                 name: str = "bb"):
        if bandwidth <= 0:
            raise ValueError("burst buffer bandwidth must be positive")
        self.engine = engine
        self.network = network
        self.link = Link(f"{name}.link", bandwidth)

    def write(self, node: "Node", nbytes: float, tag=None) -> Flow:
        """Stage ``nbytes`` from ``node`` into the burst buffer."""
        return self.network.transfer(
            nbytes, [node.nic_link, self.link], tag=tag
        )

    def read(self, node: "Node", nbytes: float, tag=None) -> Flow:
        """Fetch ``nbytes`` from the burst buffer to ``node``."""
        return self.network.transfer(
            nbytes, [node.nic_link, self.link], tag=tag
        )

    def drain_to_pfs(self, pfs: ParallelFileSystem, target: FileTarget,
                     nbytes: float, tag=None) -> Flow:
        """Server-side drain: move staged data to the PFS without
        touching any compute node (the DataElevator pattern, §II-C)."""
        target.bytes_written += nbytes
        return self.network.transfer(
            nbytes, [self.link, *target.links, pfs.backend],
            latency=pfs.spec.metadata_latency, tag=tag,
        )


def make_filesystem(
    engine: Engine, network: Network, spec: FileSystemSpec, name: str = "pfs"
) -> ParallelFileSystem:
    """Instantiate the storage model matching ``spec.kind``."""
    if spec.kind == "gpfs":
        return GPFSModel(engine, network, spec, name=name)
    if spec.kind == "lustre":
        return LustreModel(engine, network, spec, name=name)
    raise ValueError(f"unknown file system kind: {spec.kind!r}")
