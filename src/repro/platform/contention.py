"""Full-system-level contention model (paper §V-C, Fig. 8).

Production file systems are shared by thousands of users; the paper
accounts for this by running every configuration "at least 5 times
across multiple days".  We reproduce the effect with a seeded stochastic
*availability factor*: for each simulated run (a "day"), the shared
storage links operate at a sampled fraction of nominal capacity.
Node-local resources (DRAM staging buffers, local SSDs) belong to the
job's exclusive allocation and are never scaled — which is exactly why
asynchronous I/O hides run-to-run variability in Fig. 8.

The availability factor is ``a = 1 / (1 + L)`` where the interfering
load ``L`` is log-normal.  ``L``'s median and spread are configurable;
defaults give availability mostly in the 0.55–0.95 band with an
occasional bad day, consistent with published I/O variability studies.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.sim.engine import Engine
from repro.platform.storage import ParallelFileSystem

__all__ = ["ContentionModel", "ContentionProcess", "ContentionTimeline"]


class ContentionModel:
    """Seeded sampler of per-run availability factors."""

    def __init__(
        self,
        seed: int = 0,
        median_load: float = 0.25,
        sigma: float = 0.6,
        floor: float = 0.05,
    ):
        if median_load < 0:
            raise ValueError("median_load must be non-negative")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0.0 < floor <= 1.0:
            raise ValueError("floor must be in (0,1]")
        self.seed = seed
        self.median_load = median_load
        self.sigma = sigma
        self.floor = floor

    def availability(self, day: int) -> float:
        """Availability factor for run ``day`` — deterministic per (seed, day)."""
        if self.median_load == 0.0:
            return 1.0
        rng = np.random.default_rng((self.seed, day))
        load = self.median_load * float(
            np.exp(self.sigma * rng.standard_normal())
        )
        return max(self.floor, 1.0 / (1.0 + load))

    def series(self, days: int, start: int = 0) -> list[float]:
        """Availability factors for ``days`` consecutive runs."""
        return [self.availability(start + d) for d in range(days)]

    def apply(self, fs: ParallelFileSystem, day: int, faults=None) -> float:
        """Apply the day's factor to ``fs``; returns the factor used.

        ``faults`` (a :class:`repro.faults.FaultInjector`) interleaves
        the contention change onto the fault timeline, so chaos runs see
        availability and injected faults on one chronology.  Contention
        uses :meth:`~ParallelFileSystem.set_availability`, the fault
        layer :meth:`~ParallelFileSystem.set_fault_factor`; the factors
        compose multiplicatively and never overwrite each other.
        """
        factor = self.availability(day)
        fs.set_availability(factor)
        if faults is not None:
            faults.note("contention", day=day, availability=round(factor, 12))
        return factor


class ContentionProcess:
    """Optional *time-varying* contention within a single run.

    Re-samples the availability factor around the day's base value at a
    fixed interval, as a simulation process.  Used by the variability
    ablation; the main figures follow the paper and keep contention
    fixed within a run.
    """

    def __init__(
        self,
        model: ContentionModel,
        fs: ParallelFileSystem,
        day: int,
        interval: float = 60.0,
        jitter_sigma: float = 0.1,
        duration: Optional[float] = None,
        faults=None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        self.model = model
        self.fs = fs
        self.day = day
        self.interval = interval
        self.jitter_sigma = jitter_sigma
        self.duration = duration
        #: Optional FaultInjector sharing one timeline with the chaos
        #: layer (availability swings are logged next to faults).
        self.faults = faults
        self._rng = np.random.default_rng((model.seed, day, 0xC0))
        self._stopped = False

    def start(self, engine: Engine) -> None:
        """Begin modulating ``fs`` availability on ``engine``."""
        engine.process(self._run(engine), name="contention")

    def stop(self) -> None:
        """Stop modulating after the current interval."""
        self._stopped = True

    def _run(self, engine: Engine) -> Generator:
        base = self.model.availability(self.day)
        self.fs.set_availability(base)
        stop_at = None if self.duration is None else engine.now + self.duration
        while not self._stopped:
            yield engine.timeout(self.interval)
            if self._stopped or (stop_at is not None and engine.now >= stop_at):
                break
            if self.jitter_sigma == 0.0:
                # Degenerate config: factor is always ``base``, and
                # ``ParallelFileSystem.set_availability`` skips redundant
                # writes anyway — don't burn RNG draws on no-ops.
                continue
            jitter = float(np.exp(self.jitter_sigma * self._rng.standard_normal()))
            factor = min(1.0, max(self.model.floor, base * jitter))
            self.fs.set_availability(factor)
            if self.faults is not None:
                self.faults.note("contention", day=self.day,
                                 availability=round(factor, 12))


class ContentionTimeline:
    """Shared-PFS contention driven by the *live job set* of a scheduler.

    The single-job figures sample one availability factor per run (the
    paper's "day"); a scheduled fleet instead produces its PFS pressure
    mechanistically — co-running jobs share the backend link on one
    :class:`~repro.sim.network.Network`.  This timeline ties the two
    together and gives the harness a chronology to report on:

    - it records every job start/finish with the live tenant count and
      busy-node total at that instant (the ``fig-sched`` utilization
      series derives from these samples), and
    - optionally composes an *external* availability factor on top of
      the fleet's own traffic: with ``model`` set, availability is
      ``base_day_factor / (1 + external_per_job * live_jobs)`` —
      tenants outside the simulated fleet reacting to it.  With no
      model (the default) the PFS stays at nominal capacity and all
      contention is the fleet's own, keeping single-job runs
      byte-identical.
    """

    def __init__(
        self,
        engine: Engine,
        fs: Optional[ParallelFileSystem] = None,
        model: Optional[ContentionModel] = None,
        day: int = 0,
        external_per_job: float = 0.0,
    ):
        if external_per_job < 0:
            raise ValueError("external_per_job must be non-negative")
        self.engine = engine
        self.fs = fs
        self.model = model
        self.day = day
        self.external_per_job = external_per_job
        self.base_factor = model.availability(day) if model is not None else 1.0
        #: Chronological (time, event, job_id, live_jobs, busy_nodes,
        #: availability) samples; ``event`` is 'start' or 'finish'.
        self.events: list[tuple[float, str, int, int, int, float]] = []
        self._live: dict[int, int] = {}  # job_id -> nodes held
        if self.fs is not None and self.model is not None:
            self.fs.set_availability(self.base_factor)

    @property
    def live_jobs(self) -> int:
        """Number of jobs currently running on the cluster."""
        return len(self._live)

    @property
    def busy_nodes(self) -> int:
        """Nodes held by currently running jobs."""
        return sum(self._live.values())

    def availability(self) -> float:
        """Current external availability factor for the live job set."""
        if self.model is None:
            return 1.0
        return max(
            self.model.floor,
            self.base_factor / (1.0 + self.external_per_job * self.live_jobs),
        )

    def job_started(self, job_id: int, nodes: int) -> None:
        """Record a job entering the cluster (and retune the PFS)."""
        if job_id in self._live:
            raise ValueError(f"job {job_id} started twice")
        self._live[job_id] = nodes
        self._note("start", job_id)

    def job_finished(self, job_id: int) -> None:
        """Record a job leaving the cluster (and retune the PFS)."""
        if job_id not in self._live:
            raise ValueError(f"job {job_id} finished without starting")
        del self._live[job_id]
        self._note("finish", job_id)

    def _note(self, event: str, job_id: int) -> None:
        factor = self.availability()
        if self.fs is not None and self.model is not None:
            self.fs.set_availability(factor)
        self.events.append((
            self.engine.now, event, job_id, self.live_jobs, self.busy_nodes,
            factor,
        ))

    def peak_live_jobs(self) -> int:
        """Highest number of concurrently running jobs observed."""
        return max((e[3] for e in self.events), default=0)

    def busy_node_seconds(self) -> float:
        """Integral of busy nodes over time (node-seconds of residency)."""
        total = 0.0
        last_t: Optional[float] = None
        last_busy = 0
        for t, _event, _job, _live, busy, _a in self.events:
            if last_t is not None:
                total += last_busy * (t - last_t)
            last_t, last_busy = t, busy
        return total
