"""Full-system-level contention model (paper §V-C, Fig. 8).

Production file systems are shared by thousands of users; the paper
accounts for this by running every configuration "at least 5 times
across multiple days".  We reproduce the effect with a seeded stochastic
*availability factor*: for each simulated run (a "day"), the shared
storage links operate at a sampled fraction of nominal capacity.
Node-local resources (DRAM staging buffers, local SSDs) belong to the
job's exclusive allocation and are never scaled — which is exactly why
asynchronous I/O hides run-to-run variability in Fig. 8.

The availability factor is ``a = 1 / (1 + L)`` where the interfering
load ``L`` is log-normal.  ``L``'s median and spread are configurable;
defaults give availability mostly in the 0.55–0.95 band with an
occasional bad day, consistent with published I/O variability studies.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.sim.engine import Engine
from repro.platform.storage import ParallelFileSystem

__all__ = ["ContentionModel", "ContentionProcess"]


class ContentionModel:
    """Seeded sampler of per-run availability factors."""

    def __init__(
        self,
        seed: int = 0,
        median_load: float = 0.25,
        sigma: float = 0.6,
        floor: float = 0.05,
    ):
        if median_load < 0:
            raise ValueError("median_load must be non-negative")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0.0 < floor <= 1.0:
            raise ValueError("floor must be in (0,1]")
        self.seed = seed
        self.median_load = median_load
        self.sigma = sigma
        self.floor = floor

    def availability(self, day: int) -> float:
        """Availability factor for run ``day`` — deterministic per (seed, day)."""
        if self.median_load == 0.0:
            return 1.0
        rng = np.random.default_rng((self.seed, day))
        load = self.median_load * float(
            np.exp(self.sigma * rng.standard_normal())
        )
        return max(self.floor, 1.0 / (1.0 + load))

    def series(self, days: int, start: int = 0) -> list[float]:
        """Availability factors for ``days`` consecutive runs."""
        return [self.availability(start + d) for d in range(days)]

    def apply(self, fs: ParallelFileSystem, day: int, faults=None) -> float:
        """Apply the day's factor to ``fs``; returns the factor used.

        ``faults`` (a :class:`repro.faults.FaultInjector`) interleaves
        the contention change onto the fault timeline, so chaos runs see
        availability and injected faults on one chronology.  Contention
        uses :meth:`~ParallelFileSystem.set_availability`, the fault
        layer :meth:`~ParallelFileSystem.set_fault_factor`; the factors
        compose multiplicatively and never overwrite each other.
        """
        factor = self.availability(day)
        fs.set_availability(factor)
        if faults is not None:
            faults.note("contention", day=day, availability=round(factor, 12))
        return factor


class ContentionProcess:
    """Optional *time-varying* contention within a single run.

    Re-samples the availability factor around the day's base value at a
    fixed interval, as a simulation process.  Used by the variability
    ablation; the main figures follow the paper and keep contention
    fixed within a run.
    """

    def __init__(
        self,
        model: ContentionModel,
        fs: ParallelFileSystem,
        day: int,
        interval: float = 60.0,
        jitter_sigma: float = 0.1,
        duration: Optional[float] = None,
        faults=None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        self.model = model
        self.fs = fs
        self.day = day
        self.interval = interval
        self.jitter_sigma = jitter_sigma
        self.duration = duration
        #: Optional FaultInjector sharing one timeline with the chaos
        #: layer (availability swings are logged next to faults).
        self.faults = faults
        self._rng = np.random.default_rng((model.seed, day, 0xC0))
        self._stopped = False

    def start(self, engine: Engine) -> None:
        """Begin modulating ``fs`` availability on ``engine``."""
        engine.process(self._run(engine), name="contention")

    def stop(self) -> None:
        """Stop modulating after the current interval."""
        self._stopped = True

    def _run(self, engine: Engine) -> Generator:
        base = self.model.availability(self.day)
        self.fs.set_availability(base)
        stop_at = None if self.duration is None else engine.now + self.duration
        while not self._stopped:
            yield engine.timeout(self.interval)
            if self._stopped or (stop_at is not None and engine.now >= stop_at):
                break
            if self.jitter_sigma == 0.0:
                # Degenerate config: factor is always ``base``, and
                # ``ParallelFileSystem.set_availability`` skips redundant
                # writes anyway — don't burn RNG draws on no-ops.
                continue
            jitter = float(np.exp(self.jitter_sigma * self._rng.standard_normal()))
            factor = min(1.0, max(self.model.floor, base * jitter))
            self.fs.set_availability(factor)
            if self.faults is not None:
                self.faults.note("contention", day=self.day,
                                 availability=round(factor, 12))
