"""Live cluster: nodes, links and storage built from a machine spec.

A :class:`Cluster` is the simulation-side realization of a
:class:`~repro.platform.spec.MachineSpec` for one allocation: it builds
the nodes the job will actually use (batch schedulers allocate whole
nodes — paper §V-C), their NIC / memory / GPU / SSD links, the shared
parallel file system and the optional burst buffer, all on one
:class:`~repro.sim.network.Network`.

All data movement used by higher layers funnels through the methods
here, so the full cost taxonomy of the paper's model (t_io, transactional
overhead, GPU transfer) maps to exactly one call site each:

====================  =======================================
Paper cost            Cluster call
====================  =======================================
t_io (PFS transfer)   :meth:`Cluster.pfs_write` / ``pfs_read``
t_transact (CPU)      :meth:`Cluster.memcpy`
t_transact (GPU)      :meth:`Cluster.gpu_transfer`
SSD staging           :meth:`Node.ssd` write/read
====================  =======================================
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.network import Flow, Link, Network
from repro.platform.spec import MachineSpec, NodeSpec
from repro.platform.storage import (
    BurstBuffer,
    FileTarget,
    NodeLocalSSD,
    ParallelFileSystem,
    make_filesystem,
)

__all__ = ["Cluster", "Node"]


class Node:
    """One allocated compute node and its private links."""

    __slots__ = ("index", "spec", "nic_link", "mem_link", "gpu_link", "_ssd",
                 "_cluster", "_memcpy_cap", "_memcpy_latency", "_gpu_consts")

    def __init__(self, index: int, spec: NodeSpec, cluster: "Cluster"):
        self.index = index
        self.spec = spec
        self._cluster = cluster
        self.nic_link = Link(f"node[{index}].nic", spec.nic_bandwidth)
        self.mem_link = Link(f"node[{index}].mem", spec.memcpy.node_aggregate)
        self.gpu_link: Optional[Link] = None
        # Per-copy (cap, setup-latency) pairs, hoisted out of the hot
        # memcpy/gpu_transfer paths.  Computing s0/peak once per node
        # also guarantees every copy gets byte-identical cap/latency
        # floats, so the network aggregates them into one flow class.
        curve = spec.memcpy.per_copy
        self._memcpy_cap = curve.peak
        self._memcpy_latency = curve.s0 / curve.peak
        self._gpu_consts: dict[bool, tuple[float, float]] = {}
        if spec.gpu_link is not None:
            self.gpu_link = Link(f"node[{index}].gpu", spec.gpu_link.link_peak)
            for pinned in (True, False):
                gcurve = spec.gpu_link.curve(pinned)
                self._gpu_consts[pinned] = (
                    gcurve.peak, gcurve.s0 / gcurve.peak
                )
        self._ssd: Optional[NodeLocalSSD] = None

    @property
    def ssd(self) -> NodeLocalSSD:
        """Lazily-created node-local SSD (raises if the node has none)."""
        if self._ssd is None:
            self._ssd = NodeLocalSSD(
                self._cluster.engine, self._cluster.network, self
            )
        return self._ssd

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.index} of {self.spec.name!r}>"


class Cluster:
    """An allocation of ``nodes`` nodes on ``machine``, ready to simulate."""

    def __init__(self, engine: Engine, machine: MachineSpec, nodes: int):
        if not 1 <= nodes <= machine.total_nodes:
            raise ValueError(
                f"allocation of {nodes} nodes outside [1, {machine.total_nodes}] "
                f"on {machine.name}"
            )
        self.engine = engine
        self.machine = machine
        self.network = Network(engine)
        self.nodes = [Node(i, machine.node, self) for i in range(nodes)]
        self.pfs: ParallelFileSystem = make_filesystem(
            engine, self.network, machine.filesystem, name=f"{machine.name}.pfs"
        )
        self.burst_buffer: Optional[BurstBuffer] = None
        if machine.burst_buffer_bandwidth > 0:
            self.burst_buffer = BurstBuffer(
                engine, self.network, machine.burst_buffer_bandwidth,
                name=f"{machine.name}.bb",
            )
        #: Free-node ledger for multi-tenant scheduling.  Single-job
        #: runs never touch it: :class:`~repro.mpi.job.MPIJob` places
        #: ranks directly, so this stays a no-cost bookkeeping surface
        #: unless a :class:`repro.sched.Scheduler` allocates through it.
        self._free_nodes: list[int] = list(range(nodes))
        self._allocated: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Node accounting (multi-tenant scheduling)
    # ------------------------------------------------------------------
    @property
    def free_node_count(self) -> int:
        """Nodes not currently allocated to any tenant."""
        return len(self._free_nodes)

    @property
    def busy_node_count(self) -> int:
        """Nodes currently allocated to tenants."""
        return len(self.nodes) - len(self._free_nodes)

    def free_node_indices(self) -> tuple[int, ...]:
        """Sorted indices of the currently free nodes."""
        return tuple(self._free_nodes)

    def allocate_nodes(self, count: int, owner: Optional[int] = None
                       ) -> tuple[int, ...]:
        """Claim ``count`` free nodes (lowest indices first).

        Returns the claimed node indices; raises :class:`ValueError`
        when fewer than ``count`` nodes are free.  ``owner`` (a job id)
        is recorded so :meth:`release_owner` can free a tenant's nodes
        without the caller re-threading the index list.
        """
        if count < 1:
            raise ValueError(f"must allocate >= 1 node, got {count}")
        if count > len(self._free_nodes):
            raise ValueError(
                f"cannot allocate {count} nodes: only "
                f"{len(self._free_nodes)} of {len(self.nodes)} free"
            )
        taken = tuple(self._free_nodes[:count])
        del self._free_nodes[:count]
        if owner is not None:
            self._allocated[owner] = taken
        return taken

    def release_nodes(self, indices) -> None:
        """Return ``indices`` to the free set (keeps the set sorted)."""
        freeing = set(indices)
        if freeing & set(self._free_nodes):
            raise ValueError(f"double release of nodes {sorted(freeing)}")
        bad = [i for i in freeing if not 0 <= i < len(self.nodes)]
        if bad:
            raise ValueError(f"node indices out of range: {bad}")
        self._free_nodes = sorted(set(self._free_nodes) | freeing)

    def release_owner(self, owner: int) -> None:
        """Release every node held by ``owner`` (no-op if none)."""
        taken = self._allocated.pop(owner, None)
        if taken:
            self.release_nodes(taken)

    # ------------------------------------------------------------------
    # Data movement primitives
    # ------------------------------------------------------------------
    def memcpy(self, node: Node, nbytes: float, tag=None) -> Flow:
        """Host-to-host copy on ``node`` (async staging / t_transact, CPU).

        Modeled as a fixed per-copy *setup latency* (the curve's ``s0``
        at peak rate — page faults, write-allocate warmup) followed by a
        stream at the single-copy peak; concurrent copies on one node
        additionally share the node's aggregate memory bandwidth.  An
        uncontended copy therefore takes exactly the §III-B1 curve's
        ``(s + s0)/peak``, while tiny copies stay setup-bound even when
        the memory bus has headroom — the mechanism behind Fig. 4b's
        sub-linear async scaling at small request sizes.
        """
        return self.network.transfer(
            nbytes, [node.mem_link], cap=node._memcpy_cap,
            latency=node._memcpy_latency, tag=tag,
        )

    def gpu_transfer(self, node: Node, nbytes: float, pinned: bool = True,
                     tag=None) -> Flow:
        """Blocking device↔host copy on ``node`` (t_transact, GPU).

        Same shape as :meth:`memcpy`: DMA setup (and the bounce-buffer
        penalty for pageable memory) as fixed latency, then a stream at
        the link rate shared with the node's other transfers.
        """
        if node.gpu_link is None or node.spec.gpu_link is None:
            raise ValueError(f"node {node.index} has no GPUs")
        cap, latency = node._gpu_consts[pinned]
        return self.network.transfer(
            nbytes, [node.gpu_link], cap=cap, latency=latency, tag=tag,
        )

    def pfs_write(self, node: Node, target: FileTarget, nbytes: float,
                  tag=None) -> Flow:
        """One client's write to the shared parallel file system."""
        return self.pfs.write(node, target, nbytes, tag=tag)

    def pfs_read(self, node: Node, target: FileTarget, nbytes: float,
                 tag=None) -> Flow:
        """One client's read from the shared parallel file system."""
        return self.pfs.read(node, target, nbytes, tag=tag)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def node_of_rank(self, rank: int, ranks_per_node: int) -> Node:
        """Block placement: rank → node, ``ranks_per_node`` per node."""
        if rank < 0:
            raise ValueError(f"negative rank {rank}")
        index = rank // ranks_per_node
        if index >= len(self.nodes):
            raise ValueError(
                f"rank {rank} needs node {index} but allocation has "
                f"{len(self.nodes)} nodes"
            )
        return self.nodes[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster {self.machine.name!r} nodes={len(self.nodes)}>"
