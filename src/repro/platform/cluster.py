"""Live cluster: nodes, links and storage built from a machine spec.

A :class:`Cluster` is the simulation-side realization of a
:class:`~repro.platform.spec.MachineSpec` for one allocation: it builds
the nodes the job will actually use (batch schedulers allocate whole
nodes — paper §V-C), their NIC / memory / GPU / SSD links, the shared
parallel file system and the optional burst buffer, all on one
:class:`~repro.sim.network.Network`.

All data movement used by higher layers funnels through the methods
here, so the full cost taxonomy of the paper's model (t_io, transactional
overhead, GPU transfer) maps to exactly one call site each:

====================  =======================================
Paper cost            Cluster call
====================  =======================================
t_io (PFS transfer)   :meth:`Cluster.pfs_write` / ``pfs_read``
t_transact (CPU)      :meth:`Cluster.memcpy`
t_transact (GPU)      :meth:`Cluster.gpu_transfer`
SSD staging           :meth:`Node.ssd` write/read
====================  =======================================
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.sim.engine import Engine
from repro.sim.network import Flow, Link, Network
from repro.platform.spec import MachineSpec, NodeSpec
from repro.platform.storage import (
    BurstBuffer,
    FileTarget,
    NodeLocalSSD,
    ParallelFileSystem,
    make_filesystem,
)

__all__ = ["Cluster", "Node", "NodeState"]


class NodeState(enum.Enum):
    """Ledger state of one node (fleet-level fault tolerance).

    State machine::

        UP --fail_node--> DOWN --revive_node--> UP
        UP --drain_node--> DRAINING --revive_node--> UP
        DRAINING --fail_node--> DOWN

    Only ``UP`` nodes are placeable; a ``DOWN`` node's resident job is
    dead (the scheduler kills and requeues it), a ``DRAINING`` node's
    resident job finishes unharmed but the node takes no new work.
    """

    UP = "up"
    DOWN = "down"
    DRAINING = "draining"


class Node:
    """One allocated compute node and its private links."""

    __slots__ = ("index", "spec", "nic_link", "mem_link", "gpu_link", "_ssd",
                 "_cluster", "_memcpy_cap", "_memcpy_latency", "_gpu_consts")

    def __init__(self, index: int, spec: NodeSpec, cluster: "Cluster"):
        self.index = index
        self.spec = spec
        self._cluster = cluster
        self.nic_link = Link(f"node[{index}].nic", spec.nic_bandwidth)
        self.mem_link = Link(f"node[{index}].mem", spec.memcpy.node_aggregate)
        self.gpu_link: Optional[Link] = None
        # Per-copy (cap, setup-latency) pairs, hoisted out of the hot
        # memcpy/gpu_transfer paths.  Computing s0/peak once per node
        # also guarantees every copy gets byte-identical cap/latency
        # floats, so the network aggregates them into one flow class.
        curve = spec.memcpy.per_copy
        self._memcpy_cap = curve.peak
        self._memcpy_latency = curve.s0 / curve.peak
        self._gpu_consts: dict[bool, tuple[float, float]] = {}
        if spec.gpu_link is not None:
            self.gpu_link = Link(f"node[{index}].gpu", spec.gpu_link.link_peak)
            for pinned in (True, False):
                gcurve = spec.gpu_link.curve(pinned)
                self._gpu_consts[pinned] = (
                    gcurve.peak, gcurve.s0 / gcurve.peak
                )
        self._ssd: Optional[NodeLocalSSD] = None

    @property
    def ssd(self) -> NodeLocalSSD:
        """Lazily-created node-local SSD (raises if the node has none)."""
        if self._ssd is None:
            self._ssd = NodeLocalSSD(
                self._cluster.engine, self._cluster.network, self
            )
        return self._ssd

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.index} of {self.spec.name!r}>"


class Cluster:
    """An allocation of ``nodes`` nodes on ``machine``, ready to simulate."""

    def __init__(self, engine: Engine, machine: MachineSpec, nodes: int):
        if not 1 <= nodes <= machine.total_nodes:
            raise ValueError(
                f"allocation of {nodes} nodes outside [1, {machine.total_nodes}] "
                f"on {machine.name}"
            )
        self.engine = engine
        self.machine = machine
        self.network = Network(engine)
        self.nodes = [Node(i, machine.node, self) for i in range(nodes)]
        self.pfs: ParallelFileSystem = make_filesystem(
            engine, self.network, machine.filesystem, name=f"{machine.name}.pfs"
        )
        self.burst_buffer: Optional[BurstBuffer] = None
        if machine.burst_buffer_bandwidth > 0:
            self.burst_buffer = BurstBuffer(
                engine, self.network, machine.burst_buffer_bandwidth,
                name=f"{machine.name}.bb",
            )
        #: Free-node ledger for multi-tenant scheduling.  Single-job
        #: runs never touch it: :class:`~repro.mpi.job.MPIJob` places
        #: ranks directly, so this stays a no-cost bookkeeping surface
        #: unless a :class:`repro.sched.Scheduler` allocates through it.
        self._free_nodes: list[int] = list(range(nodes))
        self._allocated: dict[int, tuple[int, ...]] = {}
        self._busy: set[int] = set()
        self._node_states: list[NodeState] = [NodeState.UP] * nodes
        #: Observers of node failures/drains: ``callback(index, kind)``
        #: with ``kind`` in ``("crash", "drain")``.  The scheduler
        #: registers here to kill and requeue resident jobs.
        self.on_node_down: list[Callable[[int, str], None]] = []
        #: Observers of node repairs: ``callback(index)``.  The
        #: scheduler re-kicks its placement loop when capacity returns.
        self.on_node_up: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # Node accounting (multi-tenant scheduling)
    # ------------------------------------------------------------------
    @property
    def free_node_count(self) -> int:
        """Nodes placeable right now (``UP`` and unallocated)."""
        return len(self._free_nodes)

    @property
    def busy_node_count(self) -> int:
        """Nodes currently allocated to tenants."""
        return len(self._busy)

    @property
    def down_node_count(self) -> int:
        """Nodes currently ``DOWN`` or ``DRAINING`` (not placeable)."""
        return sum(1 for s in self._node_states if s is not NodeState.UP)

    def free_node_indices(self) -> tuple[int, ...]:
        """Sorted indices of the currently free nodes."""
        return tuple(self._free_nodes)

    def allocate_nodes(self, count: int, owner: Optional[int] = None,
                       preferred: tuple[int, ...] = ()) -> tuple[int, ...]:
        """Claim ``count`` free nodes (lowest indices first).

        Returns the claimed node indices; raises :class:`ValueError`
        when fewer than ``count`` nodes are free.  ``owner`` (a job id)
        is recorded so :meth:`release_owner` can free a tenant's nodes
        without the caller re-threading the index list.

        ``preferred`` node indices (e.g. warm staging-cache tiers, in
        the caller's priority order) are claimed first when free; the
        remainder comes from the lowest free indices, so an empty
        ``preferred`` reproduces the historical allocation exactly.
        """
        if count < 1:
            raise ValueError(f"must allocate >= 1 node, got {count}")
        if count > len(self._free_nodes):
            raise ValueError(
                f"cannot allocate {count} nodes: only "
                f"{len(self._free_nodes)} of {len(self.nodes)} free"
            )
        if preferred:
            free = set(self._free_nodes)
            picks = [i for i in preferred if i in free][:count]
            if picks:
                chosen = set(picks)
                picks.extend(
                    i for i in self._free_nodes if i not in chosen
                )
                taken = tuple(picks[:count])
                self._free_nodes = [
                    i for i in self._free_nodes if i not in set(taken)
                ]
                self._busy.update(taken)
                if owner is not None:
                    self._allocated[owner] = taken
                return taken
        taken = tuple(self._free_nodes[:count])
        del self._free_nodes[:count]
        self._busy.update(taken)
        if owner is not None:
            self._allocated[owner] = taken
        return taken

    def release_nodes(self, indices) -> None:
        """Return ``indices`` to the free set (keeps the set sorted).

        Nodes that are no longer ``UP`` are un-allocated but **not**
        freed — a failed or draining node re-enters the free set only
        through :meth:`revive_node`.
        """
        freeing = set(indices)
        if freeing & set(self._free_nodes):
            raise ValueError(f"double release of nodes {sorted(freeing)}")
        bad = [i for i in freeing if not 0 <= i < len(self.nodes)]
        if bad:
            raise ValueError(f"node indices out of range: {bad}")
        self._busy.difference_update(freeing)
        usable = {i for i in freeing
                  if self._node_states[i] is NodeState.UP}
        self._free_nodes = sorted(set(self._free_nodes) | usable)

    def release_owner(self, owner: int) -> None:
        """Release every node held by ``owner`` (no-op if none)."""
        taken = self._allocated.pop(owner, None)
        if taken:
            self.release_nodes(taken)

    # ------------------------------------------------------------------
    # Node state machine (fleet-level fault tolerance)
    # ------------------------------------------------------------------
    def node_state(self, index: int) -> NodeState:
        """Ledger state of one node."""
        self._check_node_index(index)
        return self._node_states[index]

    def owner_of(self, index: int) -> Optional[int]:
        """The job id holding ``index``, or None when unallocated."""
        self._check_node_index(index)
        for owner, taken in self._allocated.items():
            if index in taken:
                return owner
        return None

    def fail_node(self, index: int) -> Optional[int]:
        """Hard-crash one node: mark it ``DOWN`` and pull it from the
        free set.  An allocated node stays on its owner's books until
        the owner releases it (the scheduler's kill path), so the
        accounting mirrors a real batch system: the dead node is still
        "assigned" while the job is reaped.  Notifies every
        ``on_node_down`` observer with kind ``"crash"`` and returns the
        owner job id (None when the node was idle).
        """
        self._check_node_index(index)
        if self._node_states[index] is NodeState.DOWN:
            raise ValueError(f"node {index} is already down")
        self._node_states[index] = NodeState.DOWN
        if index in self._free_nodes:
            self._free_nodes.remove(index)
        owner = self.owner_of(index)
        for callback in list(self.on_node_down):
            callback(index, "crash")
        return owner

    def drain_node(self, index: int) -> Optional[int]:
        """Gracefully drain one node: mark it ``DRAINING`` so placement
        skips it; a resident job keeps running to completion.  Notifies
        ``on_node_down`` observers with kind ``"drain"``; returns the
        owner job id (None when idle).
        """
        self._check_node_index(index)
        if self._node_states[index] is not NodeState.UP:
            raise ValueError(
                f"cannot drain node {index}: state is "
                f"{self._node_states[index].value}"
            )
        self._node_states[index] = NodeState.DRAINING
        if index in self._free_nodes:
            self._free_nodes.remove(index)
        owner = self.owner_of(index)
        for callback in list(self.on_node_down):
            callback(index, "drain")
        return owner

    def revive_node(self, index: int) -> None:
        """Repair one node: back to ``UP``; re-enters the free set
        unless a tenant still holds it.  Notifies ``on_node_up``
        observers (the scheduler re-kicks its loop on new capacity).
        """
        self._check_node_index(index)
        if self._node_states[index] is NodeState.UP:
            raise ValueError(f"node {index} is already up")
        self._node_states[index] = NodeState.UP
        if index not in self._busy and index not in self._free_nodes:
            self._free_nodes = sorted(self._free_nodes + [index])
        for callback in list(self.on_node_up):
            callback(index)

    def _check_node_index(self, index: int) -> None:
        if not 0 <= index < len(self.nodes):
            raise ValueError(f"node index out of range: {index}")

    # ------------------------------------------------------------------
    # Data movement primitives
    # ------------------------------------------------------------------
    def memcpy(self, node: Node, nbytes: float, tag=None) -> Flow:
        """Host-to-host copy on ``node`` (async staging / t_transact, CPU).

        Modeled as a fixed per-copy *setup latency* (the curve's ``s0``
        at peak rate — page faults, write-allocate warmup) followed by a
        stream at the single-copy peak; concurrent copies on one node
        additionally share the node's aggregate memory bandwidth.  An
        uncontended copy therefore takes exactly the §III-B1 curve's
        ``(s + s0)/peak``, while tiny copies stay setup-bound even when
        the memory bus has headroom — the mechanism behind Fig. 4b's
        sub-linear async scaling at small request sizes.
        """
        return self.network.transfer(
            nbytes, [node.mem_link], cap=node._memcpy_cap,
            latency=node._memcpy_latency, tag=tag,
        )

    def gpu_transfer(self, node: Node, nbytes: float, pinned: bool = True,
                     tag=None) -> Flow:
        """Blocking device↔host copy on ``node`` (t_transact, GPU).

        Same shape as :meth:`memcpy`: DMA setup (and the bounce-buffer
        penalty for pageable memory) as fixed latency, then a stream at
        the link rate shared with the node's other transfers.
        """
        if node.gpu_link is None or node.spec.gpu_link is None:
            raise ValueError(f"node {node.index} has no GPUs")
        cap, latency = node._gpu_consts[pinned]
        return self.network.transfer(
            nbytes, [node.gpu_link], cap=cap, latency=latency, tag=tag,
        )

    def pfs_write(self, node: Node, target: FileTarget, nbytes: float,
                  tag=None) -> Flow:
        """One client's write to the shared parallel file system."""
        return self.pfs.write(node, target, nbytes, tag=tag)

    def pfs_read(self, node: Node, target: FileTarget, nbytes: float,
                 tag=None) -> Flow:
        """One client's read from the shared parallel file system."""
        return self.pfs.read(node, target, nbytes, tag=tag)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def node_of_rank(self, rank: int, ranks_per_node: int) -> Node:
        """Block placement: rank → node, ``ranks_per_node`` per node."""
        if rank < 0:
            raise ValueError(f"negative rank {rank}")
        index = rank // ranks_per_node
        if index >= len(self.nodes):
            raise ValueError(
                f"rank {rank} needs node {index} but allocation has "
                f"{len(self.nodes)} nodes"
            )
        return self.nodes[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster {self.machine.name!r} nodes={len(self.nodes)}>"
