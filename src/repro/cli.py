"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures [IDS...]``
    Regenerate paper figures (all by default) and print their tables.
    ``--profile quick|paper`` selects the scale profile; ``--out DIR``
    also writes each table to ``DIR/<id>.txt``.

``list``
    List available figures, workloads and micro-benchmarks with
    one-line descriptions.

``microbench``
    Run the §III-B1 memcpy / GPU-copy micro-benchmarks.

``run``
    Run a single workload experiment and print its metrics, e.g.::

        python -m repro run --workload vpic --machine summit \\
            --mode async --ranks 768

``profile``
    Run a workload and print a Darshan-style I/O profile (per-rank
    blocked fractions, request-size histogram, per-phase table).
    ``--stats`` appends the simulator's opt-in EngineStats counters.

``sched``
    Run a seeded multi-tenant job stream through the scheduler under
    one or all policies and print the fleet metrics, e.g.::

        python -m repro sched --policy all --jobs 25 --load 2 4

``sweep``
    Fan a declarative (machine × mode × scale × seed) grid across
    worker processes and write one merged JSON artifact — byte
    identical for every ``--workers`` value::

        python -m repro sweep --workload vpic --scales 8 16 \\
            --seeds 0 1 2 3 --workers 4 --out sweep.json

``cache``
    Run a read workload through the tiered staging cache (async VOL +
    :mod:`repro.cache`) and print hit/deadline/bytes-per-tier metrics;
    with ``--seeds`` it fans a cache-axis grid across workers into a
    worker-count-invariant JSON artifact::

        python -m repro cache --workload bdcats --ranks 8 --prefetch on
        python -m repro cache --workload bdcats --seeds 0 1 2 \\
            --workers 2 --out cache.json

``check``
    Static analysis + optional runtime checking (the repo's own
    invariants: determinism, typed errors, hygiene)::

        python -m repro check                 # lint src/ and tests/
        python -m repro check --list-rules
        python -m repro check --runtime smoke # race/leak detector gate
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional, Sequence

from repro.platform import cori_haswell, summit, testbed
from repro.harness import figures as figures_mod
from repro.harness.experiment import run_experiment

__all__ = ["main"]

#: Micro-benchmark ids (a subset of the figure makers, listed apart).
_MICROBENCH_IDS = ["mb-memcpy", "mb-gpu"]

_FIGURE_IDS = [
    "fig3a", "fig3b", "fig3c", "fig3d",
    "fig4a", "fig4b", "fig4c", "fig4d",
    "fig5", "fig6", "fig7", "fig8",
    "fig-faults", "fig-sched",
] + _MICROBENCH_IDS

_FIGURE_MAKERS = {
    "fig3a": figures_mod.fig3a,
    "fig3b": figures_mod.fig3b,
    "fig3c": figures_mod.fig3c,
    "fig3d": figures_mod.fig3d,
    "fig4a": figures_mod.fig4a,
    "fig4b": figures_mod.fig4b,
    "fig4c": figures_mod.fig4c,
    "fig4d": figures_mod.fig4d,
    "fig5": figures_mod.fig5,
    "fig6": figures_mod.fig6,
    "fig7": figures_mod.fig7,
    "fig8": figures_mod.fig8,
    "fig-faults": figures_mod.fig_faults,
    "fig-sched": figures_mod.fig_sched,
    "mb-memcpy": figures_mod.microbench_memcpy,
    "mb-gpu": figures_mod.microbench_gpu,
}

_MACHINES = {
    "summit": summit,
    "cori": cori_haswell,
    "cori-haswell": cori_haswell,
    "testbed": testbed,
}


def _workload_table():
    """name -> (program_factory, config_factory, prepopulate, op, description)."""
    from repro.workloads import (
        BDCATSConfig, CastroConfig, CosmoflowConfig, NyxConfig, SW4Config,
        VPICConfig, bdcats_program, castro_program, cosmoflow_program,
        nyx_program, prepopulate_vpic_file, sw4_program, vpic_program,
    )

    return {
        "vpic": (vpic_program, lambda: VPICConfig(steps=3), None, "write",
                 "VPIC-IO particle dump kernel (weak-scaling writes)"),
        "bdcats": (
            bdcats_program,
            lambda: BDCATSConfig(steps=3),
            lambda cfg: (lambda lib, n: prepopulate_vpic_file(lib, cfg, n)),
            "read",
            "BD-CATS-IO clustering kernel (reads a VPIC-IO file)",
        ),
        "nyx-small": (nyx_program, lambda: NyxConfig.small(n_plotfiles=3),
                      None, "write",
                      "Nyx cosmology, 256^3 AMR plotfiles every 20 steps"),
        "nyx-large": (nyx_program, lambda: NyxConfig.large(n_plotfiles=3),
                      None, "write",
                      "Nyx cosmology, 2048^3 AMR plotfiles every 50 steps"),
        "castro": (castro_program, lambda: CastroConfig(n_plotfiles=3),
                   None, "write",
                   "Castro astrophysics, multifab + particle plotfiles"),
        "sw4": (sw4_program, lambda: SW4Config(n_checkpoints=3), None,
                "write",
                "SW4/EQSIM seismology checkpoints (strong-scaling writes)"),
        "cosmoflow": (
            cosmoflow_program,
            lambda: CosmoflowConfig(epochs=2, batches_per_rank=4),
            lambda cfg: (lambda lib, n: cfg.prepopulate(lib, n)),
            "read",
            "Cosmoflow training loader (per-rank shard reads)",
        ),
    }


def _workload_entry(name: str):
    """(program_factory, config_factory, prepopulate, op) per workload."""
    table = _workload_table()
    if name not in table:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {sorted(table)}"
        )
    return table[name][:4]


def _cmd_list(_args) -> int:
    width = 11
    print("figures:")
    for fid in _FIGURE_IDS:
        if fid in _MICROBENCH_IDS:
            continue
        doc = (_FIGURE_MAKERS[fid].__doc__ or "").strip().splitlines()[0]
        print(f"  {fid:{width}s}  {doc}")
    print()
    print("workloads (for 'run' and 'profile'):")
    for name, entry in sorted(_workload_table().items()):
        print(f"  {name:{width}s}  {entry[4]} [{entry[3]}]")
    print()
    print("micro-benchmarks:")
    for fid in _MICROBENCH_IDS:
        doc = (_FIGURE_MAKERS[fid].__doc__ or "").strip().splitlines()[0]
        print(f"  {fid:{width}s}  {doc}")
    print()
    print("sweepable grids (for 'sweep'; also via 'run'/'sched' --seeds):")
    from repro.harness.sweepengine import sweepable_grids
    for name, desc in sweepable_grids():
        print(f"  {name:{width}s}  {desc}")
    print()
    print("tier presets (staging-cache stacks for 'cache' --tiers; "
          "'auto' derives from the run machine):")
    from repro.cache import tier_presets
    width_t = max(len(n) for n, _ in tier_presets())
    for name, desc in tier_presets():
        print(f"  {name:{width_t}s}  {desc}")
    print()
    print("fault scenarios (seeded chaos presets; 'sched'/'sweep' "
          "--fault-rate uses the same rate unit):")
    from repro.faults import SCENARIOS
    width_s = max(len(n) for n in SCENARIOS)
    for name in sorted(SCENARIOS):
        desc = SCENARIOS[name][0]
        print(f"  {name:{width_s}s}  {desc}")
    return 0


def _cmd_figures(args) -> int:
    ids = args.ids or _FIGURE_IDS
    unknown = [i for i in ids if i not in _FIGURE_MAKERS]
    if unknown:
        raise SystemExit(f"unknown figure ids: {unknown}; try 'list'")
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for fid in ids:
        fig = _FIGURE_MAKERS[fid](args.profile)
        text = fig.to_text()
        if getattr(args, "plot", False):
            from repro.analysis import render_figure
            text = text + "\n\n" + render_figure(fig)
        print(text)
        print()
        if out_dir:
            (out_dir / f"{fid}.txt").write_text(text + "\n")
    return 0


def _cmd_microbench(args) -> int:
    return _cmd_figures(argparse.Namespace(
        ids=["mb-memcpy", "mb-gpu"], profile=args.profile, out=args.out,
        plot=getattr(args, "plot", False),
    ))


def _run_workload_raw(args):
    """Shared runner for ``run``/``profile``: (vol, app_time, op, engine)."""
    import math
    from repro.sim import Engine
    from repro.mpi import MPIJob
    from repro.platform import Cluster
    from repro.hdf5 import H5Library

    machine = _MACHINES[args.machine]()
    program_factory, config_factory, prepopulate_factory, op = (
        _workload_entry(args.workload)
    )
    config = config_factory()
    engine = Engine()
    rpn = machine.default_ranks_per_node
    cluster = Cluster(engine, machine, math.ceil(args.ranks / rpn))
    lib = H5Library(cluster)
    from repro.harness.experiment import build_vol
    vol = build_vol(args.mode)
    if prepopulate_factory is not None:
        prepopulate_factory(config)(lib, args.ranks)
    job = MPIJob(cluster, args.ranks)
    results = job.run(program_factory(lib, vol, config))
    return vol, max(results), op, engine


def _cmd_profile(args) -> int:
    from repro.trace import profile_log

    vol, app_time, op, engine = _run_workload_raw(args)
    print(f"{args.workload} ({args.mode}) on {args.machine}, "
          f"{args.ranks} ranks")
    print(profile_log(vol.log, app_time).to_text())
    if getattr(args, "stats", False):
        print()
        print("engine stats:")
        for key, value in engine.stats.snapshot().items():
            print(f"  {key:20s} {value}")
    return 0


def _sweep_progress(done: int, total: int, point: dict) -> None:
    status = ("ok" if point["ok"]
              else f"FAILED[{point['error']['kind']}]")
    print(f"  [{done}/{total}] {point['machine']}/{point['mode']}/"
          f"{point['scale']:g} seed={point['seed']} {status}",
          file=sys.stderr)


def _cmd_sched(args) -> int:
    from repro.harness.report import FigureData
    from repro.harness.sched import run_fleet, sched_testbed
    from repro.sched import StreamConfig

    machine = (sched_testbed() if args.machine == "sched-testbed"
               else _MACHINES[args.machine]())
    policies = (["fifo", "backfill", "io-aware"] if args.policy == "all"
                else [args.policy])
    seeds = args.seeds if args.seeds else [args.seed]
    chaos = args.fault_rate > 0.0
    title = (f"{args.jobs} jobs/stream on {machine.name}, "
             f"seeds {seeds} (loads = mean interarrival s)")
    columns = ["load", "policy", "seed", "done", "t/o", "async", "jobs/h",
               "wait p95", "compl p50", "compl p95", "compl p99",
               "makespan", "PFS util"]
    if chaos:
        title += (f"; chaos rate {args.fault_rate:g} crash/node/1000s, "
                  f"fault seed {args.fault_seed}, checkpoint-restart "
                  f"{'off' if args.no_checkpoint else 'on'}")
        columns += ["kills", "requeue", "lost s"]
    fig = FigureData(name="sched", title=title, columns=columns)

    def add_row(load, policy, seed, m) -> None:
        row = [
            load, policy, seed, m["completed"], m["timeouts"], m["n_async"],
            m["goodput_jobs_per_hour"], m["wait_p95"], m["completion_p50"],
            m["completion_p95"], m["completion_p99"], m["makespan"],
            m["pfs_utilization"],
        ]
        if chaos:
            row += [m["node_kills"], m["requeues"], m["lost_work_seconds"]]
        fig.add_row(*row)

    if args.seeds and args.workers > 1:
        # Grid mode: fan (policy x load x seed) across worker processes.
        from repro.harness.sweepengine import SweepSpec, run_sweep

        spec = SweepSpec(
            kind="sched", workload="sched",
            machines=(args.machine,), modes=tuple(policies),
            scales=tuple(args.load), seeds=tuple(seeds), jobs=args.jobs,
            faults=(args.fault_rate,), fault_seed=args.fault_seed,
            checkpoint=not args.no_checkpoint,
        )
        outcome = run_sweep(spec, workers=args.workers,
                            progress=_sweep_progress)
        for p in outcome.merged["points"]:
            if not p["ok"]:
                print(f"  point {p['index']} failed: "
                      f"{p['error']['kind']}: {p['error']['message']}",
                      file=sys.stderr)
                continue
            add_row(p["scale"], p["mode"], p["seed"], p["metrics"])
    else:
        from dataclasses import asdict

        from repro.faults import chaos_config

        for load in args.load:
            for policy in policies:
                for seed in seeds:
                    cfg = StreamConfig(
                        n_jobs=args.jobs, seed=seed, mean_interarrival=load,
                        rank_choices=(8, 16, 32),
                        size_scale=args.size_scale,
                    )
                    fault = chaos_config(
                        args.fault_rate,
                        seed=args.fault_seed + 7919 * seed,
                    )
                    add_row(load, policy, seed,
                            asdict(run_fleet(
                                machine, cfg, policy, fault_config=fault,
                                checkpoint_restart=not args.no_checkpoint,
                            )))
    print(fig.to_text())
    return 0


def _cmd_sweep(args) -> int:
    from repro.harness.sweepengine import (
        SweepSpec, merged_sweep_points, run_sweep,
    )

    if args.kind == "sched":
        modes = tuple(args.policies)
        scales = tuple(args.loads)
    else:
        _workload_entry(args.workload)  # validate early
        modes = tuple(args.modes)
        scales = tuple(float(s) for s in args.scales)
    spec = SweepSpec(
        kind=args.kind, workload=args.workload,
        machines=tuple(args.machines), modes=modes, scales=scales,
        seeds=tuple(args.seeds), jobs=args.jobs,
        faults=tuple(args.faults), fault_seed=args.fault_seed,
        checkpoint=not args.no_checkpoint,
    )
    n_points = (len(args.machines) * len(modes) * len(scales)
                * len(args.faults) * len(args.seeds))
    print(f"sweep: {spec.describe()} = {n_points}"
          f" points on {args.workers} worker(s)", file=sys.stderr)
    outcome = run_sweep(spec, workers=args.workers,
                        progress=_sweep_progress if not args.quiet else None)
    points = outcome.merged["points"]
    failed = [p for p in points if not p["ok"]]
    print(f"{len(points)} points in {outcome.elapsed:.2f}s "
          f"({outcome.points_per_sec:.2f} points/s, "
          f"{args.workers} worker(s)); {len(failed)} failed")
    for p in failed:
        print(f"  FAILED point {p['index']} "
              f"({p['machine']}/{p['mode']}/{p['scale']:g} seed={p['seed']}): "
              f"[{p['error']['family']}] {p['error']['kind']}: "
              f"{p['error']['message']}")
    if args.kind == "workload":
        for sp in merged_sweep_points(outcome.merged):
            print(f"  {sp.mode:6s} ranks={sp.nranks:<6d} "
                  f"peak={sp.peak_gbs:.2f} GB/s over {len(sp.all_peaks)} "
                  f"seed(s)")
    if args.out:
        pathlib.Path(args.out).write_text(outcome.to_json())
        print(f"merged artifact -> {args.out}")
    return 1 if failed else 0


def _runtime_smoke_text() -> str:
    """A small async VPIC pipeline rendered as a full-resolution trace.

    Used by ``check --runtime smoke``: the gate runs this twice (bare,
    then under the installed checker) and requires byte-identical text —
    proving the checker is strictly observational — plus zero findings.
    """
    import math
    from repro.sim import Engine
    from repro.mpi import MPIJob
    from repro.platform import Cluster
    from repro.hdf5 import H5Library
    from repro.hdf5.async_vol import AsyncVOL
    from repro.workloads import VPICConfig, vpic_program

    machine = _MACHINES["testbed"]()
    nranks = 4
    config = VPICConfig(particles_per_rank=1 << 14, steps=2,
                        compute_seconds=1.0)
    engine = Engine()
    rpn = machine.default_ranks_per_node
    cluster = Cluster(engine, machine, math.ceil(nranks / rpn))
    lib = H5Library(cluster)
    vol = AsyncVOL()
    job = MPIJob(cluster, nranks)
    results = job.run(vpic_program(lib, vol, config))
    lines = [f"app_time {max(results)!r}"]
    for r in vol.log.records:
        lines.append(
            f"{r.op} r{r.rank} ph{r.phase} {r.dataset} {r.nbytes!r} "
            f"submit={r.t_submit!r} unblocked={r.t_unblocked!r} "
            f"complete={r.t_complete!r}"
        )
    return "\n".join(lines)


def _cmd_check(args) -> int:
    from repro.check import (
        all_rules,
        findings_to_json,
        findings_to_sarif,
        lint_paths,
        render_findings,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.scope:4s}|{rule.tier:4s}]  "
                  f"{rule.title}")
            print(f"       fix: {rule.hint}")
        return 0

    paths = args.paths or [p for p in ("src", "tests")
                           if pathlib.Path(p).exists()]
    if not paths:
        raise SystemExit("no paths to check (run from the repo root, or "
                         "pass files/directories explicitly)")
    if args.stats:
        from repro.check import suppression_stats

        stats = suppression_stats(paths)
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    if args.inter or args.concurrency:
        from repro.check import check_paths

        result = check_paths(paths, flow=True, inter=True,
                             workers=args.workers,
                             cache_dir=args.cache_dir,
                             concurrency=args.concurrency)
        findings = result.diff_findings() if args.diff else result.findings
        mode = "tree-hit" if result.tree_hit else (
            f"{result.stats.get('analyzed', 0)}/"
            f"{result.stats.get('files', 0)} files re-analyzed")
        if args.format == "text":
            tier = "conc tier" if args.concurrency else "inter tier"
            print(f"{tier}: {mode}", file=sys.stderr)
    else:
        if args.diff:
            raise SystemExit("--diff requires --inter (the incremental "
                             "cache records what changed)")
        findings = lint_paths(paths, flow=args.flow)

    if args.update_baseline:
        payload = {
            "tool": "repro check",
            "fingerprints": sorted({f.fingerprint for f in findings}),
        }
        pathlib.Path(args.update_baseline).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"baseline: {len(payload['fingerprints'])} fingerprint(s) "
              f"recorded in {args.update_baseline}", file=sys.stderr)
        return 0
    if args.baseline:
        try:
            known = set(json.loads(
                pathlib.Path(args.baseline).read_text(encoding="utf-8")
            ).get("fingerprints", []))
        except (OSError, ValueError) as err:
            raise SystemExit(f"--baseline: cannot read {args.baseline}: "
                             f"{err}")
        suppressed = sum(1 for f in findings if f.fingerprint in known)
        findings = [f for f in findings if f.fingerprint not in known]
        if args.format == "text":
            print(f"baseline: {suppressed} known finding(s) suppressed, "
                  f"{len(findings)} regression(s)", file=sys.stderr)

    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        print(findings_to_sarif(findings))
    else:
        print(render_findings(findings))
    exit_code = 1 if findings else 0

    if args.runtime:
        from repro.check import RuntimeChecker

        if args.runtime == "fig3a":
            def make() -> str:
                return _FIGURE_MAKERS["fig3a"]("quick").to_text()
        else:
            make = _runtime_smoke_text
        print(f"runtime gate ({args.runtime}): baseline run ...")
        baseline = make()
        print(f"runtime gate ({args.runtime}): checked run ...")
        checker = RuntimeChecker()
        with checker.installed():
            checked = make()
        rt_findings = checker.report()
        identical = baseline == checked
        print(f"runtime gate: output byte-identical with checker "
              f"installed: {'yes' if identical else 'NO'}")
        if rt_findings:
            for f in rt_findings:
                print(f"  {f.format()}")
        print(f"runtime gate: {len(rt_findings)} finding"
              f"{'s' if len(rt_findings) != 1 else ''}")
        if rt_findings or not identical:
            exit_code = 1
    return exit_code


def _cmd_cache(args) -> int:
    cache_mode = "on" if args.prefetch == "on" else "off"
    if args.seeds:
        # Grid mode: (seed) axis at the chosen cache mode, merged into
        # a worker-count-invariant artifact (the CI cache-smoke gate).
        from repro.harness.sweepengine import SweepSpec, run_sweep

        _workload_entry(args.workload)  # validate early
        spec = SweepSpec(
            kind="workload", workload=args.workload,
            machines=(args.machine,), modes=("async",),
            scales=(float(args.ranks),), seeds=tuple(args.seeds),
            cache=(cache_mode,),
        )
        outcome = run_sweep(spec, workers=args.workers,
                            progress=_sweep_progress)
        failed = [p for p in outcome.merged["points"] if not p["ok"]]
        for p in outcome.merged["points"]:
            if not p["ok"]:
                print(f"seed {p['seed']:<4d} FAILED "
                      f"[{p['error']['family']}] {p['error']['kind']}")
                continue
            m = p["metrics"]
            stats = m.get("cache_stats") or {}
            print(f"seed {p['seed']:<4d} read stall "
                  f"{m['read_stall_seconds']:.3f} s  hit ratio "
                  f"{stats.get('hit_ratio', 0.0):.2f}  on-time "
                  f"{stats.get('on_time_ratio', 1.0):.2f}")
        if args.out:
            pathlib.Path(args.out).write_text(outcome.to_json())
            print(f"merged artifact -> {args.out}")
        return 1 if failed else 0

    from repro.cache import tier_preset

    machine = _MACHINES[args.machine]()
    tiers = None if args.tiers == "auto" else tier_preset(args.tiers)
    program_factory, config_factory, prepopulate_factory, op = (
        _workload_entry(args.workload)
    )
    config = config_factory()
    prepopulate = (prepopulate_factory(config)
                   if prepopulate_factory is not None else None)
    # The VOL's own heuristic prefetcher is disabled so the planner's
    # declared-read schedule is the only read-ahead in play.
    result = run_experiment(
        machine, args.workload, program_factory, config, mode="async",
        nranks=args.ranks, prepopulate=prepopulate, op=op,
        vol_kwargs={"prefetcher": None}, cache_mode=cache_mode,
        cache_tiers=tiers,
    )
    stats = result.cache_stats or {}
    print(f"workload        {result.workload} ({op})")
    print(f"machine         {result.machine}")
    print(f"tiers           {args.tiers}")
    print(f"prefetch        {args.prefetch}")
    print(f"ranks / nodes   {result.nranks} / {result.nnodes}")
    print(f"app time        {result.app_time:.2f} s (simulated)")
    print(f"read stall      {result.read_stall_seconds:.3f} s "
          f"(slowest rank)")
    print(f"hit ratio       {stats.get('hit_ratio', 0.0):.2f} "
          f"({stats.get('hits', 0)} hits / {stats.get('misses', 0)} misses)")
    print(f"on-time ratio   {stats.get('on_time_ratio', 1.0):.2f} "
          f"({stats.get('prefetch_late', 0)} late, "
          f"{stats.get('prefetch_rejected', 0)} rejected)")
    for tier, nbytes in sorted(stats.get("bytes_to_tier", {}).items()):
        print(f"bytes -> {tier:6s} {nbytes / 1e9:.3f} GB")
    return 0


def _cmd_run(args) -> int:
    if args.seeds:
        # Seed-grid mode: the same experiment across contention days,
        # fanned over worker processes; prints the paper's plotted
        # best-of-days reduction.
        from repro.harness.sweepengine import (
            SweepSpec, merged_sweep_points, run_sweep,
        )

        _workload_entry(args.workload)  # validate early
        spec = SweepSpec(
            kind="workload", workload=args.workload,
            machines=(args.machine,), modes=(args.mode,),
            scales=(float(args.ranks),), seeds=tuple(args.seeds),
        )
        outcome = run_sweep(spec, workers=args.workers,
                            progress=_sweep_progress)
        for p in outcome.merged["points"]:
            if p["ok"]:
                m = p["metrics"]
                print(f"seed {p['seed']:<4d} peak "
                      f"{m['peak_bandwidth'] / 1e9:.2f} GB/s  app_time "
                      f"{m['app_time']:.2f} s")
            else:
                print(f"seed {p['seed']:<4d} FAILED "
                      f"[{p['error']['family']}] {p['error']['kind']}")
        for sp in merged_sweep_points(outcome.merged):
            print(f"best of {len(sp.all_peaks)} seed(s): "
                  f"{sp.peak_gbs:.2f} GB/s ({sp.mode}, {sp.nranks} ranks)")
        return 0
    machine = _MACHINES[args.machine]()
    program_factory, config_factory, prepopulate_factory, op = (
        _workload_entry(args.workload)
    )
    config = config_factory()
    prepopulate = (prepopulate_factory(config)
                   if prepopulate_factory is not None else None)
    result = run_experiment(
        machine, args.workload, program_factory, config, mode=args.mode,
        nranks=args.ranks, prepopulate=prepopulate, op=op,
    )
    print(f"workload        {result.workload} ({op})")
    print(f"machine         {result.machine}")
    print(f"mode            {result.mode}")
    print(f"ranks / nodes   {result.nranks} / {result.nnodes}")
    print(f"I/O phases      {result.n_phases}")
    print(f"total bytes     {result.total_bytes / 1e9:.2f} GB")
    print(f"peak bandwidth  {result.peak_gbs:.2f} GB/s")
    print(f"mean bandwidth  {result.mean_bandwidth / 1e9:.2f} GB/s")
    print(f"app time        {result.app_time:.2f} s (simulated)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Evaluating Asynchronous Parallel I/O "
                    "on HPC Systems' (IPDPS 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list", help="list figures, workloads and micro-benchmarks"
    )
    p_list.set_defaults(func=_cmd_list)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("ids", nargs="*", help="figure ids (default: all)")
    p_fig.add_argument("--profile", choices=["quick", "paper"], default=None)
    p_fig.add_argument("--out", help="directory to write tables into")
    p_fig.add_argument("--plot", action="store_true",
                       help="also render an ASCII chart per figure")
    p_fig.set_defaults(func=_cmd_figures)

    p_mb = sub.add_parser("microbench", help="run §III-B1 micro-benchmarks")
    p_mb.add_argument("--profile", choices=["quick", "paper"], default=None)
    p_mb.add_argument("--out", default=None)
    p_mb.set_defaults(func=_cmd_microbench)

    p_run = sub.add_parser("run", help="run one workload experiment")
    p_run.add_argument("--workload", required=True,
                       help="vpic | bdcats | nyx-small | nyx-large | castro "
                            "| sw4 | cosmoflow")
    p_run.add_argument("--machine", choices=sorted(_MACHINES), default="summit")
    p_run.add_argument("--mode", choices=["sync", "async"], default="sync")
    p_run.add_argument("--ranks", type=int, default=96)
    p_run.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="run a seed grid (contention days) instead of "
                            "one experiment")
    p_run.add_argument("--workers", type=int, default=1,
                       help="worker processes for --seeds grids")
    p_run.set_defaults(func=_cmd_run)

    p_prof = sub.add_parser("profile",
                            help="run a workload and print an I/O profile")
    p_prof.add_argument("--workload", required=True)
    p_prof.add_argument("--machine", choices=sorted(_MACHINES),
                        default="summit")
    p_prof.add_argument("--mode", choices=["sync", "async"], default="sync")
    p_prof.add_argument("--ranks", type=int, default=96)
    p_prof.add_argument("--stats", action="store_true",
                        help="also print the simulator's EngineStats counters")
    p_prof.set_defaults(func=_cmd_profile)

    p_sched = sub.add_parser(
        "sched", help="run a multi-tenant job stream through the scheduler"
    )
    p_sched.add_argument("--policy",
                         choices=["fifo", "backfill", "io-aware", "all"],
                         default="all")
    p_sched.add_argument("--machine",
                         choices=sorted(_MACHINES) + ["sched-testbed"],
                         default="sched-testbed")
    p_sched.add_argument("--jobs", type=int, default=25,
                         help="jobs per stream")
    p_sched.add_argument("--seed", type=int, default=7)
    p_sched.add_argument("--load", type=float, nargs="+", default=[2.0, 4.0],
                         help="mean interarrival gap(s) in seconds")
    p_sched.add_argument("--size-scale", type=float, default=4.0,
                         help="job I/O size multiplier")
    p_sched.add_argument("--seeds", type=int, nargs="+", default=None,
                         help="run every (policy, load) under each seed "
                              "(overrides --seed)")
    p_sched.add_argument("--workers", type=int, default=1,
                         help="worker processes for --seeds grids")
    p_sched.add_argument("--fault-rate", type=float, default=0.0,
                         help="chaos axis: expected node crashes per node "
                              "per 1000 sim-seconds (0 = off)")
    p_sched.add_argument("--fault-seed", type=int, default=0,
                         help="base seed of the crash schedule")
    p_sched.add_argument("--no-checkpoint", action="store_true",
                         help="requeued crash victims restart from scratch "
                              "instead of their last durable checkpoint")
    p_sched.set_defaults(func=_cmd_sched)

    p_sweep = sub.add_parser(
        "sweep",
        help="fan a (machine x mode x scale x seed) grid across worker "
             "processes; merged JSON is byte-identical for every "
             "--workers value",
    )
    p_sweep.add_argument("--kind", choices=["workload", "sched"],
                         default="workload")
    p_sweep.add_argument("--workload", default="vpic",
                         help="workload name (kind=workload); see 'list'")
    p_sweep.add_argument("--machines", nargs="+", default=["testbed"],
                         help="machine names (sched-testbed allowed for "
                              "kind=sched)")
    p_sweep.add_argument("--modes", nargs="+", default=["sync", "async"],
                         help="VOL modes (kind=workload)")
    p_sweep.add_argument("--policies", nargs="+",
                         default=["fifo", "backfill", "io-aware"],
                         help="scheduler policies (kind=sched)")
    p_sweep.add_argument("--scales", type=float, nargs="+", default=[8],
                         help="rank counts (kind=workload)")
    p_sweep.add_argument("--loads", type=float, nargs="+", default=[2.0],
                         help="mean interarrival gaps (kind=sched)")
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=[0],
                         help="per-point seeds (contention day / job "
                              "stream)")
    p_sweep.add_argument("--jobs", type=int, default=12,
                         help="jobs per stream (kind=sched)")
    p_sweep.add_argument("--faults", type=float, nargs="+", default=[0.0],
                         help="chaos axis (kind=sched): node-crash rates "
                              "per node per 1000 sim-seconds (0 = off)")
    p_sweep.add_argument("--fault-seed", type=int, default=0,
                         help="base seed of the crash schedules")
    p_sweep.add_argument("--no-checkpoint", action="store_true",
                         help="requeued crash victims restart from scratch")
    p_sweep.add_argument("--workers", type=int, default=1)
    p_sweep.add_argument("--out", default=None,
                         help="write the merged JSON artifact here")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-point progress on stderr")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_cache = sub.add_parser(
        "cache",
        help="run a workload through the tiered staging cache and print "
             "hit/deadline metrics; --seeds fans a worker-count-"
             "invariant grid",
    )
    p_cache.add_argument("--workload", default="bdcats",
                         help="workload name (read workloads benefit; "
                              "see 'list')")
    p_cache.add_argument("--machine", choices=sorted(_MACHINES),
                         default="summit")
    p_cache.add_argument("--ranks", type=int, default=8)
    p_cache.add_argument("--tiers", default="auto",
                         help="'auto' (derive from --machine) or a tier "
                              "preset name from 'list' (single-run mode "
                              "only)")
    p_cache.add_argument("--prefetch", choices=["on", "off"], default="on",
                         help="deadline-declared read prefetch (off = "
                              "inert-cache baseline)")
    p_cache.add_argument("--seeds", type=int, nargs="+", default=None,
                         help="run a contention-day seed grid instead of "
                              "one experiment")
    p_cache.add_argument("--workers", type=int, default=1,
                         help="worker processes for --seeds grids")
    p_cache.add_argument("--out", default=None,
                         help="write the merged JSON artifact (--seeds "
                              "mode)")
    p_cache.set_defaults(func=_cmd_cache)

    p_check = sub.add_parser(
        "check",
        help="static analysis (determinism/error/hygiene rules) and the "
             "opt-in runtime race/leak detector",
    )
    p_check.add_argument("paths", nargs="*",
                         help="files or directories (default: src tests)")
    p_check.add_argument("--list-rules", action="store_true",
                         help="list registered rules and exit")
    p_check.add_argument("--flow", action="store_true",
                         help="also run the flow-sensitive tier (RC4xx "
                              "async-API typestate, RC5xx unit "
                              "consistency): CFG + fixpoint per function")
    p_check.add_argument("--inter", action="store_true",
                         help="also run the interprocedural tier (implies "
                              "--flow): call graph + function summaries "
                              "sharpen RC4xx/RC5xx and enable "
                              "RC405/RC110/RC111; incremental via "
                              ".repro-check-cache/")
    p_check.add_argument("--concurrency", action="store_true",
                         help="also run the static concurrency tier "
                              "(implies --inter): RC601 deadlock cycles, "
                              "RC602 lost wakeups, RC603 unsynchronized "
                              "region writes, RC604 claim/release "
                              "imbalance over the project-wide "
                              "acquisition graph")
    p_check.add_argument("--baseline", default=None, metavar="FILE",
                         help="suppress findings whose fingerprint is "
                              "recorded in FILE (JSON written by "
                              "--update-baseline); only regressions are "
                              "reported and gate the exit code")
    p_check.add_argument("--update-baseline", default=None, metavar="FILE",
                         help="write the current findings' fingerprints "
                              "to FILE and exit 0 (adopt-incrementally "
                              "mode for a new subsystem)")
    p_check.add_argument("--diff", action="store_true",
                         help="with --inter: report findings only for "
                              "files re-analyzed this run (changed files "
                              "plus everything the reverse call graph "
                              "invalidated)")
    p_check.add_argument("--workers", type=int, default=None,
                         help="with --inter: lint fan-out process count "
                              "(output is byte-identical for any value)")
    p_check.add_argument("--cache-dir", default=".repro-check-cache",
                         help="with --inter: incremental cache directory "
                              "(default: .repro-check-cache)")
    p_check.add_argument("--stats", action="store_true",
                         help="print the suppression audit (every "
                              "in-source suppression with its rules, "
                              "justification and validity) as JSON and "
                              "exit")
    p_check.add_argument("--format", choices=["text", "json", "sarif"],
                         default="text",
                         help="findings output format (json/sarif for CI "
                              "machine consumption)")
    p_check.add_argument("--runtime", choices=["smoke", "fig3a"],
                         default=None,
                         help="also run the runtime checker gate: the "
                              "pipeline must stay byte-identical under "
                              "instrumentation with zero race/leak findings")
    p_check.set_defaults(func=_cmd_check)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
