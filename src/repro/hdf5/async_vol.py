"""The asynchronous VOL connector (Tang et al. [5], §II-A).

Control flow per ``H5Dwrite_async``:

1. **Transactional copy** (blocking): the caller reserves space in the
   node's staging buffer and copies its data there — a host memcpy
   (DRAM staging), a device→host transfer (GPU sources) or a local-SSD
   write.  This is the paper's ``t_transact_overhead``: "a non-zero-copy
   ... used ... to eliminate data races between the main application
   thread and background I/O threads" (§III-A).
2. **Background execution**: the operation is queued to the rank's
   background worker (the Argobots thread of the real connector), which
   drains staged operations to the parallel file system *in order*.
3. **Completion**: the operation's event fires; event sets
   (:class:`~repro.hdf5.eventset.EventSet`) collect these for
   ``H5ESwait``; ``H5Fclose`` waits for the rank's outstanding work.

Reads support prefetching: "prefetching is triggered after reading data
for the first time step.  The first read is a blocking operation"
(§V-A.2).  After a blocking read, the configured prefetcher plans
background reads of upcoming datasets into the staging buffer; later
reads that hit the cache block only for a local copy.

Failure semantics (see ``docs/architecture.md``, "Failure semantics"):
when a :class:`~repro.faults.FaultInjector` is wired in, background
drains that hit a :class:`~repro.faults.TransientIOError` are retried
with exponential backoff and seeded jitter; once the retry budget is
exhausted — or the worker crashes, or a bounded staging reservation
times out — the operation *falls back to the reliable blocking path*
(``fallback-*`` tags, exempt from injection, waiting out hard outages)
instead of deadlocking or losing staged data.  The transactional
snapshot taken at submission is precisely what makes the fallback safe:
the payload survives even when the staging medium is what failed.  With
no injector and no timeouts configured, none of this machinery touches
the event schedule (zero-cost-off).

Simulator note: the staging copies issued here (``memcpy``,
``gpu_transfer``) use per-node precomputed cap/latency constants, and
PFS drains go through the memoized ``client_cap`` — so the many
same-shaped flows of a drain phase collapse into a few flow classes of
the fast-path allocator (see ``docs/architecture.md``, "Simulator fast
path").  Flow ``tag``s are observational only and never affect classing.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, Optional

import numpy as np

from repro.check import hooks as _check_hooks
from repro.sim.engine import AllOf, Engine, Interrupted, SimEvent
from repro.sim.primitives import Queue
from repro.faults.errors import (
    CacheAdmissionError,
    FaultError,
    RetryExhaustedError,
    StagingTimeoutError,
    TierDegradedError,
    TransientIOError,
    WorkerCrashError,
)
from repro.hdf5.dataspace import Hyperslab
from repro.hdf5.vol import VOLConnector
from repro.trace import IOLog, IOOpRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import CacheSubsystem
    from repro.faults.injector import FaultInjector
    from repro.hdf5.eventset import EventSet
    from repro.hdf5.objects import StoredDataset, StoredFile
    from repro.mpi.comm import RankContext

__all__ = ["AsyncVOL", "Reservation", "SequentialPrefetcher", "StagingBuffer"]


class Reservation:
    """A held (or pending) slice of staging space.

    Returned by :meth:`StagingBuffer.reserve`; must be released exactly
    once via :meth:`release`.  Accounting is strict — double release and
    over-release raise instead of silently clamping — so a leak in
    recovery code cannot masquerade as free space and wedge every
    backpressured writer behind phantom usage.
    """

    __slots__ = ("buffer", "nbytes", "state")

    def __init__(self, buffer: "StagingBuffer", nbytes: float):
        self.buffer = buffer
        self.nbytes = float(nbytes)
        #: ``"waiting" -> "held" -> "released"``; a timed-out or
        #: cancelled waiter ends in ``"cancelled"`` and can never be
        #: granted space afterwards.
        self.state = "waiting"
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_reservation(self)

    @property
    def held(self) -> bool:
        """Whether this reservation currently holds staging space."""
        return self.state == "held"

    def release(self) -> None:
        """Return the held space (exactly once)."""
        if self.state != "held":
            raise RuntimeError(
                f"release of {self.state!r} reservation "
                f"({self.nbytes:.3g}B of {self.buffer.name})"
            )
        self.state = "released"
        self.buffer._return_bytes(self.nbytes)


class StagingBuffer:
    """Byte-granular reservation of a node's staging space (FIFO).

    :meth:`reserve` hands out :class:`Reservation` handles.  A waiter
    that times out (or is cancelled) is withdrawn from the FIFO, so it
    can never be admitted later and leak space nobody will release.
    The raw :meth:`release` API (bytes, not handles) remains for
    external bookkeeping but is equally strict about over-release.
    """

    def __init__(self, engine: Engine, capacity: float, name: str = "staging"):
        if capacity <= 0:
            raise ValueError(f"staging capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = float(capacity)
        self.name = name
        self.used = 0.0
        self._waiters: Deque[tuple[Reservation, SimEvent]] = deque()

    def reserve(self, nbytes: float,
                timeout: Optional[float] = None) -> Generator:
        """Block until ``nbytes`` of staging space is held.

        Returns a :class:`Reservation` (via ``yield from``).  With
        ``timeout``, gives up after waiting that long and raises
        :class:`~repro.faults.StagingTimeoutError`; the waiter is
        withdrawn first, so a timed-out reservation holds nothing.
        """
        if nbytes > self.capacity:
            raise ValueError(
                f"single reservation of {nbytes:.3g}B exceeds staging "
                f"capacity {self.capacity:.3g}B"
            )
        res = Reservation(self, nbytes)
        ck = _check_hooks.checker
        if not self._waiters and self.used + nbytes <= self.capacity:
            if ck is not None:
                # Direct grant: order after the release that freed the
                # space this reservation is taking.
                ck.on_acquire(self)
            self.used += nbytes
            res.state = "held"
            return res
        if ck is not None:
            # Publish the waiter's clock so the releaser that later
            # admits it (in _admit) is ordered after this enqueue.
            ck.on_release(self)
        ev = self.engine.event(name=f"{self.name}.reserve")
        self._waiters.append((res, ev))
        if timeout is None:
            yield ev
            return res
        guard = self.engine.timeout_guard(
            ev, timeout,
            exc=StagingTimeoutError(
                f"{self.name}: {nbytes:.3g}B reservation not granted "
                f"within {timeout:.6g}s (used {self.used:.3g}B of "
                f"{self.capacity:.3g}B)"
            ),
        )
        try:
            yield guard
        except StagingTimeoutError:
            self._withdraw(res, ev)
            raise
        return res

    def release(self, nbytes: float) -> None:
        """Return ``nbytes`` of space, admitting FIFO waiters that now fit."""
        self._return_bytes(nbytes)

    def _return_bytes(self, nbytes: float) -> None:
        if nbytes > self.used + 1e-6:
            raise RuntimeError(
                f"{self.name}: over-release of {nbytes:.3g}B "
                f"(only {self.used:.3g}B reserved)"
            )
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_release(self)
        self.used = max(0.0, self.used - nbytes)
        self._admit()

    def _withdraw(self, res: Reservation, ev: SimEvent) -> None:
        """Remove a timed-out waiter; hand back space granted in the
        same instant the deadline fired (the unavoidable race between
        an admission and the guard's deadline callback)."""
        if res.held:
            res.release()
            return
        res.state = "cancelled"
        try:
            self._waiters.remove((res, ev))
        except ValueError:  # pragma: no cover - defensive
            pass

    def _admit(self) -> None:
        if self._waiters:
            ck = _check_hooks.checker
            if ck is not None:
                # The admitting context inherits every enqueued waiter's
                # published clock before granting.
                ck.on_acquire(self)
        while self._waiters:
            res, ev = self._waiters[0]
            if self.used + res.nbytes > self.capacity:
                break
            self._waiters.popleft()
            self.used += res.nbytes
            res.state = "held"
            ev.succeed()


class SequentialPrefetcher:
    """Prefetch upcoming datasets in creation order.

    After a rank's first blocking read, plans background reads of the
    next ``depth`` datasets (all remaining by default) following the one
    just read — matching time-step-ordered files like VPIC's
    ``/Step#k/<property>`` layout.
    """

    def __init__(self, depth: Optional[int] = None):
        if depth is not None and depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self.depth = depth

    def plan(self, stored_file: "StoredFile", dataset_path: str,
             selection: Hyperslab) -> list[tuple[str, Hyperslab]]:
        """Dataset paths (with the caller's selection) to prefetch."""
        order = stored_file.dataset_order
        try:
            idx = order.index(dataset_path)
        except ValueError:
            return []
        upcoming = order[idx + 1:]
        if self.depth is not None:
            upcoming = upcoming[: self.depth]
        plans = []
        for path in upcoming:
            dset = stored_file.datasets[path]
            if selection.ndim == len(dset.shape) and selection.fits_in(dset.shape):
                plans.append((path, selection))
        return plans


class _RankState:
    """Per-rank connector state: worker queue and outstanding ops."""

    __slots__ = ("queue", "worker", "outstanding", "initialized",
                 "workers_alive", "crashed")

    def __init__(self) -> None:
        self.queue: Optional[Queue] = None
        self.worker = None
        self.outstanding: list[SimEvent] = []
        self.initialized = False
        #: Live background streams; 0 after every worker has crashed.
        self.workers_alive = 0
        #: Once True, new writes take the reliable blocking path inline
        #: and no further prefetches are planned (degraded mode).
        self.crashed = False


class _WriteDesc:
    """Descriptor for one queued background write (merge-capable)."""

    __slots__ = ("ctx", "stored", "selection", "payload", "nbytes",
                 "record", "reservation", "done", "staged_tier")

    def __init__(self, ctx, stored, selection, payload, nbytes, record,
                 reservation, done):
        self.ctx = ctx
        self.stored = stored
        self.selection = selection
        self.payload = payload
        self.nbytes = nbytes
        self.record = record
        self.reservation = reservation
        self.done = done
        #: Set to ``"nvme"`` once the write-through drain hopped this
        #: op's bytes onto the middle cache tier (retry safety: the hop
        #: is not re-run and the fallback knows what to release).
        self.staged_tier = None

    @property
    def mergeable(self) -> bool:
        """Contiguous-layout writes can coalesce into one request."""
        return self.stored.chunks is None


class _CacheEntry:
    """One prefetched (or in-flight) dataset selection on a node."""

    __slots__ = ("nbytes", "ready", "state", "reservation", "error")

    def __init__(self, engine: Engine, nbytes: float):
        self.nbytes = nbytes
        self.ready = engine.event(name="prefetch.ready")
        self.state = "inflight"  # -> "ready" | "failed"
        #: Staging space held by the fetched bytes (set once reserved).
        self.reservation: Optional[Reservation] = None
        #: The fault that killed the prefetch, if any (informational:
        #: ``ready`` still *succeeds* so drains don't trip on it; the
        #: reader checks ``state`` and falls back to a blocking read).
        self.error: Optional[BaseException] = None


class AsyncVOL(VOLConnector):
    """Background-thread asynchronous connector.

    Parameters
    ----------
    staging:
        ``"dram"`` (default) stages via host memcpy; ``"ssd"`` stages to
        the node-local drive (Summit's NVMe) — slower transactional copy
        but no DRAM footprint; ``"bb"`` stages to the machine's shared
        burst buffer (Cori, 1.7 TB/s) and drains server-side — the
        DataElevator pattern of §II-C.
    staging_fraction:
        Fraction of node DRAM usable as staging space (DRAM mode).
    init_time / term_time:
        Per-rank connector setup/teardown: buffer allocation, Argobots
        pool spawn, file descriptors (the paper's ``t_init``/``t_term``,
        "typically small and ... relatively constant", §III-A).
    prefetcher:
        Read-prefetch policy; ``None`` disables prefetching.
    nworkers:
        Background streams per rank (the Argobots pool size).  One
        (default, matching the published connector) drains operations
        strictly in submission order; more streams overlap independent
        operations' storage requests at the cost of ordering guarantees
        between them.
    merge_writes:
        Coalesce adjacent queued writes to the same file into one larger
        storage request (up to ``merge_threshold`` bytes).  Rescues
        workloads whose per-op sizes are too small to use the file
        system efficiently (the Fig. 4b regime) at zero application
        cost — the drain happens off the critical path anyway.
    faults:
        Optional :class:`~repro.faults.FaultInjector` supplying worker
        dispositions (stall/crash schedules) and seeded retry jitter.
        Storage-side faults arrive through the injector's PFS/SSD hooks
        regardless; wiring the injector here additionally lets the
        connector replay its recovery behaviour deterministically.
    max_retries:
        Background-drain retry budget per batch for transient storage
        faults before the sync fallback takes over.
    retry_backoff:
        Base delay of the exponential backoff (seconds); attempt ``k``
        waits ``retry_backoff * 2**(k-1)``, scaled by seeded jitter in
        ``[0.5, 1.5)`` when an injector is wired.
    staging_timeout:
        Bound on how long ``H5Dwrite_async`` may block waiting for
        staging space.  On expiry the op takes the reliable blocking
        path (``fallback_sync=True``) or raises a typed
        :class:`~repro.faults.StagingTimeoutError` (never a deadlock).
    fallback_sync:
        Whether exhausted retries / staging timeouts / worker crashes
        degrade to the reliable blocking path (default) instead of
        failing the operation's event.
    cache:
        Optional :class:`~repro.cache.CacheSubsystem`.  With
        ``write_through`` on and DRAM staging, background drains hop
        through the node's NVMe tier (DRAM → NVMe → PFS), releasing
        DRAM staging space as soon as the bytes are safe on the drive;
        reads consult the subsystem's residency maps first, so planner
        prefetches (declared future reads) are served from the warm
        tier instead of the PFS.  ``None`` (default) changes nothing —
        the event schedule is byte-identical to a cache-less build.
    """

    mode = "async"

    _DEFAULT_PREFETCHER = object()

    def __init__(
        self,
        log: Optional[IOLog] = None,
        staging: str = "dram",
        staging_fraction: float = 0.5,
        init_time: float = 0.05,
        term_time: float = 0.02,
        prefetcher=_DEFAULT_PREFETCHER,
        nworkers: int = 1,
        merge_writes: bool = False,
        merge_threshold: float = 256 * 1024 * 1024,
        faults: Optional["FaultInjector"] = None,
        max_retries: int = 3,
        retry_backoff: float = 0.5,
        staging_timeout: Optional[float] = None,
        fallback_sync: bool = True,
        cache: Optional["CacheSubsystem"] = None,
    ):
        super().__init__(log)
        if staging not in ("dram", "ssd", "bb"):
            raise ValueError(
                f"staging must be 'dram', 'ssd' or 'bb', got {staging!r}"
            )
        if not 0.0 < staging_fraction <= 1.0:
            raise ValueError("staging_fraction must be in (0,1]")
        if init_time < 0 or term_time < 0:
            raise ValueError("init/term times must be non-negative")
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        if merge_threshold <= 0:
            raise ValueError("merge_threshold must be positive")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff <= 0:
            raise ValueError(f"retry_backoff must be positive, got {retry_backoff}")
        if staging_timeout is not None and staging_timeout < 0:
            raise ValueError(
                f"staging_timeout must be non-negative, got {staging_timeout}"
            )
        self.nworkers = nworkers
        self.merge_writes = merge_writes
        self.merge_threshold = float(merge_threshold)
        self.staging = staging
        self.staging_fraction = staging_fraction
        self.init_time = init_time
        self.term_time = term_time
        if prefetcher is AsyncVOL._DEFAULT_PREFETCHER:
            prefetcher = SequentialPrefetcher()
        self.prefetcher = prefetcher  # None disables read prefetching
        self.faults = faults
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.staging_timeout = staging_timeout
        self.fallback_sync = fallback_sync
        self.cache = cache
        #: Operations completed via the reliable blocking path.
        self.fallbacks = 0
        #: Total transient-fault retries across all ranks.
        self.retries = 0
        self._ranks: dict[int, _RankState] = {}
        self._staging: dict[int, StagingBuffer] = {}
        self._cache: dict[tuple, _CacheEntry] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _rank_state(self, ctx: "RankContext") -> _RankState:
        state = self._ranks.get(ctx.rank)
        if state is None:
            state = _RankState()
            self._ranks[ctx.rank] = state
        return state

    def _node_staging(self, ctx: "RankContext") -> StagingBuffer:
        node = ctx.node
        key = -1 if self.staging == "bb" else node.index
        buf = self._staging.get(key)
        if buf is None:
            if self.staging == "dram":
                capacity = node.spec.dram_bytes * self.staging_fraction
            elif self.staging == "bb":
                if ctx.cluster.burst_buffer is None:
                    raise ValueError(
                        f"staging='bb' but {ctx.cluster.machine.name} has "
                        f"no burst buffer"
                    )
                # shared SSD tier: capacity far above any staging need
                capacity = 100e15
            else:
                if node.spec.local_ssd is None:
                    raise ValueError(
                        f"staging='ssd' but node {node.index} has no local SSD"
                    )
                capacity = node.spec.local_ssd.capacity_bytes
            buf = StagingBuffer(ctx.engine, capacity,
                                name=f"staging[{key}]")
            self._staging[key] = buf
        return buf

    def _ensure_rank(self, ctx: "RankContext") -> Generator:
        """Charge t_init and spawn the background worker, once per rank."""
        state = self._rank_state(ctx)
        if state.initialized:
            return
        state.initialized = True
        if self.faults is not None and self.faults.engine is None:
            # Convenience for unattached injectors (unit tests that only
            # exercise dispositions/jitter): bind the timeline lazily.
            self.faults.engine = ctx.engine
        yield ctx.engine.timeout(self.init_time)
        state.queue = Queue(ctx.engine, name=f"asyncvol.q{ctx.rank}")
        state.worker = [
            ctx.engine.process(
                self._worker_loop(ctx, state),
                name=f"asyncvol.worker{ctx.rank}.{i}",
            )
            for i in range(self.nworkers)
        ]
        state.workers_alive = self.nworkers

    def _worker_loop(self, ctx: "RankContext", state: _RankState) -> Generator:
        """The rank's background I/O thread: drain tasks in order.

        Transient storage faults are retried with backoff and, once the
        budget is spent, degrade to the sync fallback (no data loss).  A
        non-transient failure fails the op's completion event instead of
        killing the worker, so the error surfaces at ``H5ESwait`` /
        ``H5Fclose`` (HDF5's event-set error semantics) and later
        operations still execute.  Injected dispositions may stall the
        worker (it sleeps, then proceeds) or crash it (the popped task
        and — once the last worker is gone — the whole queue hand over
        to a one-shot recovery process).
        """
        while True:
            task = yield state.queue.get()
            if task is Queue.CLOSED:
                return
            if self.faults is not None:
                disposition = self.faults.worker_disposition(ctx.rank)
                if disposition is not None:
                    kind, seconds = disposition
                    if kind == "stall":
                        yield ctx.engine.timeout(seconds)
                    else:  # "crash": this worker dies now
                        self._on_worker_crash(ctx, state, task)
                        return
            if isinstance(task, _WriteDesc):
                batch = [task]
                if self.merge_writes and task.mergeable:
                    total = task.nbytes
                    while total < self.merge_threshold:
                        nxt = state.queue.pop_if(
                            lambda item: isinstance(item, _WriteDesc)
                            and item.mergeable
                            and item.stored.file is task.stored.file
                        )
                        if nxt is None:
                            break
                        batch.append(nxt)
                        total += nxt.nbytes
                try:
                    yield from self._drain_with_recovery(ctx, batch)
                except Interrupted:
                    # External kill (the node died): release staging so
                    # nothing wedges, then let the worker die — staged
                    # data that never drained is lost with the node.
                    for desc in batch:
                        if not desc.done.triggered and desc.reservation.held:
                            desc.reservation.release()
                    raise
                except Exception as err:  # noqa: BLE001
                    # fail every op and free its staging reservation so
                    # backpressured writers are not wedged forever
                    for desc in batch:
                        if not desc.done.triggered:
                            if desc.reservation.held:
                                desc.reservation.release()
                            desc.done.fail(err)
                continue
            gen, done = task
            try:
                yield from gen
            except Interrupted:
                raise  # external kill: the worker dies with its node
            except Exception as err:  # noqa: BLE001 - surface via the event
                if not done.triggered:
                    done.fail(err)

    def interrupt_workers(self, cause=None) -> int:
        """Kill every live background worker *now* (the scheduler's
        node-failure scancel).

        The real connector's Argobots threads live in the compute
        node's memory — when the node dies, staged-but-undrained data
        dies with it, so the workers must not keep landing bytes on the
        PFS after the job is dead.  No recovery process is spawned (the
        fallback ladder is for *worker* faults, not node loss); staging
        reservations are released by the interrupted drain's cleanup.
        Returns the number of workers interrupted.
        """
        killed = 0
        for state in self._ranks.values():
            for proc in (state.worker or ()):
                if proc.alive:
                    # Workers have no joiners; subscribe a sink so the
                    # kill terminates the process instead of escaping
                    # to Engine.run as an unhandled failure.
                    proc.done._wait(lambda ev: None)
                    proc.interrupt(cause)
                    killed += 1
            state.workers_alive = 0
            state.crashed = True
        return killed

    def _on_worker_crash(self, ctx: "RankContext", state: _RankState,
                         task) -> None:
        """Bookkeeping for one worker's death; spawns the recovery
        process that completes its popped task (and drains the queue
        once no worker is left)."""
        state.workers_alive -= 1
        if state.workers_alive <= 0:
            state.crashed = True
        ctx.engine.process(
            self._crash_recovery(ctx, state, task, drain=state.crashed),
            name=f"asyncvol.recovery{ctx.rank}",
        )

    def _crash_recovery(self, ctx: "RankContext", state: _RankState,
                        task, drain: bool) -> Generator:
        """Complete orphaned work after a worker crash.

        Queued writes re-execute through the reliable blocking path —
        their transactional snapshots make this safe.  Queued prefetches
        are abandoned (their ``ready`` events *succeed* with the entry
        still ``"inflight"``; the reader notices and issues a blocking
        read), because prefetch is best-effort by construction.
        """
        tasks = [task]
        if drain and state.queue is not None:
            while True:
                nxt = state.queue.pop_if(lambda item: True)
                if nxt is None:
                    break
                tasks.append(nxt)
        cause = WorkerCrashError(
            f"rank {ctx.rank} background worker crashed"
        )
        for t in tasks:
            if isinstance(t, _WriteDesc):
                yield from self._sync_fallback(ctx, [t], cause)
            else:
                gen, done = t
                gen.close()
                if not done.triggered:
                    done.succeed()

    def finalize(self, ctx: "RankContext") -> Generator:
        """Tear down this rank's worker (the paper's ``t_term``)."""
        state = self._rank_state(ctx)
        if not state.initialized:
            return
        yield from self._drain(state)
        if state.queue is not None and not state.queue.closed:
            state.queue.close()
        yield ctx.engine.timeout(self.term_time)
        state.initialized = False
        state.queue = None
        state.worker = None

    def _drain(self, state: _RankState) -> Generator:
        """Wait for every outstanding op of one rank."""
        while state.outstanding:
            batch = [ev for ev in state.outstanding if not ev.triggered]
            state.outstanding = []
            if batch:
                yield AllOf(batch)

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------
    def file_create(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self._ensure_rank(ctx)
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    def file_open(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self._ensure_rank(ctx)
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    def file_flush(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self._drain(self._rank_state(ctx))

    def file_close(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        """H5Fclose blocks until this rank's async ops are durable."""
        yield from self._drain(self._rank_state(ctx))
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def dataset_write(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        data: Optional[np.ndarray],
        phase: Optional[int],
        es: Optional["EventSet"],
        from_gpu: bool = False,
        pinned: bool = True,
    ) -> Generator:
        yield from self._ensure_rank(ctx)
        state = self._rank_state(ctx)
        staging = self._node_staging(ctx)
        nbytes = self._nbytes(stored, selection)
        t_submit = ctx.engine.now

        if state.crashed:
            # Degraded mode: no background stream left to drain staging,
            # so the op takes the reliable blocking path inline.
            yield from self._inline_sync_write(
                ctx, stored, selection, data, nbytes, phase, es, t_submit)
            return

        # 1. Transactional copy (blocking): reserve space + local copy.
        try:
            reservation = yield from staging.reserve(
                nbytes, timeout=self.staging_timeout)
        except StagingTimeoutError:
            if not self.fallback_sync:
                raise
            yield from self._inline_sync_write(
                ctx, stored, selection, data, nbytes, phase, es, t_submit)
            return
        if from_gpu:
            yield ctx.cluster.gpu_transfer(ctx.node, nbytes, pinned=pinned,
                                           tag=("stage-d2h", ctx.rank))
        elif self.staging == "ssd":
            yield ctx.node.ssd.write(nbytes, tag=("stage-ssd", ctx.rank))
        elif self.staging == "bb":
            yield ctx.cluster.burst_buffer.write(ctx.node, nbytes,
                                                 tag=("stage-bb", ctx.rank))
        else:
            yield ctx.cluster.memcpy(ctx.node, nbytes,
                                     tag=("stage-cpy", ctx.rank))
        t_unblocked = ctx.engine.now
        record = self.log.append(IOOpRecord(
            op="write", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
            dataset=stored.path, phase=phase, t_submit=t_submit,
            t_unblocked=t_unblocked,
        ))

        # 2. Queue the PFS transfer for the background worker.
        done = ctx.engine.event(name=f"async-write({stored.path})")
        state.outstanding.append(done)
        if es is not None:
            es.add(done)
        # Snapshot payload now (the staging copy's purpose is exactly to
        # decouple the app buffer from the in-flight data).
        payload = None if data is None else np.array(data)
        desc = _WriteDesc(ctx, stored, selection, payload, nbytes,
                          record, reservation, done)
        if state.crashed:
            # The last worker died *during* our staging copy: the crash
            # recovery already drained the queue, so an op pushed now
            # would sit there forever.  Complete it reliably instead.
            yield from self._sync_fallback(ctx, [desc], WorkerCrashError(
                f"rank {ctx.rank} background worker crashed"))
            return
        state.queue.put(desc)

    def _bg_write_batch(self, ctx, batch: list) -> Generator:
        """Drain one (possibly merged) batch of staged writes to the PFS.

        Merged batches issue a single storage request covering every
        operation's bytes; each operation still completes individually
        (records, payload application, staging release, events).  No
        state is consumed before the storage requests land, so a failed
        attempt can be re-run verbatim.
        """
        head = batch[0]
        target = head.stored.file.target
        total = 0.0
        staged = 0.0
        if self.staging == "bb":
            # Server-side drain: burst buffer -> PFS, no node involved.
            for req in self._batch_requests(batch):
                yield ctx.cluster.burst_buffer.drain_to_pfs(
                    ctx.cluster.pfs, target, req, tag=("drain-bb", ctx.rank),
                )
        else:
            if self.staging == "ssd":
                # Drain path reads the staged data back off the drive first.
                total = sum(d.nbytes for d in batch)
                yield ctx.node.ssd.read(total, tag=("drain-ssd", ctx.rank))
            staged = sum(d.nbytes for d in batch
                         if d.staged_tier == "nvme")
            cache = self.cache
            if (staged == 0.0 and self.staging == "dram"
                    and cache is not None and cache.write_through
                    and cache.has_nvme(ctx.node)):
                # Write-through hop: land the batch on the NVMe tier and
                # release DRAM staging immediately — the drive copy is
                # the durable one the PFS drain reads back.  A full or
                # degraded tier bypasses to the direct DRAM -> PFS path.
                hop = sum(d.nbytes for d in batch)
                try:
                    yield from cache.stage_write(
                        ctx.node, hop, tag=("drain-t1", ctx.rank))
                except (CacheAdmissionError, TierDegradedError):
                    pass
                else:
                    staged = hop
                    for desc in batch:
                        desc.staged_tier = "nvme"
                        if desc.reservation.held:
                            desc.reservation.release()
            if staged > 0.0:
                yield from self.cache.stage_read(
                    ctx.node, staged, tag=("drain-t2", ctx.rank))
            for req in self._batch_requests(batch):
                yield ctx.cluster.pfs_write(
                    ctx.node, target, req, tag=("aw", ctx.rank, head.stored.path),
                )
        if self.staging == "ssd":
            # Evict only after the PFS writes landed (retry safety).
            ctx.node.ssd.evict(total)
        if staged > 0.0:
            # Same retry discipline: the tier copy outlives failed PFS
            # attempts and is only dropped once the writes landed.
            self.cache.stage_release(ctx.node, staged)
            for desc in batch:
                desc.staged_tier = None
        now = ctx.engine.now
        for desc in batch:
            desc.record.t_complete = now
            desc.stored.apply_write(desc.selection, desc.payload)
            if desc.reservation.held:
                desc.reservation.release()
            desc.done.succeed()

    def _drain_with_recovery(self, ctx, batch: list) -> Generator:
        """Drain a batch, retrying transient faults with exponential
        backoff (seeded jitter); after ``max_retries`` failures the
        batch degrades to the sync fallback — or, with
        ``fallback_sync=False``, raises :class:`RetryExhaustedError`.
        """
        attempt = 0
        while True:
            try:
                yield from self._bg_write_batch(ctx, batch)
                return
            except TransientIOError as err:
                attempt += 1
                self.retries += 1
                for desc in batch:
                    desc.record.retries += 1
                    desc.record.faulted = True
                if attempt > self.max_retries:
                    exhausted = RetryExhaustedError(
                        f"background drain failed after {self.max_retries} "
                        f"retries ({type(err).__name__}: {err})"
                    )
                    exhausted.__cause__ = err
                    if not self.fallback_sync:
                        raise exhausted
                    yield from self._sync_fallback(ctx, batch, exhausted)
                    return
                yield ctx.engine.timeout(self._backoff_delay(ctx, attempt, err))

    def _backoff_delay(self, ctx, attempt: int, err: BaseException) -> float:
        """Exponential backoff with seeded jitter; a hard outage with a
        known end is waited out instead of blind-hammered."""
        delay = self.retry_backoff * (2.0 ** (attempt - 1))
        if self.faults is not None:
            delay *= self.faults.retry_jitter()
        until = getattr(err, "until", None)
        if until is not None and math.isfinite(until):
            delay = max(delay, until - ctx.engine.now)
        return delay

    def _sync_fallback(self, ctx, batch: list, cause: BaseException) -> Generator:
        """Complete staged ops via the reliable blocking path.

        Issues fault-exempt (``fallback-w``) storage requests after
        waiting out any hard outage, so it cannot fail — mirroring a
        blocking H5Dwrite that retries until success.  The transactional
        snapshot taken at submission makes this safe even when the
        staging medium itself (e.g. the local SSD) is what failed.
        """
        if self.faults is not None:
            self.faults.note("sync_fallback", rank=ctx.rank,
                             nops=len(batch), cause=type(cause).__name__)
            yield from self.faults.when_pfs_available()
        for desc in batch:
            for req in desc.stored.request_sizes(desc.selection):
                yield ctx.cluster.pfs_write(
                    ctx.node, desc.stored.file.target, req,
                    tag=("fallback-w", ctx.rank, desc.stored.path),
                )
            now = ctx.engine.now
            desc.record.t_complete = now
            desc.record.faulted = True
            desc.record.fallback = True
            desc.stored.apply_write(desc.selection, desc.payload)
            if self.staging == "ssd":
                ctx.node.ssd.evict(desc.nbytes)
            if desc.staged_tier == "nvme":
                # The write-through hop left these bytes on the NVMe
                # tier; the blocking path made them durable on the PFS.
                self.cache.stage_release(ctx.node, desc.nbytes)
                desc.staged_tier = None
            if desc.reservation.held:
                desc.reservation.release()
            self.fallbacks += 1
            if not desc.done.triggered:
                desc.done.succeed()

    def _inline_sync_write(self, ctx, stored, selection, data, nbytes,
                           phase, es, t_submit) -> Generator:
        """App-thread blocking write: the last rung of the fallback
        ladder, used when the staging reservation times out or the
        worker pool is dead.  Durable when it returns (``t_unblocked ==
        t_complete``), fault-exempt, waits out outages."""
        if self.faults is not None:
            self.faults.note("inline_fallback", rank=ctx.rank,
                             dataset=stored.path)
            yield from self.faults.when_pfs_available()
        for req in stored.request_sizes(selection):
            yield ctx.cluster.pfs_write(
                ctx.node, stored.file.target, req,
                tag=("fallback-w", ctx.rank, stored.path),
            )
        now = ctx.engine.now
        stored.apply_write(selection, None if data is None else np.array(data))
        self.fallbacks += 1
        self.log.append(IOOpRecord(
            op="write", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
            dataset=stored.path, phase=phase, t_submit=t_submit,
            t_unblocked=now, t_complete=now, faulted=True, fallback=True,
        ))
        if es is not None:
            done = ctx.engine.event(name=f"sync-fallback({stored.path})")
            done.succeed()
            es.add(done)

    @staticmethod
    def _batch_requests(batch: list) -> list[float]:
        """Storage requests for a batch: merged total for a coalesced
        batch, the per-chunk split for a single (possibly chunked) op."""
        if len(batch) == 1:
            desc = batch[0]
            return desc.stored.request_sizes(desc.selection)
        return [sum(d.nbytes for d in batch)]

    # ------------------------------------------------------------------
    # Reads (with prefetch)
    # ------------------------------------------------------------------
    def dataset_read(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        phase: Optional[int],
        es: Optional["EventSet"],
    ) -> Generator:
        yield from self._ensure_rank(ctx)
        state = self._rank_state(ctx)
        nbytes = self._nbytes(stored, selection)
        key = self._cache_key(ctx.rank, stored.path, selection)
        t_submit = ctx.engine.now

        prefetch_faulted = False
        if self.cache is not None and self.cache.enabled:
            block = self.cache.lookup(ctx.node, key)
            if block is not None:
                was_resident = block.state == "resident"
                if block.state == "inflight":
                    # Partially hidden: the planner's copy is still in
                    # flight — wait for it rather than re-reading.
                    block.pins += 1
                    try:
                        yield block.ready
                    finally:
                        block.pins -= 1
                if block.state == "resident":
                    yield from self.cache.serve(
                        ctx.node, block, tag=("cache-cpy", ctx.rank))
                    self.cache.metrics.hits += 1
                    now = ctx.engine.now
                    self.log.append(IOOpRecord(
                        op="read", mode=self.mode, rank=ctx.rank,
                        nbytes=nbytes, dataset=stored.path, phase=phase,
                        t_submit=t_submit, t_unblocked=now, t_complete=now,
                        cache_hit=was_resident,
                    ))
                    return stored.read_payload(selection)
                # The planner's copy failed (injected fault): the block
                # is gone; pay the source-tier read below.
                prefetch_faulted = True
            self.cache.metrics.misses += 1
        entry = self._cache.get(key)
        if entry is not None:
            was_ready = entry.state == "ready"
            if not was_ready:
                yield entry.ready  # partially-hidden: wait for in-flight fetch
            if entry.state != "ready":
                # The prefetch died (fault or worker crash): forget it
                # and take the blocking-read path below.
                prefetch_faulted = True
                del self._cache[key]
                if entry.reservation is not None and entry.reservation.held:
                    entry.reservation.release()
                entry = None
        if entry is not None:
            # Local copy from the staging buffer to the app buffer.
            yield ctx.cluster.memcpy(ctx.node, nbytes,
                                     tag=("cache-cpy", ctx.rank))
            del self._cache[key]
            entry.reservation.release()
            now = ctx.engine.now
            self.log.append(IOOpRecord(
                op="read", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
                dataset=stored.path, phase=phase, t_submit=t_submit,
                t_unblocked=now, t_complete=now, cache_hit=was_ready,
            ))
            return stored.read_payload(selection)

        # Miss: blocking read (the paper's first time step), then kick
        # off background prefetch of upcoming datasets.
        retries_used, fell_back = yield from self._reliable_read(
            ctx, stored, selection)
        now = ctx.engine.now
        self.log.append(IOOpRecord(
            op="read", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
            dataset=stored.path, phase=phase, t_submit=t_submit,
            t_unblocked=now, t_complete=now, cache_hit=False,
            retries=retries_used,
            faulted=prefetch_faulted or retries_used > 0 or fell_back,
            fallback=fell_back,
        ))
        # Every blocking miss (re)plans prefetch of upcoming datasets:
        # the first time-step read triggers it (paper §V-A.2), and a new
        # pass over the file (e.g. the next training epoch) re-arms it.
        if self.prefetcher is not None and not state.crashed:
            for path, sel in self.prefetcher.plan(stored.file, stored.path,
                                                  selection):
                self._start_prefetch(ctx, state, stored.file, path, sel)
        return stored.read_payload(selection)

    def _reliable_read(self, ctx, stored, selection) -> Generator:
        """Blocking read with bounded retry; exhausted retries degrade
        to the fault-exempt reliable path.  Returns ``(retries,
        fell_back)``."""
        attempt = 0
        while True:
            try:
                for req in stored.request_sizes(selection):
                    yield ctx.cluster.pfs_read(
                        ctx.node, stored.file.target, req,
                        tag=("ar", ctx.rank, stored.path))
                return (attempt, False)
            except TransientIOError as err:
                attempt += 1
                self.retries += 1
                if attempt > self.max_retries:
                    break
                yield ctx.engine.timeout(self._backoff_delay(ctx, attempt, err))
        if self.faults is not None:
            yield from self.faults.when_pfs_available()
        for req in stored.request_sizes(selection):
            yield ctx.cluster.pfs_read(
                ctx.node, stored.file.target, req,
                tag=("fallback-r", ctx.rank, stored.path))
        self.fallbacks += 1
        return (attempt, True)

    def _start_prefetch(self, ctx, state, stored_file, path, selection) -> None:
        dset = stored_file.datasets[path]
        nbytes = float(selection.nbytes(dset.dtype.itemsize))
        key = self._cache_key(ctx.rank, path, selection)
        if key in self._cache:
            return
        entry = _CacheEntry(ctx.engine, nbytes)
        self._cache[key] = entry
        state.outstanding.append(entry.ready)
        state.queue.put((
            self._bg_prefetch(ctx, stored_file, nbytes, entry, path),
            entry.ready,
        ))

    def _bg_prefetch(self, ctx, stored_file, nbytes, entry, path) -> Generator:
        staging = self._node_staging(ctx)
        entry.reservation = yield from staging.reserve(nbytes)
        try:
            yield ctx.cluster.pfs_read(ctx.node, stored_file.target, nbytes,
                                       tag=("pf", ctx.rank, path))
        except FaultError as err:
            # Prefetch is best-effort: free the space, mark the entry
            # failed, and *succeed* the ready event so drains don't trip
            # on it — the reader checks ``state`` and falls back to a
            # blocking read.
            entry.state = "failed"
            entry.error = err
            entry.reservation.release()
            entry.reservation = None
            entry.ready.succeed()
            return
        entry.state = "ready"
        entry.ready.succeed()

    @staticmethod
    def _cache_key(rank: int, path: str, selection: Hyperslab) -> tuple:
        return (rank, path, selection.start, selection.count)
