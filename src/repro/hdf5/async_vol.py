"""The asynchronous VOL connector (Tang et al. [5], §II-A).

Control flow per ``H5Dwrite_async``:

1. **Transactional copy** (blocking): the caller reserves space in the
   node's staging buffer and copies its data there — a host memcpy
   (DRAM staging), a device→host transfer (GPU sources) or a local-SSD
   write.  This is the paper's ``t_transact_overhead``: "a non-zero-copy
   ... used ... to eliminate data races between the main application
   thread and background I/O threads" (§III-A).
2. **Background execution**: the operation is queued to the rank's
   background worker (the Argobots thread of the real connector), which
   drains staged operations to the parallel file system *in order*.
3. **Completion**: the operation's event fires; event sets
   (:class:`~repro.hdf5.eventset.EventSet`) collect these for
   ``H5ESwait``; ``H5Fclose`` waits for the rank's outstanding work.

Reads support prefetching: "prefetching is triggered after reading data
for the first time step.  The first read is a blocking operation"
(§V-A.2).  After a blocking read, the configured prefetcher plans
background reads of upcoming datasets into the staging buffer; later
reads that hit the cache block only for a local copy.

Simulator note: the staging copies issued here (``memcpy``,
``gpu_transfer``) use per-node precomputed cap/latency constants, and
PFS drains go through the memoized ``client_cap`` — so the many
same-shaped flows of a drain phase collapse into a few flow classes of
the fast-path allocator (see ``docs/architecture.md``, "Simulator fast
path").  Flow ``tag``s are observational only and never affect classing.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Generator, Optional

import numpy as np

from repro.sim.engine import AllOf, Engine, SimEvent
from repro.sim.primitives import Queue
from repro.hdf5.dataspace import Hyperslab
from repro.hdf5.vol import VOLConnector
from repro.trace import IOLog, IOOpRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdf5.eventset import EventSet
    from repro.hdf5.objects import StoredDataset, StoredFile
    from repro.mpi.comm import RankContext

__all__ = ["AsyncVOL", "SequentialPrefetcher", "StagingBuffer"]


class StagingBuffer:
    """Byte-granular reservation of a node's staging space (FIFO)."""

    def __init__(self, engine: Engine, capacity: float, name: str = "staging"):
        if capacity <= 0:
            raise ValueError(f"staging capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = float(capacity)
        self.name = name
        self.used = 0.0
        self._waiters: Deque[tuple[float, SimEvent]] = deque()

    def reserve(self, nbytes: float) -> Generator:
        """Block until ``nbytes`` of staging space is held."""
        if nbytes > self.capacity:
            raise ValueError(
                f"single reservation of {nbytes:.3g}B exceeds staging "
                f"capacity {self.capacity:.3g}B"
            )
        if not self._waiters and self.used + nbytes <= self.capacity:
            self.used += nbytes
            return
        ev = self.engine.event(name=f"{self.name}.reserve")
        self._waiters.append((nbytes, ev))
        yield ev

    def release(self, nbytes: float) -> None:
        """Return ``nbytes`` of space, admitting FIFO waiters that now fit."""
        self.used = max(0.0, self.used - nbytes)
        while self._waiters:
            need, ev = self._waiters[0]
            if self.used + need > self.capacity:
                break
            self._waiters.popleft()
            self.used += need
            ev.succeed()


class SequentialPrefetcher:
    """Prefetch upcoming datasets in creation order.

    After a rank's first blocking read, plans background reads of the
    next ``depth`` datasets (all remaining by default) following the one
    just read — matching time-step-ordered files like VPIC's
    ``/Step#k/<property>`` layout.
    """

    def __init__(self, depth: Optional[int] = None):
        if depth is not None and depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth}")
        self.depth = depth

    def plan(self, stored_file: "StoredFile", dataset_path: str,
             selection: Hyperslab) -> list[tuple[str, Hyperslab]]:
        """Dataset paths (with the caller's selection) to prefetch."""
        order = stored_file.dataset_order
        try:
            idx = order.index(dataset_path)
        except ValueError:
            return []
        upcoming = order[idx + 1:]
        if self.depth is not None:
            upcoming = upcoming[: self.depth]
        plans = []
        for path in upcoming:
            dset = stored_file.datasets[path]
            if selection.ndim == len(dset.shape) and selection.fits_in(dset.shape):
                plans.append((path, selection))
        return plans


class _RankState:
    """Per-rank connector state: worker queue and outstanding ops."""

    __slots__ = ("queue", "worker", "outstanding", "initialized")

    def __init__(self) -> None:
        self.queue: Optional[Queue] = None
        self.worker = None
        self.outstanding: list[SimEvent] = []
        self.initialized = False


class _WriteDesc:
    """Descriptor for one queued background write (merge-capable)."""

    __slots__ = ("ctx", "stored", "selection", "payload", "nbytes",
                 "record", "staging", "done")

    def __init__(self, ctx, stored, selection, payload, nbytes, record,
                 staging, done):
        self.ctx = ctx
        self.stored = stored
        self.selection = selection
        self.payload = payload
        self.nbytes = nbytes
        self.record = record
        self.staging = staging
        self.done = done

    @property
    def mergeable(self) -> bool:
        """Contiguous-layout writes can coalesce into one request."""
        return self.stored.chunks is None


class _CacheEntry:
    """One prefetched (or in-flight) dataset selection on a node."""

    __slots__ = ("nbytes", "ready", "state")

    def __init__(self, engine: Engine, nbytes: float):
        self.nbytes = nbytes
        self.ready = engine.event(name="prefetch.ready")
        self.state = "inflight"  # -> "ready"


class AsyncVOL(VOLConnector):
    """Background-thread asynchronous connector.

    Parameters
    ----------
    staging:
        ``"dram"`` (default) stages via host memcpy; ``"ssd"`` stages to
        the node-local drive (Summit's NVMe) — slower transactional copy
        but no DRAM footprint; ``"bb"`` stages to the machine's shared
        burst buffer (Cori, 1.7 TB/s) and drains server-side — the
        DataElevator pattern of §II-C.
    staging_fraction:
        Fraction of node DRAM usable as staging space (DRAM mode).
    init_time / term_time:
        Per-rank connector setup/teardown: buffer allocation, Argobots
        pool spawn, file descriptors (the paper's ``t_init``/``t_term``,
        "typically small and ... relatively constant", §III-A).
    prefetcher:
        Read-prefetch policy; ``None`` disables prefetching.
    nworkers:
        Background streams per rank (the Argobots pool size).  One
        (default, matching the published connector) drains operations
        strictly in submission order; more streams overlap independent
        operations' storage requests at the cost of ordering guarantees
        between them.
    merge_writes:
        Coalesce adjacent queued writes to the same file into one larger
        storage request (up to ``merge_threshold`` bytes).  Rescues
        workloads whose per-op sizes are too small to use the file
        system efficiently (the Fig. 4b regime) at zero application
        cost — the drain happens off the critical path anyway.
    """

    mode = "async"

    _DEFAULT_PREFETCHER = object()

    def __init__(
        self,
        log: Optional[IOLog] = None,
        staging: str = "dram",
        staging_fraction: float = 0.5,
        init_time: float = 0.05,
        term_time: float = 0.02,
        prefetcher=_DEFAULT_PREFETCHER,
        nworkers: int = 1,
        merge_writes: bool = False,
        merge_threshold: float = 256 * 1024 * 1024,
    ):
        super().__init__(log)
        if staging not in ("dram", "ssd", "bb"):
            raise ValueError(
                f"staging must be 'dram', 'ssd' or 'bb', got {staging!r}"
            )
        if not 0.0 < staging_fraction <= 1.0:
            raise ValueError("staging_fraction must be in (0,1]")
        if init_time < 0 or term_time < 0:
            raise ValueError("init/term times must be non-negative")
        if nworkers < 1:
            raise ValueError(f"nworkers must be >= 1, got {nworkers}")
        if merge_threshold <= 0:
            raise ValueError("merge_threshold must be positive")
        self.nworkers = nworkers
        self.merge_writes = merge_writes
        self.merge_threshold = float(merge_threshold)
        self.staging = staging
        self.staging_fraction = staging_fraction
        self.init_time = init_time
        self.term_time = term_time
        if prefetcher is AsyncVOL._DEFAULT_PREFETCHER:
            prefetcher = SequentialPrefetcher()
        self.prefetcher = prefetcher  # None disables read prefetching
        self._ranks: dict[int, _RankState] = {}
        self._staging: dict[int, StagingBuffer] = {}
        self._cache: dict[tuple, _CacheEntry] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _rank_state(self, ctx: "RankContext") -> _RankState:
        state = self._ranks.get(ctx.rank)
        if state is None:
            state = _RankState()
            self._ranks[ctx.rank] = state
        return state

    def _node_staging(self, ctx: "RankContext") -> StagingBuffer:
        node = ctx.node
        key = -1 if self.staging == "bb" else node.index
        buf = self._staging.get(key)
        if buf is None:
            if self.staging == "dram":
                capacity = node.spec.dram_bytes * self.staging_fraction
            elif self.staging == "bb":
                if ctx.cluster.burst_buffer is None:
                    raise ValueError(
                        f"staging='bb' but {ctx.cluster.machine.name} has "
                        f"no burst buffer"
                    )
                # shared SSD tier: capacity far above any staging need
                capacity = 100e15
            else:
                if node.spec.local_ssd is None:
                    raise ValueError(
                        f"staging='ssd' but node {node.index} has no local SSD"
                    )
                capacity = node.spec.local_ssd.capacity_bytes
            buf = StagingBuffer(ctx.engine, capacity,
                                name=f"staging[{key}]")
            self._staging[key] = buf
        return buf

    def _ensure_rank(self, ctx: "RankContext") -> Generator:
        """Charge t_init and spawn the background worker, once per rank."""
        state = self._rank_state(ctx)
        if state.initialized:
            return
        state.initialized = True
        yield ctx.engine.timeout(self.init_time)
        state.queue = Queue(ctx.engine, name=f"asyncvol.q{ctx.rank}")
        state.worker = [
            ctx.engine.process(
                self._worker_loop(ctx, state),
                name=f"asyncvol.worker{ctx.rank}.{i}",
            )
            for i in range(self.nworkers)
        ]

    def _worker_loop(self, ctx: "RankContext", state: _RankState) -> Generator:
        """The rank's background I/O thread: drain tasks in order.

        A failing operation fails its completion event instead of
        killing the worker, so the error surfaces at ``H5ESwait`` /
        ``H5Fclose`` (HDF5's event-set error semantics) and later
        operations still execute.
        """
        while True:
            task = yield state.queue.get()
            if task is Queue.CLOSED:
                return
            if isinstance(task, _WriteDesc):
                batch = [task]
                if self.merge_writes and task.mergeable:
                    total = task.nbytes
                    while total < self.merge_threshold:
                        nxt = state.queue.pop_if(
                            lambda item: isinstance(item, _WriteDesc)
                            and item.mergeable
                            and item.stored.file is task.stored.file
                        )
                        if nxt is None:
                            break
                        batch.append(nxt)
                        total += nxt.nbytes
                try:
                    yield from self._bg_write_batch(ctx, batch)
                except Exception as err:  # noqa: BLE001
                    # fail every op and free its staging reservation so
                    # backpressured writers are not wedged forever
                    for desc in batch:
                        if not desc.done.triggered:
                            desc.staging.release(desc.nbytes)
                            desc.done.fail(err)
                continue
            gen, done = task
            try:
                yield from gen
            except Exception as err:  # noqa: BLE001 - surface via the event
                if not done.triggered:
                    done.fail(err)

    def finalize(self, ctx: "RankContext") -> Generator:
        """Tear down this rank's worker (the paper's ``t_term``)."""
        state = self._rank_state(ctx)
        if not state.initialized:
            return
        yield from self._drain(state)
        if state.queue is not None and not state.queue.closed:
            state.queue.close()
        yield ctx.engine.timeout(self.term_time)
        state.initialized = False
        state.queue = None
        state.worker = None

    def _drain(self, state: _RankState) -> Generator:
        """Wait for every outstanding op of one rank."""
        while state.outstanding:
            batch = [ev for ev in state.outstanding if not ev.triggered]
            state.outstanding = []
            if batch:
                yield AllOf(batch)

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------
    def file_create(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self._ensure_rank(ctx)
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    def file_open(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self._ensure_rank(ctx)
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    def file_flush(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield from self._drain(self._rank_state(ctx))

    def file_close(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        """H5Fclose blocks until this rank's async ops are durable."""
        yield from self._drain(self._rank_state(ctx))
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def dataset_write(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        data: Optional[np.ndarray],
        phase: Optional[int],
        es: Optional["EventSet"],
        from_gpu: bool = False,
        pinned: bool = True,
    ) -> Generator:
        yield from self._ensure_rank(ctx)
        state = self._rank_state(ctx)
        staging = self._node_staging(ctx)
        nbytes = self._nbytes(stored, selection)
        t_submit = ctx.engine.now

        # 1. Transactional copy (blocking): reserve space + local copy.
        yield from staging.reserve(nbytes)
        if from_gpu:
            yield ctx.cluster.gpu_transfer(ctx.node, nbytes, pinned=pinned,
                                           tag=("stage-d2h", ctx.rank))
        elif self.staging == "ssd":
            yield ctx.node.ssd.write(nbytes, tag=("stage-ssd", ctx.rank))
        elif self.staging == "bb":
            yield ctx.cluster.burst_buffer.write(ctx.node, nbytes,
                                                 tag=("stage-bb", ctx.rank))
        else:
            yield ctx.cluster.memcpy(ctx.node, nbytes,
                                     tag=("stage-cpy", ctx.rank))
        t_unblocked = ctx.engine.now
        record = self.log.append(IOOpRecord(
            op="write", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
            dataset=stored.path, phase=phase, t_submit=t_submit,
            t_unblocked=t_unblocked,
        ))

        # 2. Queue the PFS transfer for the background worker.
        done = ctx.engine.event(name=f"async-write({stored.path})")
        state.outstanding.append(done)
        if es is not None:
            es.add(done)
        # Snapshot payload now (the staging copy's purpose is exactly to
        # decouple the app buffer from the in-flight data).
        payload = None if data is None else np.array(data)
        state.queue.put(_WriteDesc(ctx, stored, selection, payload, nbytes,
                                   record, staging, done))

    def _bg_write_batch(self, ctx, batch: list) -> Generator:
        """Drain one (possibly merged) batch of staged writes to the PFS.

        Merged batches issue a single storage request covering every
        operation's bytes; each operation still completes individually
        (records, payload application, staging release, events).
        """
        head = batch[0]
        target = head.stored.file.target
        if self.staging == "bb":
            # Server-side drain: burst buffer -> PFS, no node involved.
            for req in self._batch_requests(batch):
                yield ctx.cluster.burst_buffer.drain_to_pfs(
                    ctx.cluster.pfs, target, req, tag=("drain-bb", ctx.rank),
                )
        else:
            if self.staging == "ssd":
                # Drain path reads the staged data back off the drive first.
                total = sum(d.nbytes for d in batch)
                yield ctx.node.ssd.read(total, tag=("drain-ssd", ctx.rank))
                ctx.node.ssd.evict(total)
            for req in self._batch_requests(batch):
                yield ctx.cluster.pfs_write(
                    ctx.node, target, req, tag=("aw", ctx.rank, head.stored.path),
                )
        now = ctx.engine.now
        for desc in batch:
            desc.record.t_complete = now
            desc.stored.apply_write(desc.selection, desc.payload)
            desc.staging.release(desc.nbytes)
            desc.done.succeed()

    @staticmethod
    def _batch_requests(batch: list) -> list[float]:
        """Storage requests for a batch: merged total for a coalesced
        batch, the per-chunk split for a single (possibly chunked) op."""
        if len(batch) == 1:
            desc = batch[0]
            return desc.stored.request_sizes(desc.selection)
        return [sum(d.nbytes for d in batch)]

    # ------------------------------------------------------------------
    # Reads (with prefetch)
    # ------------------------------------------------------------------
    def dataset_read(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        phase: Optional[int],
        es: Optional["EventSet"],
    ) -> Generator:
        yield from self._ensure_rank(ctx)
        state = self._rank_state(ctx)
        staging = self._node_staging(ctx)
        nbytes = self._nbytes(stored, selection)
        key = self._cache_key(ctx.rank, stored.path, selection)
        t_submit = ctx.engine.now

        entry = self._cache.get(key)
        if entry is not None:
            was_ready = entry.state == "ready"
            if not was_ready:
                yield entry.ready  # partially-hidden: wait for in-flight fetch
            # Local copy from the staging buffer to the app buffer.
            yield ctx.cluster.memcpy(ctx.node, nbytes,
                                     tag=("cache-cpy", ctx.rank))
            del self._cache[key]
            staging.release(entry.nbytes)
            now = ctx.engine.now
            self.log.append(IOOpRecord(
                op="read", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
                dataset=stored.path, phase=phase, t_submit=t_submit,
                t_unblocked=now, t_complete=now, cache_hit=was_ready,
            ))
            return stored.read_payload(selection)

        # Miss: blocking read (the paper's first time step), then kick
        # off background prefetch of upcoming datasets.
        for req in stored.request_sizes(selection):
            yield ctx.cluster.pfs_read(ctx.node, stored.file.target, req,
                                       tag=("ar", ctx.rank, stored.path))
        now = ctx.engine.now
        self.log.append(IOOpRecord(
            op="read", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
            dataset=stored.path, phase=phase, t_submit=t_submit,
            t_unblocked=now, t_complete=now, cache_hit=False,
        ))
        # Every blocking miss (re)plans prefetch of upcoming datasets:
        # the first time-step read triggers it (paper §V-A.2), and a new
        # pass over the file (e.g. the next training epoch) re-arms it.
        if self.prefetcher is not None:
            for path, sel in self.prefetcher.plan(stored.file, stored.path,
                                                  selection):
                self._start_prefetch(ctx, state, stored.file, path, sel)
        return stored.read_payload(selection)

    def _start_prefetch(self, ctx, state, stored_file, path, selection) -> None:
        dset = stored_file.datasets[path]
        nbytes = float(selection.nbytes(dset.dtype.itemsize))
        key = self._cache_key(ctx.rank, path, selection)
        if key in self._cache:
            return
        entry = _CacheEntry(ctx.engine, nbytes)
        self._cache[key] = entry
        state.outstanding.append(entry.ready)
        state.queue.put((
            self._bg_prefetch(ctx, stored_file, nbytes, entry, path),
            entry.ready,
        ))

    def _bg_prefetch(self, ctx, stored_file, nbytes, entry, path) -> Generator:
        staging = self._node_staging(ctx)
        yield from staging.reserve(nbytes)
        flow = ctx.cluster.pfs_read(ctx.node, stored_file.target, nbytes,
                                    tag=("pf", ctx.rank, path))
        yield flow
        entry.state = "ready"
        entry.ready.succeed()

    @staticmethod
    def _cache_key(rank: int, path: str, selection: Hyperslab) -> tuple:
        return (rank, path, selection.start, selection.count)
