"""Event sets — the ``H5ES`` API of HDF5 1.13+.

Asynchronous operations are associated with an event set at submission;
``H5ES_wait`` blocks until every operation inserted so far completes.
The paper's async workloads wait on the previous epoch's event set
before (or while) issuing the next epoch's operations.

Error accounting mirrors HDF5's: a failed operation does *not* abort
the wait — every inserted operation is drained (so staging space and
backpressured peers are not abandoned mid-flight), failures are
collected per operation (``H5ESget_err_count`` /
``H5ESget_err_info``), and only then does :meth:`EventSet.wait` raise
the first failure (suppressible with ``raise_on_error=False``).
"""

from __future__ import annotations

from typing import Generator

from repro.check import hooks as _check_hooks
from repro.sim.engine import AllOf, Engine, Interrupted, SimEvent

__all__ = ["EventSet"]


class EventSet:
    """A set of pending asynchronous operations."""

    def __init__(self, engine: Engine, name: str = "es"):
        self.engine = engine
        self.name = name
        #: (insertion index, completion event) of ops not yet harvested.
        self._pending: list[tuple[int, SimEvent]] = []
        #: (insertion index, exception) of every failed op seen so far.
        self._errors: list[tuple[int, BaseException]] = []
        #: Total operations ever inserted (H5ESget_op_counter analogue).
        self.op_counter = 0
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_eventset(self)

    def add(self, event: SimEvent) -> None:
        """Insert one operation's completion event."""
        self._pending.append((self.op_counter, event))
        self.op_counter += 1

    @property
    def n_pending(self) -> int:
        """Operations not yet known complete (without waiting)."""
        return sum(1 for _, ev in self._pending if not ev._processed)

    @property
    def err_count(self) -> int:
        """``H5ESget_err_count``: failed operations observed so far."""
        self._harvest()
        return len(self._errors)

    def get_err_info(self) -> list[tuple[int, BaseException]]:
        """``H5ESget_err_info``: ``(op_index, exception)`` per failure,
        in insertion order.  The index is the operation's position in
        the set's lifetime insertion sequence."""
        self._harvest()
        return sorted(self._errors)

    def clear_errors(self) -> None:
        """Forget recorded failures (``H5ESfree_err_info`` analogue)."""
        self._harvest()
        self._errors.clear()

    def _harvest(self) -> list[tuple[int, SimEvent]]:
        """Move triggered events out of the pending list, recording
        failures; returns the still-pending remainder."""
        still = []
        ck = _check_hooks.checker
        for idx, ev in self._pending:
            # An event succeed()ed with a delay is *triggered* now but
            # completes (dispatches) later — it is still pending.
            if not ev._processed:
                still.append((idx, ev))
            elif ev._exc is not None:
                self._errors.append((idx, ev._exc))
                if ck is not None:
                    # The failure is now recorded in the set's error
                    # accounting — it was not silently swallowed.
                    ck.on_error_observed(ev)
        self._pending = still
        return still

    def wait(self, raise_on_error: bool = True) -> Generator:
        """``H5ESwait``: block until all inserted operations complete.

        Operations inserted *while waiting* (e.g. by a prefetcher) are
        also drained before returning.  A failure does not cut the wait
        short — every operation still runs to completion — and is
        re-raised (first failure) only once nothing is pending, unless
        ``raise_on_error=False``, in which case callers inspect
        :attr:`err_count` / :meth:`get_err_info` instead.
        """
        while True:
            still = self._harvest()
            if not still:
                break
            try:
                yield AllOf([ev for _, ev in still])
            except Interrupted:
                # A scheduler kill (walltime scancel, node failure)
                # thrown into the waiting process is not an operation
                # failure — it must terminate the rank, not be absorbed
                # into the set's error accounting.
                raise
            except Exception:  # noqa: BLE001
                # One op failed (AllOf is fail-fast).  Its error is
                # harvested on the next pass; keep waiting for the rest
                # rather than abandoning them mid-flight.
                continue
        if raise_on_error and self._errors:
            raise self._errors[0][1]
        return None
