"""Event sets — the ``H5ES`` API of HDF5 1.13+.

Asynchronous operations are associated with an event set at submission;
``H5ES_wait`` blocks until every operation inserted so far completes.
The paper's async workloads wait on the previous epoch's event set
before (or while) issuing the next epoch's operations.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.engine import AllOf, Engine, SimEvent

__all__ = ["EventSet"]


class EventSet:
    """A set of pending asynchronous operations."""

    def __init__(self, engine: Engine, name: str = "es"):
        self.engine = engine
        self.name = name
        self._pending: list[SimEvent] = []
        #: Total operations ever inserted (H5ESget_op_counter analogue).
        self.op_counter = 0

    def add(self, event: SimEvent) -> None:
        """Insert one operation's completion event."""
        self._pending.append(event)
        self.op_counter += 1

    @property
    def n_pending(self) -> int:
        """Operations not yet known complete (without waiting)."""
        return sum(1 for ev in self._pending if not ev.triggered)

    def wait(self) -> Generator:
        """``H5ESwait``: block until all inserted operations complete.

        Operations inserted *while waiting* (e.g. by a prefetcher) are
        also drained before returning.
        """
        while self._pending:
            batch, self._pending = self._pending, []
            yield AllOf(batch)
        return None
