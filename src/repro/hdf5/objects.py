"""HDF5 object model: library, files, groups, datasets.

Objects come in two flavours:

- **Stored** objects (:class:`StoredFile`, :class:`StoredGroup`,
  :class:`StoredDataset`) live in the :class:`H5Library` namespace and
  are shared by every rank — they are "the file" as it exists on the
  parallel file system, including an optional backing ``ndarray`` for
  small datasets so tests can verify real round trips.
- **Handles** (:class:`File`, :class:`Group`, :class:`Dataset`) are
  per-rank views bound to a :class:`~repro.mpi.comm.RankContext` and a
  VOL connector; all their I/O methods are generators to ``yield from``
  inside rank programs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.check import hooks as _check_hooks
from repro.hdf5.attributes import AttributeSet
from repro.hdf5.dataspace import Hyperslab
from repro.hdf5.types import Datatype
from repro.platform.cluster import Cluster
from repro.platform.storage import FileTarget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdf5.eventset import EventSet
    from repro.hdf5.vol import VOLConnector
    from repro.mpi.comm import RankContext

__all__ = ["Dataset", "File", "Group", "H5Library", "StoredDataset", "StoredFile"]

MiB = 1 << 20


class StoredDataset:
    """Shared state of one dataset inside a stored file."""

    __slots__ = ("path", "shape", "dtype", "file", "data", "written", "attrs",
                 "chunks")

    def __init__(self, path: str, shape: tuple[int, ...], dtype: Datatype,
                 file: "StoredFile", materialize_limit: int,
                 chunks: Optional[tuple[int, ...]] = None):
        self.path = path
        self.attrs = AttributeSet(owner_path=path)
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")
        if chunks is not None:
            chunks = tuple(int(c) for c in chunks)
            if len(chunks) != len(self.shape):
                raise ValueError(
                    f"chunk rank {len(chunks)} != dataset rank {len(self.shape)}"
                )
            if any(c < 1 for c in chunks):
                raise ValueError(f"chunk dims must be >= 1, got {chunks}")
        self.chunks = chunks
        self.dtype = dtype
        self.file = file
        self.data: Optional[np.ndarray] = None
        if self.nbytes_total <= materialize_limit:
            self.data = np.zeros(self.shape, dtype=dtype.np_dtype)
        #: Hyperslabs successfully written (durable), in completion order.
        self.written: list[Hyperslab] = []

    @property
    def nbytes_total(self) -> int:
        """Full dataset size in bytes."""
        n = self.dtype.itemsize
        for s in self.shape:
            n *= s
        return n

    @property
    def chunk_bytes(self) -> Optional[int]:
        """Bytes of one storage chunk (None for contiguous layout)."""
        if self.chunks is None:
            return None
        n = self.dtype.itemsize
        for c in self.chunks:
            n *= c
        return n

    def request_sizes(self, selection: Hyperslab) -> list[float]:
        """Storage requests one I/O call on ``selection`` turns into.

        Contiguous layout: one request with the full selection.
        Chunked layout: one request per touched chunk (HDF5 reads and
        writes chunked data chunk-by-chunk), each paying its own
        per-request costs — small chunks on a parallel file system are
        expensive, which is why chunk-size tuning matters.
        """
        total = float(selection.nbytes(self.dtype.itemsize))
        cb = self.chunk_bytes
        if cb is None or total == 0.0:
            return [total]
        n_full, rest = divmod(total, float(cb))
        sizes = [float(cb)] * int(n_full)
        if rest > 0.0:
            sizes.append(rest)
        return sizes

    def apply_write(self, selection: Hyperslab, data: Optional[np.ndarray]) -> None:
        """Commit a completed write: extent tracking + optional payload."""
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_state(self._region_key(selection), write=True,
                        detail=self._region_detail(selection))
        self.written.append(selection)
        if self.data is not None and data is not None:
            self.data[selection.as_slices()] = np.asarray(
                data, dtype=self.dtype.np_dtype
            ).reshape(selection.count)

    def read_payload(self, selection: Hyperslab) -> Optional[np.ndarray]:
        """Materialized data for ``selection`` (None for perf-only datasets)."""
        ck = _check_hooks.checker
        if ck is not None:
            ck.on_state(self._region_key(selection), write=False,
                        detail=self._region_detail(selection))
        if self.data is None:
            return None
        return np.array(self.data[selection.as_slices()])

    def _region_key(self, selection: Hyperslab) -> tuple:
        """Runtime-checker access key: one region of one dataset object."""
        return (id(self), selection.start, selection.count)

    def _region_detail(self, selection: Hyperslab) -> str:
        return (f"{self.file.path}:{self.path}"
                f"[{selection.start}+{selection.count}]")

    def coverage_1d(self) -> float:
        """Fraction of a 1-D dataset's extent covered by completed writes."""
        if len(self.shape) != 1:
            raise ValueError("coverage_1d only supports 1-D datasets")
        if self.shape[0] == 0:
            return 1.0
        marks = sorted((h.start[0], h.start[0] + h.count[0]) for h in self.written)
        covered = 0
        cursor = 0
        for lo, hi in marks:
            lo = max(lo, cursor)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        return covered / self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StoredDataset {self.path!r} {self.shape} {self.dtype.name}>"


class StoredFile:
    """Shared state of one file in the library namespace."""

    def __init__(self, path: str, target: FileTarget):
        self.path = path
        self.target = target
        self.datasets: dict[str, StoredDataset] = {}
        self.groups: set[str] = {"/"}
        #: Per-group attribute sets, created lazily ("/" = file root).
        self._group_attrs: dict[str, AttributeSet] = {}
        #: Dataset paths in creation order (drives sequential prefetch).
        self.dataset_order: list[str] = []
        self.open_handles = 0

    def group_attrs(self, path: str) -> AttributeSet:
        """The attribute set of a group (or of the file root, "/")."""
        path = _norm(path)
        if path not in self.groups:
            raise KeyError(f"no group {path!r} in {self.path!r}")
        attrs = self._group_attrs.get(path)
        if attrs is None:
            attrs = AttributeSet(owner_path=f"{self.path}:{path}")
            self._group_attrs[path] = attrs
        return attrs

    def ensure_group(self, path: str) -> None:
        """Create (idempotently) a group and its ancestors."""
        path = _norm(path)
        parts = [p for p in path.split("/") if p]
        cursor = ""
        for part in parts:
            cursor += "/" + part
            self.groups.add(cursor)

    def ensure_dataset(self, path: str, shape: tuple[int, ...], dtype: Datatype,
                       materialize_limit: int,
                       chunks: Optional[tuple[int, ...]] = None
                       ) -> StoredDataset:
        """Create or re-open a dataset, verifying shape/dtype/layout."""
        path = _norm(path)
        existing = self.datasets.get(path)
        if existing is not None:
            if existing.shape != tuple(shape) or existing.dtype != dtype:
                raise ValueError(
                    f"dataset {path!r} exists with shape {existing.shape} "
                    f"{existing.dtype.name}, requested {tuple(shape)} {dtype.name}"
                )
            if chunks is not None and existing.chunks != tuple(chunks):
                raise ValueError(
                    f"dataset {path!r} exists with chunks {existing.chunks}, "
                    f"requested {tuple(chunks)}"
                )
            return existing
        parent = path.rsplit("/", 1)[0] or "/"
        self.ensure_group(parent)
        dset = StoredDataset(path, tuple(shape), dtype, self,
                             materialize_limit, chunks=chunks)
        self.datasets[path] = dset
        self.dataset_order.append(path)
        return dset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StoredFile {self.path!r} datasets={len(self.datasets)}>"


def _norm(path: str) -> str:
    if not path.startswith("/"):
        path = "/" + path
    while "//" in path:
        path = path.replace("//", "/")
    return path.rstrip("/") or "/"


class H5Library:
    """The HDF5 library instance for one simulation.

    Owns the file namespace (shared across jobs so a reader job can open
    a writer job's output, like BD-CATS-IO reading VPIC-IO files) and the
    materialization policy for backing arrays.
    """

    def __init__(self, cluster: Cluster, materialize_limit: int = 1 * MiB):
        self.cluster = cluster
        self.materialize_limit = int(materialize_limit)
        self.files: dict[str, StoredFile] = {}

    # -- namespace ----------------------------------------------------------
    def stored_file(self, path: str, stripe_count: Optional[int] = None
                    ) -> StoredFile:
        """Get or create the shared stored-file object for ``path``."""
        path = _norm(path)
        if path not in self.files:
            target = self.cluster.pfs.open_file(path, stripe_count=stripe_count)
            self.files[path] = StoredFile(path, target)
        return self.files[path]

    def exists(self, path: str) -> bool:
        """Whether ``path`` is in the namespace."""
        return _norm(path) in self.files

    # -- per-rank open/create -------------------------------------------------
    def create(self, ctx: "RankContext", path: str, vol: "VOLConnector",
               stripe_count: Optional[int] = None) -> Generator:
        """``H5Fcreate``: per-rank generator returning a :class:`File`."""
        stored = self.stored_file(path, stripe_count=stripe_count)
        yield from vol.file_create(ctx, stored)
        stored.open_handles += 1
        return File(self, stored, ctx, vol)

    def open(self, ctx: "RankContext", path: str, vol: "VOLConnector"
             ) -> Generator:
        """``H5Fopen``: per-rank generator returning a :class:`File`."""
        path = _norm(path)
        if path not in self.files:
            raise FileNotFoundError(f"no such HDF5 file: {path}")
        stored = self.files[path]
        yield from vol.file_open(ctx, stored)
        stored.open_handles += 1
        return File(self, stored, ctx, vol)

    def prepopulate(self, path: str, datasets: dict[str, tuple[tuple[int, ...],
                                                               Datatype]],
                    stripe_count: Optional[int] = None) -> StoredFile:
        """Instantly create a file's metadata without simulating writes.

        Used by read benchmarks (BD-CATS-IO, Cosmoflow) that need an
        existing file, standing in for data produced by an earlier
        campaign.  Every dataset is marked fully written.
        """
        stored = self.stored_file(path, stripe_count=stripe_count)
        for dpath, (shape, dtype) in datasets.items():
            dset = stored.ensure_dataset(dpath, shape, dtype,
                                         self.materialize_limit)
            dset.written.append(Hyperslab.whole(shape))
        return stored


class Group:
    """Per-rank handle to a group (a path prefix within a file)."""

    def __init__(self, file: "File", path: str):
        self.file = file
        self.path = _norm(path)

    def create_group(self, name: str) -> "Group":
        """Create/open a child group."""
        return self.file.create_group(f"{self.path}/{name}")

    def create_dataset(self, name: str, shape: tuple[int, ...],
                       dtype: Datatype,
                       chunks: Optional[tuple[int, ...]] = None) -> "Dataset":
        """Create/open a child dataset."""
        return self.file.create_dataset(f"{self.path}/{name}", shape, dtype,
                                        chunks=chunks)

    def dataset(self, name: str) -> "Dataset":
        """Open an existing child dataset."""
        return self.file.dataset(f"{self.path}/{name}")

    @property
    def attrs(self) -> AttributeSet:
        """This group's attributes (self-describing metadata)."""
        return self.file.stored.group_attrs(self.path)


class Dataset:
    """Per-rank handle to a dataset; all I/O goes through the VOL."""

    def __init__(self, file: "File", stored: StoredDataset):
        self.file = file
        self.stored = stored

    @property
    def path(self) -> str:
        """Absolute path of the dataset inside its file."""
        return self.stored.path

    @property
    def shape(self) -> tuple[int, ...]:
        """Dataset shape."""
        return self.stored.shape

    @property
    def dtype(self) -> Datatype:
        """Dataset element type."""
        return self.stored.dtype

    @property
    def attrs(self) -> AttributeSet:
        """This dataset's attributes (units, provenance, ...)."""
        return self.stored.attrs

    def write(self, selection: Optional[Hyperslab] = None,
              data: Optional[np.ndarray] = None, phase: Optional[int] = None,
              es: Optional["EventSet"] = None, from_gpu: bool = False,
              pinned: bool = True) -> Generator:
        """``H5Dwrite`` (``H5Dwrite_async`` when ``es`` is given).

        Yields until the *blocking portion* of the operation finishes:
        the full PFS transfer for the native connector, only the
        transactional copy for the async connector.
        """
        sel = selection or Hyperslab.whole(self.shape)
        if not sel.fits_in(self.shape):
            raise ValueError(f"selection {sel} outside dataset {self.shape}")
        yield from self.file.vol.dataset_write(
            self.file.ctx, self.stored, sel, data, phase, es,
            from_gpu=from_gpu, pinned=pinned,
        )

    def read(self, selection: Optional[Hyperslab] = None,
             phase: Optional[int] = None, es: Optional["EventSet"] = None
             ) -> Generator:
        """``H5Dread``: returns the payload for materialized datasets."""
        sel = selection or Hyperslab.whole(self.shape)
        if not sel.fits_in(self.shape):
            raise ValueError(f"selection {sel} outside dataset {self.shape}")
        result = yield from self.file.vol.dataset_read(
            self.file.ctx, self.stored, sel, phase, es
        )
        return result


class File:
    """Per-rank handle to an open file."""

    def __init__(self, lib: H5Library, stored: StoredFile, ctx: "RankContext",
                 vol: "VOLConnector"):
        self.lib = lib
        self.stored = stored
        self.ctx = ctx
        self.vol = vol
        self._closed = False

    @property
    def path(self) -> str:
        """File path in the namespace."""
        return self.stored.path

    @property
    def closed(self) -> bool:
        """Whether this handle has been closed."""
        return self._closed

    def create_group(self, path: str) -> Group:
        """Create/open a group (idempotent, metadata-only)."""
        self._check_open()
        self.stored.ensure_group(path)
        return Group(self, path)

    def create_dataset(self, path: str, shape: tuple[int, ...],
                       dtype: Datatype,
                       chunks: Optional[tuple[int, ...]] = None) -> Dataset:
        """Create/open a dataset (idempotent across ranks).

        ``chunks`` selects HDF5's chunked storage layout: every I/O
        call is split into per-chunk storage requests.
        """
        self._check_open()
        stored = self.stored.ensure_dataset(
            path, shape, dtype, self.lib.materialize_limit, chunks=chunks
        )
        return Dataset(self, stored)

    def dataset(self, path: str) -> Dataset:
        """Open an existing dataset."""
        self._check_open()
        key = _norm(path)
        if key not in self.stored.datasets:
            raise KeyError(f"no dataset {key!r} in {self.path!r}")
        return Dataset(self, self.stored.datasets[key])

    def datasets(self) -> list[str]:
        """Dataset paths in creation order."""
        return list(self.stored.dataset_order)

    def groups(self) -> list[str]:
        """Group paths (sorted), including the root."""
        return sorted(self.stored.groups)

    def __contains__(self, path: str) -> bool:
        """Whether ``path`` names an existing dataset or group."""
        key = _norm(path)
        return key in self.stored.datasets or key in self.stored.groups

    def require_dataset(self, path: str, shape: tuple[int, ...],
                        dtype: Datatype) -> Dataset:
        """h5py-style: open if present (validating shape/dtype), else create."""
        return self.create_dataset(path, shape, dtype)

    @property
    def attrs(self) -> AttributeSet:
        """The file's root-group attributes."""
        return self.stored.group_attrs("/")

    def flush(self) -> Generator:
        """``H5Fflush``: connector-defined (drains async ops)."""
        self._check_open()
        yield from self.vol.file_flush(self.ctx, self.stored)

    def close(self) -> Generator:
        """``H5Fclose``: waits for this rank's outstanding async ops."""
        self._check_open()
        yield from self.vol.file_close(self.ctx, self.stored)
        self.stored.open_handles -= 1
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"file handle {self.path!r} already closed")
