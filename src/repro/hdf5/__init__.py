"""HDF5-style parallel I/O library with a Virtual Object Layer (VOL).

Mirrors the architecture the paper evaluates (§II-A): applications see a
single self-describing *container* (file → groups → datasets with
dataspaces and datatypes); all data movement is routed through a
pluggable VOL connector.

Two connectors are provided:

- :class:`~repro.hdf5.native_vol.NativeVOL`: synchronous — ``H5Dwrite``/
  ``H5Dread`` block for the full parallel-file-system transfer.
- :class:`~repro.hdf5.async_vol.AsyncVOL`: the asynchronous connector of
  Tang et al. [5] — the caller blocks only for a *transactional copy*
  into a staging buffer (DRAM or node-local SSD); one background worker
  per rank (the Argobots thread) drains staged operations to the PFS in
  order.  Event sets (``H5ES``) expose completion; reads support
  prefetching triggered after the first (blocking) time-step read.

Every operation is recorded as an :class:`~repro.trace.IOOpRecord`, the
raw material for the paper's aggregate-bandwidth metrics and for the
empirical model's measurement history (Fig. 2 feedback loop).
"""

from repro.hdf5.types import (
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    UINT8,
    Datatype,
)
from repro.hdf5.attributes import AttributeSet
from repro.hdf5.dataspace import Hyperslab, slab_1d
from repro.hdf5.objects import Dataset, File, Group, H5Library
from repro.hdf5.eventset import EventSet
from repro.hdf5.vol import VOLConnector
from repro.hdf5.native_vol import NativeVOL
from repro.hdf5.async_vol import AsyncVOL, SequentialPrefetcher

__all__ = [
    "AsyncVOL",
    "AttributeSet",
    "Dataset",
    "Datatype",
    "EventSet",
    "FLOAT32",
    "FLOAT64",
    "File",
    "Group",
    "H5Library",
    "Hyperslab",
    "INT32",
    "INT64",
    "NativeVOL",
    "SequentialPrefetcher",
    "UINT8",
    "VOLConnector",
    "slab_1d",
]
