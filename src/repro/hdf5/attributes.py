"""HDF5 attributes: small typed metadata on files, groups and datasets.

HDF5 is "a self-describing file format that provides an abstraction
layer to manage data and the metadata within a single file" (§II-A).
Attributes carry that metadata: simulation parameters on the file,
time-step numbers on groups, units on datasets.  They are small and
live with the object header, so reads/writes cost one metadata
round-trip, not a data transfer.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np

__all__ = ["AttributeSet"]

#: Types storable in an attribute (scalars, strings, small arrays).
AttrValue = Union[int, float, str, bool, np.ndarray, list, tuple]

#: Attributes above this size belong in a dataset instead (HDF5's
#: compact object-header limit is 64 KiB).
MAX_ATTR_BYTES = 64 * 1024


class AttributeSet:
    """Named small-value metadata attached to one HDF5 object.

    Mapping-style access (``attrs["nsteps"] = 100``), mirroring h5py.
    Values are defensively copied on write and read so shared stored
    objects cannot be mutated through stale references.
    """

    def __init__(self, owner_path: str = "/"):
        self._owner_path = owner_path
        self._attrs: dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def __iter__(self):
        return iter(sorted(self._attrs))

    def keys(self) -> list[str]:
        """Attribute names in sorted order."""
        return sorted(self._attrs)

    def __setitem__(self, name: str, value: AttrValue) -> None:
        if not name or "/" in name:
            raise ValueError(f"invalid attribute name: {name!r}")
        value = self._normalize(value)
        if self._nbytes(value) > MAX_ATTR_BYTES:
            raise ValueError(
                f"attribute {name!r} exceeds {MAX_ATTR_BYTES} bytes; "
                f"store large data in a dataset instead"
            )
        self._attrs[name] = value

    def __getitem__(self, name: str) -> Any:
        try:
            value = self._attrs[name]
        except KeyError:
            raise KeyError(
                f"no attribute {name!r} on {self._owner_path!r}"
            ) from None
        if isinstance(value, np.ndarray):
            return value.copy()
        return value

    def __delitem__(self, name: str) -> None:
        if name not in self._attrs:
            raise KeyError(f"no attribute {name!r} on {self._owner_path!r}")
        del self._attrs[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Value of ``name`` or ``default``."""
        return self[name] if name in self else default

    def update(self, values: dict[str, AttrValue]) -> None:
        """Set several attributes at once."""
        for name, value in values.items():
            self[name] = value

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict snapshot of all attributes."""
        return {name: self[name] for name in self}

    @staticmethod
    def _normalize(value: AttrValue) -> Any:
        if isinstance(value, (list, tuple)):
            value = np.asarray(value)
        if isinstance(value, np.ndarray):
            return value.copy()
        if isinstance(value, (bool, int, float, str, np.integer, np.floating)):
            return value
        raise TypeError(f"unsupported attribute type: {type(value).__name__}")

    @staticmethod
    def _nbytes(value: Any) -> int:
        if isinstance(value, np.ndarray):
            return int(value.nbytes)
        if isinstance(value, str):
            return len(value.encode())
        return 8
