"""The native (synchronous) VOL connector.

``H5Dwrite``/``H5Dread`` block for the complete parallel-file-system
transfer, including any GPU→CPU staging copy ("An I/O phase in our
model includes all data transfers that are involved with I/O
operations, such as copying from GPU memory to CPU memory before
persisting to storage", §III-A).

Optional **collective buffering** (MPI-IO two-phase I/O — the tuning
knob the paper's related work [25-30] optimizes): with
``collective=True`` every rank's ``H5Dwrite`` synchronizes with its
peers, data is shuffled over the interconnect to ``naggregators``
aggregator ranks, and only the aggregators issue (larger) storage
requests.  This rescues small-per-rank-request workloads at the cost of
the shuffle and the synchronization.

Simulator note: every storage request issued here goes through
``ParallelFileSystem.client_cap``, which memoizes the per-flow rate cap
per ``(nbytes, nic_peak)``.  A bulk-synchronous phase (all ranks writing
the same request size) therefore lands in a handful of flow classes of
the fast-path allocator — keep request sizes exact (no per-rank float
noise) when adding new issue sites, or the aggregation degrades to one
class per flow.  Flow ``tag``s are observational only and never affect
classing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.sim.engine import AllOf, SimEvent
from repro.hdf5.dataspace import Hyperslab
from repro.hdf5.vol import VOLConnector
from repro.trace import IOOpRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdf5.eventset import EventSet
    from repro.hdf5.objects import StoredDataset, StoredFile
    from repro.mpi.comm import RankContext

__all__ = ["NativeVOL"]


class _CollectiveRound:
    """Rendezvous state for one collective write round on a dataset."""

    __slots__ = ("arrived", "nbytes", "done")

    def __init__(self, done: SimEvent):
        self.arrived = 0
        self.nbytes = 0.0
        self.done = done


class NativeVOL(VOLConnector):
    """Fully blocking connector (HDF5 without the async VOL stacked).

    Parameters
    ----------
    collective:
        Enable MPI-IO-style two-phase writes.  Every rank of the job
        must then call ``write`` on the dataset (zero-size participation
        included), as MPI-IO collectives require.
    naggregators:
        Aggregator count for collective writes (clamped to the job
        size); typical MPI-IO defaults use one per node.
    """

    mode = "sync"

    def __init__(self, log=None, collective: bool = False,
                 naggregators: int = 1):
        super().__init__(log)
        if naggregators < 1:
            raise ValueError(f"naggregators must be >= 1, got {naggregators}")
        self.collective = collective
        self.naggregators = naggregators
        self._rounds: dict[str, _CollectiveRound] = {}

    def file_create(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        # One metadata round-trip to the PFS.
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    def file_open(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    def file_flush(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        # Synchronous writes are already durable when the call returns.
        return
        yield  # pragma: no cover - makes this a generator

    def file_close(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        yield ctx.engine.timeout(stored.target.fs.spec.metadata_latency)

    def dataset_write(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        data: Optional[np.ndarray],
        phase: Optional[int],
        es: Optional["EventSet"],
        from_gpu: bool = False,
        pinned: bool = True,
    ) -> Generator:
        nbytes = self._nbytes(stored, selection)
        t_submit = ctx.engine.now
        if from_gpu:
            # Blocking device-to-host copy before the PFS transfer.
            yield ctx.cluster.gpu_transfer(ctx.node, nbytes, pinned=pinned,
                                           tag=("d2h", ctx.rank))
        if self.collective:
            yield from self._collective_write(ctx, stored, nbytes)
        else:
            # One storage request per touched chunk (contiguous: one total).
            for req in stored.request_sizes(selection):
                yield ctx.cluster.pfs_write(
                    ctx.node, stored.file.target, req,
                    tag=("w", ctx.rank, stored.path),
                )
        now = ctx.engine.now
        record = IOOpRecord(
            op="write", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
            dataset=stored.path, phase=phase, t_submit=t_submit,
            t_unblocked=now, t_complete=now,
        )
        self.log.append(record)
        stored.apply_write(selection, data)
        if es is not None:
            # Sync ops complete before insertion; keep ES bookkeeping honest.
            done = ctx.engine.event(name="sync-op")
            done.succeed()
            es.add(done)

    def _collective_write(self, ctx: "RankContext", stored: "StoredDataset",
                          nbytes: float) -> Generator:
        """Two-phase write: shuffle to aggregators, aggregators store."""
        round_ = self._rounds.get(stored.path)
        if round_ is None:
            round_ = _CollectiveRound(
                ctx.engine.event(name=f"coll({stored.path})")
            )
            self._rounds[stored.path] = round_
        round_.arrived += 1
        round_.nbytes += nbytes
        my_arrival = round_.arrived
        # Phase 1: ship my contribution to its aggregator.
        yield ctx.engine.timeout(ctx.comm.cost.point_to_point(nbytes))
        if my_arrival == ctx.size:
            # Last arrival drives phase 2: aggregators issue the writes.
            del self._rounds[stored.path]
            naggr = min(self.naggregators, ctx.size)
            per_aggr = round_.nbytes / naggr
            rpn = max(1, ctx.size // max(1, len(ctx.cluster.nodes)))
            flows = [
                ctx.cluster.pfs_write(
                    ctx.cluster.node_of_rank(
                        a * (ctx.size // naggr), rpn
                    ),
                    stored.file.target, per_aggr,
                    tag=("cw", a, stored.path),
                )
                for a in range(naggr)
            ]
            done = round_.done

            def finish():
                yield AllOf(flows)
                done.succeed()

            ctx.engine.process(finish(), name=f"coll-finish({stored.path})")
        yield round_.done

    def dataset_read(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        phase: Optional[int],
        es: Optional["EventSet"],
    ) -> Generator:
        nbytes = self._nbytes(stored, selection)
        t_submit = ctx.engine.now
        for req in stored.request_sizes(selection):
            yield ctx.cluster.pfs_read(
                ctx.node, stored.file.target, req,
                tag=("r", ctx.rank, stored.path),
            )
        now = ctx.engine.now
        self.log.append(IOOpRecord(
            op="read", mode=self.mode, rank=ctx.rank, nbytes=nbytes,
            dataset=stored.path, phase=phase, t_submit=t_submit,
            t_unblocked=now, t_complete=now,
        ))
        return stored.read_payload(selection)
