"""Dataspaces and hyperslab selections.

A :class:`Hyperslab` is the contiguous-block special case of HDF5's
hyperslab selection (start/count per dimension, stride and block of 1),
which covers every access pattern in the paper's workloads: 1-D
per-rank particle slabs (VPIC/BD-CATS), 3-D box regions (AMReX plot
files, SW4 checkpoints) and whole-sample reads (Cosmoflow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["Hyperslab", "slab_1d"]


@dataclass(frozen=True)
class Hyperslab:
    """A rectangular region ``[start, start+count)`` in each dimension."""

    start: Tuple[int, ...]
    count: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", tuple(int(s) for s in self.start))
        object.__setattr__(self, "count", tuple(int(c) for c in self.count))
        if len(self.start) != len(self.count):
            raise ValueError(
                f"rank mismatch: start {self.start} vs count {self.count}"
            )
        if not self.start:
            raise ValueError("hyperslab needs at least one dimension")
        if any(s < 0 for s in self.start) or any(c < 0 for c in self.count):
            raise ValueError(f"negative start/count: {self.start}, {self.count}")

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.start)

    @property
    def npoints(self) -> int:
        """Number of selected elements."""
        n = 1
        for c in self.count:
            n *= c
        return n

    def nbytes(self, itemsize: int) -> int:
        """Selected bytes for elements of ``itemsize``."""
        return self.npoints * itemsize

    def fits_in(self, shape: Sequence[int]) -> bool:
        """Whether the slab lies inside a dataset of ``shape``."""
        if len(shape) != self.ndim:
            return False
        return all(s + c <= dim for s, c, dim in zip(self.start, self.count, shape))

    def as_slices(self) -> Tuple[slice, ...]:
        """NumPy basic-indexing slices for backing-array access."""
        return tuple(slice(s, s + c) for s, c in zip(self.start, self.count))

    def overlaps(self, other: "Hyperslab") -> bool:
        """Whether two slabs of the same rank intersect."""
        if other.ndim != self.ndim:
            raise ValueError("cannot compare slabs of different rank")
        for s1, c1, s2, c2 in zip(self.start, self.count, other.start, other.count):
            if s1 + c1 <= s2 or s2 + c2 <= s1:
                return False
        return True

    @classmethod
    def whole(cls, shape: Sequence[int]) -> "Hyperslab":
        """Select an entire dataset of ``shape``."""
        return cls(start=tuple(0 for _ in shape), count=tuple(shape))


def slab_1d(rank: int, per_rank: int) -> Hyperslab:
    """The standard 1-D block decomposition: rank ``r`` owns
    ``[r*per_rank, (r+1)*per_rank)`` — how VPIC-IO lays out particles."""
    if rank < 0 or per_rank < 0:
        raise ValueError(f"invalid rank/per_rank: {rank}/{per_rank}")
    return Hyperslab(start=(rank * per_rank,), count=(per_rank,))
