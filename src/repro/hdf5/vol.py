"""The Virtual Object Layer connector interface.

HDF5's VOL intercepts the public API ("the user still gets the same
data model ... the VOL connector translates from what the user sees to
how the data is actually stored", §II-A).  Here a connector implements
the storage side of file and dataset operations as simulation
generators; the object handles in :mod:`repro.hdf5.objects` delegate to
whichever connector the file was opened with, so switching between
synchronous and asynchronous I/O is a one-argument change — exactly the
transparency property the paper's adaptive-I/O vision relies on.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.hdf5.dataspace import Hyperslab
from repro.trace import IOLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hdf5.eventset import EventSet
    from repro.hdf5.objects import StoredDataset, StoredFile
    from repro.mpi.comm import RankContext

__all__ = ["VOLConnector"]


class VOLConnector(abc.ABC):
    """Base class for VOL connectors.

    Every data-path method is a generator to be ``yield from``-ed by a
    rank program; it returns when the operation's *blocking portion* is
    done.  Connectors record one :class:`~repro.trace.IOOpRecord` per
    dataset operation into ``self.log``.
    """

    #: Short mode tag used in records: "sync" or "async".
    mode: str = "sync"

    def __init__(self, log: Optional[IOLog] = None):
        self.log = log if log is not None else IOLog()

    # -- file lifecycle -------------------------------------------------------
    @abc.abstractmethod
    def file_create(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        """Per-rank cost of creating/attaching to a file."""

    @abc.abstractmethod
    def file_open(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        """Per-rank cost of opening an existing file."""

    @abc.abstractmethod
    def file_flush(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        """Make this rank's issued operations durable."""

    @abc.abstractmethod
    def file_close(self, ctx: "RankContext", stored: "StoredFile") -> Generator:
        """Flush then release this rank's handle."""

    def finalize(self, ctx: "RankContext") -> Generator:
        """Per-rank connector teardown, called once at the end of a rank
        program (the ``H5close``/``MPI_Finalize`` point).

        The synchronous connector has nothing to tear down, so the base
        implementation is a free no-op.  The async connector overrides
        this to drain outstanding operations, shut down its background
        worker streams and charge the paper's ``t_term`` (Eq. 1 counts
        ``t_term`` in ``t_app``)."""
        return
        yield  # pragma: no cover - unreachable; marks this as a generator

    # -- dataset data path -----------------------------------------------------
    @abc.abstractmethod
    def dataset_write(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        data: Optional[np.ndarray],
        phase: Optional[int],
        es: Optional["EventSet"],
        from_gpu: bool = False,
        pinned: bool = True,
    ) -> Generator:
        """Write ``selection`` of ``stored``; blocks per connector policy."""

    @abc.abstractmethod
    def dataset_read(
        self,
        ctx: "RankContext",
        stored: "StoredDataset",
        selection: Hyperslab,
        phase: Optional[int],
        es: Optional["EventSet"],
    ) -> Generator:
        """Read ``selection``; returns payload for materialized datasets."""

    # -- helpers ---------------------------------------------------------------
    def _nbytes(self, stored: "StoredDataset", selection: Hyperslab) -> float:
        return float(selection.nbytes(stored.dtype.itemsize))
