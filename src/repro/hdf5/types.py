"""HDF5 datatypes (the subset the workloads need)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Datatype", "FLOAT32", "FLOAT64", "INT32", "INT64", "UINT8"]


@dataclass(frozen=True)
class Datatype:
    """A fixed-size element type.

    ``np_dtype`` is used when a dataset materializes a backing array
    (small datasets in tests); performance-only datasets never allocate.
    """

    name: str
    itemsize: int

    def __post_init__(self) -> None:
        if self.itemsize < 1:
            raise ValueError(f"itemsize must be >= 1, got {self.itemsize}")

    @property
    def np_dtype(self) -> np.dtype:
        """The matching NumPy dtype."""
        return np.dtype(self.name)

    def __repr__(self) -> str:
        return f"Datatype({self.name!r}, {self.itemsize})"


FLOAT32 = Datatype("float32", 4)
FLOAT64 = Datatype("float64", 8)
INT32 = Datatype("int32", 4)
INT64 = Datatype("int64", 8)
UINT8 = Datatype("uint8", 1)
