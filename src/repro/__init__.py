"""repro — Evaluating Asynchronous Parallel I/O on HPC Systems (IPDPS 2023).

A self-contained reproduction of Ravi et al.'s evaluation of HDF5
synchronous vs asynchronous parallel I/O on Summit and Cori-Haswell,
built on a calibrated discrete-event simulation.

Package map (bottom-up):

- :mod:`repro.sim` — event engine, processes, max-min fair network.
- :mod:`repro.platform` — machine specs (Summit/Cori), GPFS/Lustre
  models, memory-copy curves, contention.
- :mod:`repro.mpi` — simulated MPI runtime (ranks, collectives).
- :mod:`repro.hdf5` — HDF5-style library with native (sync) and async
  VOL connectors.
- :mod:`repro.model` — the paper's performance model (Eq. 1-5, Fig. 2).
- :mod:`repro.workloads` — VPIC-IO, BD-CATS-IO, Nyx, Castro,
  SW4/EQSIM, Cosmoflow.
- :mod:`repro.harness` / :mod:`repro.analysis` — experiment sweeps,
  model fitting, figure regeneration (``python -m repro figures``).
- :mod:`repro.trace` — per-operation I/O records and derived metrics.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
