"""Per-node cache agent: residency maps and LRU eviction.

A :class:`NodeAgent` owns the tier ledgers of one compute node and the
map of which block lives where.  It is purely bookkeeping — moving the
bytes is the :class:`~repro.cache.engine.CopyEngine`'s job — so its
decisions (admit / evict / reject) are instantaneous and deterministic:
eviction order is strict LRU by a monotone touch counter, never by
iteration over an unordered container.

Invariants:

- a block in state ``"inflight"`` is **never evictable** — its copy is
  still writing to the tier, and yanking the ledger bytes out from
  under an active flow would corrupt accounting (mandated test:
  eviction must skip in-flight blocks);
- pinned blocks (a reader is waiting on them) are never evictable;
- when admission cannot free enough space from evictable blocks the
  agent raises :class:`~repro.faults.CacheAdmissionError` and the tier
  ledger is left exactly as it was.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.metrics import CacheMetrics
from repro.cache.tiers import CacheTier, TierSpec
from repro.faults.errors import CacheAdmissionError
from repro.sim.engine import Engine, SimEvent

__all__ = ["Block", "NodeAgent"]


class Block:
    """One cached byte range on one tier of one node.

    ``ready`` fires when the block becomes resident — and, like the
    async VOL's prefetch slots, it *always succeeds*: a failed copy
    succeeds the event too and flips ``state`` to ``"failed"``, so a
    waiting reader checks ``state`` afterwards and falls back to a
    source-tier read instead of having to handle event failure.
    """

    __slots__ = ("key", "nbytes", "tier", "state", "seq", "pins", "ready",
                 "deadline")

    def __init__(self, key: tuple, nbytes: float, tier: str,
                 ready: SimEvent, deadline: float = float("inf")):
        self.key = key
        self.nbytes = nbytes
        self.tier = tier
        #: ``"inflight"`` → ``"resident"`` | ``"failed"``.
        self.state = "inflight"
        #: LRU touch counter (monotone; higher = more recent).
        self.seq = 0
        #: Readers currently waiting on / consuming this block.
        self.pins = 0
        self.ready = ready
        self.deadline = deadline

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Block {self.key} {self.nbytes:.3g}B on {self.tier} "
                f"[{self.state}]>")


class NodeAgent:
    """Residency map and eviction policy for one node's tier stack."""

    def __init__(self, engine: Engine, node_index: int,
                 tiers: tuple[TierSpec, ...], metrics: CacheMetrics,
                 device_free: Optional[Callable[[str, float], None]] = None):
        self.engine = engine
        self.node_index = node_index
        #: tier name -> strict byte ledger (PFS excluded: it is the
        #: backing store, not cache space this agent manages).
        self.tiers: dict[str, CacheTier] = {
            spec.name: CacheTier(spec) for spec in tiers
            if spec.name != "pfs"
        }
        self.metrics = metrics
        #: ``(tier, nbytes)`` callback releasing device-side space when
        #: a block leaves a tier (node-local SSD ledger).
        self.device_free = device_free
        self._blocks: dict[tuple, Block] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: tuple) -> Optional[Block]:
        """The block cached under ``key``, touched for LRU; or None."""
        block = self._blocks.get(key)
        if block is not None:
            self._clock += 1
            block.seq = self._clock
        return block

    def resident_bytes(self, tier: Optional[str] = None) -> float:
        """Bytes of *resident* blocks, on ``tier`` or on all tiers."""
        return sum(
            b.nbytes for b in self._blocks.values()
            if b.state == "resident" and (tier is None or b.tier == tier)
        )

    # ------------------------------------------------------------------
    # Admission / eviction
    # ------------------------------------------------------------------
    def admit(self, key: tuple, nbytes: float, tier: str,
              deadline: float = float("inf")) -> Block:
        """Claim space for ``key`` on ``tier``, evicting LRU if needed.

        Returns the new in-flight :class:`Block` (the caller runs the
        copy and then calls :meth:`mark_resident` / :meth:`mark_failed`).
        Raises :class:`CacheAdmissionError` when the tier cannot hold
        the block even after evicting everything evictable, leaving all
        ledgers untouched.
        """
        if key in self._blocks:
            raise RuntimeError(f"block {key} already cached on "
                               f"node {self.node_index}")
        ledger = self._tier(tier)
        if nbytes > ledger.spec.capacity_bytes:
            raise CacheAdmissionError(
                f"block {key} ({nbytes:.3g}B) exceeds tier {tier!r} "
                f"capacity {ledger.spec.capacity_bytes:.3g}B on "
                f"node {self.node_index}"
            )
        if not ledger.fits(nbytes):
            shortfall = nbytes - ledger.free_bytes
            victims = self._plan_eviction(tier, shortfall)
            if victims is None:
                raise CacheAdmissionError(
                    f"tier {tier!r} on node {self.node_index} is full "
                    f"({ledger.free_bytes:.3g}B free, {nbytes:.3g}B "
                    f"needed) and nothing is evictable"
                )
            for victim in victims:
                self._evict(victim)
        ledger.take(nbytes)
        block = Block(key, nbytes, tier,
                      self.engine.event(f"cache-ready:{key}"),
                      deadline=deadline)
        self._clock += 1
        block.seq = self._clock
        self._blocks[key] = block
        return block

    def _plan_eviction(self, tier: str,
                       shortfall: float) -> Optional[list[Block]]:
        """LRU victims freeing ``shortfall`` bytes, or None if impossible."""
        candidates = sorted(
            (b for b in self._blocks.values()
             if b.tier == tier and b.state == "resident" and b.pins == 0),
            key=lambda b: b.seq,
        )
        victims: list[Block] = []
        freed = 0.0
        for block in candidates:
            victims.append(block)
            freed += block.nbytes
            if freed >= shortfall:
                return victims
        return None

    def _evict(self, block: Block) -> None:
        del self._blocks[block.key]
        self._tier(block.tier).give(block.nbytes)
        if self.device_free is not None:
            self.device_free(block.tier, block.nbytes)
        self.metrics.evictions += 1

    def drop(self, key: tuple) -> None:
        """Remove ``key`` outright (failed copy cleanup — not an
        eviction for metrics purposes)."""
        block = self._blocks.pop(key)
        self._tier(block.tier).give(block.nbytes)
        if self.device_free is not None and block.state == "resident":
            self.device_free(block.tier, block.nbytes)

    # ------------------------------------------------------------------
    # Copy-completion transitions
    # ------------------------------------------------------------------
    def mark_resident(self, block: Block) -> None:
        """The copy filling ``block`` finished: wake waiting readers."""
        block.state = "resident"
        block.ready.succeed()

    def mark_failed(self, block: Block) -> None:
        """The copy filling ``block`` aborted: free the space, wake
        readers so they fall back to the source tier."""
        block.state = "failed"
        self.drop(block.key)
        block.ready.succeed()

    def _tier(self, name: str) -> CacheTier:
        if name not in self.tiers:
            raise ValueError(
                f"node {self.node_index} has no cache tier {name!r} "
                f"(tiers: {sorted(self.tiers)})"
            )
        return self.tiers[name]
