"""The staging-cache facade: one object the rest of the stack talks to.

A :class:`CacheSubsystem` bundles the tier model, per-node agents, the
copy engine and the prefetch planner behind the few operations the
async VOL and the workloads need:

- ``lookup`` / ``serve`` — read-path residency check and warm-tier
  delivery (DRAM memcpy or NVMe read instead of a PFS round trip);
- ``stage_write`` / ``stage_read`` / ``stage_release`` — the
  write-through drain hop (DRAM → NVMe → PFS) used by
  :class:`~repro.hdf5.async_vol.AsyncVOL`;
- ``planner.submit`` — deadline-declared future reads;
- ``warm_bytes`` — per-node residency telemetry for
  :class:`~repro.sched.policies.IOAwarePolicy` placement.

Zero-cost-off: constructing the subsystem touches no engine state, and
with ``write_through=False, prefetch=False`` every hook degenerates to
a cheap predicate — the event schedule of a run with an inert
subsystem is byte-identical to one with no subsystem at all (the
``cache_off`` perf-budget gate enforces this).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.agent import Block, NodeAgent
from repro.cache.engine import CopyEngine
from repro.cache.metrics import CacheMetrics
from repro.cache.planner import PrefetchPlanner
from repro.cache.tiers import DRAM, NVME, TierSpec, tier_stack_for
from repro.faults.errors import CacheAdmissionError
from repro.platform.cluster import Cluster, Node

__all__ = ["CacheSubsystem"]


class CacheSubsystem:
    """Tiered staging cache over one cluster's nodes."""

    def __init__(self, cluster: Cluster,
                 tiers: Optional[tuple[TierSpec, ...]] = None,
                 faults=None, write_through: bool = True,
                 prefetch: bool = True, dram_fraction: float = 0.1):
        self.cluster = cluster
        self.engine = cluster.engine
        self.tiers: tuple[TierSpec, ...] = (
            tiers if tiers is not None
            else tier_stack_for(cluster.machine, dram_fraction=dram_fraction)
        )
        self.tier_specs: dict[str, TierSpec] = {
            t.name: t for t in self.tiers
        }
        self.write_through = write_through
        self.prefetch = prefetch
        self.metrics = CacheMetrics()
        self.copy_engine = CopyEngine(cluster, self.tier_specs, self.metrics,
                                      faults=faults)
        self.planner = PrefetchPlanner(self.copy_engine, self.metrics,
                                       self.agent)
        self._faults = faults
        self._agents: dict[int, NodeAgent] = {}

    @property
    def enabled(self) -> bool:
        """Whether any cache behavior is on (inert subsystems are the
        ``cache off`` baseline of the perf gate)."""
        return self.write_through or self.prefetch

    # ------------------------------------------------------------------
    # Agents
    # ------------------------------------------------------------------
    def agent(self, node_index: int) -> NodeAgent:
        """The (lazily created) cache agent of one node."""
        agent = self._agents.get(node_index)
        if agent is None:
            node = self.cluster.nodes[node_index]
            specs = tuple(
                t for t in self.tiers
                if not (t.name == NVME and node.spec.local_ssd is None
                        and self.cluster.burst_buffer is None)
            )
            agent = NodeAgent(
                self.engine, node_index, specs, self.metrics,
                device_free=lambda tier, nbytes, _node=node:
                    self.copy_engine.nvme_release(_node, nbytes)
                    if tier == NVME else None,
            )
            self._agents[node_index] = agent
        return agent

    def has_nvme(self, node: Node) -> bool:
        """Whether ``node`` has a middle tier to write through."""
        return NVME in self.agent(node.index).tiers

    # ------------------------------------------------------------------
    # Read path (used by AsyncVOL.dataset_read)
    # ------------------------------------------------------------------
    def lookup(self, node: Node, key: tuple) -> Optional[Block]:
        """The block cached under ``key`` on ``node``, or None."""
        return self.agent(node.index).lookup(key)

    def serve(self, node: Node, block: Block, tag=None):
        """Generator delivering a *resident* block to the reader."""
        if block.state != "resident":
            raise RuntimeError(f"cannot serve non-resident {block!r}")
        block.pins += 1
        try:
            if block.tier == DRAM:
                yield self.cluster.memcpy(node, block.nbytes, tag=tag)
            elif block.tier == NVME:
                yield self.copy_engine._nvme_read(node, block.nbytes, tag)
            else:
                raise RuntimeError(f"unservable tier {block.tier!r}")
        finally:
            block.pins -= 1

    # ------------------------------------------------------------------
    # Write-through drain hops (used by AsyncVOL._bg_write_batch)
    # ------------------------------------------------------------------
    def stage_write(self, node: Node, nbytes: float, tag=None):
        """Generator hopping ``nbytes`` of drained writes DRAM → NVMe.

        Claims tier space first (raising
        :class:`~repro.faults.CacheAdmissionError` when the tier is
        full — the drain then bypasses straight to the PFS) and
        consults the tier fault hook before any bytes move.
        """
        agent = self.agent(node.index)
        tier = agent.tiers[NVME]
        if self._faults is not None:
            self._faults.tier_hook(node.index, nbytes, tag)
        if not tier.fits(nbytes):
            raise CacheAdmissionError(
                f"nvme tier on node {node.index} full "
                f"({tier.free_bytes:.3g}B free, {nbytes:.3g}B needed)"
            )
        tier.take(nbytes)
        try:
            yield self.copy_engine._nvme_write(node, nbytes, tag)
        except BaseException:
            tier.give(nbytes)
            raise
        self.metrics.count_copy(NVME, nbytes)

    def stage_read(self, node: Node, nbytes: float, tag=None):
        """Generator reading staged drain bytes back off the NVMe tier."""
        yield self.copy_engine._nvme_read(node, nbytes, tag)

    def stage_release(self, node: Node, nbytes: float) -> None:
        """Free NVMe tier + device space once staged bytes hit the PFS."""
        self.agent(node.index).tiers[NVME].give(nbytes)
        self.copy_engine.nvme_release(node, nbytes)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def warm_bytes(self) -> dict[int, float]:
        """Resident cache bytes per node (sorted keys), for placement."""
        return {
            index: self._agents[index].resident_bytes()
            for index in sorted(self._agents)
        }

    def snapshot(self) -> dict:
        """The metrics snapshot (JSON-ready, sorted keys)."""
        return self.metrics.snapshot()
