"""Tiered staging cache with deadline-aware prefetch.

The write side of the paper hides I/O behind compute by staging to
DRAM and draining asynchronously; this subsystem generalizes that into
a DRAM → node-local NVMe → PFS tier stack (:mod:`repro.cache.tiers`),
per-node residency agents with LRU eviction (:mod:`repro.cache.agent`),
a copy engine issuing tier-to-tier moves as simulated device flows
(:mod:`repro.cache.engine`), and an EDF prefetch planner turning
declared future reads into a deadline-ordered copy schedule with
admission control (:mod:`repro.cache.planner`).
:class:`~repro.cache.subsystem.CacheSubsystem` is the facade the async
VOL, the workloads and the scheduler integrate against.
"""

from repro.cache.agent import Block, NodeAgent
from repro.cache.engine import CopyEngine
from repro.cache.metrics import CacheMetrics
from repro.cache.planner import CacheRequest, PrefetchPlanner, cache_key
from repro.cache.subsystem import CacheSubsystem
from repro.cache.tiers import (
    DRAM,
    NVME,
    PFS,
    TIER_NAMES,
    CacheTier,
    TierSpec,
    tier_preset,
    tier_preset_names,
    tier_presets,
    tier_stack_for,
)

__all__ = [
    "Block",
    "CacheMetrics",
    "CacheRequest",
    "CacheSubsystem",
    "CacheTier",
    "CopyEngine",
    "DRAM",
    "NVME",
    "NodeAgent",
    "PFS",
    "PrefetchPlanner",
    "TIER_NAMES",
    "TierSpec",
    "cache_key",
    "tier_preset",
    "tier_preset_names",
    "tier_presets",
    "tier_stack_for",
]
