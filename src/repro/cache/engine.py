"""Copy engine: tier-to-tier moves as simulated device flows.

The :class:`CopyEngine` turns a planner decision ("bring block B from
``pfs`` to ``dram`` on node 3") into the device operations the platform
layer already models — PFS client flows, node-local SSD flows, burst
buffer flows, host memcpys — so cached bytes compete for the same
links as foreground I/O and contention falls out of the network
allocator, not a side model.

Every issued copy is appended to :attr:`CopyEngine.schedule` at issue
time; the list is a pure function of the request stream and the seed,
which the determinism tests replay (same seed → byte-identical copy
schedule).

Fault interaction: copies touching the ``nvme`` tier consult
``FaultInjector.tier_hook`` *before any bytes move*, so an injected
:class:`~repro.faults.TierDegradedError` always leaves the source tier
intact and the copy bypass- or retry-safe.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.metrics import CacheMetrics
from repro.cache.tiers import DRAM, NVME, PFS, TierSpec
from repro.platform.cluster import Cluster, Node
from repro.platform.storage import FileTarget

__all__ = ["CopyEngine"]


class CopyEngine:
    """Schedules tier-to-tier copies as simulated events."""

    def __init__(self, cluster: Cluster, tiers: dict[str, TierSpec],
                 metrics: CacheMetrics, faults=None):
        self.cluster = cluster
        self.engine = cluster.engine
        self.tiers = tiers
        self.metrics = metrics
        self.faults = faults
        #: (t_issue, node_index, tier_src, tier_dst, nbytes) per copy,
        #: in issue order — the replay-determinism artifact.
        self.schedule: list[tuple[float, int, str, str, float]] = []

    def copy(self, node: Node, src: str, dst: str, nbytes: float,
             target: Optional[FileTarget] = None, tag=None):
        """Generator moving ``nbytes`` from tier ``src`` to ``dst``.

        Charges the fixed per-op latency of both endpoint tiers, then
        runs the device flows leg by leg.  ``target`` is required when
        either endpoint is the PFS.
        """
        for name in (src, dst):
            if name not in self.tiers:
                raise ValueError(f"unknown tier {name!r} in copy "
                                 f"{src!r}->{dst!r}")
        if src == dst and src != DRAM:
            raise ValueError(f"degenerate copy {src!r}->{dst!r}")
        if PFS in (src, dst) and target is None:
            raise ValueError("PFS-endpoint copies need a FileTarget")
        if self.faults is not None and NVME in (src, dst):
            self.faults.tier_hook(node.index, nbytes, tag)
        self.schedule.append((self.engine.now, node.index, src, dst, nbytes))
        latency = self.tiers[src].latency + self.tiers[dst].latency
        if latency > 0.0:
            yield self.engine.timeout(latency)
        if src == PFS:
            yield self.cluster.pfs_read(node, target, nbytes, tag=tag)
        elif src == NVME:
            yield self._nvme_read(node, nbytes, tag)
        if dst == PFS:
            yield self.cluster.pfs_write(node, target, nbytes, tag=tag)
        elif dst == NVME:
            yield self._nvme_write(node, nbytes, tag)
        elif dst == DRAM and src == DRAM:
            yield self.cluster.memcpy(node, nbytes, tag=tag)
        self.metrics.count_copy(dst, nbytes)

    # ------------------------------------------------------------------
    # NVMe leg: node-local drive when present, burst buffer otherwise
    # ------------------------------------------------------------------
    def _nvme_write(self, node: Node, nbytes: float, tag):
        if node.spec.local_ssd is not None:
            return node.ssd.write(nbytes, tag=tag)
        return self._burst_buffer(node).write(node, nbytes, tag=tag)

    def _nvme_read(self, node: Node, nbytes: float, tag):
        if node.spec.local_ssd is not None:
            return node.ssd.read(nbytes, tag=tag)
        return self._burst_buffer(node).read(node, nbytes, tag=tag)

    def nvme_release(self, node: Node, nbytes: float) -> None:
        """Free device-side space backing an evicted/dropped block
        (the burst buffer has no per-node ledger to release)."""
        if node.spec.local_ssd is not None:
            node.ssd.evict(nbytes)

    def _burst_buffer(self, node: Node):
        bb = self.cluster.burst_buffer
        if bb is None:
            raise ValueError(
                f"node {node.index} has neither a local SSD nor a "
                f"burst buffer to back the nvme tier"
            )
        return bb
