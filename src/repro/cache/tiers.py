"""Tier model of the staging cache: DRAM → node-local NVMe → PFS.

The paper's async VOL stages to a *single* DRAM buffer and drains to
the PFS; this module generalizes that pair into an ordered stack of
:class:`TierSpec` levels, each with capacity, read/write bandwidth and
a per-operation latency drawn from the machine description that the
rest of the simulator already uses (:mod:`repro.platform.spec` /
:mod:`repro.platform.storage`).  The cost constants follow the NVM
performance-modeling line of work (arXiv:1705.03598): a tier is fully
characterized by how fast bytes enter, how fast they leave, how much
fits, and the fixed per-op charge.

:class:`CacheTier` is the runtime ledger of one tier *on one node*.
Accounting is strict in the style of
:class:`~repro.hdf5.async_vol.Reservation`: double-release and
over-release raise instead of clamping, so a leak in eviction code
cannot masquerade as free space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.platform.spec import MachineSpec

__all__ = [
    "DRAM",
    "NVME",
    "PFS",
    "TIER_NAMES",
    "CacheTier",
    "TierSpec",
    "tier_preset",
    "tier_preset_names",
    "tier_presets",
    "tier_stack_for",
]

#: Canonical tier names, fastest first.
DRAM = "dram"
NVME = "nvme"
PFS = "pfs"
TIER_NAMES = (DRAM, NVME, PFS)


@dataclass(frozen=True)
class TierSpec:
    """One level of the staging hierarchy.

    ``capacity_bytes`` may be ``math.inf`` (the PFS backs everything);
    bandwidths are per-node B/s; ``latency`` is the fixed per-operation
    charge (device submission / metadata cost) paid before bytes move.
    """

    name: str
    capacity_bytes: float
    read_bandwidth: float
    write_bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in TIER_NAMES:
            raise ValueError(
                f"tier name must be one of {TIER_NAMES}, got {self.name!r}"
            )
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier capacity must be positive: {self}")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError(f"tier bandwidths must be positive: {self}")
        if self.latency < 0:
            raise ValueError(f"tier latency must be non-negative: {self}")


class CacheTier:
    """Strict byte ledger of one tier on one node."""

    __slots__ = ("spec", "used")

    def __init__(self, spec: TierSpec):
        self.spec = spec
        self.used = 0.0

    @property
    def name(self) -> str:
        """The tier's canonical name (``dram`` / ``nvme`` / ``pfs``)."""
        return self.spec.name

    @property
    def free_bytes(self) -> float:
        """Unclaimed capacity on this tier."""
        return self.spec.capacity_bytes - self.used

    def fits(self, nbytes: float) -> bool:
        """Whether ``nbytes`` can be taken without eviction."""
        return nbytes <= self.free_bytes

    def take(self, nbytes: float) -> None:
        """Claim ``nbytes``; raises when the tier cannot hold them."""
        if nbytes <= 0:
            raise ValueError(f"take of non-positive {nbytes:.3g}B")
        if not self.fits(nbytes):
            raise RuntimeError(
                f"tier {self.name!r} over-claim: {nbytes:.3g}B with only "
                f"{self.free_bytes:.3g}B of {self.spec.capacity_bytes:.3g}B "
                f"free"
            )
        self.used += nbytes

    def give(self, nbytes: float) -> None:
        """Return ``nbytes``; over-release raises (strict accounting)."""
        if nbytes > self.used + 1e-6:
            raise RuntimeError(
                f"tier {self.name!r} over-release of {nbytes:.3g}B "
                f"(only {self.used:.3g}B claimed)"
            )
        self.used = max(0.0, self.used - nbytes)


def tier_stack_for(machine: MachineSpec,
                   dram_fraction: float = 0.1) -> tuple[TierSpec, ...]:
    """Derive a machine's tier stack from its platform description.

    - **dram**: ``dram_fraction`` of node DRAM as cache space, moving
      at the node's memcpy aggregate rate (separate from the async
      VOL's staging buffer, which holds in-flight writes).
    - **nvme**: the node-local SSD when present, else the shared burst
      buffer (capacity far above any cache need, the Cori shape).
      Machines with neither simply have no middle tier.
    - **pfs**: unbounded, at the file system's peak — per-request cost
      still goes through :class:`~repro.platform.storage` flows, so
      this spec only names the tier and its metadata latency.
    """
    if not 0.0 < dram_fraction <= 1.0:
        raise ValueError(f"dram_fraction must be in (0,1], got {dram_fraction}")
    node = machine.node
    tiers = [TierSpec(
        name=DRAM,
        capacity_bytes=node.dram_bytes * dram_fraction,
        read_bandwidth=node.memcpy.node_aggregate,
        write_bandwidth=node.memcpy.node_aggregate,
        latency=0.0,
    )]
    if node.local_ssd is not None:
        tiers.append(TierSpec(
            name=NVME,
            capacity_bytes=node.local_ssd.capacity_bytes,
            read_bandwidth=node.local_ssd.read_bandwidth,
            write_bandwidth=node.local_ssd.write_bandwidth,
            latency=1e-4,
        ))
    elif machine.burst_buffer_bandwidth > 0:
        tiers.append(TierSpec(
            name=NVME,
            capacity_bytes=100e15,
            read_bandwidth=machine.burst_buffer_bandwidth,
            write_bandwidth=machine.burst_buffer_bandwidth,
            latency=1e-4,
        ))
    tiers.append(TierSpec(
        name=PFS,
        capacity_bytes=math.inf,
        read_bandwidth=machine.filesystem.peak_bandwidth,
        write_bandwidth=machine.filesystem.peak_bandwidth,
        latency=machine.filesystem.metadata_latency,
    ))
    return tuple(tiers)


def _preset_machines() -> dict:
    from repro.platform.machines import (
        cori_haswell, exascale_testbed, summit, testbed,
    )

    return {
        "summit": summit,
        "cori-haswell": cori_haswell,
        "testbed": testbed,
        "exascale-testbed": exascale_testbed,
    }


def tier_preset_names() -> list[str]:
    """Names accepted by :func:`tier_preset`, sorted."""
    return sorted(_preset_machines())


def tier_preset(name: str) -> tuple[TierSpec, ...]:
    """The named machine's derived tier stack."""
    machines = _preset_machines()
    if name not in machines:
        raise ValueError(
            f"unknown tier preset {name!r}; choose from {sorted(machines)}"
        )
    return tier_stack_for(machines[name]())


def tier_presets() -> list[tuple[str, str]]:
    """(name, one-line description) pairs for ``repro list``."""
    out = []
    for name in tier_preset_names():
        stack = tier_preset(name)
        legs = " -> ".join(
            t.name if math.isinf(t.capacity_bytes)
            else f"{t.name} {t.capacity_bytes / 1e9:.3g}GB"
            for t in stack
        )
        out.append((name, legs))
    return out
