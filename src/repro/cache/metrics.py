"""Counters for the staging cache: hits, deadlines, bytes per tier.

One :class:`CacheMetrics` instance is shared by every component of a
:class:`~repro.cache.CacheSubsystem` (node agents, copy engine,
prefetch planner), so a single snapshot describes the whole run.  All
fields are plain counters incremented at simulated-event boundaries —
no wall clock, no randomness — and :meth:`snapshot` emits them in
sorted-key order so serialized artifacts are byte-stable across worker
counts and platforms.
"""

from __future__ import annotations

__all__ = ["CacheMetrics"]


class CacheMetrics:
    """Shared counters for one cache subsystem instance."""

    __slots__ = (
        "hits", "misses", "prefetch_on_time", "prefetch_late",
        "prefetch_rejected", "prefetch_failed", "evictions",
        "bytes_to_tier",
    )

    def __init__(self):
        #: Reads served from a resident (or in-flight) cache block.
        self.hits = 0
        #: Reads that went to the source tier directly.
        self.misses = 0
        #: Prefetches resident at or before their declared deadline.
        self.prefetch_on_time = 0
        #: Prefetches that became resident after their deadline.
        self.prefetch_late = 0
        #: Prefetch requests refused at admission (no tier had room).
        self.prefetch_rejected = 0
        #: Prefetch copies aborted by an injected fault (served from
        #: the source tier instead; counts as a missed deadline).
        self.prefetch_failed = 0
        #: Resident blocks displaced to make room.
        self.evictions = 0
        #: Bytes copied *into* each tier, by tier name.
        self.bytes_to_tier: dict[str, float] = {}

    def count_copy(self, tier_dst: str, nbytes: float) -> None:
        """Account ``nbytes`` landing on ``tier_dst``."""
        self.bytes_to_tier[tier_dst] = (
            self.bytes_to_tier.get(tier_dst, 0.0) + nbytes
        )

    @property
    def hit_ratio(self) -> float:
        """Cache hits over all tracked reads (0.0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def on_time_ratio(self) -> float:
        """Deadline-met prefetches over all completed ones (1.0 when
        nothing was prefetched — an empty schedule misses nothing)."""
        done = self.prefetch_on_time + self.prefetch_late + self.prefetch_failed
        return self.prefetch_on_time / done if done else 1.0

    def snapshot(self) -> dict:
        """Counters as a sorted, JSON-ready dict."""
        return {
            "bytes_to_tier": {
                k: self.bytes_to_tier[k] for k in sorted(self.bytes_to_tier)
            },
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
            "hits": self.hits,
            "misses": self.misses,
            "on_time_ratio": self.on_time_ratio,
            "prefetch_failed": self.prefetch_failed,
            "prefetch_late": self.prefetch_late,
            "prefetch_on_time": self.prefetch_on_time,
            "prefetch_rejected": self.prefetch_rejected,
        }
