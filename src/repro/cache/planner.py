"""Deadline-aware prefetch planner.

Workloads declare *future* reads as :class:`CacheRequest` records —
"rank 2 will need this slab of ``/Step#3/px`` by t=140s" — and the
:class:`PrefetchPlanner` turns them into a deadline-ordered (EDF) copy
schedule per node, with admission control when the target tiers are
full.  This is the read-side mirror of the paper's write-behind
staging: BD-CATS-style analysis knows epoch N+1's selections during
epoch N's compute window (§V-A.2), so the planner can hide read time
under compute exactly the way the async VOL hides write time.

Admission is a cascade: the requested destination tier first, then any
remaining faster-than-PFS tier on the node.  A request that no tier
can hold is *rejected* (counted, ``submit`` returns ``False``) — the
reader simply pays the source-tier read, admission control degrades
service, never correctness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cache.agent import Block, NodeAgent
from repro.cache.engine import CopyEngine
from repro.cache.metrics import CacheMetrics
from repro.cache.tiers import DRAM, NVME, PFS
from repro.faults.errors import CacheAdmissionError, TransientIOError
from repro.platform.storage import FileTarget

__all__ = ["CacheRequest", "PrefetchPlanner", "cache_key"]


def cache_key(rank: int, path: str, selection) -> tuple:
    """The residency-map key of one rank's selection of one dataset.

    Matches the async VOL's prefetch-slot convention, so planner-made
    blocks and VOL reads agree on identity.
    """
    return (rank, path, selection.start, selection.count)


@dataclass(frozen=True)
class CacheRequest:
    """One declared future read."""

    #: Who asked (workload name / rank label) — for traces only.
    tenant: str
    #: Residency key (see :func:`cache_key`).
    key: tuple
    nbytes: float
    #: Tier holding the bytes now (usually ``pfs``).
    tier_src: str
    #: Tier the bytes should be resident on by ``deadline``.
    tier_dst: str
    #: Simulated time the reader will ask for the bytes.
    deadline: float
    node_index: int
    #: Backing file region (required for PFS-endpoint copies).
    target: Optional[FileTarget] = None
    #: Invoked (with the block) when the copy completes, on time or not.
    on_ready: Optional[Callable[[Block], None]] = field(
        default=None, compare=False)

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"request for non-positive {self.nbytes:.3g}B")
        if self.tier_src == self.tier_dst:
            raise ValueError(f"degenerate request {self.tier_src!r}->"
                             f"{self.tier_dst!r}")
        if self.deadline < 0:
            raise ValueError(f"negative deadline {self.deadline}")
        if self.node_index < 0:
            raise ValueError(f"negative node index {self.node_index}")


class PrefetchPlanner:
    """EDF copy scheduling with admission control, one queue per node."""

    def __init__(self, copy_engine: CopyEngine, metrics: CacheMetrics,
                 agent_of: Callable[[int], NodeAgent]):
        self.copy_engine = copy_engine
        self.engine = copy_engine.engine
        self.metrics = metrics
        self._agent_of = agent_of
        #: node -> EDF heap of (deadline, seq, request, block).
        self._queues: dict[int, list] = {}
        self._running: set[int] = set()
        self._seq = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: CacheRequest) -> bool:
        """Admit and enqueue one declared read; False on rejection."""
        agent = self._agent_of(request.node_index)
        if agent.lookup(request.key) is not None:
            return True
        block = self._admit(agent, request)
        if block is None:
            self.metrics.prefetch_rejected += 1
            return False
        self._seq += 1
        queue = self._queues.setdefault(request.node_index, [])
        heapq.heappush(queue, (request.deadline, self._seq, request, block))
        if request.node_index not in self._running:
            self._running.add(request.node_index)
            self.engine.process(self._runner(request.node_index),
                                name=f"cache-pf[{request.node_index}]")
        return True

    def _admit(self, agent: NodeAgent,
               request: CacheRequest) -> Optional[Block]:
        """Try the requested tier, then cascade across remaining cache
        tiers fastest-first; None when every tier refuses."""
        tried = []
        for tier in (request.tier_dst, DRAM, NVME):
            if tier == PFS or tier in tried or tier not in agent.tiers:
                continue
            tried.append(tier)
            try:
                return agent.admit(request.key, request.nbytes, tier,
                                   deadline=request.deadline)
            except CacheAdmissionError:
                continue
        return None

    # ------------------------------------------------------------------
    # Per-node EDF runner
    # ------------------------------------------------------------------
    def _runner(self, node_index: int):
        agent = self._agent_of(node_index)
        node = self.copy_engine.cluster.nodes[node_index]
        queue = self._queues[node_index]
        try:
            while queue:
                deadline, _seq, request, block = heapq.heappop(queue)
                try:
                    yield from self.copy_engine.copy(
                        node, request.tier_src, block.tier, request.nbytes,
                        target=request.target,
                        tag=("cache-pf", request.tenant, node_index),
                    )
                except TransientIOError:
                    # The copy never moved bytes onto the tier (faults
                    # bite at issue); the reader serves from the source
                    # tier — a missed deadline, not lost data.
                    agent.mark_failed(block)
                    self.metrics.prefetch_failed += 1
                else:
                    agent.mark_resident(block)
                    if self.engine.now <= deadline + 1e-9:
                        self.metrics.prefetch_on_time += 1
                    else:
                        self.metrics.prefetch_late += 1
                if request.on_ready is not None:
                    request.on_ready(block)
        finally:
            self._running.discard(node_index)
