"""Multi-tenant job scheduler and cluster service layer.

The single-job harness answers the paper's questions one application at
a time; this package asks the *facility* question: on a shared machine
where many tenants' jobs arrive over time and contend for the same
parallel file system, what does scheduling policy — and the paper's
sync-vs-async model applied at admission time — do to fleet-level
goodput and tail latency?

Components:

- :mod:`repro.sched.job` — :class:`JobSpec` submissions and
  :class:`JobRecord` ledger entries;
- :mod:`repro.sched.stream` — seeded workload mixes with stochastic
  arrivals (:class:`JobStream`);
- :mod:`repro.sched.policies` — pluggable planners: FIFO, conservative
  (EASY) backfill, and the I/O-aware policy that consults the paper's
  model;
- :mod:`repro.sched.service` — :class:`AdvisorService`, per-tenant
  measurement histories behind admission-time decisions;
- :mod:`repro.sched.scheduler` — the :class:`Scheduler` that co-runs
  admitted jobs on one shared cluster with mechanistic PFS contention.
"""

from repro.sched.job import (
    JobKilled,
    JobKilledByNodeFailure,
    JobRecord,
    JobSpec,
    JobState,
)
from repro.sched.policies import (
    BackfillPolicy,
    FIFOPolicy,
    IOAwarePolicy,
    Placement,
    SchedulingPolicy,
    make_policy,
)
from repro.sched.scheduler import Scheduler
from repro.sched.service import AdvisorService
from repro.sched.stream import (
    JobStream,
    StreamConfig,
    WORKLOAD_NAMES,
    make_job,
)

__all__ = [
    "AdvisorService",
    "BackfillPolicy",
    "FIFOPolicy",
    "IOAwarePolicy",
    "JobKilled",
    "JobKilledByNodeFailure",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStream",
    "Placement",
    "Scheduler",
    "SchedulingPolicy",
    "StreamConfig",
    "WORKLOAD_NAMES",
    "make_job",
    "make_policy",
]
