"""The scheduler: admission, placement, launch, deadline, teardown.

One :class:`Scheduler` owns one shared :class:`~repro.platform.cluster.
Cluster` and co-runs every admitted job inside one simulation: all
tenants' flows share the cluster's fluid :class:`~repro.sim.network.
Network`, so the shared-PFS interference between co-located jobs is
*mechanistic* — the same max-min water-filling that produces every
figure — rather than a statistical availability factor.

The scheduler is an event-driven loop: submissions and job completions
kick it, each kick asks the policy for placements against the live
free-node ledger, and each placement spawns a *runner* process that
holds the job's nodes for its lifetime:

1. sleep out the policy's stagger delay (nodes already held),
2. build the job's private VOL (own :class:`~repro.trace.IOLog` — the
   per-tenant attribution surface), prepopulate its input files,
3. launch one rank coroutine per rank via :class:`~repro.mpi.job.MPIJob`
   on the exact node indices the ledger granted,
4. guard the join with :meth:`~repro.sim.engine.Engine.timeout_guard`
   at the declared walltime and :meth:`~repro.sim.engine.Process.
   interrupt` every surviving rank on expiry (the batch-system
   ``scancel``),
5. tear down: release nodes, close out the contention timeline, record
   ``queued``/``run`` spans (with the job's EngineStats delta in the
   span meta), feed the advisor service, kick the loop.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim import AllOf, DeadlineExceeded, Engine, SimEvent
from repro.mpi import MPIJob
from repro.platform import Cluster, ContentionTimeline
from repro.hdf5 import H5Library
from repro.trace import IOLog, SpanLog
from repro.sched.job import JobKilled, JobRecord, JobSpec, JobState
from repro.sched.policies import Placement, SchedulingPolicy
from repro.sched.service import AdvisorService

__all__ = ["Scheduler"]


class Scheduler:
    """Multi-tenant job scheduler over one shared cluster."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        policy: SchedulingPolicy,
        service: Optional[AdvisorService] = None,
        timeline: Optional[ContentionTimeline] = None,
        lib: Optional[H5Library] = None,
    ):
        self.engine = engine
        self.cluster = cluster
        self.policy = policy
        #: Advisor service fed by completed jobs (also used by the
        #: I/O-aware policy at admission; harmless but live for others).
        self.service = service
        self.timeline = timeline or ContentionTimeline(engine, cluster.pfs)
        self.lib = lib or H5Library(cluster)
        self.spans = SpanLog()
        #: Every submission ever seen, in submit order.
        self.records: list[JobRecord] = []
        self._pending: list[JobRecord] = []
        self._running: list[JobRecord] = []
        self._next_id = 0
        self._wake: Optional[SimEvent] = None
        engine.process(self._loop(), name="sched.loop")

    # -- submission -------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job (or reject it if it can never fit)."""
        record = JobRecord(spec, self._next_id, self.engine.now)
        self._next_id += 1
        self.records.append(record)
        need = spec.nnodes(self.policy.rpn)
        if need > len(self.cluster.nodes):
            record.state = JobState.REJECTED
            record.reject_reason = (
                f"needs {need} nodes, machine has {len(self.cluster.nodes)}"
            )
            return record
        self._pending.append(record)
        self._kick()
        return record

    def run_stream(self, arrivals: Iterable[tuple[float, JobSpec]]
                   ) -> list[JobRecord]:
        """Feed timed submissions and drive the simulation to drain.

        ``arrivals`` is an iterable of ``(arrival_time, spec)`` in
        non-decreasing time order (e.g. from
        :meth:`repro.sched.stream.JobStream.arrivals`).  Returns every
        :class:`JobRecord` in submission order once the fleet finishes.
        """
        arrivals = list(arrivals)

        def feeder():
            for when, spec in arrivals:
                gap = when - self.engine.now
                if gap > 0:
                    yield self.engine.timeout(gap)
                self.submit(spec)

        self.engine.process(feeder(), name="sched.feeder")
        self.engine.run()
        still_open = [r for r in self.records if not r.finished]
        if still_open:
            raise RuntimeError(
                f"simulation drained with {len(still_open)} unfinished "
                f"jobs: {[r.job_id for r in still_open]}"
            )
        return self.records

    # -- event loop -------------------------------------------------------
    def _kick(self) -> None:
        """Wake the scheduling loop (idempotent within a timestamp)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _loop(self):
        while True:
            self._try_start()
            self._wake = SimEvent(self.engine, name="sched.wake")
            yield self._wake

    def _try_start(self) -> None:
        """Ask the policy for placements and start each one *now*.

        Node allocation happens here, synchronously with the plan, so a
        staggered job holds its nodes through the delay (batch systems
        start the allocation when the job script starts) and the next
        plan sees a truthful free count.
        """
        if not self._pending:
            return
        plan = self.policy.plan(
            self.engine.now, list(self._pending),
            self.cluster.free_node_count, list(self._running),
        )
        for placement in plan:
            record = placement.record
            self._pending.remove(record)
            indices = self.cluster.allocate_nodes(
                placement.nnodes, owner=record.job_id
            )
            record.nodes = indices
            record.mode = placement.mode
            record.state = JobState.RUNNING
            self._running.append(record)
            self.engine.process(
                self._job_runner(record, placement, indices),
                name=f"sched.job{record.job_id}",
            )

    # -- per-job runner ---------------------------------------------------
    def _job_runner(self, record: JobRecord, placement: Placement,
                    indices: tuple[int, ...]):
        # Imported here, not at module level: repro.harness imports
        # repro.sched (fleet runner), so the reverse edge must be lazy.
        from repro.harness.experiment import build_vol

        engine = self.engine
        spec = record.spec
        if placement.start_delay > 0.0:
            yield engine.timeout(placement.start_delay)
        record.start_time = engine.now
        self.spans.record(record.job_id, "queued",
                          record.submit_time, engine.now)
        self.timeline.job_started(record.job_id, len(indices))
        stats_before = engine.stats.snapshot()

        log = IOLog()
        record.log = log
        vol = build_vol(placement.mode, log=log, **spec.vol_kwargs)
        if spec.prepopulate is not None:
            spec.prepopulate(self.lib, spec.nranks)
        job = MPIJob(
            self.cluster, spec.nranks,
            ranks_per_node=spec.ranks_per_node or self.policy.rpn,
            name=f"job{record.job_id}", node_indices=indices,
        )
        procs = job.launch(spec.program_factory(self.lib, vol, spec.config))
        try:
            yield engine.timeout_guard(
                AllOf([p.done for p in procs]), spec.walltime
            )
            record.state = JobState.COMPLETED
        except DeadlineExceeded:
            # The batch system's scancel: kill every surviving rank.
            kill = JobKilled(record.job_id)
            for proc in procs:
                if proc.alive:
                    proc.interrupt(kill)
            record.state = JobState.TIMEOUT
        except Exception:
            # One rank died on its own: reap the siblings blocked on
            # collectives with it, as mpiexec would.
            kill = JobKilled(record.job_id, reason="sibling rank failed")
            for proc in procs:
                if proc.alive:
                    proc.interrupt(kill)
            record.state = JobState.FAILED
        finally:
            record.finish_time = engine.now
            self.timeline.job_finished(record.job_id)
            self.cluster.release_owner(record.job_id)
            self._running.remove(record)
            stats_after = engine.stats.snapshot()
            record.stats_delta = {
                key: stats_after[key] - stats_before[key]
                for key in stats_after
            }
            self.spans.record(
                record.job_id, "run", record.start_time, engine.now,
                mode=record.mode, state=record.state.value,
                **record.stats_delta,
            )
            if self.service is not None and record.state is JobState.COMPLETED:
                self.service.observe(record)
            self._kick()
