"""The scheduler: admission, placement, launch, deadline, teardown.

One :class:`Scheduler` owns one shared :class:`~repro.platform.cluster.
Cluster` and co-runs every admitted job inside one simulation: all
tenants' flows share the cluster's fluid :class:`~repro.sim.network.
Network`, so the shared-PFS interference between co-located jobs is
*mechanistic* — the same max-min water-filling that produces every
figure — rather than a statistical availability factor.

The scheduler is an event-driven loop: submissions and job completions
kick it, each kick asks the policy for placements against the live
free-node ledger, and each placement spawns a *runner* process that
holds the job's nodes for its lifetime:

1. sleep out the policy's stagger delay (nodes already held),
2. build the job's private VOL (own :class:`~repro.trace.IOLog` — the
   per-tenant attribution surface), prepopulate its input files,
3. launch one rank coroutine per rank via :class:`~repro.mpi.job.MPIJob`
   on the exact node indices the ledger granted,
4. guard the join with :meth:`~repro.sim.engine.Engine.timeout_guard`
   at the declared walltime and :meth:`~repro.sim.engine.Process.
   interrupt` every surviving rank on expiry (the batch-system
   ``scancel``),
5. tear down: release nodes, close out the contention timeline, record
   ``queued``/``run`` spans (with the job's EngineStats delta in the
   span meta), feed the advisor service, kick the loop.

**Fleet-level fault tolerance.**  The scheduler registers on the
cluster ledger's ``on_node_down`` / ``on_node_up`` callbacks.  A node
crash kills the resident job via :meth:`~repro.sim.engine.Process.
interrupt` (a :class:`~repro.sched.job.JobKilledByNodeFailure` whose
``__cause__`` is the :class:`~repro.faults.errors.NodeFailureError`);
the victim's nodes are released at the kill instant (the dead node
stays out of the free set until repaired), and the job is requeued
under its :attr:`~repro.sched.job.JobSpec.max_restarts` budget with a
seeded, linearly-growing backoff.  A requeued job restarts from its
last durable checkpoint — the same contiguous-from-zero durability
scan :func:`repro.harness.recovery.durable_progress` applies to
single-job kills — so asynchronous checkpointing, which lands phases
on the PFS while the next compute phase runs, measurably shrinks the
work a crash destroys.  During a sustained PFS outage the scheduler
enters *degraded admission*: no new placements until the window ends
(launching into a dead file system only burns walltime).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.sim import AllOf, DeadlineExceeded, Engine, SimEvent
from repro.mpi import MPIJob
from repro.platform import Cluster, ContentionTimeline
from repro.hdf5 import H5Library
from repro.trace import IOLog, SpanLog
from repro.faults import FaultInjector, NodeFailureError
from repro.sched.job import (
    JobKilled,
    JobKilledByNodeFailure,
    JobRecord,
    JobSpec,
    JobState,
)
from repro.sched.policies import Placement, SchedulingPolicy
from repro.sched.service import AdvisorService

__all__ = ["Scheduler"]


class Scheduler:
    """Multi-tenant job scheduler over one shared cluster."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        policy: SchedulingPolicy,
        service: Optional[AdvisorService] = None,
        timeline: Optional[ContentionTimeline] = None,
        lib: Optional[H5Library] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint_restart: bool = True,
        retry_backoff: float = 5.0,
    ):
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        self.engine = engine
        self.cluster = cluster
        self.policy = policy
        #: Advisor service fed by completed jobs (also used by the
        #: I/O-aware policy at admission; harmless but live for others).
        self.service = service
        self.timeline = timeline or ContentionTimeline(engine, cluster.pfs)
        self.lib = lib or H5Library(cluster)
        #: The chaos layer, when one is attached to this cluster: used
        #: for degraded-mode admission (PFS outage edges) and seeded
        #: requeue-backoff jitter.  None = no fault awareness, no cost.
        self.injector = injector
        #: Whether requeued jobs restart from their last durable
        #: checkpoint (False = restart from scratch; the benchmark's
        #: checkpointing-vs-not comparison flips this).
        self.checkpoint_restart = checkpoint_restart
        #: Base seconds of requeue backoff (scaled by attempt count and
        #: the injector's seeded jitter).
        self.retry_backoff = retry_backoff
        self.spans = SpanLog()
        #: Every submission ever seen, in submit order.
        self.records: list[JobRecord] = []
        #: Node crash events observed via the cluster ledger.
        self.node_failures = 0
        #: Jobs killed by a node crash (a job can be a victim twice).
        self.node_kills = 0
        #: Requeues performed after node-failure kills.
        self.requeues = 0
        #: Simulated seconds admission spent paused in degraded mode.
        self.degraded_seconds = 0.0
        self._pending: list[JobRecord] = []
        self._running: list[JobRecord] = []
        #: job_id -> live rank Process list (the kill path's target).
        self._procs: dict[int, list] = {}
        self._degraded_until = 0.0
        self._next_id = 0
        self._wake: Optional[SimEvent] = None
        cluster.on_node_down.append(self._on_node_down)
        cluster.on_node_up.append(self._on_node_up)
        engine.process(self._loop(), name="sched.loop")

    # -- submission -------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job (or reject it if it can never fit)."""
        record = JobRecord(spec, self._next_id, self.engine.now)
        self._next_id += 1
        self.records.append(record)
        need = spec.nnodes(self.policy.rpn)
        if need > len(self.cluster.nodes):
            record.state = JobState.REJECTED
            record.reject_reason = (
                f"needs {need} nodes, machine has {len(self.cluster.nodes)}"
            )
            return record
        self._pending.append(record)
        self._kick()
        return record

    def run_stream(self, arrivals: Iterable[tuple[float, JobSpec]]
                   ) -> list[JobRecord]:
        """Feed timed submissions and drive the simulation to drain.

        ``arrivals`` is an iterable of ``(arrival_time, spec)`` in
        non-decreasing time order (e.g. from
        :meth:`repro.sched.stream.JobStream.arrivals`).  Returns every
        :class:`JobRecord` in submission order once the fleet finishes.
        """
        arrivals = list(arrivals)

        def feeder():
            for when, spec in arrivals:
                gap = when - self.engine.now
                if gap > 0:
                    yield self.engine.timeout(gap)
                self.submit(spec)

        self.engine.process(feeder(), name="sched.feeder")
        self.engine.run()
        still_open = [r for r in self.records if not r.finished]
        if still_open:
            raise RuntimeError(
                f"simulation drained with {len(still_open)} unfinished "
                f"jobs: {[r.job_id for r in still_open]}"
            )
        return self.records

    # -- event loop -------------------------------------------------------
    def _kick(self) -> None:
        """Wake the scheduling loop (idempotent within a timestamp)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _loop(self):
        while True:
            self._try_start()
            self._wake = SimEvent(self.engine, name="sched.wake")
            yield self._wake

    def _try_start(self) -> None:
        """Ask the policy for placements and start each one *now*.

        Node allocation happens here, synchronously with the plan, so a
        staggered job holds its nodes through the delay (batch systems
        start the allocation when the job script starts) and the next
        plan sees a truthful free count.
        """
        if not self._pending:
            return
        if self.injector is not None and self.injector.engine is not None:
            outage_end = self.injector.outage_end(self.engine.now)
            if outage_end is not None:
                # Degraded admission: the shared PFS is inside a hard
                # outage window, so every new placement would stall on
                # its first I/O phase and burn walltime.  Hold the
                # queue and resume exactly at the window's edge.
                counted_from = max(self.engine.now, self._degraded_until)
                if outage_end > counted_from:
                    self.degraded_seconds += outage_end - counted_from
                    self._degraded_until = outage_end
                self.engine.schedule(outage_end - self.engine.now, self._kick)
                return
        plan = self.policy.plan(
            self.engine.now, list(self._pending),
            self.cluster.free_node_count, list(self._running),
        )
        for placement in plan:
            record = placement.record
            self._pending.remove(record)
            indices = self.cluster.allocate_nodes(
                placement.nnodes, owner=record.job_id,
                preferred=placement.preferred_nodes,
            )
            record.nodes = indices
            record.mode = placement.mode
            record.state = JobState.RUNNING
            self._running.append(record)
            self.engine.process(
                self._job_runner(record, placement, indices),
                name=f"sched.job{record.job_id}",
            )

    # -- node fault reactions ---------------------------------------------
    def _on_node_down(self, index: int, kind: str) -> None:
        """Cluster ledger callback: ``index`` crashed or began draining.

        A drain needs no reaction — the resident job finishes unharmed
        and placement already skips the node (it left the free set).  A
        crash kills the resident job *now*: every surviving rank gets
        the kill interrupt, with the node failure as its cause, and the
        runner's recovery path decides the requeue.
        """
        if kind != "crash":
            return
        self.node_failures += 1
        for record in list(self._running):
            if index not in record.nodes:
                continue
            if record.kill_reason is not None:
                break  # already being killed (correlated cabinet crash)
            self.node_kills += 1
            record.kill_reason = f"node {index} failed"
            record.fault = {"kind": "NodeFailureError", "node": index}
            kill = JobKilledByNodeFailure(record.job_id, index)
            kill.__cause__ = NodeFailureError(
                f"node {index} went down under job {record.job_id}",
                node=index,
            )
            for proc in self._procs.get(record.job_id, ()):
                if proc.alive:
                    proc.interrupt(kill)
            break  # a node belongs to at most one job

    def _on_node_up(self, index: int) -> None:
        """Cluster ledger callback: a repaired node returned — capacity
        changed, so re-plan."""
        self._kick()

    def _account_node_kill(self, record: JobRecord,
                           resumed: int) -> Optional[float]:
        """Close out one node-failure kill on ``record``'s ledger.

        Scans the attempt's private IOLog for checkpoints that reached
        durable storage before the kill (only when checkpoint-restart
        is on and the job is restartable), charges the re-doable work
        to ``lost_work_seconds``, and appends the attempt-history row.
        Returns the requeue backoff in seconds, or None when the
        retry budget is spent and the job must fail.
        """
        # Lazy import: repro.harness imports repro.sched (fleet
        # runner), so the reverse edge must not be at module level.
        from repro.harness.recovery import durable_progress

        engine = self.engine
        spec = record.spec
        gained = 0
        if (self.checkpoint_restart and spec.resume_factory is not None
                and record.log is not None):
            remaining = max(0, spec.n_phases - resumed)
            gained, _at, _lost = durable_progress(
                record.log, spec.nranks, engine.now, remaining,
            )
        started = record.start_time
        elapsed = 0.0 if math.isnan(started) else engine.now - started
        lost = max(0.0, elapsed - gained * spec.compute_phase_seconds)
        record.lost_work_seconds += lost
        record.durable_phases = resumed + gained
        record.attempt_history.append({
            "attempt": record.attempts,
            "start": started,
            "finish": engine.now,
            "nodes": list(record.nodes),
            "durable_phases": record.durable_phases,
            "lost_work_seconds": lost,
            "reason": record.kill_reason,
        })
        if record.attempts > spec.max_restarts:
            return None
        backoff = self.retry_backoff * record.attempts
        if self.injector is not None:
            backoff *= self.injector.retry_jitter()
        return backoff

    # -- per-job runner ---------------------------------------------------
    def _job_runner(self, record: JobRecord, placement: Placement,
                    indices: tuple[int, ...]):
        # Imported here, not at module level: repro.harness imports
        # repro.sched (fleet runner), so the reverse edge must be lazy.
        from repro.harness.experiment import build_vol

        engine = self.engine
        spec = record.spec
        record.attempts += 1
        record.kill_reason = None
        record.fault = None
        #: Durable checkpoints carried in from killed earlier attempts.
        resumed = record.durable_phases if self.checkpoint_restart else 0
        requeue_backoff: Optional[float] = None
        if placement.start_delay > 0.0:
            yield engine.timeout(placement.start_delay)
        record.start_time = engine.now
        self.spans.record(record.job_id, "queued",
                          record.queued_since, engine.now)
        if record.kill_reason is not None:
            # The node died during the stagger, before any rank
            # launched: no ranks to reap, straight to the requeue
            # decision (nodes were held through the delay, so the
            # allocation must still be torn down).
            requeue_backoff = self._account_node_kill(record, resumed)
            record.state = (JobState.PENDING if requeue_backoff is not None
                            else JobState.FAILED)
            record.finish_time = engine.now
            self.cluster.release_owner(record.job_id)
            self._running.remove(record)
            self._kick()
        else:
            self.timeline.job_started(record.job_id, len(indices))
            stats_before = engine.stats.snapshot()

            log = IOLog()
            record.log = log
            vol = build_vol(placement.mode, log=log, **spec.vol_kwargs)
            if spec.prepopulate is not None:
                spec.prepopulate(self.lib, spec.nranks)
            config = spec.config
            if resumed > 0 and spec.resume_factory is not None:
                config = spec.resume_factory(spec.config, resumed)
            job = MPIJob(
                self.cluster, spec.nranks,
                ranks_per_node=spec.ranks_per_node or self.policy.rpn,
                name=f"job{record.job_id}", node_indices=indices,
            )
            procs = job.launch(spec.program_factory(self.lib, vol, config))
            self._procs[record.job_id] = procs
            try:
                yield engine.timeout_guard(
                    AllOf([p.done for p in procs]), spec.walltime
                )
                record.state = JobState.COMPLETED
            except DeadlineExceeded:
                # The batch system's scancel: kill every surviving rank.
                kill = JobKilled(record.job_id)
                record.kill_reason = kill.reason
                for proc in procs:
                    if proc.alive:
                        proc.interrupt(kill)
                record.state = JobState.TIMEOUT
            except JobKilledByNodeFailure as kill:
                # A node under this job crashed (_on_node_down already
                # interrupted every live rank; sweep stragglers whose
                # interrupt was deferred).  Staged-but-undrained bytes
                # died with the node, so the VOL's background workers
                # are killed too.  Then decide recovery: requeue from
                # the last durable checkpoint while the per-job retry
                # budget lasts, fail afterwards.
                for proc in procs:
                    if proc.alive:
                        proc.interrupt(kill)
                if hasattr(vol, "interrupt_workers"):
                    vol.interrupt_workers(kill)
                requeue_backoff = self._account_node_kill(record, resumed)
                record.state = (JobState.PENDING
                                if requeue_backoff is not None
                                else JobState.FAILED)
            except Exception as exc:
                # One rank died on its own: reap the siblings blocked on
                # collectives with it, as mpiexec would, and free the
                # dead job's nodes immediately (the teardown below runs
                # at this same instant — no zombie allocation).
                kill = JobKilled(record.job_id, reason="sibling rank failed")
                record.kill_reason = kill.reason
                record.fault = {"kind": type(exc).__name__,
                                "message": str(exc)}
                for proc in procs:
                    if proc.alive:
                        proc.interrupt(kill)
                record.state = JobState.FAILED
            finally:
                self._procs.pop(record.job_id, None)
                record.finish_time = engine.now
                self.timeline.job_finished(record.job_id)
                self.cluster.release_owner(record.job_id)
                self._running.remove(record)
                stats_after = engine.stats.snapshot()
                record.stats_delta = {
                    key: stats_after[key] - stats_before[key]
                    for key in stats_after
                }
                self.spans.record(
                    record.job_id, "run", record.start_time, engine.now,
                    mode=record.mode, state=record.state.value,
                    **record.stats_delta,
                )
                if (self.service is not None
                        and record.state is JobState.COMPLETED):
                    self.service.observe(record)
                self._kick()
        if requeue_backoff is not None:
            # Seeded backoff, then back into the queue: the record keeps
            # its identity (job_id, submit_time, accumulated ledger) and
            # competes for placement again — on the surviving nodes.
            self.requeues += 1
            yield engine.timeout(requeue_backoff)
            record.queued_since = engine.now
            self._pending.append(record)
            self._kick()
