"""Pluggable scheduling policies: FIFO, conservative backfill, I/O-aware.

A policy is a pure planner: given the clock, the pending queue, the
free-node count and the running set, it returns :class:`Placement`
directives (which jobs to start now, on how many nodes, in which I/O
mode, after what stagger delay).  The :class:`~repro.sched.scheduler.
Scheduler` owns all mutation — node allocation, process launch, state
transitions — so policies stay deterministic and unit-testable.

``FIFOPolicy`` is strict arrival order with head-of-line blocking.
``BackfillPolicy`` adds EASY-style conservative backfill: the queue
head gets a shadow-time reservation computed from the running jobs'
declared walltimes, and later jobs may jump ahead only if they cannot
delay it.  ``IOAwarePolicy`` extends backfill with the paper's model:
an :class:`~repro.sched.service.AdvisorService` resolves each
``mode='auto'`` submission to sync or async at admission time
(Eq. 2a vs 2b on declared shape), and the *sync* jobs' first I/O
phases are staggered so co-located bursts don't collide on the shared
PFS — asynchronous tenants need no stagger, which is exactly the
variability shield of Fig. 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.sched.job import JobRecord
from repro.sched.service import AdvisorService

__all__ = [
    "BackfillPolicy",
    "FIFOPolicy",
    "IOAwarePolicy",
    "Placement",
    "SchedulingPolicy",
    "make_policy",
]


@dataclass(frozen=True)
class Placement:
    """One start directive: run ``record`` now (plus ``start_delay``)."""

    record: JobRecord
    nnodes: int
    mode: str  # resolved 'sync' | 'async'
    start_delay: float = 0.0
    #: Node indices to allocate first when free (warm staging-cache
    #: tiers); the allocator falls back to lowest-free for the rest.
    preferred_nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.nnodes < 1:
            raise ValueError("placement needs at least one node")
        if self.mode not in ("sync", "async"):
            raise ValueError(f"unresolved mode {self.mode!r}")
        if self.start_delay < 0:
            raise ValueError("start_delay must be non-negative")
        if any(n < 0 for n in self.preferred_nodes):
            raise ValueError("preferred node indices must be non-negative")


class SchedulingPolicy:
    """Interface: plan which pending jobs start at this instant."""

    #: Identifier used by the CLI / benchmarks.
    name = "abstract"

    def __init__(self, default_ranks_per_node: int):
        if default_ranks_per_node < 1:
            raise ValueError("default_ranks_per_node must be >= 1")
        self.rpn = default_ranks_per_node

    def resolve_mode(self, record: JobRecord, now: float) -> str:
        """Resolve a submission's I/O mode ('auto' → paper's sync default)."""
        mode = record.spec.mode
        return "sync" if mode == "auto" else mode

    def plan(self, now: float, pending: list[JobRecord], free_nodes: int,
             running: list[JobRecord]) -> list[Placement]:
        """Placements to start now.  ``pending`` is in arrival order."""
        raise NotImplementedError

    def _nnodes(self, record: JobRecord) -> int:
        return record.spec.nnodes(self.rpn)


class FIFOPolicy(SchedulingPolicy):
    """Strict arrival order; the queue head blocks everyone behind it."""

    name = "fifo"

    def plan(self, now: float, pending: list[JobRecord], free_nodes: int,
             running: list[JobRecord]) -> list[Placement]:
        placements: list[Placement] = []
        for record in pending:
            need = self._nnodes(record)
            if need > free_nodes:
                break  # head-of-line blocking
            free_nodes -= need
            placements.append(
                Placement(record, need, self.resolve_mode(record, now))
            )
        return placements


class BackfillPolicy(SchedulingPolicy):
    """EASY-style conservative backfill on declared walltimes.

    When the head does not fit, it gets a reservation at the *shadow
    time* — the earliest instant the running jobs' declared walltimes
    free enough nodes.  A later job may start now only if it fits in
    the currently free nodes **and** either (a) its own walltime ends
    before the shadow time, or (b) it uses no more than the *extra*
    nodes (nodes free at the shadow time beyond the head's need), so
    the reservation is provably undisturbed.
    """

    name = "backfill"

    def plan(self, now: float, pending: list[JobRecord], free_nodes: int,
             running: list[JobRecord]) -> list[Placement]:
        placements: list[Placement] = []
        queue = list(pending)
        # Greedily start in order until the head no longer fits.
        while queue:
            need = self._nnodes(queue[0])
            if need > free_nodes:
                break
            record = queue.pop(0)
            free_nodes -= need
            placements.append(
                Placement(record, need, self.resolve_mode(record, now))
            )
        if not queue:
            return placements
        head_need = self._nnodes(queue[0])
        shadow_time, extra = self._reservation(
            now, head_need, free_nodes, running,
            [(p.record, p.nnodes) for p in placements],
        )
        for record in queue[1:]:
            need = self._nnodes(record)
            if need > free_nodes:
                continue
            ends_in_time = now + record.spec.walltime <= shadow_time
            if not ends_in_time and need > extra:
                continue
            free_nodes -= need
            if not ends_in_time:
                extra -= need
            placements.append(
                Placement(record, need, self.resolve_mode(record, now))
            )
        return placements

    def _reservation(
        self,
        now: float,
        head_need: int,
        free_nodes: int,
        running: list[JobRecord],
        just_placed: list[tuple[JobRecord, int]],
    ) -> tuple[float, int]:
        """(shadow time, extra nodes) for the queue head's reservation.

        Walks running jobs (plus this round's placements) in predicted
        completion order, accumulating released nodes until the head
        fits.  Jobs with unbounded walltime never release — if the head
        depends on them the shadow time is ``inf`` and only
        finishes-before-shadow backfill is possible (with no spare
        nodes handed out, because the reservation can never be met).
        """
        releases = sorted(
            (rec.start_time + rec.spec.walltime
             if not math.isnan(rec.start_time) else now + rec.spec.walltime,
             nodes)
            for rec, nodes in (
                [(r, len(r.nodes)) for r in running] + just_placed
            )
        )
        available = free_nodes
        for when, nodes in releases:
            if available >= head_need:
                break
            available += nodes
            if available >= head_need:
                return max(when, now), available - head_need
        if available >= head_need:
            return now, available - head_need
        return math.inf, 0


class IOAwarePolicy(BackfillPolicy):
    """Backfill + the paper's model at admission time.

    Two levers on top of :class:`BackfillPolicy`:

    1. **Mode resolution** — ``mode='auto'`` jobs are decided by the
       advisor service (per-tenant histories, Eq. 2a vs 2b on the
       declared I/O shape) instead of defaulting to sync.
    2. **Sync-burst staggering** — each *sync* placement reserves its
       first I/O phase window ``[start + t_comp, + t_io_est]`` on a
       shared burst ledger; a new sync job whose window would overlap
       an existing one is started with a small ``start_delay`` (capped
       at ``max_stagger``) that slides its burst into the first gap.
       Async placements skip the ledger: their drains overlap
       computation by construction.

    With ``tier_telemetry`` wired (a zero-argument callable returning
    the staging cache's per-node resident-byte map, e.g.
    :meth:`~repro.cache.CacheSubsystem.warm_bytes`), placements also
    carry ``preferred_nodes`` ranking warm-tier nodes first, so jobs
    land where their (or their tenant's) bytes already are.
    """

    name = "io-aware"

    def __init__(self, default_ranks_per_node: int, service: AdvisorService,
                 max_stagger: float = 10.0, tier_telemetry=None):
        super().__init__(default_ranks_per_node)
        if max_stagger < 0:
            raise ValueError("max_stagger must be non-negative")
        self.service = service
        self.max_stagger = max_stagger
        self.tier_telemetry = tier_telemetry
        #: Reserved sync I/O burst windows [(t_start, t_end), ...].
        self._bursts: list[tuple[float, float]] = []

    def _warm_nodes(self) -> tuple[int, ...]:
        """Node indices with resident cache bytes, warmest first (index
        breaks ties, so the ranking is deterministic)."""
        if self.tier_telemetry is None:
            return ()
        warm = self.tier_telemetry()
        return tuple(
            index for index, nbytes in sorted(
                warm.items(), key=lambda kv: (-kv[1], kv[0])
            ) if nbytes > 0
        )

    def resolve_mode(self, record: JobRecord, now: float) -> str:
        spec = record.spec
        if spec.mode != "auto":
            return spec.mode
        if spec.phase_bytes <= 0:
            return "sync"
        decision = self.service.decide(
            tenant=spec.tenant,
            phase_bytes=spec.phase_bytes,
            nranks=spec.nranks,
            compute_seconds=spec.compute_phase_seconds,
        )
        record.decision = decision
        return decision.mode.value

    def plan(self, now: float, pending: list[JobRecord], free_nodes: int,
             running: list[JobRecord]) -> list[Placement]:
        self._bursts = [(s, e) for s, e in self._bursts if e > now]
        placements = super().plan(now, pending, free_nodes, running)
        warm = self._warm_nodes()
        staggered: list[Placement] = []
        for placement in placements:
            delay = 0.0
            spec = placement.record.spec
            if placement.mode == "sync" and spec.phase_bytes > 0:
                t_io = self.service.estimate_sync_io_time(
                    spec.tenant, spec.phase_bytes, spec.nranks
                )
                delay = self._stagger_delay(
                    now + spec.compute_phase_seconds, t_io
                )
                self._bursts.append((
                    now + delay + spec.compute_phase_seconds,
                    now + delay + spec.compute_phase_seconds + t_io,
                ))
                self._bursts.sort()
            staggered.append(Placement(
                placement.record, placement.nnodes, placement.mode,
                start_delay=delay, preferred_nodes=warm,
            ))
        return staggered

    def _stagger_delay(self, burst_start: float, duration: float) -> float:
        """Smallest delay <= max_stagger whose burst window is collision-free."""
        candidates = [0.0] + sorted(
            end - burst_start for _s, end in self._bursts
            if 0.0 < end - burst_start <= self.max_stagger
        )
        for delay in candidates:
            window = (burst_start + delay, burst_start + delay + duration)
            if not any(s < window[1] and window[0] < e
                       for s, e in self._bursts):
                return delay
        return 0.0


def make_policy(name: str, default_ranks_per_node: int,
                service: Optional[AdvisorService] = None,
                **kwargs) -> SchedulingPolicy:
    """Policy factory for the CLI and benchmarks."""
    if name == "fifo":
        return FIFOPolicy(default_ranks_per_node)
    if name == "backfill":
        return BackfillPolicy(default_ranks_per_node)
    if name == "io-aware":
        if service is None:
            raise ValueError("io-aware policy requires an AdvisorService")
        return IOAwarePolicy(default_ranks_per_node, service, **kwargs)
    raise ValueError(
        f"unknown policy {name!r} (expected fifo | backfill | io-aware)"
    )
