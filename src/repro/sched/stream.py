"""Seeded job streams: workload mixes with stochastic arrivals.

A :class:`JobStream` turns the repo's workload catalog (VPIC-IO,
BD-CATS-IO, Nyx, Castro, SW4, Cosmoflow) into a multi-tenant
submission trace: exponential interarrivals, a weighted workload mix,
a rank-count distribution and an I/O-mode mix ('auto' submissions are
the interesting ones — they let policies differ).  Everything draws
from one :func:`numpy.random.default_rng` seeded by ``(seed, ...)``
tuples, so a stream is a pure function of its config: same seed, same
trace, which is what the benchmark's same-seed replay gate asserts.

Job shapes are scaled-down variants of the paper's configurations
(minutes of simulated time per job instead of hours) so a fleet of
tens of jobs schedules in seconds of wall-clock; ``size_scale`` /
``compute_scale`` stretch them back toward paper scale when needed.
Every job gets a unique output path under ``/tenants/<tenant>/``, and
read workloads carry their own prepopulate hook.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.platform.spec import MachineSpec
from repro.sched.job import JobSpec

__all__ = ["JobStream", "StreamConfig", "WORKLOAD_NAMES", "make_job"]

Mi = 1 << 20


# ---------------------------------------------------------------------------
# Catalog: scaled-down job templates, one per workload
# ---------------------------------------------------------------------------
#
# Write workloads carry a ``resume_factory(config, n_durable)`` so a
# job requeued after a node failure restarts past its durable phases
# (the scheduler's checkpoint-restart path); the ``max(1, ...)`` floor
# keeps a resumed config valid even when every issued phase landed.
# Read workloads have none: a killed read job restarts from scratch.

def _resume_steps(cfg, n_durable: int):
    return replace(cfg, steps=max(1, cfg.steps - n_durable))


def _resume_plotfiles(cfg, n_durable: int):
    return replace(cfg, n_plotfiles=max(1, cfg.n_plotfiles - n_durable))


def _resume_checkpoints(cfg, n_durable: int):
    return replace(cfg, n_checkpoints=max(1, cfg.n_checkpoints - n_durable))


def _vpic(path: str, nranks: int, size_scale: float, compute_scale: float):
    from repro.workloads import VPICConfig, vpic_program
    cfg = VPICConfig(
        particles_per_rank=max(1, int(2 * Mi * size_scale)),
        n_properties=4, steps=3,
        compute_seconds=1.5 * compute_scale, path=path,
    )
    return dict(
        program_factory=vpic_program, config=cfg, op="write",
        compute_phase_seconds=cfg.compute_seconds,
        phase_bytes=float(cfg.bytes_per_rank_per_step() * nranks),
        n_phases=cfg.steps, resume_factory=_resume_steps,
    )


def _bdcats(path: str, nranks: int, size_scale: float, compute_scale: float):
    from repro.workloads import (
        BDCATSConfig, bdcats_program, prepopulate_vpic_file,
    )
    cfg = BDCATSConfig(
        particles_per_rank=max(1, int(2 * Mi * size_scale)),
        n_properties=4, steps=3,
        compute_seconds=1.5 * compute_scale, path=path,
    )
    per_step = cfg.particles_per_rank * cfg.n_properties * 4
    return dict(
        program_factory=bdcats_program, config=cfg, op="read",
        prepopulate=lambda lib, n: prepopulate_vpic_file(lib, cfg, n),
        compute_phase_seconds=cfg.compute_seconds,
        phase_bytes=float(per_step * nranks),
        n_phases=cfg.steps,
    )


def _nyx(path: str, nranks: int, size_scale: float, compute_scale: float):
    from repro.workloads import NyxConfig, nyx_program
    cfg = NyxConfig(
        dim=max(32, int(128 * size_scale ** (1 / 3))), max_grid_size=32,
        plot_int=3, n_plotfiles=2,
        seconds_per_step=0.5 * compute_scale, path=path,
    )
    return dict(
        program_factory=nyx_program, config=cfg, op="write",
        compute_phase_seconds=cfg.compute_phase_seconds(),
        phase_bytes=float(cfg.plotfile_bytes()),
        n_phases=cfg.n_plotfiles, resume_factory=_resume_plotfiles,
    )


def _castro(path: str, nranks: int, size_scale: float, compute_scale: float):
    from repro.workloads import CastroConfig, castro_program
    cfg = CastroConfig(
        dim=max(32, int(64 * size_scale ** (1 / 3))), max_grid_size=16,
        plot_int=2, n_plotfiles=2,
        seconds_per_step=0.75 * compute_scale, path=path,
    )
    return dict(
        program_factory=castro_program, config=cfg, op="write",
        compute_phase_seconds=cfg.compute_phase_seconds(),
        phase_bytes=float(cfg.plotfile_bytes()),
        n_phases=cfg.n_plotfiles, resume_factory=_resume_plotfiles,
    )


def _sw4(path: str, nranks: int, size_scale: float, compute_scale: float):
    from repro.workloads import SW4Config, sw4_program
    cfg = SW4Config(
        grid_spacing_m=150.0 / max(1e-9, size_scale) ** (1 / 3),
        checkpoint_int=3, n_checkpoints=2,
        seconds_per_step=0.5 * compute_scale, path=path,
    )
    return dict(
        program_factory=sw4_program, config=cfg, op="write",
        compute_phase_seconds=cfg.compute_phase_seconds(),
        phase_bytes=float(cfg.checkpoint_bytes()),
        n_phases=cfg.n_checkpoints, resume_factory=_resume_checkpoints,
    )


def _cosmoflow(path: str, nranks: int, size_scale: float,
               compute_scale: float):
    from repro.workloads import CosmoflowConfig, cosmoflow_program
    cfg = CosmoflowConfig(
        voxels=max(32, int(64 * size_scale ** (1 / 3))), channels=4,
        batch_size=2, batches_per_rank=3, epochs=1,
        seconds_per_batch=0.5 * compute_scale, path_prefix=path,
    )
    return dict(
        program_factory=cosmoflow_program, config=cfg, op="read",
        prepopulate=lambda lib, n: cfg.prepopulate(lib, n),
        compute_phase_seconds=cfg.seconds_per_batch,
        phase_bytes=float(cfg.batch_size * cfg.sample_bytes() * nranks),
        n_phases=cfg.epochs * cfg.batches_per_rank,
    )


_CATALOG: dict[str, Callable] = {
    "vpic": _vpic,
    "bdcats": _bdcats,
    "nyx": _nyx,
    "castro": _castro,
    "sw4": _sw4,
    "cosmoflow": _cosmoflow,
}

WORKLOAD_NAMES = tuple(sorted(_CATALOG))


def _walltime(spec: MachineSpec, compute: float, phase_bytes: float,
              n_phases: int) -> float:
    """Declared walltime: a 3× margin over a pessimistic sync estimate.

    The pessimistic I/O rate (peak/8) stands in for a bad-contention
    day, so healthy jobs essentially never trip the deadline while the
    backfill policies still get a finite bound to reserve against.
    """
    degraded_rate = spec.filesystem.peak_bandwidth / 8.0
    est = n_phases * (compute + phase_bytes / degraded_rate + 2.0)
    return 3.0 * est + 30.0


def make_job(
    workload: str,
    spec: MachineSpec,
    name: str,
    nranks: int,
    mode: str = "auto",
    tenant: Optional[str] = None,
    size_scale: float = 1.0,
    compute_scale: float = 1.0,
    ranks_per_node: Optional[int] = None,
) -> JobSpec:
    """Build one scaled-down :class:`JobSpec` from the catalog."""
    if workload not in _CATALOG:
        raise ValueError(
            f"unknown workload {workload!r}; choose from {WORKLOAD_NAMES}"
        )
    tenant = tenant or workload
    path = f"/tenants/{tenant}/{name}.h5"
    shape = _CATALOG[workload](path, nranks, size_scale, compute_scale)
    return JobSpec(
        name=name, tenant=tenant, workload=workload, nranks=nranks,
        mode=mode, ranks_per_node=ranks_per_node,
        walltime=_walltime(spec, shape["compute_phase_seconds"],
                           shape["phase_bytes"], shape["n_phases"]),
        **shape,
    )


# ---------------------------------------------------------------------------
# The stream itself
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StreamConfig:
    """Parameters of one seeded submission trace."""

    n_jobs: int = 20
    seed: int = 0
    #: Mean exponential interarrival gap, seconds.  Lower = higher load.
    mean_interarrival: float = 20.0
    workload_mix: tuple[tuple[str, float], ...] = (
        ("vpic", 3.0), ("sw4", 2.0), ("bdcats", 2.0),
        ("castro", 1.0), ("nyx", 1.0), ("cosmoflow", 1.0),
    )
    rank_choices: tuple[int, ...] = (4, 8, 16)
    mode_mix: tuple[tuple[str, float], ...] = (
        ("auto", 0.7), ("sync", 0.2), ("async", 0.1),
    )
    size_scale: float = 1.0
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        for mix_name, mix in (("workload_mix", self.workload_mix),
                              ("mode_mix", self.mode_mix)):
            if not mix or any(w <= 0 for _n, w in mix):
                raise ValueError(f"{mix_name} weights must be positive")
        bad = [n for n, _w in self.workload_mix if n not in _CATALOG]
        if bad:
            raise ValueError(f"unknown workloads in mix: {bad}")
        if not self.rank_choices or min(self.rank_choices) < 1:
            raise ValueError("rank_choices must be positive")


class JobStream:
    """Pure function from (machine spec, stream config) to a trace."""

    def __init__(self, spec: MachineSpec, config: StreamConfig = StreamConfig()):
        self.spec = spec
        self.config = config

    def arrivals(self) -> list[tuple[float, JobSpec]]:
        """The full submission trace: ``[(arrival_time, JobSpec), ...]``.

        Deterministic in ``(config.seed, n_jobs, ...)``: each job draws
        its interarrival gap, workload, rank count and mode in a fixed
        order from one seeded generator.
        """
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, 0x5CED))
        wl_names = [n for n, _w in cfg.workload_mix]
        wl_p = np.array([w for _n, w in cfg.workload_mix], dtype=float)
        wl_p /= wl_p.sum()
        mode_names = [n for n, _w in cfg.mode_mix]
        mode_p = np.array([w for _n, w in cfg.mode_mix], dtype=float)
        mode_p /= mode_p.sum()
        max_ranks = self.spec.total_nodes * self.spec.default_ranks_per_node
        ranks = [r for r in cfg.rank_choices if r <= max_ranks]
        if not ranks:
            raise ValueError(
                f"no rank choice from {cfg.rank_choices} fits "
                f"{max_ranks} rank slots on {self.spec.name}"
            )
        trace: list[tuple[float, JobSpec]] = []
        now = 0.0
        for j in range(cfg.n_jobs):
            now += float(rng.exponential(cfg.mean_interarrival))
            workload = wl_names[int(rng.choice(len(wl_names), p=wl_p))]
            nranks = int(ranks[int(rng.choice(len(ranks)))])
            mode = mode_names[int(rng.choice(len(mode_names), p=mode_p))]
            spec = make_job(
                workload, self.spec, name=f"job{j:03d}", nranks=nranks,
                mode=mode, size_scale=cfg.size_scale,
                compute_scale=cfg.compute_scale,
            )
            trace.append((now, spec))
        return trace

    def fingerprint(self) -> list[tuple[float, str, str, int, str]]:
        """Compact deterministic view for replay assertions."""
        return [
            (round(t, 9), s.workload, s.name, s.nranks, s.mode)
            for t, s in self.arrivals()
        ]
