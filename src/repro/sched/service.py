"""Admission-time advisory service: the paper's model as a shared daemon.

The single-job harness embeds one :class:`~repro.model.advisor.Advisor`
inside one application (Fig. 2's loop).  A multi-tenant cluster turns
that loop into a *service*: the scheduler consults it at admission time
to resolve ``mode='auto'`` submissions, and feeds it the measured I/O
rates of every job that completes — so each tenant accumulates its own
:class:`~repro.model.history.MeasurementHistory` across submissions,
exactly the "history of I/O requests by an application" of §III-B2,
kept per tenant because different applications stress the file system
differently.

Cold-start: a fresh tenant has no history, and an advisor without data
falls back to sync for everyone, which would make the I/O-aware policy
a no-op on short streams.  The service therefore bootstraps each
tenant's history with a handful of *analytic prior* samples derived
from the machine specification (client-efficiency-scaled share of the
PFS peak, capped by NIC injection) — the same numbers an operator
would seed from acceptance benchmarks.  Online measurements then
refine the prior as jobs finish.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.model.advisor import Advisor, Decision
from repro.model.estimators import (
    ComputeTimeModel,
    IORateModel,
    TransactOverheadModel,
)
from repro.model.history import MeasurementHistory
from repro.platform.spec import MachineSpec

__all__ = ["AdvisorService"]


class AdvisorService:
    """Per-tenant advisors over per-tenant measurement histories."""

    def __init__(
        self,
        spec: MachineSpec,
        margin: float = 0.0,
        min_r2: float = 0.0,
        prior_weight: int = 4,
        history_cap: int = 512,
    ):
        if prior_weight < 0:
            raise ValueError("prior_weight must be non-negative")
        self.spec = spec
        self.margin = margin
        self.min_r2 = min_r2
        #: How many analytic prior samples seed a new tenant's history
        #: per (nranks, bytes) probe point; 0 disables the bootstrap.
        self.prior_weight = prior_weight
        self.history_cap = history_cap
        self._advisors: dict[str, Advisor] = {}
        self._histories: dict[str, MeasurementHistory] = {}
        #: (tenant, Decision) pairs in consultation order.
        self.consultations: list[tuple[str, Decision]] = []
        #: Completed-job records quarantined whole because their run
        #: saw injected faults (contaminated measurements never reach
        #: any tenant's history).
        self.quarantined = 0
        self._transact = TransactOverheadModel.from_memcpy_spec(
            spec.node.memcpy
        )

    # -- analytic prior ---------------------------------------------------
    def predicted_sync_rate(self, data_size: float, nranks: int,
                            ranks_per_node: Optional[int] = None) -> float:
        """First-principles aggregate sync rate for one I/O phase.

        Client efficiency follows the file-system spec's saturating
        ``s / (s + s0)`` law on the per-rank request size; the result is
        capped by the job's aggregate NIC injection bandwidth and the
        PFS peak.  This is deliberately the *spec's* view — coarse, but
        monotone in the same variables as the simulated Eq. 4 surface,
        which is all a regression prior needs.
        """
        fs = self.spec.filesystem
        rpn = ranks_per_node or self.spec.default_ranks_per_node
        nnodes = max(1, math.ceil(nranks / rpn))
        per_rank = data_size / nranks
        efficiency = per_rank / (per_rank + fs.efficiency_s0)
        share = fs.peak_bandwidth * efficiency * min(
            1.0, nranks / (nranks + 4.0)
        )
        nic_cap = nnodes * self.spec.node.nic_bandwidth
        return max(1.0, min(share, nic_cap, fs.peak_bandwidth))

    def _bootstrap(self, history: MeasurementHistory, op: str) -> None:
        """Seed ``history`` with analytic sync samples around the spec.

        Probe points span the machine's plausible envelope (rank counts
        up to the full machine, per-rank sizes from 1 MiB to 1 GiB) so
        the first regression fit is well-conditioned; ``prior_weight``
        repeats each point to control how fast live data outvotes it.
        """
        if self.prior_weight == 0:
            return
        max_ranks = max(2, self.spec.max_ranks())
        rank_probes = sorted({
            max(1, int(round(max_ranks * f))) for f in (0.125, 0.25, 0.5, 1.0)
        })
        size_probes = [float(1 << s) for s in (20, 24, 27, 30)]  # 1MiB..1GiB
        for nranks in rank_probes:
            for per_rank in size_probes:
                data_size = per_rank * nranks
                rate = self.predicted_sync_rate(data_size, nranks)
                for _ in range(self.prior_weight):
                    history.record(data_size=data_size, nranks=nranks,
                                   io_rate=rate, mode="sync", op=op)

    # -- tenant state -----------------------------------------------------
    def history_for(self, tenant: str) -> MeasurementHistory:
        """The tenant's measurement history (bootstrapped on first use)."""
        if tenant not in self._histories:
            history = MeasurementHistory(max_samples=self.history_cap)
            self._bootstrap(history, op="write")
            self._histories[tenant] = history
        return self._histories[tenant]

    def advisor_for(self, tenant: str) -> Advisor:
        """The tenant's advisor (created on first use)."""
        if tenant not in self._advisors:
            history = self.history_for(tenant)
            self._advisors[tenant] = Advisor(
                compute_model=ComputeTimeModel(),
                io_rate_model=IORateModel(history, mode="sync"),
                transact_model=self._transact,
                margin=self.margin,
                min_r2=self.min_r2,
            )
        return self._advisors[tenant]

    def tenants(self) -> list[str]:
        """Tenants the service has seen, sorted."""
        return sorted(self._histories)

    # -- scheduler-facing API --------------------------------------------
    def decide(self, tenant: str, phase_bytes: float, nranks: int,
               compute_seconds: float) -> Decision:
        """Admission-time sync-vs-async decision for one job.

        ``compute_seconds`` is the job's *declared* computation phase —
        fed to the compute model as an observation so Eq. 2a/2b compare
        this job's own overlap budget, not a previous tenant's.
        """
        advisor = self.advisor_for(tenant)
        advisor.compute_model.observe(max(0.0, compute_seconds))
        decision = advisor.decide(
            data_size=phase_bytes, nranks=nranks,
            per_rank_bytes=phase_bytes / max(1, nranks),
        )
        self.consultations.append((tenant, decision))
        return decision

    def estimate_sync_io_time(self, tenant: str, phase_bytes: float,
                              nranks: int) -> float:
        """Predicted seconds one sync I/O phase will occupy the PFS.

        Used by the I/O-aware policy to stagger co-located sync bursts;
        falls back to the analytic prior when the tenant's rate model
        cannot fit yet.
        """
        advisor = self.advisor_for(tenant)
        if advisor.io_rate_model.ready:
            try:
                advisor.io_rate_model.refit()
                return advisor.io_rate_model.estimate_time(phase_bytes, nranks)
            except RuntimeError:
                pass
        return phase_bytes / self.predicted_sync_rate(phase_bytes, nranks)

    def observe(self, record) -> int:
        """Fold a finished job's measured rates into its tenant's history.

        ``record`` is a :class:`~repro.sched.job.JobRecord`.  Only
        clean, synchronous operations are eligible: async records
        measure the overlapped drain, faulted records measure the
        fault (the same exclusion
        :class:`~repro.model.advisor.AdaptiveVOL` applies in-loop).
        A run that saw *any* injected fault is quarantined whole —
        even its clean-looking operations ran next to retries and
        outage waits, so their rates describe the fault storm, not the
        machine.  That includes jobs killed by a node failure and
        requeued: the surviving attempt's log only covers the resumed
        tail of the workload, measured on a recovering fleet.  Returns
        the number of samples absorbed.
        """
        if record.log is None:
            return 0
        if (getattr(record, "attempt_history", None)
                or any(getattr(op, "faulted", False)
                       for op in record.log.records)):
            self.quarantined += 1
            return 0
        history = self.history_for(record.spec.tenant)
        absorbed = 0
        for op in record.log.records:
            if op.mode != "sync" or getattr(op, "faulted", False):
                continue
            rate = op.observed_rate
            if not np.isfinite(rate) or rate <= 0:
                continue
            nranks = record.spec.nranks
            history.record(
                data_size=op.nbytes * nranks, nranks=nranks,
                io_rate=rate * nranks, mode="sync", op=op.op,
            )
            absorbed += 1
        return absorbed
