"""Job descriptions and runtime records for the cluster service layer.

A :class:`JobSpec` is what a tenant submits: which workload to run, at
what scale, with which I/O mode preference ('sync', 'async', or 'auto'
— let the scheduler's advisor decide), plus the admission-control
metadata batch schedulers require (requested walltime) and the I/O
shape the advisor consumes (aggregate bytes per I/O phase, nominal
computation-phase length).  A :class:`JobRecord` is the scheduler's
mutable per-job ledger entry: queue/run timestamps, placement, final
state and the per-tenant observability hooks (its own
:class:`~repro.trace.IOLog`, its :class:`~repro.sim.engine.EngineStats`
delta).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.engine import Interrupted

__all__ = ["JobKilled", "JobKilledByNodeFailure", "JobRecord", "JobSpec",
           "JobState"]


class JobKilled(Interrupted):
    """Thrown into a job's rank processes when the scheduler kills it
    (walltime exceeded).  Deriving from the engine's
    :class:`~repro.sim.engine.Interrupted` keeps it inside the typed
    taxonomy: it *is* the scancel interrupt, delivered via
    ``Process.interrupt``.  ``job_id`` identifies the casualty."""

    def __init__(self, job_id: int, reason: str = "walltime exceeded"):
        super().__init__(f"job {job_id} killed: {reason}")
        self.job_id = job_id
        self.reason = reason


class JobKilledByNodeFailure(JobKilled):
    """The kill interrupt delivered when a job's node hard-crashes.

    Distinct from the walltime :class:`JobKilled` so the runner's
    recovery path can requeue the victim instead of recording a
    timeout; ``__cause__`` carries the underlying
    :class:`~repro.faults.errors.NodeFailureError`.
    """

    def __init__(self, job_id: int, node: int):
        super().__init__(job_id, reason=f"node {node} failed")
        self.node = node


class JobState(enum.Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"      # submitted, waiting in the queue
    RUNNING = "running"      # placed on nodes, ranks executing
    COMPLETED = "completed"  # every rank finished inside the walltime
    TIMEOUT = "timeout"      # killed at the walltime deadline
    FAILED = "failed"        # a rank died with an unhandled exception
    REJECTED = "rejected"    # admission control refused the job


@dataclass(frozen=True)
class JobSpec:
    """One tenant's job submission.

    ``program_factory(lib, vol, config)`` is any of the existing
    workload factories (:func:`~repro.workloads.vpic_program`, ...);
    the scheduler supplies the shared library and a per-job VOL.
    ``mode='auto'`` delegates the sync-vs-async choice to the policy:
    FIFO and backfill fall back to the paper's synchronous default,
    the I/O-aware policy asks its advisor service.

    ``phase_bytes`` (aggregate bytes of one I/O phase across all
    ranks), ``compute_phase_seconds`` and ``n_phases`` describe the
    job's I/O shape to admission control — the same quantities the
    paper's Fig. 2 feedback loop works on, declared up front the way
    batch jobs declare walltime.

    **Checkpoint/restart model.**  The job's I/O phases double as its
    checkpoints: ``compute_phase_seconds`` is the checkpoint interval
    and ``phase_bytes`` the checkpoint size, charged through the same
    sync/async write model as every other byte — which is why *async*
    checkpointing measurably shrinks the work lost to a node failure
    (more phases reach durable storage by the kill instant, Eq. 2b's
    overlap).  ``resume_factory(config, n_durable)`` rebuilds the
    workload config so a requeued job restarts after its first
    ``n_durable`` completed phases; jobs without one (e.g. read
    workloads) restart from scratch.  ``max_restarts`` is the
    scheduler's per-job requeue budget after node failures.
    """

    name: str
    tenant: str
    workload: str
    nranks: int
    mode: str
    program_factory: Callable
    config: Any
    op: str = "write"
    prepopulate: Optional[Callable] = None
    compute_phase_seconds: float = 0.0
    phase_bytes: float = 0.0
    n_phases: int = 1
    walltime: float = math.inf
    ranks_per_node: Optional[int] = None
    vol_kwargs: dict = field(default_factory=dict)
    #: ``(config, n_durable) -> config`` building the resumed workload
    #: config after ``n_durable`` phases are durable; None = no
    #: application-level checkpointing, requeues restart from scratch.
    resume_factory: Optional[Callable] = None
    #: Requeue budget after node failures (0 = fail on first crash).
    max_restarts: int = 2

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")
        if self.mode not in ("sync", "async", "auto"):
            raise ValueError(
                f"mode must be 'sync', 'async' or 'auto', got {self.mode!r}"
            )
        if self.op not in ("write", "read"):
            raise ValueError(f"op must be 'write' or 'read', got {self.op!r}")
        if self.compute_phase_seconds < 0 or self.phase_bytes < 0:
            raise ValueError(f"negative I/O shape in {self.name!r}")
        if self.n_phases < 1:
            raise ValueError(f"n_phases must be >= 1, got {self.n_phases}")
        if self.walltime <= 0:
            raise ValueError(f"walltime must be positive, got {self.walltime}")
        if self.ranks_per_node is not None and self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )

    def nnodes(self, default_rpn: int) -> int:
        """Nodes this job occupies at its (or the machine's) density."""
        rpn = self.ranks_per_node or default_rpn
        return (self.nranks + rpn - 1) // rpn

    def per_rank_phase_bytes(self) -> float:
        """One rank's share of an I/O phase (the transactional copy size)."""
        return self.phase_bytes / self.nranks


class JobRecord:
    """Mutable scheduler-side ledger entry for one submitted job."""

    __slots__ = (
        "spec", "job_id", "submit_time", "state", "mode", "nodes",
        "start_time", "finish_time", "log", "decision", "stats_delta",
        "reject_reason", "queued_since", "attempts", "kill_reason",
        "fault", "attempt_history", "durable_phases", "lost_work_seconds",
    )

    def __init__(self, spec: JobSpec, job_id: int, submit_time: float):
        self.spec = spec
        self.job_id = job_id
        self.submit_time = submit_time
        self.state = JobState.PENDING
        #: Resolved I/O mode ('sync' | 'async'); None until placement.
        self.mode: Optional[str] = None
        self.nodes: tuple[int, ...] = ()
        self.start_time: float = math.nan
        self.finish_time: float = math.nan
        #: The job's private IOLog (per-tenant attribution).
        self.log = None
        #: The advisor's Decision for 'auto' jobs under the I/O-aware
        #: policy; None when the mode was fixed by the tenant/policy.
        self.decision = None
        #: EngineStats counter deltas over the job's residency
        #: (events executed and rebalances run while this job was on
        #: the cluster — co-resident tenants overlap by construction).
        self.stats_delta: dict[str, int] = {}
        self.reject_reason: Optional[str] = None
        #: When the job last (re-)entered the pending queue: submission
        #: for attempt 1, end of the requeue backoff for later attempts.
        self.queued_since = submit_time
        #: Times the scheduler started this job (1 = never requeued).
        self.attempts = 0
        #: Why the scheduler killed the job (None for clean lifecycles).
        self.kill_reason: Optional[str] = None
        #: Fault signature of the kill, e.g. ``{"kind":
        #: "NodeFailureError", "node": 3}`` — the per-job slice of the
        #: injector's timeline, for drill-down and quarantine audits.
        self.fault: Optional[dict] = None
        #: One row per *failed* attempt (start/finish/nodes/durable
        #: phases/lost work/reason); the final attempt lives in the
        #: record's own fields.
        self.attempt_history: list[dict] = []
        #: Checkpoints (completed I/O phases) durable across attempts —
        #: a requeued job resumes after this many phases.
        self.durable_phases = 0
        #: Compute seconds re-done because of kills (across attempts).
        self.lost_work_seconds = 0.0

    # -- derived metrics ------------------------------------------------
    @property
    def wait_time(self) -> float:
        """Submit-to-start queue wait (nan until started)."""
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float:
        """Start-to-finish execution time (nan until finished)."""
        return self.finish_time - self.start_time

    @property
    def completion_time(self) -> float:
        """Submit-to-finish latency — the fleet's headline metric."""
        return self.finish_time - self.submit_time

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in (JobState.COMPLETED, JobState.TIMEOUT,
                              JobState.FAILED, JobState.REJECTED)

    def bytes_moved(self) -> float:
        """Bytes this job's operations moved (0 before it ran)."""
        if self.log is None:
            return 0.0
        return sum(r.nbytes for r in self.log.records)

    def summary(self) -> dict:
        """Plain-dict row for benchmark JSON and tables."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "tenant": self.spec.tenant,
            "workload": self.spec.workload,
            "nranks": self.spec.nranks,
            "requested_mode": self.spec.mode,
            "mode": self.mode,
            "state": self.state.value,
            "nodes": list(self.nodes),
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "wait_time": self.wait_time,
            "completion_time": self.completion_time,
            "bytes_moved": self.bytes_moved(),
            "stats_delta": dict(self.stats_delta),
            "attempts": self.attempts,
            "kill_reason": self.kill_reason,
            "fault": dict(self.fault) if self.fault else None,
            "attempt_history": [dict(a) for a in self.attempt_history],
            "durable_phases": self.durable_phases,
            "lost_work_seconds": self.lost_work_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<JobRecord {self.job_id} {self.spec.name!r} "
                f"{self.state.value}>")
