"""Bandwidth-sharing network model with max-min fair allocation.

Data movement in the reproduction (parallel file system traffic, staging
memcpys, burst-buffer drains) is modeled as *flows* traversing one or
more *links*.  Each link has a capacity in bytes/second; each flow may
additionally carry a per-flow rate cap (e.g. the size-dependent
efficiency of a GPFS client, or the memcpy bandwidth curve).

Rates are assigned by **max-min fairness with caps** (progressive
filling / water-filling): all flows grow uniformly until either a link
saturates (its flows freeze) or a flow hits its own cap (it freezes).
This is the standard fluid model for TCP-like fair sharing and
reproduces the saturation shapes the paper observes: aggregate
bandwidth grows with the number of clients until the shared file-system
link is the bottleneck, then plateaus.

Fast path (see ``docs/architecture.md``, "Simulator fast path"): active
flows are grouped into **flow classes** keyed by ``(links, cap)``.  All
members of a class receive identical rates under progressive filling,
so the water-filling rounds operate on classes (dozens) instead of
flows (thousands).  Class-level and link-level state live in dense
numpy arrays indexed by stable slots (``_c_*`` for classes, ``_l_*``
for links), with a per-class CSR-ish incidence list (``lmults``) built
incrementally as classes appear.  Each progressive-filling round is a
handful of vectorized reductions — per-link residual minima plus
per-class cap headroom — and the advance/completion sweep is a
vectorized quick-reject over every class at once, dropping to a scalar
member scan only for the few classes actually near completion.

Bit-identity: the reference per-flow implementation is preserved in
:mod:`repro.sim.network_ref`; the fast path is required (and tested) to
produce bit-identical simulated timestamps and rates.  All vector
arithmetic is elementwise IEEE-754 double precision — identical to the
scalar operations it replaces — and min-reductions are exact and
order-independent, so vectorizing never reorders a float operation in a
value-changing way.  The ordering rules that matter (documented inline)
are: cap-freezing happens before link-residual updates within a round;
residual updates happen before saturation checks; completion callbacks
fire in activation order; and every value escaping the arrays into
engine or :class:`Flow` state is converted back to a Python float so
``repr``/serialization stay byte-identical downstream.

Efficiency notes (guides: avoid per-event quadratic work): flow arrivals
and completions at the same simulated instant are *batched* — a single
rebalance runs after all of them, scheduled in a late priority band.
With ``N`` identical flows starting and finishing together (the common
bulk-synchronous I/O-phase case) the whole phase costs ``O(N)`` events
and two rate computations over ``O(1)`` classes, not ``O(N^2)``.
"""

from __future__ import annotations

import math
from operator import attrgetter
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.check import hooks as _check_hooks
from repro.sim.engine import PRIORITY_LATE, Engine, SimEvent, SimulationError

__all__ = ["Flow", "Link", "Network"]

#: Relative tolerance for "link saturated" / "cap reached" tests.
_REL_EPS = 1e-9
#: Absolute byte tolerance below which a flow counts as complete.
_BYTE_EPS = 1e-6

_INF = math.inf

#: Completion callbacks fire in activation order (see _advance_and_complete).
_ORDER_KEY = attrgetter("_order")


class Link:
    """A shared bandwidth resource (NIC, PFS backend, memory bus).

    Capacity may be changed at runtime (used by the contention model);
    in-flight flows are re-balanced from the current instant onward.
    """

    __slots__ = ("name", "_capacity", "_sat", "_network", "_lid")

    def __init__(self, name: str, capacity: float):
        if capacity < 0:
            raise ValueError(f"link {name!r}: negative capacity {capacity}")
        self.name = name
        self._capacity = float(capacity)
        #: Saturation threshold ``capacity * _REL_EPS``, recomputed only
        #: when the capacity changes (not every water-filling round).
        self._sat = self._capacity * _REL_EPS
        self._network: Optional["Network"] = None
        #: Slot index into the owning network's link arrays (assigned on
        #: first use by a transfer).
        self._lid = -1

    @property
    def capacity(self) -> float:
        """Capacity in bytes/second."""
        return self._capacity

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity, re-balancing any in-flight flows.

        A rebalance is scheduled even for an unchanged value (the
        reference implementation does the same, and the advance
        checkpoints must match it bit-for-bit); the allocator itself is
        only re-run when the value actually changed.
        """
        if capacity < 0:
            raise ValueError(f"link {self.name!r}: negative capacity {capacity}")
        capacity = float(capacity)
        sat = capacity * _REL_EPS
        network = self._network
        if network is not None:
            if capacity != self._capacity:
                network._epoch += 1
            if capacity <= 0.0:
                network._zero_links.add(self)
            else:
                network._zero_links.discard(self)
            network._l_cap[self._lid] = capacity
            network._l_sat[self._lid] = sat
            network._mark_dirty()
        self._capacity = capacity
        self._sat = sat

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name!r} {self._capacity:.3g} B/s>"


class Flow:
    """A single data transfer across a path of links.

    ``done`` fires with the flow itself as value when the last byte has
    moved.  ``elapsed`` and ``achieved_rate`` are populated on
    completion and used to derive the paper's "aggregate bandwidth"
    metrics.
    """

    __slots__ = (
        "nbytes",
        "_rem",
        "links",
        "cap",
        "_rate",
        "_klass",
        "_order",
        "done",
        "tag",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        engine: Engine,
        nbytes: float,
        links: tuple,
        cap: float,
        tag: Any,
    ):
        self.nbytes = float(nbytes)
        self._rem = float(nbytes)
        self.links = links
        self.cap = float(cap)
        self._rate = 0.0
        self._klass: Optional["_FlowClass"] = None
        self._order = 0
        self.tag = tag
        # A static event name (formatting a per-flow f-string is
        # measurable at scale — the tag is on the flow for debugging),
        # constructed directly to skip the factory-method hop.
        self.done = SimEvent(engine, "flow")
        self.started_at = engine._now
        self.finished_at: Optional[float] = None

    @property
    def rate(self) -> float:
        """Current allocated rate (read lazily from the flow's class)."""
        klass = self._klass
        return klass.rate if klass is not None else self._rate

    @property
    def remaining(self) -> float:
        """Bytes left to move.

        While the flow is a class member its residual lives in the
        class's parallel ``rems`` array (the advance loop updates that
        array wholesale, far cheaper than per-flow attribute stores);
        this accessor is for observability, not the hot path.
        """
        klass = self._klass
        if klass is None:
            return self._rem
        klass.materialize()
        return klass.rems[klass.members.index(self)]

    @remaining.setter
    def remaining(self, value: float) -> None:
        klass = self._klass
        if klass is None:
            self._rem = value
        else:
            klass.materialize()
            klass.rems[klass.members.index(self)] = value

    @property
    def elapsed(self) -> float:
        """Transfer duration in seconds (``nan`` until complete)."""
        if self.finished_at is None:
            return float("nan")
        return self.finished_at - self.started_at

    @property
    def achieved_rate(self) -> float:
        """Average achieved bytes/second over the whole transfer.

        Always finite: an in-flight flow reports ``0.0`` (rather than
        propagating the ``nan`` from :attr:`elapsed`), and a
        zero-duration transfer (empty payload, or an instantaneous move
        over an uncapped path) also reports ``0.0`` — a finite,
        ``nbytes``-consistent value for the downstream regression in
        :mod:`repro.analysis.fitting`, where an ``inf``/``nan`` sample
        would poison the fit's r².
        """
        if self.finished_at is None:
            return 0.0
        dt = self.finished_at - self.started_at
        if dt > 0.0:
            return self.nbytes / dt
        return 0.0

    # Waitable protocol: ``yield flow`` waits for completion.
    def _as_event(self, engine: Engine) -> SimEvent:
        return self.done

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.tag!r} {self.nbytes:.3g}B "
            f"remaining={self.remaining:.3g} rate={self.rate:.3g}>"
        )


class _FlowClass:
    """Equivalence class of active flows sharing ``(links, cap)``.

    Progressive filling assigns identical rates to all members, so the
    allocator operates on classes and members read their rate through
    :attr:`Flow.rate`.  Scalar per-class state (rate, min residual, max
    member size, member count) lives in the owning network's dense slot
    arrays (``_c_*``); the class object holds the member lists, the
    incidence row (``lmults``: each distinct link's slot id with its
    multiplicity — a duplicated link in a path counts twice toward that
    link's flow count, exactly as in the reference allocator) and the
    replay cursor into the network's deferred-decrement log.
    """

    __slots__ = (
        "key", "links", "cap", "cap_thresh", "slot", "net", "members",
        "rems", "pending", "count", "link_mults", "lmults", "dec_from",
    )

    def __init__(self, key: tuple, links: tuple, cap: float, net: "Network"):
        self.key = key
        self.links = links
        self.cap = cap
        self.cap_thresh = cap * (1.0 - _REL_EPS)
        self.net = net
        self.slot = -1
        self.members: list[Flow] = []
        #: Per-member residual bytes, parallel to ``members`` — current
        #: only after :meth:`materialize` replays the deferred advance
        #: decrements logged since ``dec_from``.
        self.rems: list[float] = []
        #: Arrivals since the last allocation: they hold rate 0 (exactly
        #: like a fresh flow in the reference allocator) until the next
        #: water-filling pass merges them into ``members``.
        self.pending: list[Flow] = []
        self.count = 0
        mults: dict[Link, int] = {}
        for link in links:
            mults[link] = mults.get(link, 0) + 1
        self.link_mults = tuple(mults.items())
        #: Incidence row: (link slot, multiplicity) pairs with the
        #: multiplicity pre-converted to float (counts this small are
        #: exact in binary64, so float bookkeeping matches int).
        self.lmults = tuple(
            (link._lid, float(mult)) for link, mult in self.link_mults
        )
        #: Replay cursor into ``net._dec_log``; entries before it were
        #: either applied to ``rems`` already or predate this class.
        self.dec_from = 0

    @property
    def rate(self) -> float:
        """Current class rate (read from the network's slot array)."""
        return float(self.net._c_rate[self.slot])

    def materialize(self) -> None:
        """Replay deferred advance decrements onto member residuals.

        Applying decrements member-by-member at every checkpoint would
        be O(members) per rebalance; instead each advance appends one
        per-slot row to the network-wide log (the class minimum still
        advances eagerly) and members replay the sequence — the same
        clamped subtractions in the same order, so bit-identical — only
        when their residuals are actually read.  Zero rows (checkpoints
        where this class's rate was 0) subtract exactly nothing in the
        reference too, so they are skipped.
        """
        net = self.net
        start = self.dec_from
        end = net._dec_rows
        if start >= end:
            return
        self.dec_from = end
        rems = self.rems
        if not rems:
            return
        # Back to Python floats before the scalar replay: the residuals
        # must stay plain floats (they escape into Flow state).  A
        # checkpoint where this class's rate was 0 logged a 0 row, which
        # subtracts exactly nothing in the reference too — filter them.
        if end - start <= 8:
            # Few rows: scalar extraction (``.item`` returns a Python
            # float directly) beats the slice/compare/gather round-trip.
            item = net._dec_buf.item
            slot = self.slot
            decs = []
            for k in range(start, end):
                d = item(k, slot)
                if d > 0.0:
                    decs.append(d)
            if not decs:
                return
        else:
            col = net._dec_buf[start:end, self.slot]
            col = col[col > 0.0]
            if not col.size:
                return
            decs = col.tolist()
        for i, r in enumerate(rems):
            for d in decs:
                r = r - d
                if r <= 0.0:
                    r = 0.0
            rems[i] = r

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ",".join(l.name for l in self.links)
        return f"<FlowClass [{names}] cap={self.cap:.3g} n={self.count}>"


def _dispatch_batch(events: list) -> None:
    """Run the queued completion dispatches of one rebalance in order.

    Body-for-body the same as :meth:`SimEvent._dispatch`, inlined to
    skip a method call per completion at scale.
    """
    for ev in events:
        ev._processed = True
        callbacks = ev.callbacks
        ev.callbacks = ()
        for cb in callbacks:
            cb(ev)


class Network:
    """Fluid-flow network: manages active flows and their fair rates."""

    def __init__(self, engine: Engine):
        self.engine = engine
        #: (links, cap) -> class of active flows (insertion-ordered).
        self._classes: dict[tuple, _FlowClass] = {}
        #: link -> {class: multiplicity} for classes whose path uses it.
        self._link_classes: dict[Link, dict[_FlowClass, int]] = {}
        #: Classes with unmerged arrivals (each listed at most once).
        self._pending_classes: list[_FlowClass] = []

        # Class slot arrays (capacity-doubling; freed slots are recycled
        # through ``_c_free`` and hold neutral values: rate 0, min
        # residual inf, cap threshold inf, count 0, not alive).
        cc = 16
        self._c_cap_n = cc
        self._c_hi = 0
        self._c_free: list[int] = []
        self._c_obj: list[Optional[_FlowClass]] = [None] * cc
        self._c_rate = np.zeros(cc)
        self._c_cap = np.zeros(cc)
        self._c_capth = np.full(cc, _INF)
        self._c_minrem = np.full(cc, _INF)
        self._c_maxnb = np.zeros(cc)
        self._c_count = np.zeros(cc)
        self._scr_thr = np.zeros(cc)
        self._scr_hd = np.zeros(cc)
        self._scr_unf = np.zeros(cc, dtype=bool)
        self._scr_new = np.zeros(cc, dtype=bool)
        self._scr_cb = np.zeros(cc, dtype=bool)

        #: Class×link incidence, CSR-ish but padded to a fixed row
        #: width for branch-free gathers: row ``s`` lists the link slot
        #: ids of class ``s``'s distinct links, padded with the class's
        #: *own first link id* (a class's saturation test is "any of my
        #: links saturated?", so repeating one of its real links is a
        #: no-op); the parallel multiplicity rows pad with 0 (a
        #: member-count update of ``0 * count`` subtracts exactly
        #: nothing).  Rows of freed slots go stale harmlessly — every
        #: consumer masks with the unfrozen mask, and link slots are
        #: never recycled, so stale ids still index in range.
        self._c_deg = 4
        self._c_lids = np.zeros((cc, self._c_deg), dtype=np.intp)
        self._c_mults = np.zeros((cc, self._c_deg))
        #: Transposed copy of ``_c_lids`` (link column k across all
        #: classes) for the per-round saturation test: k separate 1-D
        #: gathers beat one 2-D gather-plus-row-reduce by ~3x at the
        #: widths the allocator runs at.
        self._c_lidsT = np.zeros((self._c_deg, cc), dtype=np.intp)
        #: Highest link-set size among installed classes (monotone
        #: overapproximation: stale after frees, but scanning a pad
        #: column is a no-op, never wrong).
        self._c_maxdeg = 1

        # Link slot arrays (member counts are exact small integers kept
        # in float64 so the allocator's divisions read them directly).
        lc = 16
        self._l_cap_n = lc
        self._l_hi = 0
        self._links: list[Link] = []
        self._l_cap = np.zeros(lc)
        self._l_sat = np.zeros(lc)
        self._l_members = np.zeros(lc)
        self._scr_n = np.zeros(lc)
        self._scr_res = np.zeros(lc)
        self._scr_t = np.zeros(lc)
        self._scr_nz = np.zeros(lc, dtype=bool)
        self._scr_st = np.zeros(lc, dtype=bool)

        #: Deferred advance decrements: row ``k`` holds ``rate * dt`` of
        #: the ``k``-th advance checkpoint for every class slot (columns
        #: beyond the high-water mark at write time hold stale garbage,
        #: which is safe: a class only replays rows logged at or after
        #: its creation, when its slot was already in range).  Compacted
        #: in place when full; see :meth:`_compact_log`.
        self._dec_buf = np.zeros((512, cc))
        self._dec_rows = 0

        #: Shells of fully-drained classes, kept for reuse: workloads
        #: arrive in bursts over a stable set of (links, cap) keys, and
        #: rebuilding the incidence row and link registration for every
        #: burst dominated the allocator's cost.  Bounded; cleared
        #: wholesale if a workload churns through too many keys.
        self._retired: dict[tuple, _FlowClass] = {}

        #: Open run of same-deadline delayed activations (see
        #: :meth:`transfer`): the list scheduled with the head flow,
        #: its absolute deadline, and the engine sequence number as of
        #: the head's schedule — any other schedule() in between bumps
        #: the counter and closes the batch.
        self._act_batch: Optional[list] = None
        self._act_deadline = 0.0
        self._act_seq = -1

        self._n_active = 0
        self._order = 0
        #: Links currently at zero capacity (their flows freeze at rate
        #: 0); maintained here so the allocator doesn't scan every link.
        self._zero_links: set[Link] = set()
        #: Bumped on any arrival/completion/capacity change; the
        #: allocator is skipped while ``_alloc_epoch`` matches.
        self._epoch = 0
        self._alloc_epoch = -1
        self._last_update = 0.0
        self._dirty = False
        self._completion_token = 0
        #: Completed-flow count (observability / tests).
        self.completed = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transfer(
        self,
        nbytes: float,
        links: Iterable[Link],
        cap: float = math.inf,
        latency: float = 0.0,
        tag: Any = None,
    ) -> Flow:
        """Start a transfer of ``nbytes`` over ``links``.

        ``cap`` bounds this flow's rate regardless of link headroom
        (bytes/second).  ``latency`` is a fixed startup delay (request
        setup, metadata round-trip) before any byte moves.  Returns the
        :class:`Flow`, whose ``done`` event fires on completion; a flow
        is itself waitable, so process code reads naturally::

            flow = network.transfer(nbytes, [nic, pfs])
            yield flow
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if cap <= 0:
            raise ValueError(f"flow cap must be positive, got {cap}")
        links = tuple(links)
        for link in links:
            if link._network is not self:
                self._attach_link(link)
        flow = Flow(self.engine, nbytes, links, cap, tag)
        if nbytes <= _BYTE_EPS:
            if latency > 0.0:
                self.engine.schedule(latency, self._finish_now, flow)
            else:
                self._finish_now(flow)
            return flow
        if latency > 0.0:
            eng = self.engine
            deadline = eng._now + latency
            batch = self._act_batch
            if (
                batch is not None
                and deadline == self._act_deadline
                and eng._seq == self._act_seq
            ):
                # No event has been scheduled since this batch's head:
                # unbatched, this activation would carry the very next
                # sequence number at the same (time, priority) key and
                # pop immediately after the previous one with nothing in
                # between.  Running the whole run from the head's
                # callback is therefore observationally identical — and
                # skips a heap push/pop per flow.  Any interleaved
                # schedule() bumps the engine's sequence counter and
                # closes the batch, so the guarantee is structural.
                batch.append(flow)
            else:
                batch = [flow]
                eng.schedule(latency, self._activate_batch, batch)
                self._act_batch = batch
                self._act_deadline = deadline
                self._act_seq = eng._seq
        else:
            self._activate(flow)
        return flow

    def link_throughput(self, link: Link) -> float:
        """Instantaneous aggregate rate through ``link`` (bytes/second).

        Served from the per-class aggregates the fast path maintains —
        ``O(classes on link)`` instead of a scan over every active flow.
        """
        self._settle()
        classes = self._link_classes.get(link)
        if not classes:
            return 0.0
        rate = self._c_rate
        return float(sum(rate[cls.slot] * cls.count for cls in classes))

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows (maintained count, no flow scan)."""
        self._settle()
        return self._n_active

    @property
    def class_count(self) -> int:
        """Number of distinct flow classes currently active."""
        return len(self._classes)

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def _attach_link(self, link: Link) -> None:
        if link._network is not None:
            raise RuntimeError(f"link {link.name!r} belongs to another network")
        link._network = self
        lid = self._l_hi
        if lid == self._l_cap_n:
            self._grow_links()
        self._l_hi = lid + 1
        link._lid = lid
        self._links.append(link)
        self._l_cap[lid] = link._capacity
        self._l_sat[lid] = link._sat
        if link._capacity <= 0.0:
            self._zero_links.add(link)

    def _grow_links(self) -> None:
        new = self._l_cap_n * 2
        hi = self._l_hi
        for name in ("_l_cap", "_l_sat", "_l_members"):
            arr = np.zeros(new)
            arr[:hi] = getattr(self, name)[:hi]
            setattr(self, name, arr)
        self._scr_n = np.zeros(new)
        self._scr_res = np.zeros(new)
        self._scr_t = np.zeros(new)
        self._scr_nz = np.zeros(new, dtype=bool)
        self._scr_st = np.zeros(new, dtype=bool)
        self._l_cap_n = new

    def _install_class(self, cls: _FlowClass) -> None:
        """Give ``cls`` a slot and register it (fresh or revived)."""
        free = self._c_free
        if free:
            slot = free.pop()
        else:
            slot = self._c_hi
            if slot == self._c_cap_n:
                self._grow_classes()
            self._c_hi = slot + 1
        cls.slot = slot
        cls.dec_from = self._dec_rows
        self._c_cap[slot] = cls.cap
        self._c_capth[slot] = cls.cap_thresh
        self._c_obj[slot] = cls
        lmults = cls.lmults
        deg = len(lmults)
        if deg > self._c_deg:
            self._grow_degree(deg)
        if deg > self._c_maxdeg:
            self._c_maxdeg = deg
        row_l = self._c_lids[slot]
        row_m = self._c_mults[slot]
        pad = lmults[0][0]
        row_l[:] = pad
        row_m[:] = 0.0
        self._c_lidsT[:, slot] = pad
        for k, (lid, mult) in enumerate(lmults):
            row_l[k] = lid
            row_m[k] = mult
            self._c_lidsT[k, slot] = lid
        # rate/minrem/maxnb/count already hold their neutral values
        # (0 / inf / 0 / 0) from init or the last _free_class.
        self._classes[cls.key] = cls
        link_classes = self._link_classes
        for link, mult in cls.link_mults:
            members = link_classes.get(link)
            if members is None:
                link_classes[link] = {cls: mult}
            else:
                members[cls] = mult

    def _grow_classes(self) -> None:
        new = self._c_cap_n * 2
        hi = self._c_hi
        grown = {
            "_c_rate": 0.0,
            "_c_cap": 0.0,
            "_c_capth": _INF,
            "_c_minrem": _INF,
            "_c_maxnb": 0.0,
            "_c_count": 0.0,
        }
        for name, fill in grown.items():
            arr = np.full(new, fill)
            arr[:hi] = getattr(self, name)[:hi]
            setattr(self, name, arr)
        self._scr_thr = np.zeros(new)
        self._scr_hd = np.zeros(new)
        self._scr_unf = np.zeros(new, dtype=bool)
        self._scr_new = np.zeros(new, dtype=bool)
        self._scr_cb = np.zeros(new, dtype=bool)
        self._c_obj.extend([None] * (new - self._c_cap_n))
        deg = self._c_deg
        lids = np.zeros((new, deg), dtype=np.intp)
        lids[:hi] = self._c_lids[:hi]
        self._c_lids = lids
        mults = np.zeros((new, deg))
        mults[:hi] = self._c_mults[:hi]
        self._c_mults = mults
        lidsT = np.zeros((deg, new), dtype=np.intp)
        lidsT[:, :hi] = self._c_lidsT[:, :hi]
        self._c_lidsT = lidsT
        buf = np.zeros((self._dec_buf.shape[0], new))
        rows = self._dec_rows
        buf[:rows, : self._c_cap_n] = self._dec_buf[:rows]
        self._dec_buf = buf
        self._c_cap_n = new

    def _grow_degree(self, deg: int) -> None:
        """Widen the incidence rows to ``deg`` link columns.

        New link columns replicate column 0 (each row's own first link
        id — the established pad value) and multiplicity 0, preserving
        the pad invariants for every existing row.
        """
        old_l = self._c_lids
        old_m = self._c_mults
        old_deg = self._c_deg
        lids = np.repeat(old_l[:, :1], deg, axis=1)
        lids[:, :old_deg] = old_l
        mults = np.zeros((old_m.shape[0], deg))
        mults[:, :old_deg] = old_m
        self._c_lids = lids
        self._c_mults = mults
        self._c_lidsT = np.ascontiguousarray(lids.T)
        self._c_deg = deg

    def _free_class(self, cls: _FlowClass) -> None:
        slot = cls.slot
        self._c_rate[slot] = 0.0
        self._c_cap[slot] = 0.0
        self._c_capth[slot] = _INF
        self._c_minrem[slot] = _INF
        self._c_maxnb[slot] = 0.0
        self._c_count[slot] = 0.0
        self._c_obj[slot] = None
        self._c_free.append(slot)
        cls.slot = -1

    def _compact_log(self) -> None:
        """Make room in the decrement buffer (called when it fills).

        Shifts out the row prefix every class has already replayed; if
        laggard classes (long-lived, never materialized) pin most of the
        buffer, force their replay — each (class, row) pair is replayed
        at most once over its lifetime either way, so this only moves
        cost, never adds it.
        """
        rows = self._dec_rows
        classes = self._classes.values()
        mn = rows
        for cls in classes:
            if not cls.rems:
                # Memberless (inert) class: nothing to replay, ever —
                # advance its cursor so it cannot pin the buffer.
                cls.dec_from = rows
            elif cls.dec_from < mn:
                mn = cls.dec_from
        if mn:
            buf = self._dec_buf
            buf[: rows - mn] = buf[mn:rows].copy()
            rows -= mn
            self._dec_rows = rows
            for cls in classes:
                cls.dec_from -= mn
        if rows >= (self._dec_buf.shape[0] * 3) // 4:
            for cls in classes:
                cls.materialize()
            self._dec_rows = 0
            for cls in classes:
                cls.dec_from = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finish_now(self, flow: Flow) -> None:
        flow.started_at = min(flow.started_at, self.engine.now)
        flow.finished_at = self.engine.now
        flow._rem = 0.0
        self.completed += 1
        flow.done.succeed(flow)

    def _activate(self, flow: Flow) -> None:
        flow.started_at = self.engine._now
        order = self._order + 1
        self._order = order
        flow._order = order
        key = (flow.links, flow.cap)
        cls = self._classes.get(key)
        if cls is None:
            cls = self._retired.pop(key, None)
            if cls is None:
                cls = _FlowClass(key, flow.links, flow.cap, self)
            self._install_class(cls)
        # Fresh arrivals hold rate 0 until the next water-filling pass
        # (the reference allocator behaves the same way): they sit on the
        # class's pending list so the advance/completion scans skip them;
        # link membership counts are settled at merge time in one batch.
        pending = cls.pending
        if not pending:
            self._pending_classes.append(cls)
        pending.append(flow)
        self._n_active += 1
        self._epoch += 1
        if not self._dirty:
            self._dirty = True
            self.engine.schedule(0.0, self._rebalance, priority=PRIORITY_LATE)

    def _activate_batch(self, flows: list) -> None:
        """Activate a run of same-deadline delayed transfers in order.

        Loop body matches :meth:`_activate` flow-for-flow; the shared
        counters (activation order, active count, epoch, dirty flag) are
        carried in locals and written back once — the epoch is a change
        marker and the rebalance is batched per instant anyway, so one
        bump covers the whole run.
        """
        if flows is self._act_batch:
            self._act_batch = None
        now = self.engine._now
        order = self._order
        classes = self._classes
        retired = self._retired
        pending_classes = self._pending_classes
        # Run-length class cache: bulk-synchronous batches are long runs
        # of flows sharing a (links, cap) key (e.g. the ranks of one
        # node all writing through its NIC), so remember the last class
        # and skip the dict probe while the key repeats.  Content
        # equality, not identity — each rank builds its own path tuple.
        last_links: object = None
        last_cap = -1.0
        pending: list = []
        for flow in flows:
            flow.started_at = now
            order += 1
            flow._order = order
            links = flow.links
            cap = flow.cap
            if cap != last_cap or links != last_links:
                last_links = links
                last_cap = cap
                key = (links, cap)
                cls = classes.get(key)
                if cls is None:
                    cls = retired.pop(key, None)
                    if cls is None:
                        cls = _FlowClass(key, links, cap, self)
                    self._install_class(cls)
                pending = cls.pending
                if not pending:
                    pending_classes.append(cls)
            pending.append(flow)
        self._order = order
        self._n_active += len(flows)
        self._epoch += 1
        if not self._dirty:
            self._dirty = True
            self.engine.schedule(0.0, self._rebalance, priority=PRIORITY_LATE)

    def _evict_empties(self) -> None:
        """Deregister every fully-drained inert class (memory pressure).

        A fully-drained class is normally *not* deregistered: workloads
        arrive in bursts over a stable set of (links, cap) keys, and
        tearing the class down only to rebuild it milliseconds later
        dominated the allocator's cost.  The empty class stays installed
        but inert — its count is 0, so every allocation mask excludes it
        — and the next burst revives it with a plain dict hit.  Shells
        are only evicted (into ``_retired``) here, under memory
        pressure, when a workload churns through thousands of distinct
        keys.  Safe to run mid-scan: an evictable class is empty, hence
        quiet in the advance flags, hence never in the pending
        member-scan list; slots are only handed out again by
        ``_activate``.
        """
        classes = self._classes
        link_classes = self._link_classes
        retired = self._retired
        empties = [
            c for c in classes.values() if c.count == 0 and not c.pending
        ]
        for cls in empties:
            del classes[cls.key]
            for link, _mult in cls.link_mults:
                members = link_classes[link]
                del members[cls]
                if not members:
                    del link_classes[link]
            self._free_class(cls)
            if len(retired) >= 4096:
                retired.clear()
            retired[cls.key] = cls

    def _mark_dirty(self) -> None:
        if not self._dirty:
            self._dirty = True
            # Late priority: batch all arrivals/changes at this instant.
            self.engine.schedule(0.0, self._rebalance, priority=PRIORITY_LATE)

    def _settle(self) -> None:
        """Force a pending rebalance to run synchronously (for queries)."""
        if self._dirty:
            self._rebalance()

    def _rebalance(self) -> None:
        self._dirty = False
        stats = self.engine.stats
        stats.rebalances += 1
        self._advance_and_complete()
        if self._alloc_epoch != self._epoch:
            self._allocate()
            self._alloc_epoch = self._epoch
        else:
            # Pure no-op rebalance (e.g. a redundant capacity write or a
            # superseded query settle): rates are still valid, skip the
            # water-filling entirely.
            stats.rebalances_skipped += 1
        self._schedule_completion()

    def _advance_and_complete(self) -> None:
        # Advance member residuals to ``now``, then complete drained
        # flows.  The vectorized advance updates every class minimum at
        # once and logs one decrement row; each class's advance and
        # completion are independent of every other's, so the arithmetic
        # matches the reference's advance-all-then-scan-all sequence
        # bit-for-bit (and a zero decrement subtracts exactly nothing,
        # so rate-0 classes come out unchanged just as if skipped).
        #
        # A flow is complete when its residual is negligible relative to
        # its size, or when draining it needs a time step too small to
        # represent at the current simulated time (float resolution) —
        # otherwise zero-progress completion events would loop forever.
        now = self.engine._now
        dt = now - self._last_update
        self._last_update = now
        if not self._classes:
            return
        hi = self._c_hi
        rate = self._c_rate[:hi]
        minrem = self._c_minrem[:hi]
        if dt > 0.0:
            # One row of per-slot decrements; members replay it lazily
            # (see _FlowClass.materialize).  The class minimum advances
            # eagerly: subtraction is monotonic, so the minimizing
            # member stays minimal and the clamped subtraction below is
            # the same arithmetic the members will replay, bit-for-bit.
            row = self._dec_rows
            if row == self._dec_buf.shape[0]:
                self._compact_log()
                row = self._dec_rows
            dec = self._dec_buf[row, :hi]
            np.multiply(rate, dt, out=dec)
            self._dec_rows = row + 1
            np.subtract(minrem, dec, out=minrem)
            clamp = np.less_equal(minrem, 0.0, out=self._scr_cb[:hi])
            np.copyto(minrem, 0.0, where=clamp)
        time_eps = max(1e-12, abs(now) * 1e-12)
        # Scalar quick reject first: with mn the global minimum residual
        # and rmax the global maximum rate, every per-class completion
        # test below is bounded by the corresponding global one
        # (minrem_c >= mn, maxnb_c <= max(maxnb), minrem_c / rate_c >=
        # mn / rmax), so three reductions prove most checkpoints have
        # nothing to complete.  Conservative only: on failure the full
        # per-class flags below decide.  (No NaNs: populated classes
        # have finite minima, empty ones sit at +inf.)
        mn = minrem.min()
        if mn > _BYTE_EPS and mn > self._c_maxnb[:hi].max() * 1e-9:
            rmax = rate.max()
            if rmax == 0.0 or mn / rmax > time_eps:
                return
        # Per-class selector: flag every class whose minimum residual
        # might clear one of the three completion tests.  This is only a
        # *selector* — the per-member scan below applies the exact
        # reference tests, and scanning a class where nothing completes
        # rewrites bit-identical state — so a conservative
        # overapproximation is safe and lets the time test use a
        # division-free bound: ``rem / r <= eps`` implies
        # ``rem <= r * (eps * 1.0625)`` (two rounding steps fit well
        # inside the 6.25% margin; an inf rate makes the bound inf,
        # correctly flagging instant-drain classes).  Inert and dead
        # slots sit at minrem inf / rate 0 and are never flagged, so no
        # aliveness mask is needed.
        thr = np.multiply(rate, time_eps * 1.0625, out=self._scr_thr[:hi])
        np.maximum(thr, _BYTE_EPS, out=thr)
        flagged = np.less_equal(minrem, thr, out=self._scr_new[:hi])
        np.multiply(self._c_maxnb[:hi], 1e-9, out=thr)
        rel = np.less_equal(minrem, thr, out=self._scr_cb[:hi])
        np.logical_or(flagged, rel, out=flagged)
        slots_f = np.nonzero(flagged)[0].tolist()
        if not slots_f:
            return
        finished: list[Flow] = []
        c_obj = self._c_obj
        maxnb = self._c_maxnb
        countf = self._c_count
        inf = _INF
        rows = self._dec_rows
        dec_buf = self._dec_buf
        buf_item = dec_buf.item
        slots_w: list[int] = []
        mins_w: list[float] = []
        maxs_w: list[float] = []
        counts_w: list[int] = []
        ldelta: dict[int, float] = {}
        emptied = False
        for s in slots_f:
            cls = c_obj[s]
            r = float(rate[s])
            # Replay any deferred decrements inline while scanning: the
            # same clamped subtractions in the same order as
            # :meth:`_FlowClass.materialize`, fused into the member loop
            # so the residual list is rebuilt once instead of twice.
            start = cls.dec_from
            if start != rows:
                cls.dec_from = rows
                if rows - start <= 8:
                    decs = []
                    for k in range(start, rows):
                        d = buf_item(k, s)
                        if d > 0.0:
                            decs.append(d)
                else:
                    col = dec_buf[start:rows, s]
                    decs = col[col > 0.0].tolist()
            else:
                decs = None
            keep: list[Flow] = []
            keep_rems: list[float] = []
            new_min = inf
            new_max = 0.0
            rpos = r > 0.0
            for f, rem in zip(cls.members, cls.rems):
                if decs:
                    for d in decs:
                        rem = rem - d
                        if rem <= 0.0:
                            rem = 0.0
                if (
                    rem <= _BYTE_EPS
                    or rem <= f.nbytes * 1e-9
                    or (rpos and rem / r <= time_eps)
                ):
                    f._rate = r
                    f._klass = None
                    f.finished_at = now
                    f._rem = 0.0
                    finished.append(f)
                else:
                    keep.append(f)
                    keep_rems.append(rem)
                    if rem < new_min:
                        new_min = rem
                    if f.nbytes > new_max:
                        new_max = f.nbytes
            dropped = cls.count - len(keep)
            cls.members = keep
            cls.rems = keep_rems
            cls.count = len(keep)
            slots_w.append(s)
            mins_w.append(new_min)
            maxs_w.append(new_max)
            counts_w.append(len(keep))
            if dropped:
                # Sum the integer-valued link-member decrements in
                # Python and apply one read-modify-write per link below:
                # exact small-integer arithmetic, bit-identical to the
                # per-class updates it replaces.
                for lid, mult in cls.lmults:
                    d = ldelta.get(lid)
                    ldelta[lid] = (
                        mult * dropped if d is None else d + mult * dropped
                    )
                if not keep:
                    emptied = True
        # Batched slot writes (a drained class's neutral values land on
        # its slot whether or not an eviction sweep just freed it).
        minrem[slots_w] = mins_w
        maxnb[slots_w] = maxs_w
        countf[slots_w] = counts_w
        if ldelta:
            lm = self._l_members
            for lid, delta in ldelta.items():
                lm[lid] -= delta
        if emptied and len(self._classes) >= 4096:
            self._evict_empties()
        if not finished:
            return
        self._n_active -= len(finished)
        self._epoch += 1
        # Completion callbacks must fire in activation order — the exact
        # order the reference implementation's active-list scan produces
        # (downstream processes observe it, e.g. in-flight counters).
        finished.sort(key=_ORDER_KEY)
        self.completed += len(finished)
        if _check_hooks.checker is not None or len(finished) == 1:
            for flow in finished:
                flow.done.succeed(flow)
            return
        # Batched dispatch: trigger every completion event now and run
        # their dispatches from one scheduled callback.  The succeed
        # loop above schedules one consecutive-sequence dispatch per
        # event with nothing in between, so draining them back-to-back
        # from a single callback resumes the same waiters in the same
        # order before any event they themselves schedule — the
        # observable schedule is identical, minus the per-event queue
        # traffic.  (With a runtime checker installed the per-event path
        # runs instead, so on_trigger hooks see every event.)
        events: list[SimEvent] = []
        append = events.append
        for flow in finished:
            ev = flow.done
            if ev._triggered:
                raise SimulationError(f"event {ev.name!r} triggered twice")
            ev._triggered = True
            ev._value = flow
            append(ev)
        self.engine.schedule(0.0, _dispatch_batch, events)

    def _allocate(self) -> None:
        """Max-min fair rates with per-flow caps (progressive filling).

        Operates on flow-class slot arrays: every round computes one
        uniform rate increment from vectorized per-link residuals and
        per-class cap headroom, then freezes saturated classes.  All
        elementwise operations and exact min-reductions match the
        reference per-flow allocator float-for-float; the order of
        value-changing steps (cap freeze, then residual update, then
        saturation freeze) is preserved from the scalar code.
        """
        classes = self._classes
        hi = self._c_hi
        rate = self._c_rate[:hi]
        rate.fill(0.0)
        pending_classes = self._pending_classes
        if pending_classes:
            minrem_a = self._c_minrem
            maxnb_a = self._c_maxnb
            count_a = self._c_count
            rows = self._dec_rows
            slots: list[int] = []
            mins: list[float] = []
            maxs: list[float] = []
            counts: list[int] = []
            #: Aggregated per-link member deltas.  Multiplicities and
            #: counts are exact small integers, so summing them in
            #: Python before the single array update is bit-identical
            #: to the per-class updates it replaces.
            ldelta: dict[int, float] = {}
            for cls in pending_classes:
                rems = cls.rems
                slot = cls.slot
                if rems:
                    # Existing members must not replay decrements from
                    # after the merge as if they predated it — flush the
                    # deferred ones first.
                    if cls.dec_from != rows:
                        cls.materialize()
                    min_rem = float(minrem_a[slot])
                    max_nb = float(maxnb_a[slot])
                else:
                    # Empty (fresh or revived-inert) class: the slot
                    # holds exactly these neutral values and there is
                    # nothing to replay for anyone.
                    cls.dec_from = rows
                    min_rem = _INF
                    max_nb = 0.0
                pend = cls.pending
                for flow in pend:
                    flow._klass = cls
                # A pending flow has moved no bytes: its residual is its
                # full size.  min()/max() run at C speed; comparing the
                # two Python floats afterwards is the same comparison
                # chain the per-flow loop produced.
                new_rems = [flow._rem for flow in pend]
                rems += new_rems
                lo = min(new_rems)
                if lo < min_rem:
                    min_rem = lo
                hi_nb = max(new_rems)
                if hi_nb > max_nb:
                    max_nb = hi_nb
                cls.members.extend(pend)
                n_new = len(pend)
                pend.clear()
                cls.count += n_new
                slots.append(slot)
                mins.append(min_rem)
                maxs.append(max_nb)
                counts.append(cls.count)
                for lid, mult in cls.lmults:
                    d = ldelta.get(lid)
                    ldelta[lid] = (
                        mult * n_new if d is None else d + mult * n_new
                    )
            pending_classes.clear()
            minrem_a[slots] = mins
            maxnb_a[slots] = maxs
            count_a[slots] = counts
            lm = self._l_members
            for lid, delta in ldelta.items():
                lm[lid] += delta
        if not classes:
            return
        lhi = self._l_hi
        n = self._scr_n[:lhi]
        np.copyto(n, self._l_members[:lhi])
        residual = self._scr_res[:lhi]
        np.copyto(residual, self._l_cap[:lhi])
        lsat = self._l_sat[:lhi]
        unf = self._scr_unf[:hi]
        # Unfrozen = populated: inert drained classes (count 0) and dead
        # slots (count 0 too) never enter a round, exactly as if they
        # had been deregistered the way the reference drops them.
        np.greater(self._c_count[:hi], 0.0, out=unf)
        newly = self._scr_new[:hi]
        cap = self._c_cap[:hi]
        capth = self._c_capth[:hi]
        c_lids = self._c_lids[:hi]
        c_mults = self._c_mults[:hi]
        counts = self._c_count[:hi]
        link_classes = self._link_classes

        # Flows on a zero-capacity link can never move: freeze at rate 0.
        if self._zero_links:
            for link in self._zero_links:
                for cls in link_classes.get(link, ()):
                    s = cls.slot
                    if unf[s]:
                        unf[s] = False
                        cnt = cls.count
                        for lid, mult in cls.lmults:
                            n[lid] -= mult * cnt

        # The rounds below work entirely in preallocated scratch with
        # full-width unmasked ufuncs — no boolean gathers, no masked
        # reductions, no temporaries (all three dominated the round's
        # cost; a full-width op on these widths is several times
        # cheaper than its gathered or ``where=``-masked form).
        #
        # Exactness of the two full-width reductions:
        #
        # * Rate increment.  The scalar round takes the min of
        #   ``residual / n`` over member-bearing links, then clamps a
        #   negative result to 0.  Clamping the *numerator* to 0 and
        #   dividing over *every* link gives the same value: a negative
        #   residual's quotient collapses to 0 either way (the final
        #   ``inc < 0`` clamp makes them indistinguishable), while
        #   ``n == 0`` links yield +inf or 0/0 = NaN — both neutral,
        #   since ``fmin.reduce`` ignores NaNs and ``initial=inf``
        #   reproduces the no-constraint default.  (Clamping the
        #   *quotient* instead would be wrong: a drained link with a
        #   slightly-negative residual and no members left divides to
        #   -inf, and clamping that to 0 would fabricate a constraint
        #   the member-bearing reduction never saw.)  The only drift is
        #   the sign of a zero increment, and a ±0.0 increment is
        #   unobservable through ``+``/``-`` on the non-negative rates
        #   and residuals it meets.
        #
        # * Cap headroom.  ``capw`` mirrors ``cap`` but holds +inf on
        #   every frozen or dead slot (initialized via ``unf``, updated
        #   as classes freeze), so ``(capw - rate).min()`` minimizes
        #   exactly the unfrozen classes' ``cap - rate`` values with
        #   +inf as the neutral element — and rates stay finite inside
        #   the loop, so no inf - inf can appear.
        rounds = 0
        inf = _INF
        tmp = self._scr_t[:lhi]
        nz = self._scr_nz[:lhi]
        sat = self._scr_st[:lhi]
        head = self._scr_hd[:hi]
        frz = self._scr_cb[:hi]
        capw = self._scr_thr[:hi]
        np.copyto(capw, inf)
        np.copyto(capw, cap, where=unf)
        lidsT = self._c_lidsT[:, :hi]
        maxdeg = self._c_maxdeg
        fmin_reduce = np.fmin.reduce
        min_reduce = np.minimum.reduce
        count_nonzero = np.count_nonzero
        old_err = np.seterr(divide="ignore", invalid="ignore")
        first = True
        # Member counts only change when classes freeze (end of round),
        # so the nonzero-count mask is refreshed there, not per round.
        np.greater(n, 0.0, out=nz)
        # Control flow runs on integer counters instead of repeated
        # ``any()`` reductions: ``count_nonzero`` and the raw ufunc
        # reduces skip the ndarray-method wrappers, which at class-churn
        # sizes (tens of slots) cost more than the reduction itself.
        n_unf = count_nonzero(unf)
        while n_unf:
            rounds += 1
            np.maximum(residual, 0.0, out=tmp)
            np.divide(tmp, n, out=tmp)
            inc = fmin_reduce(tmp, initial=inf)
            if first:
                # Round one starts from rate 0 everywhere, so the
                # headroom subtraction collapses (``cap - 0.0`` is
                # ``cap`` bit-for-bit).
                head_min = min_reduce(capw)
            else:
                np.subtract(capw, rate, out=head)
                head_min = min_reduce(head)
            if head_min < inc:
                inc = head_min
            if inc == inf:
                # No finite constraint: flows are effectively unbounded.
                np.copyto(rate, inf, where=unf)
                break
            if inc < 0.0:
                inc = 0.0
            if first:
                # ``0.0 + inc`` is ``inc`` bit-for-bit: plain store.
                np.copyto(rate, inc, where=unf)
                first = False
            else:
                np.add(rate, inc, out=rate, where=unf)
            # Cap freezing reads rates before the residual update, same
            # as the scalar round.  ``newly`` is a subset of ``unf`` by
            # construction, so the xor clears exactly those bits.
            np.greater_equal(rate, capth, out=frz)
            np.logical_and(unf, frz, out=newly)
            np.logical_xor(unf, newly, out=unf)
            # Residual update over every link at once: links with no
            # unfrozen members subtract exactly inc * 0 == 0, leaving
            # their residuals untouched (the scalar code skips them).
            np.multiply(n, inc, out=tmp)
            np.subtract(residual, tmp, out=residual)
            np.less_equal(residual, lsat, out=sat)
            np.logical_and(sat, nz, out=sat)
            if count_nonzero(sat):
                # Saturation freeze through the incidence columns: a
                # class freezes iff any of its links saturated.  The
                # pad entries repeat each class's first real link, so
                # or-ing the per-column gathers tests exactly the
                # class's link set; masking with ``unf`` restricts to
                # classes the scalar loop would actually have flipped.
                hit = sat[lidsT[0]]
                for k in range(1, maxdeg):
                    np.logical_or(hit, sat[lidsT[k]], out=hit)
                np.logical_and(hit, unf, out=hit)
                np.logical_or(newly, hit, out=newly)
                np.logical_xor(unf, hit, out=unf)
            n_new = count_nonzero(newly)
            if not n_new:
                # Numerical stall safeguard; freeze everything.
                break
            np.copyto(capw, inf, where=newly)
            n_unf -= n_new
            if not n_unf:
                break  # final round: nothing left to read the counts
            # Frozen members leave the per-link unfrozen counts.  The
            # decrements are exact small integers, so the accumulation
            # order is immaterial; pad columns subtract 0 * count = 0.
            rows = np.nonzero(newly)[0]
            np.subtract.at(
                n,
                c_lids[rows].ravel(),
                (c_mults[rows] * counts[rows, None]).ravel(),
            )
            np.greater(n, 0.0, out=nz)
        np.seterr(**old_err)
        self.engine.stats.allocator_rounds += rounds

    def _schedule_completion(self) -> None:
        self._completion_token += 1
        hi = self._c_hi
        rate = self._c_rate[:hi]
        live = (rate > 0.0) & (self._c_count[:hi] > 0.0)
        if not live.any():
            return
        # min(remaining)/rate == min(remaining/rate) for each class's
        # uniform positive rate, and the class minimum is tracked
        # incrementally — no member scan.  Rates here are positive and
        # the minima of populated classes finite, so the division is
        # clean (an inf rate yields 0.0, exactly as in the scalar scan).
        next_dt = float((self._c_minrem[:hi][live] / rate[live]).min())
        self.engine.schedule(
            max(0.0, next_dt),
            self._on_completion,
            self._completion_token,
            priority=PRIORITY_LATE,
        )

    def _on_completion(self, token: int) -> None:
        if token != self._completion_token:
            return  # superseded by a newer rebalance
        self._rebalance()


